#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

echo "ci: all green"
