#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting, campaign smoke. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Campaign smoke: the parallel runner must reproduce the serial rows
# bitwise for both the fault-injection matrix and the Figure 8 grids (the
# binary exits nonzero on any serial/parallel mismatch) and emit the four
# machine-readable reports.
cargo run --release -q -p ft-bench --bin campaign -- --quick --threads 4 --out .
for f in BENCH_table1.json BENCH_table2.json BENCH_loss.json BENCH_fig8.json; do
  [[ -s "$f" ]] || { echo "ci: missing $f" >&2; exit 1; }
done

# Model-checker smoke: exhaust every crash point (including mid-commit
# sub-steps) of small nvi and taskfarm workloads under all seven
# protocols, asserting serial/sharded exploration equivalence. The binary
# exits nonzero on any invariant violation, after shrinking it and
# writing check_counterexample.txt.
cargo run --release -q -p ft-check --bin check -- --smoke --threads 4 --out BENCH_check.json
[[ -s BENCH_check.json ]] || { echo "ci: missing BENCH_check.json" >&2; exit 1; }

echo "ci: all green"
