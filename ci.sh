#!/usr/bin/env bash
# Tier-1 gate: build, tests, lints, formatting, campaign smoke. Run before every push.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --check

# Determinism & recovery-safety lint: ft-lint (crates/lint) supersedes
# the old grep scan — lexer-accurate wall-clock detection plus the
# unordered-iteration / panic-in-recovery / unchecked-arith-in-decode /
# float-in-fingerprint rules, scoped by a call-approximation graph.
# ci/determinism_allowlist.txt is tombstoned: its driver entries live in
# crates/lint/src/scope.rs and everything else is an inline
# `// ft-lint: allow(<rule>): <reason>` at the offending line.
if [[ -e ci/determinism_allowlist.txt ]]; then
  echo "ci: ci/determinism_allowlist.txt is tombstoned; put drivers in crates/lint/src/scope.rs" >&2
  exit 1
fi
# Self-test first: every seeded mutant must trip its own rule, proving
# the gate can actually fail (same pattern as the perf gate's spin).
for rule in wall-clock unordered-iteration panic-in-recovery \
            unchecked-arith-in-decode float-in-fingerprint unused-suppression; do
  if cargo run --release -q -p ft-lint --bin ft-lint -- --mutate "$rule" >/dev/null 2>&1; then
    echo "ci: ft-lint self-test failed: seeded $rule violation was not caught" >&2
    exit 1
  fi
done
# The real run must be clean, and its report byte-identical across runs.
cargo run --release -q -p ft-lint --bin ft-lint -- --out BENCH_lint.json
cargo run --release -q -p ft-lint --bin ft-lint -- --out BENCH_lint.rerun.json >/dev/null
cmp BENCH_lint.json BENCH_lint.rerun.json \
  || { echo "ci: BENCH_lint.json not deterministic across runs" >&2; exit 1; }
rm -f BENCH_lint.rerun.json

# Perf-regression gate: the hot-path micro-benches must stay within
# SLOWDOWN_TOLERANCE of the committed baseline (generous: catches gross
# regressions, not host jitter). Self-test first: a seeded busy-wait in
# the event-queue bench must trip the gate, proving it can fail. Set
# FT_SKIP_PERF_GATE=1 to skip on known-noisy hosts.
if [[ -z "${FT_SKIP_PERF_GATE:-}" ]]; then
  if cargo run --release -q -p ft-bench --bin perf --       --mutate spin --check ci/perf_baseline.json --out /dev/null >/dev/null 2>&1; then
    echo "ci: perf gate self-test failed: seeded regression was not caught" >&2
    exit 1
  fi
  cargo run --release -q -p ft-bench --bin perf --     --check ci/perf_baseline.json --out BENCH_perf.json
else
  echo "ci: perf gate skipped (FT_SKIP_PERF_GATE set)"
fi

# Campaign smoke: the parallel runner must reproduce the serial rows
# bitwise for both the fault-injection matrix and the Figure 8 grids (the
# binary exits nonzero on any serial/parallel mismatch) and emit the four
# machine-readable reports.
cargo run --release -q -p ft-bench --bin campaign -- --quick --threads 4 --out .
for f in BENCH_table1.json BENCH_table2.json BENCH_loss.json BENCH_fig8.json; do
  [[ -s "$f" ]] || { echo "ci: missing $f" >&2; exit 1; }
done

# Availability smoke: the continuous-fault stage (short horizons, 2
# protocols × 2 strategies) with its seeded unsound-microreboot mutants,
# which must be flagged by the oracle (the binary exits nonzero
# otherwise, and on any serial/sharded mismatch). The report carries no
# wall-clock, so two consecutive runs at different thread counts must be
# byte-identical.
cargo run --release -q -p ft-bench --bin campaign -- --quick --avail-only --threads 4 --out .
cargo run --release -q -p ft-bench --bin campaign -- --quick --avail-only --threads 2 --out avail_rerun
cmp BENCH_avail.json avail_rerun/BENCH_avail.json \
  || { echo "ci: BENCH_avail.json not deterministic across runs" >&2; exit 1; }
rm -rf avail_rerun
[[ -s BENCH_avail.json ]] || { echo "ci: missing BENCH_avail.json" >&2; exit 1; }

# Durable-medium smoke: the three-media overhead grid (Rio / DC-disk /
# DC-durable) plus the real on-disk engine probe (commit, compact,
# reopen, digest check). The report carries no wall-clock numbers, so
# two consecutive runs at different thread counts must be
# byte-identical.
cargo run --release -q -p ft-bench --bin campaign -- --quick --durable-only --threads 4 --out .
cargo run --release -q -p ft-bench --bin campaign -- --quick --durable-only --threads 2 --out durable_rerun
cmp BENCH_durable.json durable_rerun/BENCH_durable.json \
  || { echo "ci: BENCH_durable.json not deterministic across runs" >&2; exit 1; }
rm -rf durable_rerun
[[ -s BENCH_durable.json ]] || { echo "ci: missing BENCH_durable.json" >&2; exit 1; }

# KV-workload smoke: the sharded kvstore campaign (open-loop Zipfian
# sessions over an S x R replicated cluster) under continuous crashes,
# with the binary's internal serial/sharded equivalence assert and its
# consistency gate (every cell must be violation-free). The report
# carries no wall-clock, so two consecutive runs at different thread
# counts must be byte-identical.
cargo run --release -q -p ft-bench --bin campaign -- --quick --kv-only --threads 4 --out .
cargo run --release -q -p ft-bench --bin campaign -- --quick --kv-only --threads 2 --out kv_rerun
cmp BENCH_kv.json kv_rerun/BENCH_kv.json \
  || { echo "ci: BENCH_kv.json not deterministic across runs" >&2; exit 1; }
rm -rf kv_rerun
[[ -s BENCH_kv.json ]] || { echo "ci: missing BENCH_kv.json" >&2; exit 1; }
if grep -q '"wall' BENCH_kv.json; then
  echo "ci: BENCH_kv.json must not carry wall-clock numbers" >&2; exit 1
fi

# Real-process crashtest smoke: a strided subset of the 254 exported
# kill -9 schedules on nvi + taskfarm under fsync-per-commit (power-cut
# and torn-append loss models) plus the three seeded-mutant self-tests,
# then the full matrix under --fsync none (no per-commit fsync, so the
# whole 254-trial sweep stays fast). The binary exits nonzero on any
# honest-backend oracle violation or any mutant escape.
cargo run --release -q -p ft-crashtest --bin crashtest -- --quick
cargo run --release -q -p ft-crashtest --bin crashtest -- --fsync none --skip-mutants

# Model-checker smoke: exhaust every crash point (including mid-commit
# sub-steps) of small nvi and taskfarm workloads under all seven
# protocols, asserting serial/sharded exploration equivalence. The binary
# exits nonzero on any invariant violation, after shrinking it and
# writing check_counterexample.txt.
cargo run --release -q -p ft-check --bin check -- --smoke --threads 4 --out BENCH_check.json
[[ -s BENCH_check.json ]] || { echo "ci: missing BENCH_check.json" >&2; exit 1; }

# Analyzer smoke: every workload under all seven protocols through the
# happens-before, lockset, and obligation-audit passes (plus the two
# seeded-race mutants, which must be flagged). The binary asserts
# serial/sharded equivalence and exits nonzero on unexpected findings;
# the report itself must be byte-identical across two consecutive runs.
cargo run --release -q -p ft-analyze --bin analyze -- --smoke --threads 4 --out BENCH_analyze.json
cargo run --release -q -p ft-analyze --bin analyze -- --smoke --threads 2 --out BENCH_analyze.rerun.json
cmp BENCH_analyze.json BENCH_analyze.rerun.json \
  || { echo "ci: BENCH_analyze.json not deterministic across runs" >&2; exit 1; }
rm -f BENCH_analyze.rerun.json
[[ -s BENCH_analyze.json ]] || { echo "ci: missing BENCH_analyze.json" >&2; exit 1; }

echo "ci: all green"
