//! The paper's opening example (Figure 1): a process flips a coin,
//! announces the result, and fails. If the operating system recovers it
//! without having saved the flip, re-execution may flip the other way and
//! announce a contradiction — the user has seen the impossible.
//!
//! Part 1 replays Figure 1 in the theory library: the trace with an
//! uncommitted transient non-deterministic event violates Save-work, and
//! the heads-then-tails output stream fails the consistent-recovery
//! check. Committing between the flip and the announcement repairs both.
//!
//! Part 2 runs the scenario live: a coin-flipping process is killed right
//! after announcing, and Discount Checking (CPVS — commit prior to
//! visible) recovers it; the re-announcement is a *duplicate of the same
//! face*, which consistent recovery permits.
//!
//! ```sh
//! cargo run --example coin_flip
//! ```

use failure_transparency::core::consistency::check_consistent_recovery;
use failure_transparency::core::event::NdSource;
use failure_transparency::core::trace::TraceBuilder;
use failure_transparency::mem::arena::Layout;
use failure_transparency::mem::error::MemResult;
use failure_transparency::mem::mem::ArenaCell;
use failure_transparency::prelude::*;
use failure_transparency::sim::syscalls::{AppStatus, SysMem};
use failure_transparency::sim::US;

/// Flips one coin (a transient nd event), announces it (a visible
/// event), then exits. All state in the arena, one event per step.
struct CoinFlipper;

const G_PHASE: ArenaCell<u64> = ArenaCell::at(0);
const G_FACE: ArenaCell<u64> = ArenaCell::at(8);

impl App for CoinFlipper {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        match G_PHASE.get(&sys.mem().arena)? {
            0 => {
                let face = sys.random() & 1;
                let m = sys.mem();
                G_FACE.set(&mut m.arena, face)?;
                G_PHASE.set(&mut m.arena, 1)?;
                Ok(AppStatus::Running)
            }
            1 => {
                let face = G_FACE.get(&sys.mem().arena)?;
                sys.visible(face);
                sys.compute(100 * US);
                G_PHASE.set(&mut sys.mem().arena, 2)?;
                Ok(AppStatus::Running)
            }
            _ => Ok(AppStatus::Done),
        }
    }

    fn layout(&self) -> Layout {
        Layout::small()
    }
}

fn main() {
    // ----- Part 1: Figure 1 as traces and checkers -----
    let p = ProcessId(0);

    // The failing execution: flip (transient nd), announce, crash — no
    // commit anywhere. Save-work's visible rule is violated.
    let mut t = TraceBuilder::new(1);
    t.nd(p, NdSource::Random);
    t.visible(p, /* heads */ 0);
    t.crash(p);
    let bad = t.finish();
    let verdict = check_save_work(&bad);
    println!("Figure 1, no commit:   Save-work says {verdict:?}");
    assert!(verdict.is_err());

    // What the user saw across the naive recovery: heads, then tails.
    // Consistent recovery forbids it — a duplicate may repeat a prefix,
    // never contradict it.
    let v = check_consistent_recovery(&[0, 1], &[0]);
    println!("\"heads\" then \"tails\": consistent = {}", v.consistent);
    assert!(!v.consistent);
    let v = check_consistent_recovery(&[0, 0], &[0]);
    println!(
        "\"heads\" then \"heads\": consistent = {} ({} duplicate)",
        v.consistent, v.duplicates
    );
    assert!(v.consistent);

    // The repaired execution: commit between the flip and the visible.
    let mut t = TraceBuilder::new(1);
    t.nd(p, NdSource::Random);
    t.commit(p);
    t.visible(p, 0);
    t.crash(p);
    let good = t.finish();
    println!(
        "Figure 1, with commit: Save-work says {:?}",
        check_save_work(&good)
    );
    assert!(check_save_work(&good).is_ok());

    // ----- Part 2: the same story, live, under Discount Checking -----
    let reference = {
        let sim = Simulator::new(SimConfig::single_node(1, 4242));
        let mut apps: Vec<Box<dyn App>> = vec![Box::new(CoinFlipper)];
        let r = run_plain_on(sim, &mut apps);
        assert!(r.all_done);
        r.visibles[0].2
    };

    let mut sim = Simulator::new(SimConfig::single_node(1, 4242));
    // Kill immediately after the announcement.
    sim.kill_at(ProcessId(0), 50 * US);
    let report = DcHarness::new(
        sim,
        DcConfig::discount_checking(Protocol::Cpvs),
        vec![Box::new(CoinFlipper)],
    )
    .run();
    assert!(report.all_done);
    let faces: Vec<u64> = report.visibles.iter().map(|&(_, _, f)| f).collect();
    let v = check_consistent_recovery(&faces, &[reference]);
    println!(
        "\nLive run: announced {:?} across {} recovery(ies) — consistent = {}",
        faces
            .iter()
            .map(|&f| if f == 0 { "heads" } else { "tails" })
            .collect::<Vec<_>>(),
        report.totals.recoveries,
        v.consistent,
    );
    assert!(
        v.consistent,
        "CPVS must never contradict the first announcement"
    );
    assert!(check_save_work(&report.trace).is_ok());
}
