//! Dangerous paths and the Lose-work theorem, interactively.
//!
//! Walks through the paper's §2.5 examples: the three Figure 6 machines
//! (when is it safe to commit?), the Figure 7 lattice with its coloring,
//! the Figure 9 conflict timeline, and the multi-process reclassification
//! of receive events.
//!
//! ```sh
//! cargo run --example dangerous_paths
//! ```

use failure_transparency::core::graph::{
    can_commit_now, check_lose_work, figure6, figure7, multi_process_dangerous, EdgeId, EdgeKind,
    ProcessRun, RecvMeta, StateGraph,
};
use failure_transparency::core::losework::check_commit_after_activation;
use failure_transparency::core::trace::TraceBuilder;
use failure_transparency::prelude::*;

fn main() {
    println!("== Figure 6: when is a commit safe? ==\n");
    for (case, story) in [
        ('A', "a deterministic path straight into a crash"),
        ('B', "a transient nd fork where one branch survives"),
        ('C', "a fixed nd fork with a crashing branch"),
    ] {
        let (g, _, probe) = figure6(case);
        let dp = g.dangerous_paths();
        println!(
            "case {case} ({story}): committing at the marked point is {}",
            if dp.commit_safe(probe) {
                "SAFE"
            } else {
                "DANGEROUS"
            }
        );
    }

    println!("\n== Figure 7: the coloring algorithm ==\n");
    let (g, start) = figure7();
    let dp = g.dangerous_paths();
    print!("{}", g.render(&dp));
    // Walk the doomed branch and show the Lose-work checker catching a
    // commit on it.
    let doomed = vec![EdgeId(1), EdgeId(6), EdgeId(7)]; // t2, d3, d4 → crash2.
    let verdict = check_lose_work(&g, start, &doomed, &[1]);
    println!(
        "\ncommitting one step down the doomed branch: {:?}",
        verdict.unwrap_err()
    );

    println!("\n== Figure 9: when Save-work and Lose-work conflict ==\n");
    // transient nd → fault activation → (Save-work forces a commit) →
    // visible → crash.
    let p = ProcessId(0);
    let mut b = TraceBuilder::new(1);
    b.nd(p, NdSource::SchedDecision);
    b.fault_activation(p, 1);
    b.commit(p); // Save-work demanded this before the visible...
    b.visible(p, 1);
    b.crash(p);
    let outcome = check_commit_after_activation(&b.finish());
    println!("the commit Save-work required violates Lose-work: {outcome:?}");

    println!("\n== Multi-process: reclassifying receives ==\n");
    // A sender that committed after its nd makes the receive *fixed*; a
    // sender with uncommitted transient nd makes it *transient*.
    let mut sender_g = StateGraph::new();
    let a0 = sender_g.add_state("a0");
    let a1 = sender_g.add_state("a1");
    let a2 = sender_g.add_state("a2");
    sender_g.add_edge(a0, a1, EdgeKind::TransientNd, "nd");
    sender_g.add_edge(a1, a2, EdgeKind::Det, "send");

    let mut recv_g = StateGraph::new();
    let b0 = recv_g.add_state("b0");
    let b1 = recv_g.add_state("b1");
    let done = recv_g.add_state("done");
    recv_g.add_edge(b0, b1, EdgeKind::TransientNd, "recv");
    recv_g.add_edge(b1, done, EdgeKind::Det, "finish");
    let mut recv_meta = std::collections::BTreeMap::new();
    recv_meta.insert(
        0usize,
        RecvMeta {
            sender: 0,
            send_step: 1,
        },
    );

    for (commits_at, label) in [
        (vec![1], "committed after its nd"),
        (vec![], "did not commit"),
    ] {
        let runs = vec![
            ProcessRun {
                graph: sender_g.clone(),
                start: a0,
                path: vec![EdgeId(0), EdgeId(1)],
                commits_at,
                recv_meta: std::collections::BTreeMap::new(),
            },
            ProcessRun {
                graph: recv_g.clone(),
                start: b0,
                path: vec![EdgeId(0)],
                commits_at: vec![],
                recv_meta: recv_meta.clone(),
            },
        ];
        let (reclassified, _) = multi_process_dangerous(&runs, 1);
        println!(
            "sender {label}: the receive is {:?}; receiver may commit now: {}",
            reclassified.edge(EdgeId(0)).kind,
            can_commit_now(&runs, 1)
        );
    }
}
