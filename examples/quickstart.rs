//! Quickstart: failure transparency in five minutes.
//!
//! Runs the interactive editor twice — once failure-free, once with a stop
//! failure mid-session under the CPVS protocol — and shows that the
//! visible output of the failed-and-recovered run is *consistent* with the
//! failure-free run (§2.3): the user cannot tell the failure happened,
//! except possibly for a repeated screen update.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use failure_transparency::prelude::*;

fn build(kill_at: Option<u64>) -> (Simulator, Vec<Box<dyn App>>) {
    let mut sim = Simulator::new(SimConfig::single_node(1, 42));
    let keys = b"the quick brown fox jumps over the lazy dog";
    sim.set_input_script(
        ProcessId(0),
        InputScript::evenly_spaced(0, 100 * MS, keys.iter().map(|&k| vec![k]).collect()),
    );
    if let Some(t) = kill_at {
        sim.kill_at(ProcessId(0), t);
    }
    (sim, vec![Box::new(Editor::new())])
}

fn main() {
    // The reference: a complete, failure-free execution.
    let (sim, mut apps) = build(None);
    let reference = run_plain_on(sim, &mut apps);
    println!(
        "failure-free run: {} visible events in {:.1} s",
        reference.visibles.len(),
        reference.runtime as f64 / 1e9
    );

    // The recovered run: killed 2.25 s in, recovered by Discount Checking
    // under CPVS (commit prior to every visible or send event).
    let (sim, apps) = build(Some(2_250 * MS));
    let report = DcHarness::new(sim, DcConfig::discount_checking(Protocol::Cpvs), apps).run();
    println!(
        "failed+recovered run: {} visible events, {} commits, {} recovery",
        report.visibles.len(),
        report.total_commits(),
        report.totals.recoveries
    );

    // The Save-work theorem held throughout...
    assert!(check_save_work(&report.trace).is_ok());
    println!("Save-work invariant: upheld across failure and recovery");

    // ...so recovery is consistent: the outputs match modulo repeats.
    let ref_tokens: Vec<u64> = reference.visibles.iter().map(|&(_, _, t)| t).collect();
    let verdict = check_consistent_recovery(&report.visible_tokens(), &ref_tokens);
    assert!(verdict.consistent);
    println!(
        "consistent recovery: yes ({} duplicate visible event{})",
        verdict.duplicates,
        if verdict.duplicates == 1 { "" } else { "s" }
    );
    println!("the user could not tell the failure happened.");
}
