//! The anatomy of a recovered run: render the event trace of a session
//! that fails and recovers, and watch the paper's machinery in it —
//! non-deterministic events, the commits Save-work demanded, the crash,
//! the rollback, and the constrained re-execution.
//!
//! ```sh
//! cargo run --example trace_anatomy
//! ```

use failure_transparency::core::render::render_trace;
use failure_transparency::prelude::*;

fn main() {
    let mut sim = Simulator::new(SimConfig::single_node(1, 8));
    sim.set_input_script(
        ProcessId(0),
        InputScript::evenly_spaced(0, MS, b"hi!".iter().map(|&k| vec![k]).collect()),
    );
    // Kill between the second echo and the save.
    sim.kill_at(ProcessId(0), MS + 700 * US);
    let report = DcHarness::new(
        sim,
        DcConfig::discount_checking(Protocol::Cpvs),
        vec![Box::new(Editor::new())],
    )
    .run();
    assert!(report.all_done);

    println!("An editor types \"hi\", is killed, recovers, and saves (CPVS):\n");
    println!("{}", render_trace(&report.trace, 60));
    println!(
        "{} commits, {} recovery, Save-work {}",
        report.total_commits(),
        report.totals.recoveries,
        if check_save_work(&report.trace).is_ok() {
            "upheld"
        } else {
            "VIOLATED"
        }
    );
}
