//! Distributed shared memory under failure transparency: three nodes
//! cooperate through a TreadMarks-style DSM — a lock-protected shared
//! ledger plus a rendezvous barrier — while the recovery runtime
//! checkpoints everything, and one node is killed mid-run.
//!
//! The locks give *entry consistency*: the ledger is coherent while the
//! lock is held (grants carry accumulated release diffs), so each node
//! reads the final total inside a last critical section, after a barrier
//! guarantees all deposits have finished.
//!
//! The DSM keeps its region, twins, and synchronization state in the
//! recoverable arena, so to the protocols its traffic is ordinary
//! messages and its state is ordinary memory: nothing DSM-specific exists
//! in the recovery path.
//!
//! ```sh
//! cargo run --example shared_memory
//! ```

use failure_transparency::dsm::lock::{LockStatus, ManagerApp};
use failure_transparency::dsm::{BarrierStatus, Dsm};
use failure_transparency::mem::arena::Layout;
use failure_transparency::mem::error::MemResult;
use failure_transparency::mem::mem::{ArenaCell, Mem};
use failure_transparency::prelude::*;
use failure_transparency::sim::syscalls::{AppStatus, SysMem, WaitCond};
use failure_transparency::sim::SimTime;

const WORKERS: u32 = 3;
const MANAGER: ProcessId = ProcessId(WORKERS);
const DEPOSITS: u64 = 8;

// Region layout: one u64 ledger total at 0, per-worker deposit counts at
// 8, 16, 24.
const R_TOTAL: usize = 0;

fn layout() -> Layout {
    Layout {
        globals_pages: 1,
        stack_pages: 2,
        heap_pages: 16,
    }
}

fn reconstruct_dsm(my: u32) -> Dsm {
    let mut probe = Mem::new(layout());
    Dsm::init(&mut probe, my, WORKERS, 2).expect("probe init")
}

/// A worker deposits `my + 1` units into the shared ledger `DEPOSITS`
/// times, each deposit inside a lock-protected critical section, then
/// joins a barrier and renders the total it sees.
struct Worker {
    my: u32,
}

impl App for Worker {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        let phase: ArenaCell<u64> = ArenaCell::at(0);
        let inited: ArenaCell<u64> = ArenaCell::at(8);
        let deposits: ArenaCell<u64> = ArenaCell::at(16);
        if inited.get(&sys.mem().arena)? == 0 {
            let m = sys.mem();
            Dsm::init(m, self.my, WORKERS, 2)?;
            inited.set(&mut m.arena, 1)?;
            return Ok(AppStatus::Running);
        }
        let dsm = reconstruct_dsm(self.my);
        match phase.get(&sys.mem().arena)? {
            // Acquire the ledger lock.
            0 => match dsm.lock_pump(sys, MANAGER, 0)? {
                LockStatus::Granted => {
                    let m = sys.mem();
                    phase.set(&mut m.arena, 1)?;
                    Ok(AppStatus::Running)
                }
                LockStatus::Waiting => Ok(AppStatus::Blocked(WaitCond::message())),
            },
            // Critical section: the deposit.
            1 => {
                let total = dsm.read_pod::<u64>(sys, R_TOTAL)?;
                dsm.write_pod(sys, R_TOTAL, total + self.my as u64 + 1)?;
                let mine = 8 + self.my as usize * 8;
                let n = dsm.read_pod::<u64>(sys, mine)?;
                dsm.write_pod(sys, mine, n + 1)?;
                sys.compute(100 * US);
                phase.set(&mut sys.mem().arena, 2)?;
                Ok(AppStatus::Running)
            }
            // Release; loop or move to the barrier.
            2 => {
                dsm.unlock(sys, MANAGER, 0)?;
                let m = sys.mem();
                let n = deposits.get(&m.arena)? + 1;
                deposits.set(&mut m.arena, n)?;
                let next = if n < DEPOSITS { 0 } else { 3 };
                phase.set(&mut m.arena, next)?;
                Ok(AppStatus::Running)
            }
            // Barrier: wait until *every* worker has finished depositing.
            // The lock gives entry consistency — the ledger is coherent
            // only while holding it — so the barrier is purely a rendezvous
            // here; the authoritative read happens under the lock after it.
            3 => match dsm.barrier_pump(sys)? {
                BarrierStatus::Done => {
                    phase.set(&mut sys.mem().arena, 4)?;
                    Ok(AppStatus::Running)
                }
                BarrierStatus::Working => Ok(AppStatus::Running),
                BarrierStatus::Blocked => Ok(AppStatus::Blocked(WaitCond::message())),
            },
            // Final acquire: the grant carries every deposit's write
            // notices, so the ledger total is complete and identical on
            // every node.
            4 => match dsm.lock_pump(sys, MANAGER, 0)? {
                LockStatus::Granted => {
                    let m = sys.mem();
                    phase.set(&mut m.arena, 5)?;
                    Ok(AppStatus::Running)
                }
                LockStatus::Waiting => Ok(AppStatus::Blocked(WaitCond::message())),
            },
            5 => {
                let total = dsm.read_pod::<u64>(sys, R_TOTAL)?;
                sys.visible(total);
                phase.set(&mut sys.mem().arena, 6)?;
                Ok(AppStatus::Running)
            }
            6 => {
                dsm.unlock(sys, MANAGER, 0)?;
                phase.set(&mut sys.mem().arena, 7)?;
                Ok(AppStatus::Running)
            }
            _ => Ok(AppStatus::Done),
        }
    }

    fn layout(&self) -> Layout {
        layout()
    }
}

const TOTAL_RELEASES: u64 = WORKERS as u64 * (DEPOSITS + 1);

fn apps() -> Vec<Box<dyn App>> {
    let mut v: Vec<Box<dyn App>> = (0..WORKERS)
        .map(|i| Box::new(Worker { my: i }) as Box<dyn App>)
        .collect();
    v.push(Box::new(ManagerApp::new(1, TOTAL_RELEASES)));
    v
}

fn main() {
    let expected: u64 = (0..WORKERS).map(|i| (i as u64 + 1) * DEPOSITS).sum();

    // First failure-free, as the reference.
    let sim = Simulator::new(SimConfig::one_node_each(WORKERS as usize + 1, 11));
    let mut a = apps();
    let plain = run_plain_on(sim, &mut a);
    assert!(plain.all_done);
    println!("Failure-free: every node's final ledger view:");
    for &(_, p, total) in &plain.visibles {
        println!("  node {} sees {total} (expected {expected})", p.0);
        assert_eq!(total, expected);
    }

    // Now under Discount Checking with worker 1 killed mid-deposits.
    let mut sim = Simulator::new(SimConfig::one_node_each(WORKERS as usize + 1, 11));
    sim.kill_at(ProcessId(1), 2 * MS);
    let report = DcHarness::new(sim, DcConfig::discount_checking(Protocol::Cpvs), apps()).run();
    assert!(report.all_done);
    println!("\nWith worker 1 killed at t=2ms under CPVS:");
    for &(_, p, total) in &report.visibles {
        println!("  node {} sees {total}", p.0);
        assert_eq!(total, expected, "recovery must not lose deposits");
    }
    println!(
        "  {} commits, {} recoveries, Save-work {}",
        report.total_commits(),
        report.totals.recoveries,
        if check_save_work(&report.trace).is_ok() {
            "upheld"
        } else {
            "VIOLATED"
        }
    );
    let _: SimTime = report.runtime;
}
