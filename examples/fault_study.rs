//! A single Table 1 trial, narrated: inject one fault, watch it activate,
//! see whether the Save-work commits doom the recovery.
//!
//! Contrasts two §4.1 fault types on the editor: a heap bit flip (detected
//! only at save time, long after many commits — a Lose-work violation,
//! unrecoverable) and an uninitialized variable (crashes immediately,
//! before the next commit — recoverable).
//!
//! ```sh
//! cargo run --example fault_study
//! ```

use failure_transparency::core::event::EventKind;
use failure_transparency::core::losework::{check_commit_after_activation, LoseWorkOutcome};
use failure_transparency::faults::{FaultPlan, FaultType};
use failure_transparency::prelude::*;

fn run_one(fault: FaultType, trigger_visit: u32, recover: bool) -> DcReport {
    let plan = FaultPlan {
        fault,
        site: failure_transparency::apps::editor::fault_site(fault),
        trigger_visit,
        id: 1,
        sticky: false,
    };
    let mut sim = Simulator::new(SimConfig::single_node(1, 2077));
    let keys = failure_transparency::apps::workload::editor_script(300, 5);
    sim.set_input_script(
        ProcessId(0),
        InputScript::evenly_spaced(0, MS, keys.into_iter().map(|k| vec![k]).collect()),
    );
    let mut app = Editor::new();
    app.faults = failure_transparency::faults::FaultInjector::armed(plan, 9 + trigger_visit as u64);
    let mut cfg = DcConfig::discount_checking(Protocol::Cpvs);
    if !recover {
        cfg.max_recoveries = 0;
    }
    DcHarness::new(sim, cfg, vec![Box::new(app)]).run()
}

/// Finds a trigger visit whose activation actually crashes the run — a
/// random heap flip often lands in dead bytes, and Table 1 only considers
/// crashing runs.
fn crashing_trigger(fault: FaultType) -> (u32, DcReport) {
    for t in 0..300u32 {
        let trigger = 3 + t * 7;
        let report = run_one(fault, trigger, false);
        if report.trace.iter().any(|e| e.kind.is_crash()) {
            return (trigger, report);
        }
    }
    panic!("no crashing trigger found for {fault}");
}

fn narrate(fault: FaultType) {
    let (trigger_visit, report) = crashing_trigger(fault);
    println!(
        "--- {} (activated at visit {trigger_visit}, run crashed) ---",
        fault.name()
    );
    let violated = match check_commit_after_activation(&report.trace) {
        LoseWorkOutcome::Violated { activation, commit } => {
            println!(
                "fault activated at {activation}; commit {commit} followed it — Lose-work violated"
            );
            true
        }
        LoseWorkOutcome::Upheld => {
            println!("the process crashed before any commit could capture the damage");
            false
        }
    };
    let commits = report
        .trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Commit { .. }))
        .count();
    println!("commits in the run: {commits}");

    // The end-to-end check: recover; the one-shot fault does not re-fire
    // during the replay ("we suppress the fault activation during
    // recovery").
    let recovered = run_one(fault, trigger_visit, true);
    println!(
        "recovery with the fault suppressed: {}",
        if recovered.all_done {
            "the run COMPLETED"
        } else {
            "the run kept re-crashing (abandoned)"
        }
    );
    assert_eq!(
        recovered.all_done, !violated,
        "the Lose-work criterion must agree with the end-to-end outcome"
    );
    println!("=> the commit-after-activation criterion predicted this exactly (§4.1)\n");
}

fn main() {
    println!("Table 1, one trial at a time: does upholding Save-work doom recovery?\n");
    // Heap corruption lies dormant until the save-time integrity walk: by
    // then CPVS has committed at every echo — recovery is doomed.
    narrate(FaultType::HeapBitFlip);
    // An uninitialized staging variable trips the dispatcher immediately,
    // before the echo's commit: rollback escapes the dangerous path.
    narrate(FaultType::Initialization);
}
