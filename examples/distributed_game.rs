//! A distributed real-time game surviving process failures.
//!
//! The xpilot-style session: one server, three clients, 15 frames per
//! second across four nodes. We kill the server mid-game and a client
//! later, run under CPV-2PC (all processes commit whenever any process
//! renders), and verify every player's frame stream stayed consistent.
//!
//! ```sh
//! cargo run --example distributed_game
//! ```

use failure_transparency::apps::game;
use failure_transparency::prelude::*;

const FRAMES: u64 = 120;

fn build() -> (Simulator, Vec<Box<dyn App>>) {
    let sim = Simulator::new(SimConfig::one_node_each(4, 99));
    (sim, game::session(FRAMES))
}

fn main() {
    // Reference run: no failures.
    let (sim, mut apps) = build();
    let reference = run_plain_on(sim, &mut apps);
    assert!(reference.all_done);
    println!(
        "failure-free game: {} frames rendered per client over {:.1} s",
        reference.visibles.len() / 3,
        reference.runtime as f64 / 1e9
    );

    // Kill the server at 2 s and client 2 at 5 s.
    let (mut sim, apps) = build();
    sim.kill_at(ProcessId(0), 2 * SEC);
    sim.kill_at(ProcessId(2), 5 * SEC);
    let report = DcHarness::new(sim, DcConfig::discount_checking(Protocol::Cpv2pc), apps).run();
    assert!(report.all_done, "the game must finish despite two failures");
    println!(
        "with failures: {} commits, {} recoveries, {} cascaded rollbacks",
        report.total_commits(),
        report.totals.recoveries,
        report.totals.cascade_rollbacks
    );

    // The world content may legally differ after recovery (player inputs
    // are *transient* non-determinism: a different failure-free execution
    // is an acceptable outcome). What must be preserved is each client's
    // frame stream: every frame 0..FRAMES rendered in order, duplicates
    // allowed — the deterministic skeleton of the visible sequence.
    let got: Vec<(u32, u64)> = report
        .visibles
        .iter()
        .map(|&(_, _, t)| (game::slot_of_token(t), game::frame_of_token(t)))
        .collect();
    let expected: Vec<(u32, u64)> = (1..=3u32)
        .flat_map(|slot| (0..FRAMES).map(move |f| (slot, f)))
        .collect();
    let verdict = check_consistent_recovery_multi(&got, &expected);
    assert!(verdict.consistent, "{:?}", verdict.error);
    println!(
        "every client rendered frames 0..{FRAMES} in order \
         ({} duplicated frames re-rendered after recovery)",
        verdict.duplicates
    );

    let fps = report.visibles.len() as f64 / 3.0 / (report.runtime as f64 / 1e9);
    println!("effective frame rate including the two recoveries: {fps:.1} fps");
}
