//! Serial/sharded equivalence: the exploration must be a pure function
//! of the schedule space, never of thread scheduling. `run_indexed`
//! returns index-ordered results and every run is deterministic, so the
//! whole `Exploration` — points, fingerprints, verdicts — is asserted
//! bitwise-identical across thread counts, including a count above the
//! point total.

use ft_check::explore::{canonical_run, enumerate_points, explore_points};
use ft_check::scenario::{CheckConfig, Workload};
use ft_core::protocol::Protocol;

#[test]
fn exploration_is_identical_across_thread_counts() {
    let w = Workload {
        name: "taskfarm",
        seed: 7,
        size: 1,
    };
    let cfg = CheckConfig::new(Protocol::CandLog);
    let canonical = canonical_run(&w, w.size, &cfg);
    let points = enumerate_points(&canonical);
    let serial = explore_points(&w, w.size, &cfg, &canonical, &points, 1);
    for threads in [2, 4, 7, points.len() + 5] {
        let sharded = explore_points(&w, w.size, &cfg, &canonical, &points, threads);
        assert_eq!(
            serial.results, sharded.results,
            "threads={threads} diverged from the serial reference"
        );
        assert_eq!(serial.unique_fingerprints, sharded.unique_fingerprints);
    }
}
