//! The tentpole guarantee: for small nvi and taskfarm workloads, *every*
//! crash point — before each process's first event, after every event
//! index, and inside every commit at all three sub-steps — recovers with
//! all four invariants intact, under all seven Figure 8 protocols.
//!
//! Debug builds keep the workloads tiny; the release `check` binary runs
//! the same sweep at larger sizes for the campaign report.

use ft_check::explore::{canonical_run, enumerate_points, explore_points, Exploration};
use ft_check::scenario::{CheckConfig, Workload};
use ft_core::protocol::Protocol;
use ft_faults::crash::CrashPoint;
use ft_mem::arena::CommitCrashPoint;

/// Exhausts `w` under `protocol` and asserts (a) the state count matches
/// the structural formula — one failure-free pseudo-point, plus per
/// process one start kill, one kill per event index, and three sub-step
/// kills per commit point — and (b) zero invariant violations. Returns
/// whether any mid-commit state was explored.
fn assert_exhaustive_and_clean(w: &Workload, protocol: Protocol) -> bool {
    let cfg = CheckConfig::new(protocol);
    let canonical = canonical_run(w, w.size, &cfg);
    let points = enumerate_points(&canonical);
    let expected: u64 = canonical
        .positions
        .iter()
        .zip(&canonical.commit_points)
        .map(|(&len, &cp)| 1 + len + 3 * cp)
        .sum();
    let ex: Exploration = explore_points(w, w.size, &cfg, &canonical, &points, 1);
    assert_eq!(
        ex.explored() as u64,
        1 + expected,
        "{}@{}: schedule space not exhausted",
        w.name,
        protocol.name()
    );
    let violations = ex.violations();
    assert!(
        violations.is_empty(),
        "{}@{}: {} violations, first: {:?}",
        w.name,
        protocol.name(),
        violations.len(),
        violations.first()
    );
    let has_commits = canonical.commit_points.iter().any(|&n| n > 0);
    let has_mid = ex.results.iter().any(|r| {
        matches!(
            r.point,
            Some(CrashPoint::InCommit {
                point: CommitCrashPoint::MidUndoWalk,
                ..
            })
        )
    });
    assert_eq!(
        has_commits,
        has_mid,
        "{}@{}: commit points and mid-commit states disagree",
        w.name,
        protocol.name()
    );
    has_mid
}

#[test]
fn nvi_survives_every_crash_point_under_all_seven_protocols() {
    let w = Workload {
        name: "nvi",
        seed: 7,
        size: 2,
    };
    let mut any_mid_commit = false;
    for protocol in Protocol::FIGURE8 {
        any_mid_commit |= assert_exhaustive_and_clean(&w, protocol);
    }
    // The log-everything protocols commit zero times on this workload;
    // the committing five must still reach the mid-commit sub-steps.
    assert!(any_mid_commit, "no protocol explored a mid-commit state");
}

#[test]
fn taskfarm_survives_every_crash_point_under_all_seven_protocols() {
    let w = Workload {
        name: "taskfarm",
        seed: 7,
        size: 1,
    };
    let mut any_mid_commit = false;
    for protocol in Protocol::FIGURE8 {
        any_mid_commit |= assert_exhaustive_and_clean(&w, protocol);
    }
    assert!(any_mid_commit, "no protocol explored a mid-commit state");
}

#[test]
fn kills_really_happen_and_recovery_really_runs() {
    // The exhaustiveness above would be vacuous if the injected kills
    // were silently ignored: check that crash points actually perturb
    // the run (distinct fingerprints) yet recovery converges back.
    let w = Workload {
        name: "taskfarm",
        seed: 7,
        size: 1,
    };
    let cfg = CheckConfig::new(Protocol::Cpvs);
    let ex = ft_check::explore(&w, &cfg);
    let ff = ex.results[0].fingerprint;
    let perturbed = ex
        .results
        .iter()
        .skip(1)
        .filter(|r| r.fingerprint != ff)
        .count();
    assert!(perturbed > 0, "no crash point changed the run");
    assert!(
        ex.unique_fingerprints < ex.explored(),
        "no two crash points deduplicated — fingerprint pruning is broken"
    );
    assert!(ex.dedup_ratio() > 1.0);
    // Recovery must actually have produced duplicate visible outputs or
    // at least re-executed work somewhere in the space: at minimum the
    // perturbed runs were judged clean by the oracles.
    assert!(ex.violations().is_empty());
}
