//! Exhaustive crash-schedule checking of the sharded KV workload: on the
//! tiny 2-shard × 2-replica shape, a kill at *every* crash point — before
//! each process's first event, after every event index, and inside every
//! commit sub-step — recovers with all invariants intact under CPVS and
//! the coordinated CBNDV-2PC. The seeded skip-replica-reinstall mutant
//! (`kvstore-skiprepl`) must be found by the same sweep, shrunk, and
//! reproduced from its replay script.

use ft_check::explore::{canonical_run, enumerate_points, explore_points, Exploration};
use ft_check::scenario::{CheckConfig, Workload};
use ft_check::{explore, parse_script, shrink};
use ft_core::protocol::Protocol;

fn kv(size: usize) -> Workload {
    Workload {
        name: "kvstore",
        seed: 7,
        size,
    }
}

/// Exhausts the schedule space and asserts the state count matches the
/// structural formula and that no crash point violates any invariant.
fn assert_exhaustive_and_clean(w: &Workload, protocol: Protocol) {
    let cfg = CheckConfig::new(protocol);
    let canonical = canonical_run(w, w.size, &cfg);
    let points = enumerate_points(&canonical);
    let expected: u64 = canonical
        .positions
        .iter()
        .zip(&canonical.commit_points)
        .map(|(&len, &cp)| 1 + len + 3 * cp)
        .sum();
    let ex: Exploration = explore_points(w, w.size, &cfg, &canonical, &points, 1);
    assert_eq!(
        ex.explored() as u64,
        1 + expected,
        "kvstore@{}: schedule space not exhausted",
        protocol.name()
    );
    let violations = ex.violations();
    assert!(
        violations.is_empty(),
        "kvstore@{}: {} violations, first: {:?}",
        protocol.name(),
        violations.len(),
        violations.first()
    );
}

#[test]
fn kvstore_survives_every_crash_point_under_cpvs() {
    assert_exhaustive_and_clean(&kv(3), Protocol::Cpvs);
}

#[test]
fn kvstore_survives_every_crash_point_under_coordinated_2pc() {
    assert_exhaustive_and_clean(&kv(3), Protocol::Cbndv2pc);
}

#[test]
fn kvstore_exploration_is_identical_across_thread_counts() {
    let w = kv(2);
    let cfg = CheckConfig::new(Protocol::Cpvs);
    let canonical = canonical_run(&w, w.size, &cfg);
    let points = enumerate_points(&canonical);
    let serial = explore_points(&w, w.size, &cfg, &canonical, &points, 1);
    for threads in [2, 4, 7] {
        let sharded = explore_points(&w, w.size, &cfg, &canonical, &points, threads);
        assert_eq!(
            serial.results, sharded.results,
            "threads={threads} diverged from the serial reference"
        );
        assert_eq!(serial.unique_fingerprints, sharded.unique_fingerprints);
    }
}

/// The seeded recovery bug: a replica "forgets" to reinstall its table on
/// recovery. Under a protocol that commits replicas mid-stream (CAND
/// commits after every logged event), some crash schedule recovers a
/// replica with puts already applied, wipes them, and produces a store
/// digest the oracle must flag.
#[test]
fn skip_replica_reinstall_mutant_is_found_and_shrunk() {
    let w = Workload {
        name: "kvstore-skiprepl",
        seed: 7,
        size: 4,
    };
    let cfg = CheckConfig::new(Protocol::Cand);
    let ex = explore(&w, &cfg);
    assert!(
        !ex.violations().is_empty(),
        "seeded skip-reinstall went undetected across {} explored states",
        ex.explored()
    );

    let cx = shrink(&w, &cfg).expect("mutant produces a counterexample");
    assert!(
        cx.workload.size <= w.size,
        "shrink did not reduce the workload: {cx:?}"
    );
    assert_eq!(cx.workload.name, "kvstore-skiprepl");

    // The replay script round-trips to the same schedule…
    let replay = parse_script(&cx.script).expect("script parses");
    assert_eq!(replay.workload, cx.workload);
    assert_eq!(replay.protocol, cx.protocol);
    assert_eq!(replay.point, cx.point);
    // …and re-running the parsed schedule reproduces the violation.
    let rcfg = replay.check_config();
    let canonical = canonical_run(&replay.workload, replay.workload.size, &rcfg);
    let r = ft_check::explore::run_point(
        &replay.workload,
        replay.workload.size,
        &rcfg,
        &canonical,
        replay.point,
    );
    assert_eq!(
        r.violation.as_ref(),
        Some(&cx.violation),
        "replayed script did not reproduce the shrunk violation"
    );
}

/// The unmutated control: the same shape under the same protocol stays
/// clean, so the mutant test is measuring the seeded bug and nothing
/// else.
#[test]
fn unmutated_kvstore_control_stays_clean_under_cand() {
    let ex = explore(&kv(4), &CheckConfig::new(Protocol::Cand));
    assert!(
        ex.violations().is_empty(),
        "control run violated without the mutation: {:?}",
        ex.violations().first()
    );
}
