//! The checker's self-test: deliberately break Save-work and prove
//! `ft-check` (a) finds the violation, (b) shrinks it to a minimal
//! workload and fault set, and (c) emits a replay script that reproduces
//! it when parsed back.
//!
//! The mutation skips the commit *prior to a send*: under the
//! commit-prior-to-visible-and-send protocols (CPVS et al.) a process's
//! non-deterministic events are then still uncommitted when their results
//! escape through a message, so any visible output that causally depends
//! on them violates Save-work.

use ft_check::scenario::{CheckConfig, Workload};
use ft_check::{explore, parse_script, shrink};
use ft_core::oracle::InvariantViolation;
use ft_core::protocol::Protocol;

fn mutated() -> (Workload, CheckConfig) {
    let w = Workload {
        name: "taskfarm",
        seed: 7,
        size: 3,
    };
    let mut cfg = CheckConfig::new(Protocol::Cpvs);
    cfg.skip_presend_commit = true;
    (w, cfg)
}

#[test]
fn broken_presend_commit_is_found() {
    let (w, cfg) = mutated();
    let ex = explore(&w, &cfg);
    assert!(
        !ex.violations().is_empty(),
        "mutation went undetected across {} explored states",
        ex.explored()
    );
}

#[test]
fn the_violation_shrinks_to_a_minimal_replayable_counterexample() {
    let (w, cfg) = mutated();
    let cx = shrink(&w, &cfg).expect("mutation produces a counterexample");
    // Shrunk all the way down: one worker is enough to lose work.
    assert_eq!(
        cx.workload.size,
        w.min_size(),
        "size did not shrink: {cx:?}"
    );
    assert!(
        matches!(cx.violation, InvariantViolation::SaveWork(_)),
        "expected a Save-work violation, got {:?}",
        cx.violation
    );
    // The script round-trips to the same schedule…
    let replay = parse_script(&cx.script).expect("script parses");
    assert_eq!(replay.workload, cx.workload);
    assert_eq!(replay.protocol, cx.protocol);
    assert_eq!(replay.point, cx.point);
    assert!(replay.skip_presend_commit);
    // …and re-running the parsed schedule reproduces the violation.
    let rcfg = replay.check_config();
    let canonical = ft_check::explore::canonical_run(&replay.workload, replay.workload.size, &rcfg);
    let r = ft_check::explore::run_point(
        &replay.workload,
        replay.workload.size,
        &rcfg,
        &canonical,
        replay.point,
    );
    assert_eq!(
        r.violation.as_ref(),
        Some(&cx.violation),
        "replayed script did not reproduce the shrunk violation"
    );
}

#[test]
fn unmutated_control_stays_clean() {
    let (w, mut cfg) = mutated();
    cfg.skip_presend_commit = false;
    let ex = explore(&w, &cfg);
    assert!(
        ex.violations().is_empty(),
        "control run violated without the mutation: {:?}",
        ex.violations().first()
    );
}
