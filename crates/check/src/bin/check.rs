//! `check` — the crash-schedule model-checking campaign.
//!
//! Exhausts every crash point of the nvi and taskfarm workloads under all
//! seven Figure 8 protocols and writes `BENCH_check.json` with
//! states-explored, dedup-ratio, and wall-clock numbers. Exits nonzero if
//! any invariant is violated, after shrinking the first violation and
//! writing its replay script next to the report.
//!
//! ```text
//! check [--out BENCH_check.json] [--threads N] [--smoke]
//! check --replay <script>            # re-run a shrunk counterexample
//! check --export-schedules <dir>     # write crashtest kill schedules
//! ```

use std::process::ExitCode;
use std::time::Instant;

use ft_bench::json::Json;
use ft_bench::runner::default_threads;
use ft_check::explore::{canonical_run, enumerate_points, explore_points, Exploration};
use ft_check::scenario::{CheckConfig, Workload};
use ft_check::{parse_script, shrink};
use ft_core::protocol::Protocol;

struct Args {
    out: String,
    cx_out: String,
    threads: usize,
    smoke: bool,
    replay: Option<String>,
    export_schedules: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_check.json".into(),
        cx_out: "check_counterexample.txt".into(),
        threads: default_threads(),
        smoke: false,
        replay: None,
        export_schedules: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--cx-out" => args.cx_out = it.next().ok_or("--cx-out needs a path")?,
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--smoke" => args.smoke = true,
            "--replay" => args.replay = Some(it.next().ok_or("--replay needs a path")?),
            "--export-schedules" => {
                args.export_schedules =
                    Some(it.next().ok_or("--export-schedules needs a directory")?);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let r = match parse_script(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("check: bad replay script: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = r.check_config();
    let canonical = canonical_run(&r.workload, r.workload.size, &cfg);
    let result =
        ft_check::explore::run_point(&r.workload, r.workload.size, &cfg, &canonical, r.point);
    match result.violation {
        Some(v) => {
            println!(
                "check: reproduced on {}@{}: {v:?}",
                r.workload.name,
                r.protocol.name()
            );
            ExitCode::SUCCESS
        }
        None => {
            println!(
                "check: {}@{} did NOT reproduce a violation",
                r.workload.name,
                r.protocol.name()
            );
            ExitCode::FAILURE
        }
    }
}

/// Writes the standard crashtest kill schedules (one file per child
/// workload family) into `dir`.
fn export_schedules(dir: &str) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("check: cannot create {dir}: {e}");
        return ExitCode::from(2);
    }
    for s in ft_check::standard_schedules() {
        let path = format!("{dir}/schedule_{}.txt", s.workload);
        if let Err(e) = std::fs::write(&path, ft_check::render_schedule(&s)) {
            eprintln!("check: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("check: {} kill trials -> {path}", s.len());
    }
    ExitCode::SUCCESS
}

fn sweep_one(w: &Workload, protocol: Protocol, threads: usize) -> (Exploration, f64, f64) {
    let cfg = CheckConfig {
        protocol,
        threads,
        skip_presend_commit: false,
    };
    let canonical = canonical_run(w, w.size, &cfg);
    let points = enumerate_points(&canonical);
    let t0 = Instant::now();
    let serial = explore_points(w, w.size, &cfg, &canonical, &points, 1);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let sharded = explore_points(w, w.size, &cfg, &canonical, &points, threads);
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        serial.results,
        sharded.results,
        "{}@{}: sharded exploration diverged from the serial reference",
        w.name,
        protocol.name()
    );
    (sharded, serial_ms, parallel_ms)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("check: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.replay {
        return replay(path);
    }
    if let Some(dir) = &args.export_schedules {
        return export_schedules(dir);
    }

    let (nvi_size, farm_size, kv_size) = if args.smoke { (2, 1, 2) } else { (4, 2, 3) };
    let workloads = [
        Workload {
            name: "nvi",
            seed: 7,
            size: nvi_size,
        },
        Workload {
            name: "taskfarm",
            seed: 7,
            size: farm_size,
        },
        Workload {
            name: "kvstore",
            seed: 7,
            size: kv_size,
        },
    ];

    let t0 = Instant::now();
    let mut runs = Vec::new();
    let mut total_states = 0usize;
    let mut total_unique = 0usize;
    let mut first_violation: Option<(Workload, Protocol)> = None;
    for w in &workloads {
        for protocol in Protocol::FIGURE8 {
            let (ex, serial_ms, parallel_ms) = sweep_one(w, protocol, args.threads);
            let violations = ex.violations().len();
            println!(
                "check: {}@{}: {} states, {} unique (dedup {:.2}x), {} violations, {:.0} ms serial / {:.0} ms x{}",
                w.name,
                protocol.name(),
                ex.explored(),
                ex.unique_fingerprints,
                ex.dedup_ratio(),
                violations,
                serial_ms,
                parallel_ms,
                args.threads
            );
            total_states += ex.explored();
            total_unique += ex.unique_fingerprints;
            if violations > 0 && first_violation.is_none() {
                first_violation = Some((*w, protocol));
            }
            runs.push(Json::obj([
                ("workload", Json::from(w.name)),
                ("protocol", Json::from(protocol.name())),
                ("size", Json::from(w.size as u64)),
                ("states_explored", Json::from(ex.explored() as u64)),
                ("unique_states", Json::from(ex.unique_fingerprints as u64)),
                ("dedup_ratio", Json::from(ex.dedup_ratio())),
                ("violations", Json::from(violations as u64)),
                ("serial_ms", Json::from(serial_ms)),
                ("parallel_ms", Json::from(parallel_ms)),
            ]));
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Shrink the first violation (if any) before writing the report, so
    // the counterexample path lands in the JSON.
    let mut counterexample = Json::Null;
    if let Some((w, protocol)) = first_violation {
        let cfg = CheckConfig {
            protocol,
            threads: 1,
            skip_presend_commit: false,
        };
        if let Some(cx) = shrink(&w, &cfg) {
            eprintln!(
                "check: shrunk counterexample ({}@{}, size {}): {:?}",
                w.name,
                protocol.name(),
                cx.workload.size,
                cx.violation
            );
            if let Err(e) = std::fs::write(&args.cx_out, &cx.script) {
                eprintln!("check: cannot write {}: {e}", args.cx_out);
            } else {
                eprintln!("check: replay script written to {}", args.cx_out);
            }
            counterexample = Json::obj([
                ("workload", Json::from(cx.workload.name)),
                ("size", Json::from(cx.workload.size as u64)),
                ("protocol", Json::from(cx.protocol.name())),
                ("violation", Json::from(format!("{:?}", cx.violation))),
                ("script", Json::from(args.cx_out.as_str())),
            ]);
        }
    }

    let report = Json::obj([
        ("report", Json::from("check")),
        ("smoke", Json::from(args.smoke)),
        ("threads", Json::from(args.threads as u64)),
        ("states_explored", Json::from(total_states as u64)),
        ("unique_states", Json::from(total_unique as u64)),
        (
            "dedup_ratio",
            Json::from(if total_unique > 0 {
                total_states as f64 / total_unique as f64
            } else {
                1.0
            }),
        ),
        ("wall_clock_ms", Json::from(wall_ms)),
        ("runs", Json::arr(runs)),
        ("counterexample", counterexample),
    ]);
    if let Err(e) = std::fs::write(&args.out, report.render_pretty()) {
        eprintln!("check: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    println!(
        "check: {} states ({} unique) across {} sweeps in {:.1} s -> {}",
        total_states,
        total_unique,
        workloads.len() * Protocol::FIGURE8.len(),
        wall_ms / 1e3,
        args.out
    );
    if first_violation.is_some() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
