//! Canonical-trace capture, crash-point enumeration, and the exhaustive
//! (serial or sharded) exploration loop.

use ft_bench::fingerprint::report_fingerprint;
use ft_bench::runner::run_indexed;
use ft_core::event::ProcessId;
use ft_core::oracle::{check_recovery, InvariantViolation};
use ft_dc::{CommitKill, DcHarness, DcReport};
use ft_faults::crash::CrashPoint;
use ft_mem::arena::CommitCrashPoint;

use crate::scenario::{CheckConfig, Workload};

/// The failure-free reference run: the trace every crashed-and-recovered
/// execution is judged against, plus the two enumeration domains (event
/// positions and commit points).
#[derive(Debug)]
pub struct Canonical {
    /// The failure-free run's report.
    pub report: DcReport,
    /// Reference visible outputs as `(pid, token)` in emission order.
    pub visibles: Vec<(u32, u64)>,
    /// Per-process canonical trace lengths (kill positions range over
    /// `0..=positions[p]`).
    pub positions: Vec<u64>,
    /// Per-process commit-point counts (mid-commit kills range over
    /// `0..commit_points[p]`, each at three sub-steps).
    pub commit_points: Vec<u64>,
}

/// Flattens a report's timed visible log to `(pid, token)` pairs.
pub fn visible_pairs(report: &DcReport) -> Vec<(u32, u64)> {
    report.visibles.iter().map(|&(_, p, t)| (p.0, t)).collect()
}

/// Runs the workload once with no faults and records the canonical trace.
///
/// Panics if the failure-free run does not complete: a workload that
/// cannot finish without faults is not checkable.
pub fn canonical_run(w: &Workload, size: usize, cfg: &CheckConfig) -> Canonical {
    let (sim, apps) = w.build(size).into_parts();
    let report = DcHarness::new(sim, cfg.dc_config(None), apps).run();
    assert!(
        report.all_done && report.abandoned == 0,
        "canonical {} run did not complete",
        w.name
    );
    let n = report.trace.num_processes();
    let positions = (0..n)
        .map(|p| report.trace.process(ProcessId::from_index(p)).len() as u64)
        .collect();
    let commit_points = report.commit_points_per_proc.clone();
    let visibles = visible_pairs(&report);
    Canonical {
        report,
        visibles,
        positions,
        commit_points,
    }
}

/// Enumerates every crash point of the canonical run: for each process, a
/// kill before its first event, a kill after each of its event indices,
/// and a kill inside each of its commit points at all three commit
/// sub-steps.
pub fn enumerate_points(canonical: &Canonical) -> Vec<CrashPoint> {
    let mut pts = Vec::new();
    for p in 0..canonical.positions.len() {
        let pid = u32::try_from(p).expect("process indices are small and dense");
        pts.push(CrashPoint::AtStart { pid });
        for pos in 1..=canonical.positions[p] {
            pts.push(CrashPoint::AtPosition { pid, pos });
        }
        for nth in 0..canonical.commit_points[p] {
            for point in CommitCrashPoint::ALL {
                pts.push(CrashPoint::InCommit { pid, nth, point });
            }
        }
    }
    pts
}

/// Outcome of exploring one crash point (or, with `point: None`, the
/// failure-free pseudo-point — included so a protocol broken even without
/// faults is caught).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointResult {
    /// The injected kill (`None` for the failure-free pseudo-point).
    pub point: Option<CrashPoint>,
    /// FNV-1a fingerprint of the resulting report (the dedup key).
    pub fingerprint: u64,
    /// The first invariant the run violated, if any.
    pub violation: Option<InvariantViolation>,
    /// Duplicate visible outputs the user observed (allowed by
    /// consistent recovery, counted for reporting).
    pub duplicates: usize,
}

/// Re-executes the workload with `point` injected and judges the result
/// against the canonical run.
pub fn run_point(
    w: &Workload,
    size: usize,
    cfg: &CheckConfig,
    canonical: &Canonical,
    point: Option<CrashPoint>,
) -> PointResult {
    let (sim, apps) = w.build(size).into_parts();
    let kill = match point {
        Some(CrashPoint::InCommit { pid, nth, point }) => Some(CommitKill { pid, nth, point }),
        _ => None,
    };
    let mut harness = DcHarness::new(sim, cfg.dc_config(kill), apps);
    let report = match point {
        Some(CrashPoint::AtStart { pid }) => {
            harness.sim.kill_at(ProcessId(pid), 0);
            harness.run()
        }
        Some(CrashPoint::AtPosition { pid, pos }) => {
            let target = ProcessId(pid);
            let mut fired = false;
            harness.run_with(move |sim| {
                if !fired && sim.trace_position(target) >= pos {
                    fired = true;
                    let now = sim.now();
                    sim.kill_at(target, now);
                }
            })
        }
        _ => harness.run(),
    };
    judge(canonical, point, &report)
}

/// Applies the composed oracles to one recovered run.
fn judge(canonical: &Canonical, point: Option<CrashPoint>, report: &DcReport) -> PointResult {
    let fingerprint = report_fingerprint(report);
    let recovered_visibles = visible_pairs(report);
    // A run that deadlocks without abandoning anyone is still incomplete.
    if report.abandoned == 0 && !report.all_done {
        return PointResult {
            point,
            fingerprint,
            violation: Some(InvariantViolation::Incomplete { abandoned: 0 }),
            duplicates: 0,
        };
    }
    match check_recovery(
        &canonical.report.trace,
        &canonical.visibles,
        &report.trace,
        &recovered_visibles,
        report.abandoned as usize,
    ) {
        Ok(v) => PointResult {
            point,
            fingerprint,
            violation: None,
            duplicates: v.duplicates,
        },
        Err(e) => PointResult {
            point,
            fingerprint,
            violation: Some(e),
            duplicates: 0,
        },
    }
}

/// An exhausted crash-schedule space.
#[derive(Debug)]
pub struct Exploration {
    /// One result per explored state, in enumeration order (index 0 is
    /// the failure-free pseudo-point).
    pub results: Vec<PointResult>,
    /// Number of *distinct* report fingerprints among the results: the
    /// denominator of the dedup ratio. Two crash points that yield
    /// bit-identical reports are one state of the schedule space.
    pub unique_fingerprints: usize,
}

impl Exploration {
    /// States explored (canonical run excluded).
    pub fn explored(&self) -> usize {
        self.results.len()
    }

    /// All violating results, in enumeration order.
    pub fn violations(&self) -> Vec<&PointResult> {
        self.results
            .iter()
            .filter(|r| r.violation.is_some())
            .collect()
    }

    /// Explored-to-unique ratio (1.0 = no pruning opportunity).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_fingerprints == 0 {
            return 1.0;
        }
        self.explored() as f64 / self.unique_fingerprints as f64
    }
}

/// Explores an explicit point list (plus the failure-free pseudo-point at
/// index 0), sharded over `threads` workers. Results are index-ordered,
/// so every `threads` value produces the identical `Exploration`.
pub fn explore_points(
    w: &Workload,
    size: usize,
    cfg: &CheckConfig,
    canonical: &Canonical,
    points: &[CrashPoint],
    threads: usize,
) -> Exploration {
    let n = points.len() + 1;
    let results = run_indexed(n, threads, |i| {
        let point = if i == 0 { None } else { Some(points[i - 1]) };
        run_point(w, size, cfg, canonical, point)
    });
    let mut fps: Vec<u64> = results.iter().map(|r| r.fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    Exploration {
        results,
        unique_fingerprints: fps.len(),
    }
}

/// Captures the canonical run, enumerates every crash point, and exhausts
/// the schedule space with `cfg.threads` workers.
pub fn explore(w: &Workload, cfg: &CheckConfig) -> Exploration {
    let canonical = canonical_run(w, w.size, cfg);
    let points = enumerate_points(&canonical);
    explore_points(w, w.size, cfg, &canonical, &points, cfg.threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::protocol::Protocol;

    fn tiny() -> Workload {
        Workload {
            name: "taskfarm",
            seed: 7,
            size: 1,
        }
    }

    #[test]
    fn canonical_run_fills_both_domains() {
        let w = tiny();
        let cfg = CheckConfig::new(Protocol::Cand);
        let c = canonical_run(&w, w.size, &cfg);
        assert!(c.positions.iter().any(|&n| n > 0), "empty canonical trace");
        assert!(
            c.commit_points.iter().any(|&n| n > 0),
            "CAND ran no commit points"
        );
    }

    #[test]
    fn enumeration_covers_every_position_and_sub_step() {
        let w = tiny();
        let cfg = CheckConfig::new(Protocol::Cand);
        let c = canonical_run(&w, w.size, &cfg);
        let pts = enumerate_points(&c);
        let expected: u64 = c
            .positions
            .iter()
            .zip(&c.commit_points)
            .map(|(&len, &cp)| 1 + len + 3 * cp)
            .sum();
        assert_eq!(pts.len() as u64, expected);
        assert!(pts.iter().any(|p| matches!(
            p,
            CrashPoint::InCommit {
                point: CommitCrashPoint::MidUndoWalk,
                ..
            }
        )));
    }

    #[test]
    fn failure_free_pseudo_point_matches_the_canonical_fingerprint() {
        let w = tiny();
        let cfg = CheckConfig::new(Protocol::Cand);
        let c = canonical_run(&w, w.size, &cfg);
        let r = run_point(&w, w.size, &cfg, &c, None);
        assert_eq!(r.violation, None);
        assert_eq!(r.fingerprint, report_fingerprint(&c.report));
        assert_eq!(r.duplicates, 0);
    }
}
