//! Crash-schedule export for the real-process crash harness.
//!
//! The model checker's enumeration ([`crate::explore::enumerate_points`])
//! kills *simulated* processes: before the first event, after every event
//! index, and inside every commit at each sub-step of the Vista-style
//! atomic commit. The `crashtest` harness applies the same enumeration
//! philosophy to a *real* child process running against the durable
//! log-structured backend (`ft_mem::durable`), where the commit has its
//! own sub-structure: stage, append the redo frame, fsync, finish. This
//! module is the bridge — it enumerates the kill schedule a real-process
//! sweep must cover and renders it as a line-oriented artifact the
//! harness (and CI) consume, round-tripping through [`parse_schedule`]
//! exactly like the counterexample scripts of [`crate::script`].
//!
//! Granularity, mirrored from the simulated enumeration:
//!
//! * **start** — kill before the child's first operation (recovery from
//!   an empty or checkpoint-only store);
//! * **event `k`** — kill after the child's `k`-th trace event (the
//!   analogue of [`ft_faults::crash::CrashPoint::AtPosition`]); the child
//!   workload records [`EVENTS_PER_OP`] events per operation
//!   (nd → commit → visible), so event granularity subsumes every
//!   inter-operation boundary;
//! * **commit `nth` at a window** — kill inside the `nth` durable commit
//!   at one of the four redo-log windows ([`DurableWindow`]): before the
//!   frame is appended (commit never happened), mid-append with a torn
//!   frame prefix (crash-consistency of the framing), after the append
//!   but before the fsync (the page-cache window a power cut erases), and
//!   after the fsync but before the in-memory finish (commit fully
//!   durable, process state behind).

use std::fmt;

/// Events the harness child records per operation (nd → commit →
/// visible), fixing the mapping from operation index to event index.
pub const EVENTS_PER_OP: u64 = 3;

/// Torn-append prefix lengths enumerated per commit, in eighths of the
/// staged frame: a near-empty tear, a mid-frame tear, and a
/// nearly-complete tear. (The byte-exhaustive sweep lives in the
/// `ft-mem` torn-write property test; the schedule samples the frame so
/// the real-process matrix stays bounded.)
pub const TORN_EIGHTHS: [u8; 3] = [1, 4, 7];

/// Where inside one durable commit the kill lands (the redo-log analogue
/// of [`ft_mem::arena::CommitCrashPoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableWindow {
    /// Before the frame reaches the log: the commit never happened and
    /// recovery must roll back to the previous one.
    PreAppend,
    /// Mid-append: only `eighths`/8 of the staged frame reaches the log.
    /// Recovery must truncate the torn tail (§ torn-tail rule).
    TornAppend {
        /// Prefix length written, in eighths of the staged frame.
        eighths: u8,
    },
    /// Frame fully appended but not yet fsynced: durable only if the
    /// medium survives (a power cut erases it; a process kill does not).
    PreFsync,
    /// Fsync completed, in-memory finish not yet run: the commit is
    /// durable and recovery must surface it.
    PostFsync,
}

impl fmt::Display for DurableWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableWindow::PreAppend => write!(f, "pre-append"),
            DurableWindow::TornAppend { eighths } => write!(f, "torn-append {eighths}"),
            DurableWindow::PreFsync => write!(f, "pre-fsync"),
            DurableWindow::PostFsync => write!(f, "post-fsync"),
        }
    }
}

/// One kill the harness injects into the real child process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillSpec {
    /// Kill before the first operation.
    Start,
    /// Kill after the child's `pos`-th trace event (1-based, like
    /// `CrashPoint::AtPosition`).
    AtEvent {
        /// The 1-based event index after which the kill is delivered.
        pos: u64,
    },
    /// Kill inside the `nth` durable commit (0-based) at `window`.
    InCommit {
        /// Zero-based index into the child's sequence of commits.
        nth: u64,
        /// The redo-log window the kill lands in.
        window: DurableWindow,
    },
}

impl fmt::Display for KillSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KillSpec::Start => write!(f, "start"),
            KillSpec::AtEvent { pos } => write!(f, "event {pos}"),
            KillSpec::InCommit { nth, window } => write!(f, "commit {nth} {window}"),
        }
    }
}

impl KillSpec {
    /// Parses the rendering produced by [`fmt::Display`] (the part of a
    /// schedule line after the `kill ` keyword; also the harness's
    /// `--kill` flag value).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut it = s.split_whitespace();
        let spec = match it.next() {
            Some("start") => KillSpec::Start,
            Some("event") => {
                let pos = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad event index in kill spec {s:?}"))?;
                KillSpec::AtEvent { pos }
            }
            Some("commit") => {
                let nth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("bad commit index in kill spec {s:?}"))?;
                let window = match it.next() {
                    Some("pre-append") => DurableWindow::PreAppend,
                    Some("pre-fsync") => DurableWindow::PreFsync,
                    Some("post-fsync") => DurableWindow::PostFsync,
                    Some("torn-append") => {
                        let eighths: u8 = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("bad torn prefix in kill spec {s:?}"))?;
                        if !(1..=7).contains(&eighths) {
                            return Err(format!(
                                "torn prefix must be 1..=7 eighths in kill spec {s:?}"
                            ));
                        }
                        DurableWindow::TornAppend { eighths }
                    }
                    _ => return Err(format!("unknown commit window in kill spec {s:?}")),
                };
                KillSpec::InCommit { nth, window }
            }
            _ => return Err(format!("unknown kill kind in kill spec {s:?}")),
        };
        if it.next().is_some() {
            return Err(format!("trailing tokens in kill spec {s:?}"));
        }
        Ok(spec)
    }
}

/// A full kill schedule for one child workload: the harness runs one
/// kill-restart-verify trial per entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Child workload family (the harness's seed-scripted analogue of the
    /// checker's simulated families).
    pub workload: String,
    /// Workload seed (scripts the nd values, incarnation-independently).
    pub seed: u64,
    /// Operations the child executes (each is nd → commit → visible).
    pub ops: u64,
    /// The kills, in enumeration order.
    pub kills: Vec<KillSpec>,
}

impl CrashSchedule {
    /// Number of trials in the schedule.
    pub fn len(&self) -> usize {
        self.kills.len()
    }

    /// True when the schedule has no kills.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

/// Enumerates the full kill schedule for a child running `ops`
/// operations: the start kill, every event index, and every commit at
/// every durable window (with [`TORN_EIGHTHS`] torn prefixes each) —
/// `1 + EVENTS_PER_OP·ops + (3 + TORN_EIGHTHS)·ops` trials.
pub fn enumerate_schedule(workload: &str, seed: u64, ops: u64) -> CrashSchedule {
    let mut kills = vec![KillSpec::Start];
    for pos in 1..=EVENTS_PER_OP * ops {
        kills.push(KillSpec::AtEvent { pos });
    }
    for nth in 0..ops {
        kills.push(KillSpec::InCommit {
            nth,
            window: DurableWindow::PreAppend,
        });
        for eighths in TORN_EIGHTHS {
            kills.push(KillSpec::InCommit {
                nth,
                window: DurableWindow::TornAppend { eighths },
            });
        }
        kills.push(KillSpec::InCommit {
            nth,
            window: DurableWindow::PreFsync,
        });
        kills.push(KillSpec::InCommit {
            nth,
            window: DurableWindow::PostFsync,
        });
    }
    CrashSchedule {
        workload: workload.to_string(),
        seed,
        ops,
        kills,
    }
}

/// The two standard schedules the crash harness sweeps (nvi- and
/// taskfarm-flavored child workloads); together they exceed 200 trials.
pub fn standard_schedules() -> [CrashSchedule; 2] {
    [
        enumerate_schedule("nvi", 7, 12),
        enumerate_schedule("taskfarm", 7, 16),
    ]
}

/// Renders a schedule as the line-oriented artifact the harness and CI
/// consume. Round-trips through [`parse_schedule`].
pub fn render_schedule(s: &CrashSchedule) -> String {
    let mut out = String::from("# ft-check crash schedule for the real-process durable harness\n");
    out.push_str(&format!("workload {}\n", s.workload));
    out.push_str(&format!("seed {}\n", s.seed));
    out.push_str(&format!("ops {}\n", s.ops));
    for k in &s.kills {
        out.push_str(&format!("kill {k}\n"));
    }
    out
}

/// Parses a schedule produced by [`render_schedule`]. Returns a
/// human-readable error on any malformed line.
pub fn parse_schedule(text: &str) -> Result<CrashSchedule, String> {
    let mut workload: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut ops: Option<u64> = None;
    let mut kills = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}: {line:?}", ln + 1);
        let mut it = line.split_whitespace();
        match it.next() {
            Some("workload") => {
                workload = Some(it.next().ok_or_else(|| err("missing family"))?.to_string());
            }
            Some("seed") => {
                let v = it.next().ok_or_else(|| err("missing seed"))?;
                seed = Some(v.parse().map_err(|_| err("bad seed"))?);
            }
            Some("ops") => {
                let v = it.next().ok_or_else(|| err("missing count"))?;
                ops = Some(v.parse().map_err(|_| err("bad count"))?);
            }
            Some("kill") => {
                let rest = line.strip_prefix("kill").unwrap_or("").trim();
                kills.push(KillSpec::parse(rest).map_err(|m| err(&m))?);
            }
            _ => return Err(err("unknown directive")),
        }
    }
    Ok(CrashSchedule {
        workload: workload.ok_or("missing `workload` directive")?,
        seed: seed.ok_or("missing `seed` directive")?,
        ops: ops.ok_or("missing `ops` directive")?,
        kills,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_count_matches_the_formula() {
        let s = enumerate_schedule("nvi", 7, 12);
        let per_commit = 3 + TORN_EIGHTHS.len() as u64;
        assert_eq!(s.len() as u64, 1 + EVENTS_PER_OP * 12 + per_commit * 12);
        assert_eq!(s.kills[0], KillSpec::Start);
        assert!(s.kills.contains(&KillSpec::AtEvent { pos: 36 }));
        assert!(!s.kills.contains(&KillSpec::AtEvent { pos: 37 }));
    }

    #[test]
    fn standard_schedules_exceed_two_hundred_trials() {
        let total: usize = standard_schedules().iter().map(CrashSchedule::len).sum();
        assert!(total >= 200, "only {total} trials in the standard sweep");
    }

    #[test]
    fn schedules_round_trip() {
        for s in standard_schedules() {
            let text = render_schedule(&s);
            let parsed = parse_schedule(&text).expect("rendered schedule parses");
            assert_eq!(parsed, s);
        }
    }

    #[test]
    fn every_commit_window_appears() {
        let s = enumerate_schedule("taskfarm", 7, 2);
        for want in [
            DurableWindow::PreAppend,
            DurableWindow::TornAppend { eighths: 4 },
            DurableWindow::PreFsync,
            DurableWindow::PostFsync,
        ] {
            assert!(
                s.kills
                    .iter()
                    .any(|k| matches!(k, KillSpec::InCommit { window, .. } if *window == want)),
                "missing window {want}"
            );
        }
    }

    #[test]
    fn malformed_schedules_are_rejected_with_line_numbers() {
        assert!(parse_schedule("workload nvi\nseed 1\n").is_err());
        let e = parse_schedule("workload nvi\nseed 1\nops 1\nkill sideways\n").unwrap_err();
        assert!(e.contains("line 4"), "{e}");
        let e = parse_schedule("workload nvi\nseed 1\nops 1\nkill commit 0 torn-append 9\n")
            .unwrap_err();
        assert!(e.contains("eighths"), "{e}");
    }
}
