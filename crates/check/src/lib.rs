//! # ft-check — exhaustive crash-schedule model checking
//!
//! The paper's experiments sample failures; this crate *enumerates* them.
//! For a small workload it first records the canonical (failure-free)
//! event trace, then re-executes the deterministic simulation once per
//! crash point: a kill before each process's first event, a kill after
//! every event index of every process, and a kill inside every commit at
//! each sub-step of the Vista-style atomic commit (pre-log,
//! mid-undo-walk, post-bump). After each recovery it checks the five
//! composed invariants from [`ft_core::oracle`]: the run completes,
//! Save-work holds on the surviving trace, recovered output is consistent
//! with the reference (duplicates allowed), each process's surviving
//! application events are a legal prefix of its canonical sequence, and
//! no rollback's journaled window swallows a committed event.
//!
//! Exploration is pruned by trace-fingerprint deduplication (two crash
//! points that produce bit-identical reports are one state) and sharded
//! across threads with [`ft_bench::runner::run_indexed`], whose results
//! are index-ordered — the serial and parallel explorations are asserted
//! bitwise-equivalent by test.
//!
//! When a violation is found, [`shrink`] reduces it: a binary search over
//! the workload-size parameter finds the smallest workload that still
//! fails, then a binary search over event positions finds the earliest
//! kill that still fails (an empty fault set, when the failure-free run
//! itself violates, shrinks further still). The result is rendered as a
//! replayable script that the `check` binary re-executes with `--replay`.
//!
//! The same enumeration philosophy is exported for *real* processes:
//! [`export`] renders kill schedules (event-index and durable-commit
//! sub-step granularity) that the `crashtest` harness applies to a child
//! process running against the `ft_mem::durable` log-structured backend,
//! with genuine `kill -9` delivery instead of simulated crash points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod export;
pub mod scenario;
pub mod script;
pub mod shrink;

pub use explore::{explore, explore_points, Canonical, Exploration, PointResult};
pub use export::{
    enumerate_schedule, parse_schedule, render_schedule, standard_schedules, CrashSchedule,
    DurableWindow, KillSpec,
};
pub use scenario::{CheckConfig, Workload};
pub use script::{parse_script, render_script, Replay};
pub use shrink::{shrink, Counterexample};
