//! Replayable counterexample scripts.
//!
//! A shrunk counterexample is rendered as a small line-oriented script —
//! workload, seed, size, protocol, and the kill directive — that the
//! `check` binary re-executes with `--replay`. The format round-trips
//! through [`parse_script`], so the artifact a CI run uploads is directly
//! runnable, not just human-readable.

use ft_core::protocol::Protocol;
use ft_faults::crash::CrashPoint;
use ft_mem::arena::CommitCrashPoint;

use crate::scenario::{CheckConfig, Workload};

/// A parsed replay script: everything needed to re-run one crash
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// The workload recipe.
    pub workload: Workload,
    /// The protocol under test.
    pub protocol: Protocol,
    /// The kill to inject (`None` replays the failure-free run).
    pub point: Option<CrashPoint>,
    /// Whether the mutation switch was armed (self-test scripts only).
    pub skip_presend_commit: bool,
}

impl Replay {
    /// The checker configuration this script replays under (serial).
    pub fn check_config(&self) -> CheckConfig {
        CheckConfig {
            protocol: self.protocol,
            threads: 1,
            skip_presend_commit: self.skip_presend_commit,
        }
    }
}

/// Looks a protocol up by its Figure 8 display name.
pub fn protocol_by_name(name: &str) -> Option<Protocol> {
    Protocol::FIGURE8.into_iter().find(|p| p.name() == name)
}

fn family_by_name(name: &str) -> Option<&'static str> {
    Workload::FAMILIES.into_iter().find(|&f| f == name)
}

fn commit_point_by_name(name: &str) -> Option<CommitCrashPoint> {
    CommitCrashPoint::ALL.into_iter().find(|p| p.name() == name)
}

/// Renders a replay script for one crash schedule. `comment` lines (the
/// violation description) are embedded as `#` comments.
pub fn render_script(
    w: &Workload,
    size: usize,
    protocol: Protocol,
    point: Option<CrashPoint>,
    skip_presend_commit: bool,
    comment: &str,
) -> String {
    let mut s = String::from("# ft-check counterexample replay script\n");
    for line in comment.lines() {
        s.push_str("# ");
        s.push_str(line);
        s.push('\n');
    }
    s.push_str(&format!("workload {}\n", w.name));
    s.push_str(&format!("seed {}\n", w.seed));
    s.push_str(&format!("size {size}\n"));
    s.push_str(&format!("protocol {}\n", protocol.name()));
    if skip_presend_commit {
        s.push_str("mutate skip-presend-commit\n");
    }
    match point {
        None => s.push_str("kill none\n"),
        Some(CrashPoint::AtStart { pid }) => s.push_str(&format!("kill start {pid}\n")),
        Some(CrashPoint::AtPosition { pid, pos }) => {
            s.push_str(&format!("kill position {pid} {pos}\n"));
        }
        Some(CrashPoint::InCommit { pid, nth, point }) => {
            s.push_str(&format!("kill commit {pid} {nth} {}\n", point.name()));
        }
    }
    s.push_str("expect violation\n");
    s
}

/// Parses a replay script produced by [`render_script`]. Returns a
/// human-readable error on any malformed line.
pub fn parse_script(text: &str) -> Result<Replay, String> {
    let mut name: Option<&'static str> = None;
    let mut seed: Option<u64> = None;
    let mut size: Option<usize> = None;
    let mut protocol: Option<Protocol> = None;
    let mut point: Option<CrashPoint> = None;
    let mut kill_seen = false;
    let mut skip_presend_commit = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: &str| format!("line {}: {m}: {line:?}", ln + 1);
        let mut it = line.split_whitespace();
        match it.next() {
            Some("workload") => {
                let f = it.next().ok_or_else(|| err("missing family"))?;
                name = Some(family_by_name(f).ok_or_else(|| err("unknown family"))?);
            }
            Some("seed") => {
                let v = it.next().ok_or_else(|| err("missing seed"))?;
                seed = Some(v.parse().map_err(|_| err("bad seed"))?);
            }
            Some("size") => {
                let v = it.next().ok_or_else(|| err("missing size"))?;
                size = Some(v.parse().map_err(|_| err("bad size"))?);
            }
            Some("protocol") => {
                let v = it.next().ok_or_else(|| err("missing protocol"))?;
                protocol = Some(protocol_by_name(v).ok_or_else(|| err("unknown protocol"))?);
            }
            Some("mutate") => match it.next() {
                Some("skip-presend-commit") => skip_presend_commit = true,
                _ => return Err(err("unknown mutation")),
            },
            Some("kill") => {
                kill_seen = true;
                point = match it.next() {
                    Some("none") => None,
                    Some("start") => {
                        let pid = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err("bad pid"))?;
                        Some(CrashPoint::AtStart { pid })
                    }
                    Some("position") => {
                        let pid = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err("bad pid"))?;
                        let pos = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err("bad position"))?;
                        Some(CrashPoint::AtPosition { pid, pos })
                    }
                    Some("commit") => {
                        let pid = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err("bad pid"))?;
                        let nth = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| err("bad commit index"))?;
                        let sub = it.next().ok_or_else(|| err("missing sub-step"))?;
                        let point =
                            commit_point_by_name(sub).ok_or_else(|| err("unknown sub-step"))?;
                        Some(CrashPoint::InCommit { pid, nth, point })
                    }
                    _ => return Err(err("unknown kill kind")),
                };
            }
            Some("expect") => {}
            _ => return Err(err("unknown directive")),
        }
    }
    let workload = Workload {
        name: name.ok_or("missing `workload` directive")?,
        seed: seed.ok_or("missing `seed` directive")?,
        size: size.ok_or("missing `size` directive")?,
    };
    if !kill_seen {
        return Err("missing `kill` directive".into());
    }
    Ok(Replay {
        workload,
        protocol: protocol.ok_or("missing `protocol` directive")?,
        point,
        skip_presend_commit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_round_trip_every_kill_kind() {
        let w = Workload {
            name: "nvi",
            seed: 7,
            size: 3,
        };
        let points = [
            None,
            Some(CrashPoint::AtStart { pid: 0 }),
            Some(CrashPoint::AtPosition { pid: 1, pos: 9 }),
            Some(CrashPoint::InCommit {
                pid: 0,
                nth: 4,
                point: CommitCrashPoint::PreLog,
            }),
        ];
        for point in points {
            for mutate in [false, true] {
                let s = render_script(&w, 3, Protocol::Cpvs, point, mutate, "why it failed");
                let r = parse_script(&s).expect("rendered script parses");
                assert_eq!(r.workload, w);
                assert_eq!(r.protocol, Protocol::Cpvs);
                assert_eq!(r.point, point);
                assert_eq!(r.skip_presend_commit, mutate);
            }
        }
    }

    #[test]
    fn malformed_scripts_are_rejected_with_line_numbers() {
        assert!(parse_script("workload nvi\n").is_err());
        let e = parse_script("workload nvi\nseed 1\nsize 1\nprotocol CPVS\nkill sideways\n")
            .unwrap_err();
        assert!(e.contains("line 5"), "{e}");
        assert!(
            parse_script("workload postgres\nseed 1\nsize 1\nprotocol CPVS\nkill none\n").is_err()
        );
    }

    #[test]
    fn protocol_lookup_covers_all_seven() {
        for p in Protocol::FIGURE8 {
            assert_eq!(protocol_by_name(p.name()), Some(p));
        }
        assert_eq!(protocol_by_name("COMMIT-NEVER"), None);
    }
}
