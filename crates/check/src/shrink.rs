//! Counterexample shrinking: smallest workload, earliest kill.
//!
//! The exhaustive explorer reports *a* violation; this module reduces it
//! to the most debuggable one. Two binary searches run in sequence:
//!
//! 1. **Workload size.** Search `[min_size, size]` for the smallest size
//!    whose exploration still violates an invariant. Failure is assumed
//!    monotone in size (a protocol bug that loses work on three workers
//!    loses it on one); if the assumption does not hold for a particular
//!    bug, the search result is re-verified and the original size kept as
//!    a fallback, so the returned counterexample always actually fails.
//! 2. **Fault set.** At the minimal size, the failure-free pseudo-point
//!    is tried first — if the run violates with *no* kill at all, the
//!    minimal fault set is empty. Otherwise the first failing kill is
//!    taken, and for position kills a second binary search finds the
//!    earliest event index of that process that still fails.

use ft_core::oracle::InvariantViolation;
use ft_core::protocol::Protocol;
use ft_faults::crash::CrashPoint;

use crate::explore::{canonical_run, enumerate_points, run_point, Canonical, PointResult};
use crate::scenario::{CheckConfig, Workload};
use crate::script::render_script;

/// A shrunk, replayable invariant violation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The workload at its shrunk size.
    pub workload: Workload,
    /// The protocol that violated.
    pub protocol: Protocol,
    /// The minimal fault set: one kill, or `None` when the failure-free
    /// run itself violates.
    pub point: Option<CrashPoint>,
    /// The invariant that failed.
    pub violation: InvariantViolation,
    /// A replay script reproducing the violation (see
    /// [`crate::script::parse_script`]).
    pub script: String,
}

/// Serially explores `w` at `size` and returns the first violating
/// result (failure-free pseudo-point first, then enumeration order).
fn first_violation(
    w: &Workload,
    size: usize,
    cfg: &CheckConfig,
) -> Option<(Canonical, PointResult)> {
    let canonical = canonical_run(w, size, cfg);
    let ff = run_point(w, size, cfg, &canonical, None);
    if ff.violation.is_some() {
        return Some((canonical, ff));
    }
    for pt in enumerate_points(&canonical) {
        let r = run_point(w, size, cfg, &canonical, Some(pt));
        if r.violation.is_some() {
            return Some((canonical, r));
        }
    }
    None
}

/// Shrinks a violating workload to a minimal counterexample, or returns
/// `None` if no crash schedule of `w` violates anything.
pub fn shrink(w: &Workload, cfg: &CheckConfig) -> Option<Counterexample> {
    first_violation(w, w.size, cfg)?;
    // Binary-search the smallest failing size.
    let (mut lo, mut hi) = (w.min_size(), w.size);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if first_violation(w, mid, cfg).is_some() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // Re-verify (monotonicity is an assumption, not a theorem).
    let size = if first_violation(w, lo, cfg).is_some() {
        lo
    } else {
        w.size
    };
    let (canonical, mut found) =
        first_violation(w, size, cfg).expect("verified failing size no longer fails");
    // Minimal fault set: for a position kill, binary-search the earliest
    // event index of the same process that still fails.
    if let Some(CrashPoint::AtPosition { pid, pos }) = found.point {
        let (mut lo, mut hi) = (1u64, pos);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let r = run_point(
                w,
                size,
                cfg,
                &canonical,
                Some(CrashPoint::AtPosition { pid, pos: mid }),
            );
            if r.violation.is_some() {
                found = r;
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
    }
    let violation = found.violation.clone().expect("shrunk result violates");
    let shrunk = Workload { size, ..*w };
    let comment = match found.point {
        Some(p) => format!("{violation:?}\nvia: {p}"),
        None => format!("{violation:?}\nvia: the failure-free run (empty fault set)"),
    };
    let script = render_script(
        &shrunk,
        size,
        cfg.protocol,
        found.point,
        cfg.skip_presend_commit,
        &comment,
    );
    Some(Counterexample {
        workload: shrunk,
        protocol: cfg.protocol,
        point: found.point,
        violation,
        script,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_workload_has_nothing_to_shrink() {
        let w = Workload {
            name: "taskfarm",
            seed: 7,
            size: 1,
        };
        let cfg = CheckConfig::new(Protocol::Cand);
        assert!(shrink(&w, &cfg).is_none());
    }
}
