//! Workload specifications the checker can rebuild at any size.
//!
//! The model checker re-executes a scenario hundreds of times — once per
//! crash point — and the shrinker re-executes whole explorations at
//! smaller sizes. Both need a *recipe*, not a built simulator, so a
//! [`Workload`] names one of the `ft-bench` scenario families together
//! with its seed and a size parameter (keys, workers, iterations, frames)
//! that the shrinker may lower.

use ft_bench::scenarios::{self, Built};
use ft_core::protocol::Protocol;
use ft_dc::{CommitKill, DcConfig};

/// A rebuildable workload: scenario family + seed + size knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Scenario family: `"nvi"`, `"taskfarm"`, `"treadmarks"`,
    /// `"xpilot"`, `"kvstore"`, or `"kvstore-skiprepl"` (the seeded
    /// skip-replica-reinstall mutant).
    pub name: &'static str,
    /// Deterministic seed for all scripted inputs.
    pub seed: u64,
    /// Family-specific size (nvi keys, taskfarm workers, treadmarks
    /// iterations, xpilot frames, kvstore requests). The shrinker lowers
    /// this.
    pub size: usize,
}

impl Workload {
    /// The checkable scenario families (`kvstore-skiprepl` is the seeded
    /// recovery mutant the sweep self-test must flag).
    pub const FAMILIES: [&'static str; 6] = [
        "nvi",
        "taskfarm",
        "treadmarks",
        "xpilot",
        "kvstore",
        "kvstore-skiprepl",
    ];

    /// Builds the scenario at an explicit size (the shrinker's entry
    /// point; use `self.size` for the configured size).
    pub fn build(&self, size: usize) -> Built {
        match self.name {
            "nvi" => scenarios::nvi(self.seed, size),
            "taskfarm" => scenarios::taskfarm(
                self.seed,
                u32::try_from(size).expect("scenario sizes are small"),
            ),
            "treadmarks" => scenarios::treadmarks(self.seed, size as u64),
            "xpilot" => scenarios::xpilot(self.seed, size as u64),
            "kvstore" => scenarios::kvstore_check(self.seed, size as u64),
            "kvstore-skiprepl" => scenarios::kvstore_check_mutant(self.seed, size as u64),
            other => panic!("unknown workload family {other:?}"),
        }
    }

    /// The smallest size at which the family still runs a meaningful
    /// protocol exchange (shrinking never goes below this).
    pub fn min_size(&self) -> usize {
        1
    }
}

/// Checker configuration: which protocol to verify and how to explore.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// The recovery protocol under test.
    pub protocol: Protocol,
    /// Worker threads for the sharded exploration (`1` = serial
    /// reference path).
    pub threads: usize,
    /// **Mutation switch** for the checker's self-test: skip the
    /// commit-prior-to-send, deliberately breaking Save-work. Must stay
    /// `false` outside mutation tests.
    pub skip_presend_commit: bool,
}

impl CheckConfig {
    /// A serial checker for `protocol` with the mutation off.
    pub fn new(protocol: Protocol) -> Self {
        CheckConfig {
            protocol,
            threads: 1,
            skip_presend_commit: false,
        }
    }

    /// The `DcConfig` for one run, with an optional mid-commit kill.
    pub fn dc_config(&self, kill: Option<CommitKill>) -> DcConfig {
        let mut cfg = DcConfig::discount_checking(self.protocol);
        cfg.commit_kill = kill;
        cfg.skip_presend_commit = self.skip_presend_commit;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build_at_size_one() {
        for name in Workload::FAMILIES {
            let w = Workload {
                name,
                seed: 7,
                size: 1,
            };
            let built = w.build(w.size);
            assert!(built.meta.processes >= 1, "{name} built no processes");
        }
    }

    #[test]
    fn dc_config_carries_the_kill() {
        use ft_mem::arena::CommitCrashPoint;
        let cfg = CheckConfig::new(Protocol::Cpvs);
        let kill = CommitKill {
            pid: 1,
            nth: 2,
            point: CommitCrashPoint::MidUndoWalk,
        };
        let dc = cfg.dc_config(Some(kill));
        assert_eq!(dc.commit_kill, Some(kill));
        assert!(!dc.skip_presend_commit);
    }
}
