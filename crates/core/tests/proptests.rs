//! Randomized tests for the theory crate: protocol executions uphold
//! Save-work, equivalence laws, vector-clock laws, and dangerous-path
//! monotonicity. Seeded and deterministic (ft-core sits below the
//! simulator crate, so it carries its own tiny generator).

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use ft_core::clock::VectorClock;
use ft_core::consistency::check_equivalence;
use ft_core::event::{MsgId, NdSource, ProcessId};
use ft_core::graph::{EdgeKind, StateGraph};
use ft_core::protocol::{
    coordinated_participants, CommitPlanner, CommitScope, DepTracker, InterceptedEvent, Protocol,
};
use ft_core::savework::check_save_work;
use ft_core::trace::TraceBuilder;

/// An abstract application operation for the protocol-execution property.
#[derive(Debug, Clone, Copy)]
enum Op {
    Nd(u8, u8),   // (process, source selector)
    Send(u8, u8), // (from, to)
    Recv(u8),     // receiver pops its oldest pending message, if any
    Visible(u8),
    Internal(u8),
}

/// SplitMix64, the same generator the simulator uses.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn random_op(rng: &mut Rng, n_procs: u8) -> Op {
    let p = rng.below(n_procs as u64) as u8;
    match rng.below(5) {
        0 => Op::Nd(p, rng.below(6) as u8),
        1 => {
            // Distinct sender/receiver.
            let t = (p + 1 + rng.below(n_procs as u64 - 1) as u8) % n_procs;
            Op::Send(p, t)
        }
        2 => Op::Recv(p),
        3 => Op::Visible(p),
        _ => Op::Internal(p),
    }
}

fn random_ops(rng: &mut Rng, n_procs: u8, max: u64) -> Vec<Op> {
    let n = rng.below(max) as usize;
    (0..n).map(|_| random_op(rng, n_procs)).collect()
}

fn source_from(sel: u8) -> NdSource {
    match sel % 6 {
        0 => NdSource::UserInput,
        1 => NdSource::TimeOfDay,
        2 => NdSource::Signal,
        3 => NdSource::Select,
        4 => NdSource::SchedDecision,
        _ => NdSource::Random,
    }
}

/// Drives `ops` through `proto` exactly as a checkpointing runtime would,
/// producing a trace, including the prepare/ack message edges of
/// coordinated rounds.
fn run_protocol(proto: Protocol, n_procs: usize, ops: &[Op]) -> ft_core::trace::Trace {
    let mut b = TraceBuilder::new(n_procs);
    let mut planners: Vec<CommitPlanner> =
        (0..n_procs).map(|_| CommitPlanner::new(proto)).collect();
    let mut trackers: Vec<DepTracker> = (0..n_procs).map(|q| DepTracker::new(q as u32)).collect();
    // pending[to] = queue of (from, msg, sender dep snapshot).
    type Pending = (ProcessId, MsgId, std::collections::BTreeSet<u32>);
    let mut pending: Vec<Vec<Pending>> = vec![Vec::new(); n_procs];
    let mut token = 0u64;

    let apply = |b: &mut TraceBuilder,
                 planners: &mut Vec<CommitPlanner>,
                 trackers: &mut Vec<DepTracker>,
                 p: usize,
                 ev: InterceptedEvent| {
        let pid = ProcessId::from_index(p);
        let d = planners[p].decide(ev);
        match d.before {
            CommitScope::None => {}
            CommitScope::Local => {
                b.commit(pid);
                planners[p].note_committed();
                trackers[p].clear();
            }
            CommitScope::Coordinated => {
                // The coordinator sends prepare control messages, every
                // participant commits, and acks flow back before the
                // triggering visible event. Control messages extend
                // happens-before (ordering the remote commits before the
                // visible, and chaining successive rounds) but carry no
                // application state, so they generate no Save-work
                // obligations. Participants: everyone under CPV-2PC; the
                // transitive dependency closure under CBNDV-2PC.
                let participants: Vec<ProcessId> = if proto == Protocol::Cpv2pc {
                    (0..planners.len()).map(ProcessId::from_index).collect()
                } else {
                    coordinated_participants(trackers, p as u32)
                        .into_iter()
                        .map(ProcessId)
                        .collect()
                };
                for &q in &participants {
                    if q != pid {
                        let (_, m) = b.send_control(pid, q);
                        b.recv_control(q, pid, m);
                    }
                }
                b.coordinated_commit(&participants);
                for &q in &participants {
                    planners[q.index()].note_committed();
                    trackers[q.index()].clear();
                    if q != pid {
                        let (_, m) = b.send_control(q, pid);
                        b.recv_control(pid, q, m);
                    }
                }
            }
        }
        d
    };

    for &op in ops {
        match op {
            Op::Nd(p, sel) => {
                let p = p as usize % n_procs;
                let source = source_from(sel);
                let d = apply(
                    &mut b,
                    &mut planners,
                    &mut trackers,
                    p,
                    InterceptedEvent::Nd { source },
                );
                let pid = ProcessId::from_index(p);
                if d.log {
                    b.nd_logged(pid, source);
                } else {
                    b.nd(pid, source);
                    trackers[p].on_nd();
                }
                if d.after {
                    b.commit(pid);
                    planners[p].note_committed();
                    trackers[p].clear();
                }
            }
            Op::Send(f, t) => {
                let f = f as usize % n_procs;
                let t = t as usize % n_procs;
                if f == t {
                    continue;
                }
                let d = apply(
                    &mut b,
                    &mut planners,
                    &mut trackers,
                    f,
                    InterceptedEvent::Send,
                );
                let (_, m) = b.send(ProcessId::from_index(f), ProcessId::from_index(t));
                pending[t].push((ProcessId::from_index(f), m, trackers[f].snapshot()));
                if d.after {
                    b.commit(ProcessId::from_index(f));
                    planners[f].note_committed();
                    trackers[f].clear();
                }
            }
            Op::Recv(p) => {
                let p = p as usize % n_procs;
                if pending[p].is_empty() {
                    continue;
                }
                let (from, m, snap) = pending[p].remove(0);
                let d = apply(
                    &mut b,
                    &mut planners,
                    &mut trackers,
                    p,
                    InterceptedEvent::Nd {
                        source: NdSource::MessageRecv,
                    },
                );
                let pid = ProcessId::from_index(p);
                if d.log {
                    b.recv_logged(pid, from, m);
                    // A logged receive can still carry a dependence on the
                    // sender's uncommitted nd; conservatively taint.
                    planners[p].note_tainted();
                } else {
                    b.recv(pid, from, m);
                }
                trackers[p].on_recv(&snap, d.log);
                if d.after {
                    b.commit(pid);
                    planners[p].note_committed();
                    trackers[p].clear();
                }
            }
            Op::Visible(p) => {
                let p = p as usize % n_procs;
                let d = apply(
                    &mut b,
                    &mut planners,
                    &mut trackers,
                    p,
                    InterceptedEvent::Visible,
                );
                token += 1;
                b.visible(ProcessId::from_index(p), token);
                if d.after {
                    b.commit(ProcessId::from_index(p));
                    planners[p].note_committed();
                    trackers[p].clear();
                }
            }
            Op::Internal(p) => {
                let p = p as usize % n_procs;
                let d = apply(
                    &mut b,
                    &mut planners,
                    &mut trackers,
                    p,
                    InterceptedEvent::Other,
                );
                b.internal(ProcessId::from_index(p));
                if d.after {
                    b.commit(ProcessId::from_index(p));
                    planners[p].note_committed();
                    trackers[p].clear();
                }
            }
        }
    }
    b.finish()
}

/// The central soundness property: every protocol, driven over any
/// operation sequence, produces a trace satisfying the Save-work
/// theorem — and therefore guarantees consistent recovery from stop
/// failures.
#[test]
fn protocols_uphold_save_work() {
    let protos = [
        Protocol::CommitAll,
        Protocol::Cand,
        Protocol::CandLog,
        Protocol::Cpvs,
        Protocol::Cbndvs,
        Protocol::CbndvsLog,
        Protocol::Cpv2pc,
        Protocol::Cbndv2pc,
    ];
    let mut seeds = Rng(0x5AFE_3081);
    for round in 0..256 {
        let mut rng = Rng(seeds.next_u64());
        let proto = protos[round % protos.len()];
        let ops = random_ops(&mut rng, 3, 120);
        let trace = run_protocol(proto, 3, &ops);
        assert!(
            check_save_work(&trace).is_ok(),
            "{} violated Save-work: {:?}",
            proto,
            check_save_work(&trace)
        );
    }
}

/// A commitless nd-before-visible trace breaks Save-work — the checker is
/// not vacuous.
#[test]
fn checker_rejects_commitless_nd_visible() {
    let mut b = TraceBuilder::new(1);
    let p = ProcessId(0);
    b.nd(p, NdSource::Random);
    b.visible(p, 1);
    assert!(check_save_work(&b.finish()).is_err());
}

/// Reference sequences are always equivalent to themselves; duplicating
/// any already-delivered element preserves equivalence; a novel suffix or
/// a truncation does not.
#[test]
fn equivalence_laws() {
    let mut seeds = Rng(0xE9_11);
    for _ in 0..256 {
        let mut rng = Rng(seeds.next_u64());
        let n = 1 + rng.below(39) as usize;
        let seq: Vec<u64> = (0..n).map(|_| rng.below(50)).collect();

        // Reflexive.
        assert!(check_equivalence(&seq, &seq).is_ok());

        // Duplicates of an earlier element, inserted strictly after it,
        // are tolerated.
        let dup_of = rng.below(n as u64) as usize;
        let lo = dup_of + 1;
        let insert_at = lo + rng.below(40) as usize % (n - dup_of);
        let mut rec = seq.clone();
        rec.insert(insert_at.min(rec.len()), seq[dup_of]);
        assert!(check_equivalence(&rec, &seq).is_ok());

        // A token outside the generated domain breaks equivalence.
        let mut rec = seq.clone();
        rec.push(999);
        assert!(check_equivalence(&rec, &seq).is_err());

        // A strict prefix is Incomplete, not a visible violation.
        let cut = rng.below(n as u64) as usize;
        match check_equivalence(&seq[..cut], &seq) {
            Err(ft_core::consistency::ConsistencyError::Incomplete { .. }) => {}
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }
}

/// Vector clock join is commutative, idempotent, and monotone.
#[test]
fn vector_clock_join_laws() {
    let mut seeds = Rng(0x000C_10C4);
    for _ in 0..256 {
        let mut rng = Rng(seeds.next_u64());
        let mk = |rng: &mut Rng| {
            let mut c = VectorClock::new(4);
            for i in 0..4 {
                for _ in 0..rng.below(50) {
                    c.tick(ProcessId::from_index(i));
                }
            }
            c
        };
        let ca = mk(&mut rng);
        let cb = mk(&mut rng);
        let mut ab = ca.clone();
        ab.join(&cb);
        let mut ba = cb.clone();
        ba.join(&ca);
        assert_eq!(&ab, &ba);
        // Idempotent.
        let mut aa = ca.clone();
        aa.join(&ca);
        assert_eq!(&aa, &ca);
        // Monotone: a <= a ⊔ b.
        assert!(ca.le(&ab));
        assert!(cb.le(&ab));
    }
}

fn random_edges(rng: &mut Rng, n_states: u64, max: u64) -> Vec<(usize, usize, u8)> {
    let n = rng.below(max) as usize;
    (0..n)
        .map(|_| {
            (
                rng.below(n_states) as usize,
                rng.below(n_states) as usize,
                rng.below(3) as u8,
            )
        })
        .collect()
}

fn kind_of(k: u8) -> EdgeKind {
    match k {
        0 => EdgeKind::Det,
        1 => EdgeKind::TransientNd,
        _ => EdgeKind::FixedNd,
    }
}

/// A graph without crash states has no dangerous paths, no matter its
/// shape.
#[test]
fn no_crash_no_danger() {
    let mut seeds = Rng(0xDA46E2);
    for _ in 0..256 {
        let mut rng = Rng(seeds.next_u64());
        let edges = random_edges(&mut rng, 8, 24);
        let mut g = StateGraph::new();
        for i in 0..8 {
            g.add_state(format!("s{i}"));
        }
        for (f, t, k) in edges {
            g.add_edge(
                ft_core::graph::StateId(f),
                ft_core::graph::StateId(t),
                kind_of(k),
                "e",
            );
        }
        let dp = g.dangerous_paths();
        assert_eq!(dp.dangerous_count(), 0);
        assert!(dp.colored_edge.iter().all(|&c| !c));
    }
}

/// Differential check of the §2.5 coloring: the paper's literal
/// edge-coloring rules, iterated to fixpoint in a shuffled order, must
/// agree with the production state-based implementation on random
/// graphs.
#[test]
fn coloring_matches_literal_edge_rules() {
    let mut seeds = Rng(0xC0104);
    for _ in 0..256 {
        let mut rng = Rng(seeds.next_u64());
        let edges = random_edges(&mut rng, 7, 20);
        let n_crash = rng.below(3) as usize;
        let crash_targets: Vec<usize> = (0..n_crash).map(|_| rng.below(7) as usize).collect();
        let shuffle_seed = rng.below(1000);

        let mut g = StateGraph::new();
        for i in 0..7 {
            g.add_state(format!("s{i}"));
        }
        let crash = g.add_crash_state("crash");
        let mut kinds = Vec::new();
        let mut ends = Vec::new();
        for &(f, t, k) in &edges {
            let kind = kind_of(k);
            g.add_edge(
                ft_core::graph::StateId(f),
                ft_core::graph::StateId(t),
                kind,
                "e",
            );
            kinds.push(kind);
            ends.push(t);
        }
        for &f in &crash_targets {
            g.add_edge(ft_core::graph::StateId(f), crash, EdgeKind::Det, "boom");
            kinds.push(EdgeKind::Det);
            ends.push(crash.0);
        }
        let n_edges = kinds.len();
        // Outgoing-edge lists per state.
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); 8];
        for (i, &(f, _, _)) in edges.iter().enumerate() {
            out[f].push(i);
        }
        for (j, &f) in crash_targets.iter().enumerate() {
            out[f].push(edges.len() + j);
        }
        // The paper's three rules, iterated in a seed-shuffled edge order.
        let mut colored = vec![false; n_edges];
        let mut order: Vec<usize> = (0..n_edges).collect();
        let mut mix = shuffle_seed;
        for i in (1..order.len()).rev() {
            mix = mix.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (mix >> 33) as usize % (i + 1));
        }
        loop {
            let mut changed = false;
            for &e in &order {
                if colored[e] {
                    continue;
                }
                let end = ends[e];
                // Rule 1: crash events.
                let is_crash = end == crash.0;
                // Rule 2: all events out of the end state are colored
                // (with at least one such event).
                let all = !out[end].is_empty() && out[end].iter().all(|&f| colored[f]);
                // Rule 3: a colored fixed-nd event leaves the end state.
                let fixed = out[end]
                    .iter()
                    .any(|&f| colored[f] && kinds[f] == EdgeKind::FixedNd);
                if is_crash || all || fixed {
                    colored[e] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let dp = g.dangerous_paths();
        assert_eq!(&dp.colored_edge[..], &colored[..]);
    }
}

/// Dangerous-path coloring is monotone in the crash set: adding a crash
/// state (with an edge to it) can only add colored edges, never remove
/// them.
#[test]
fn dangerous_paths_monotone() {
    let mut seeds = Rng(0x30070);
    for _ in 0..256 {
        let mut rng = Rng(seeds.next_u64());
        let edges = {
            let mut e = random_edges(&mut rng, 6, 18);
            if e.is_empty() {
                e.push((0, 1, 0));
            }
            e
        };
        let crash_from = rng.below(6) as usize;
        let build = |with_crash: bool| {
            let mut g = StateGraph::new();
            for i in 0..6 {
                g.add_state(format!("s{i}"));
            }
            for &(f, t, k) in &edges {
                g.add_edge(
                    ft_core::graph::StateId(f),
                    ft_core::graph::StateId(t),
                    kind_of(k),
                    "e",
                );
            }
            if with_crash {
                let c = g.add_crash_state("crash");
                g.add_edge(
                    ft_core::graph::StateId(crash_from),
                    c,
                    EdgeKind::Det,
                    "boom",
                );
            }
            g
        };
        let base = build(false).dangerous_paths();
        let with = build(true).dangerous_paths();
        for (i, &c) in base.colored_edge.iter().enumerate() {
            assert!(!c || with.colored_edge[i]);
        }
        for (i, &d) in base.dangerous_state.iter().enumerate() {
            assert!(!d || with.dangerous_state[i]);
        }
    }
}
