//! Property tests for `VectorClock` at the inline→heap spill boundary.
//!
//! The clock stores up to four components inline and spills to a heap
//! vector at five. These tests drive identical operation sequences
//! through the real clock and a `Vec`-backed reference implementation at
//! 3, 4 (last inline size), 5 (first spilled size), and 6 processes, and
//! assert the two agree on components, ordering (`le`/`concurrent`/
//! `happens_before`-style comparisons), merges, equality after divergent
//! construction orders, and `Debug` output — the last byte-for-byte,
//! because trace fingerprints hash it.

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use ft_core::clock as real;
use ft_core::event::ProcessId;

/// SplitMix64 (self-contained; ft-core is the bottom crate).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The old representation, kept here as the executable specification.
/// Deliberately named `VectorClock` so the *derived* `Debug` prints the
/// exact text the real clock's hand-written `Debug` must reproduce.
mod reference {
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct VectorClock {
        components: Vec<u64>,
    }

    impl VectorClock {
        pub fn new(n: usize) -> Self {
            VectorClock {
                components: vec![0; n],
            }
        }

        pub fn tick(&mut self, p: usize) -> u64 {
            self.components[p] += 1;
            self.components[p]
        }

        pub fn join(&mut self, other: &VectorClock) {
            assert_eq!(self.components.len(), other.components.len());
            for (a, b) in self.components.iter_mut().zip(&other.components) {
                *a = (*a).max(*b);
            }
        }

        pub fn le(&self, other: &VectorClock) -> bool {
            self.components.len() == other.components.len()
                && self
                    .components
                    .iter()
                    .zip(&other.components)
                    .all(|(a, b)| a <= b)
        }

        pub fn concurrent(&self, other: &VectorClock) -> bool {
            !self.le(other) && !other.le(self)
        }

        pub fn components(&self) -> &[u64] {
            &self.components
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Tick clock `c`'s component `p`.
    Tick { c: usize, p: usize },
    /// Join clock `b` into clock `a` (skipped when `a == b`).
    Join { a: usize, b: usize },
    /// Replace clock `a` with a clone of clock `b`.
    Clone { a: usize, b: usize },
}

const POOL: usize = 5;

fn random_op(rng: &mut Rng, n: usize) -> Op {
    match rng.below(4) {
        0 | 1 => Op::Tick {
            c: rng.below(POOL as u64) as usize,
            p: rng.below(n as u64) as usize,
        },
        2 => Op::Join {
            a: rng.below(POOL as u64) as usize,
            b: rng.below(POOL as u64) as usize,
        },
        _ => Op::Clone {
            a: rng.below(POOL as u64) as usize,
            b: rng.below(POOL as u64) as usize,
        },
    }
}

fn check_agreement(n: usize, seed: u64) {
    let mut rng = Rng(seed);
    let mut real_pool: Vec<real::VectorClock> =
        (0..POOL).map(|_| real::VectorClock::new(n)).collect();
    let mut ref_pool: Vec<reference::VectorClock> =
        (0..POOL).map(|_| reference::VectorClock::new(n)).collect();
    for step in 0..300 {
        match random_op(&mut rng, n) {
            Op::Tick { c, p } => {
                let got = real_pool[c].tick(ProcessId::from_index(p));
                let want = ref_pool[c].tick(p);
                assert_eq!(got, want, "n={n} step={step}: tick return value");
            }
            Op::Join { a, b } if a != b => {
                let (src_real, src_ref) = (real_pool[b].clone(), ref_pool[b].clone());
                real_pool[a].join(&src_real);
                ref_pool[a].join(&src_ref);
            }
            Op::Join { .. } => {}
            Op::Clone { a, b } => {
                real_pool[a] = real_pool[b].clone();
                ref_pool[a] = ref_pool[b].clone();
            }
        }
        for i in 0..POOL {
            assert_eq!(
                real_pool[i].components(),
                ref_pool[i].components(),
                "n={n} step={step}: clock {i} components"
            );
            assert_eq!(
                format!("{:?}", real_pool[i]),
                format!("{:?}", ref_pool[i]),
                "n={n} step={step}: Debug output diverged from the Vec derive"
            );
            for j in 0..POOL {
                assert_eq!(
                    real_pool[i].le(&real_pool[j]),
                    ref_pool[i].le(&ref_pool[j]),
                    "n={n} step={step}: le({i},{j})"
                );
                assert_eq!(
                    real_pool[i].concurrent(&real_pool[j]),
                    ref_pool[i].concurrent(&ref_pool[j]),
                    "n={n} step={step}: concurrent({i},{j})"
                );
                // Equality must be structural regardless of history
                // (spill vs inline cannot leak into Eq/Hash).
                assert_eq!(
                    real_pool[i] == real_pool[j],
                    ref_pool[i] == ref_pool[j],
                    "n={n} step={step}: eq({i},{j})"
                );
            }
        }
    }
}

#[test]
fn real_clock_matches_the_vec_reference_across_the_spill_boundary() {
    let mut seeds = Rng(0xC10C_5EED);
    for n in [3, 4, 5, 6] {
        for _ in 0..8 {
            check_agreement(n, seeds.next_u64());
        }
    }
}

#[test]
fn four_and_five_process_clocks_straddle_the_boundary_identically() {
    // The same logical history at n=4 (all inline) and n=5 (spilled,
    // last component unused) must order identically on the shared
    // prefix: the representation change cannot perturb the relation.
    for extra in [0usize, 1] {
        let n = 4 + extra;
        let mut send = real::VectorClock::new(n);
        send.tick(ProcessId(0));
        let mut recv = real::VectorClock::new(n);
        recv.tick(ProcessId(3));
        recv.join(&send);
        assert!(send.le(&recv));
        assert!(!recv.le(&send));
        assert!(real::happens_before(
            ProcessId(0),
            &send,
            ProcessId(3),
            &recv
        ));
        let mut lone = real::VectorClock::new(n);
        lone.tick(ProcessId(1));
        assert!(send.concurrent(&lone));
    }
}

#[test]
fn debug_is_bit_identical_at_both_sides_of_the_boundary() {
    for n in [4usize, 5] {
        let mut c = real::VectorClock::new(n);
        c.tick(ProcessId(0));
        c.tick(ProcessId(n as u32 - 1));
        let mut r = reference::VectorClock::new(n);
        r.tick(0);
        r.tick(n - 1);
        assert_eq!(format!("{c:?}"), format!("{r:?}"));
        assert_eq!(format!("{c:#?}"), format!("{r:#?}"));
    }
}
