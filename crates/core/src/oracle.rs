//! Composed invariant oracles for exhaustive crash-schedule checking.
//!
//! The checkers in [`crate::savework`] and [`crate::consistency`] each
//! verify one theorem in isolation. A model checker that re-executes a
//! computation under every possible crash schedule needs them *composed*:
//! after every recovered run it must hold that
//!
//! 1. **Save-work** was never violated in the recorded history
//!    ([`crate::savework::check_save_work`]);
//! 2. the run **completed** — every process reached its final state, i.e.
//!    no orphan forced the computation to be abandoned;
//! 3. the visible outputs are **consistent** under the paper's
//!    duplicate-tolerant equivalence, per process, against the
//!    failure-free reference
//!    ([`crate::consistency::check_consistent_recovery_multi`]);
//! 4. the surviving history is a **legal prefix-extension** of the
//!    canonical failure-free run: up to its first crash or rollback,
//!    every process performed exactly the non-deterministic work and
//!    emitted exactly the outputs the canonical run records, in order;
//! 5. **commit durability** held — no rollback undid a committed event
//!    ([`check_commit_durability`]): acknowledged-durable state that a
//!    recovery cannot restore means the persistence layer lied (the
//!    signature a real skipped-fsync bug leaves in a trace).
//!
//! Constraint 4 is the model checker's determinism fence. Constraints 1–3
//! compare *outcomes*; constraint 4 compares *histories*, so a bug that
//! corrupts intermediate state but accidentally converges to the right
//! outputs is still caught. Only application-semantic events — unlogged or
//! logged non-determinism and visible outputs — take part: commits,
//! sends/receives, and journal markers are runtime artifacts whose
//! placement legitimately shifts when a recovering peer re-executes (a
//! restarted two-phase-commit coordinator may push a fresh coordinated
//! round, with its control messages, into a process that never crashed).

use crate::consistency::{check_consistent_recovery_multi, ConsistencyError};
use crate::event::{Event, EventKind, NdClass, NdSource, ProcessId};
use crate::savework::{check_save_work, SaveWorkViolation};
use crate::trace::Trace;

/// The application-semantic shape of one event, as compared by the
/// prefix-extension oracle (constraint 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppEvent {
    /// A non-deterministic event (including an unlogged receive's
    /// non-determinism is *not* included — receives are transport).
    Nd {
        /// Where the non-determinism came from.
        source: NdSource,
        /// Transient or fixed.
        class: NdClass,
        /// Whether it was logged (the protocol's logging decisions are
        /// deterministic, so they must replay identically).
        logged: bool,
    },
    /// A user-visible output with its content token.
    Visible {
        /// Token identifying the output content.
        token: u64,
    },
}

/// Projects an event to its application-semantic shape, or `None` for
/// runtime artifacts (commits, messages, crash/rollback markers, …).
pub fn app_event(e: &Event) -> Option<AppEvent> {
    match e.kind {
        EventKind::NonDeterministic { source, class } => Some(AppEvent::Nd {
            source,
            class,
            logged: e.logged,
        }),
        EventKind::Visible { token } => Some(AppEvent::Visible { token }),
        _ => None,
    }
}

/// A violation of the composed recovery invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The recorded history violates the Save-work invariant.
    SaveWork(SaveWorkViolation),
    /// The computation did not run to completion (an orphan or repeated
    /// failure forced abandonment).
    Incomplete {
        /// Processes abandoned by the recovery runtime.
        abandoned: usize,
    },
    /// The visible outputs are not duplicate-equivalent to the
    /// failure-free reference.
    InconsistentOutput(ConsistencyError),
    /// A process's pre-crash history diverged from the canonical run.
    PrefixDivergence {
        /// The diverging process.
        pid: ProcessId,
        /// Index into the process's application-event sequence at which
        /// the divergence occurs.
        at: usize,
        /// The canonical event at that index (`None`: the recovered run
        /// performed *more* application work than the canonical run).
        expected: Option<AppEvent>,
        /// The recovered event at that index.
        got: AppEvent,
    },
    /// A rollback undid a *committed* event: the recovery point landed
    /// before state the process had durably committed, i.e. acknowledged
    /// durability was lost (a skipped fsync, a truncated-away committed
    /// record, …). Legal recoveries restore to the last commit, so the
    /// undone window `[to_seq, rollback)` never contains a commit.
    CommitRolledBack {
        /// The process whose committed state was lost.
        pid: ProcessId,
        /// The commit id of the lost commit.
        commit_id: u64,
        /// The lost commit's sequence number within the process.
        commit_seq: u64,
        /// Sequence number of the offending rollback event.
        rollback_seq: u64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::SaveWork(v) => write!(f, "{v}"),
            InvariantViolation::Incomplete { abandoned } => {
                write!(f, "run abandoned {abandoned} process(es) before completion")
            }
            InvariantViolation::InconsistentOutput(e) => write!(f, "{e}"),
            InvariantViolation::PrefixDivergence {
                pid,
                at,
                expected,
                got,
            } => write!(
                f,
                "{pid} diverged from the canonical run at app-event {at}: expected {expected:?}, got {got:?}"
            ),
            InvariantViolation::CommitRolledBack {
                pid,
                commit_id,
                commit_seq,
                rollback_seq,
            } => write!(
                f,
                "durability lost: {pid}'s rollback at event {rollback_seq} undid commit \
                 {commit_id} (event {commit_seq}) — committed state must survive failures"
            ),
        }
    }
}

/// The filtered application-event sequence of process `p`, cut at its
/// first crash or rollback marker (events after that point belong to
/// re-execution, which legally repeats history).
fn app_prefix(trace: &Trace, p: ProcessId) -> Vec<AppEvent> {
    trace
        .process(p)
        .iter()
        .take_while(|e| !matches!(e.kind, EventKind::Crash | EventKind::Rollback { .. }))
        .filter_map(app_event)
        .collect()
}

/// Checks constraint 4: for every process, the recovered run's
/// application events up to its first crash/rollback must be a prefix of
/// the canonical run's full application-event sequence.
pub fn check_prefix_extension(
    canonical: &Trace,
    recovered: &Trace,
) -> Result<(), InvariantViolation> {
    for pi in 0..recovered.num_processes() {
        let p = ProcessId::from_index(pi);
        let reference: Vec<AppEvent> = if pi < canonical.num_processes() {
            canonical.process(p).iter().filter_map(app_event).collect()
        } else {
            Vec::new()
        };
        let got = app_prefix(recovered, p);
        for (i, g) in got.iter().enumerate() {
            if reference.get(i) != Some(g) {
                return Err(InvariantViolation::PrefixDivergence {
                    pid: p,
                    at: i,
                    expected: reference.get(i).copied(),
                    got: *g,
                });
            }
        }
    }
    Ok(())
}

/// Checks commit durability: no rollback may undo a commit event.
///
/// A rollback event `Rollback { to_seq }` at sequence `r` of process `p`
/// declares that `p`'s events in `[to_seq, r)` were undone. A correct
/// recovery restores exactly to the last commit, so that window never
/// contains a commit; if it does, state the process had *acknowledged as
/// durable* was lost — the signature of a skipped fsync or a committed
/// log record that went missing. The simulator's recoveries uphold this
/// by construction (they restore to `last commit + 1`); the real-process
/// crashtest harness relies on this check to catch durability bugs that
/// deterministic re-execution would otherwise paper over.
pub fn check_commit_durability(trace: &Trace) -> Result<(), InvariantViolation> {
    for pi in 0..trace.num_processes() {
        let p = ProcessId::from_index(pi);
        let events = trace.process(p);
        for (r, e) in events.iter().enumerate() {
            if let EventKind::Rollback { to_seq } = e.kind {
                let start = usize::try_from(to_seq).map_or(r, |s| s.min(r));
                for undone in &events[start..r] {
                    if let EventKind::Commit { commit_id } = undone.kind {
                        return Err(InvariantViolation::CommitRolledBack {
                            pid: p,
                            commit_id,
                            commit_seq: undone.id.seq,
                            rollback_seq: r as u64,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verdict of a full composed-oracle check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Duplicate visible outputs the user observed (allowed, counted).
    pub duplicates: usize,
}

/// Runs all five composed invariants over a recovered run.
///
/// `canonical`/`reference_visibles` describe the failure-free execution;
/// `recovered`/`recovered_visibles` the run under test (visibles are
/// `(pid, token)` pairs in emission order); `abandoned` is the number of
/// processes the recovery runtime gave up on (0 for a completed run).
///
/// Returns the first violation found, checking cheapest-first.
pub fn check_recovery(
    canonical: &Trace,
    reference_visibles: &[(u32, u64)],
    recovered: &Trace,
    recovered_visibles: &[(u32, u64)],
    abandoned: usize,
) -> Result<OracleVerdict, InvariantViolation> {
    if abandoned > 0 {
        return Err(InvariantViolation::Incomplete { abandoned });
    }
    check_save_work(recovered).map_err(InvariantViolation::SaveWork)?;
    check_commit_durability(recovered)?;
    check_prefix_extension(canonical, recovered)?;
    let verdict = check_consistent_recovery_multi(recovered_visibles, reference_visibles);
    if !verdict.consistent {
        return Err(InvariantViolation::InconsistentOutput(
            verdict
                .error
                .expect("inconsistent verdict carries an error"),
        ));
    }
    Ok(OracleVerdict {
        duplicates: verdict.duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    /// A tiny canonical run: P0 draws a random, commits, sends to P1;
    /// P1 receives (logged), emits output 7.
    fn canonical() -> (Trace, Vec<(u32, u64)>) {
        let mut b = TraceBuilder::new(2);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0));
        let (_, m) = b.send(p(0), p(1));
        b.recv_logged(p(1), p(0), m);
        b.visible(p(1), 7);
        (b.finish(), vec![(1, 7)])
    }

    #[test]
    fn identical_run_passes_all_oracles() {
        let (c, vis) = canonical();
        let v = check_recovery(&c, &vis, &c, &vis, 0).unwrap();
        assert_eq!(v.duplicates, 0);
    }

    #[test]
    fn abandoned_run_is_incomplete() {
        let (c, vis) = canonical();
        let err = check_recovery(&c, &vis, &c, &vis, 1).unwrap_err();
        assert_eq!(err, InvariantViolation::Incomplete { abandoned: 1 });
    }

    #[test]
    fn save_work_violation_is_reported() {
        let (c, vis) = canonical();
        // Recovered run lost the commit between the nd and the send.
        let mut b = TraceBuilder::new(2);
        b.nd(p(0), NdSource::Random);
        let (_, m) = b.send(p(0), p(1));
        b.recv(p(1), p(0), m);
        b.visible(p(1), 7);
        let err = check_recovery(&c, &vis, &b.finish(), &vis, 0).unwrap_err();
        assert!(matches!(err, InvariantViolation::SaveWork(_)));
        assert!(err.to_string().contains("Save-work"));
    }

    #[test]
    fn divergent_output_token_is_a_prefix_divergence() {
        let (c, vis) = canonical();
        let mut b = TraceBuilder::new(2);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0));
        let (_, m) = b.send(p(0), p(1));
        b.recv_logged(p(1), p(0), m);
        b.visible(p(1), 8); // Different content.
        let err = check_recovery(&c, &vis, &b.finish(), &[(1, 8)], 0).unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::PrefixDivergence {
                pid: p(1),
                at: 0,
                expected: Some(AppEvent::Visible { token: 7 }),
                got: AppEvent::Visible { token: 8 },
            }
        );
    }

    #[test]
    fn extra_app_work_before_a_crash_diverges() {
        let (c, vis) = canonical();
        let mut b = TraceBuilder::new(2);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0));
        let (_, m) = b.send(p(0), p(1));
        b.nd(p(0), NdSource::TimeOfDay); // Not in the canonical run.
        b.recv_logged(p(1), p(0), m);
        b.visible(p(1), 7);
        let err = check_recovery(&c, &vis, &b.finish(), &vis, 0).unwrap_err();
        assert!(matches!(
            err,
            InvariantViolation::PrefixDivergence {
                at: 1,
                expected: None,
                ..
            }
        ));
    }

    #[test]
    fn re_execution_after_rollback_may_repeat_history() {
        let (c, vis) = canonical();
        // P1 crashes after its output, rolls back, replays, re-emits.
        let mut b = TraceBuilder::new(2);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0));
        let (_, m) = b.send(p(0), p(1));
        b.recv_logged(p(1), p(0), m);
        b.visible(p(1), 7);
        b.crash(p(1));
        b.rollback(p(1), 0);
        let (_, m2) = b.send(p(0), p(1));
        b.recv_logged(p(1), p(0), m2);
        b.visible(p(1), 7);
        let recovered_vis = [(1, 7), (1, 7)];
        let v = check_recovery(&c, &vis, &b.finish(), &recovered_vis, 0).unwrap();
        assert_eq!(v.duplicates, 1);
    }

    #[test]
    fn runtime_artifacts_do_not_diverge_the_prefix() {
        let (c, vis) = canonical();
        // Same app events, but an extra commit and a control exchange —
        // what a recovering 2PC coordinator inserts into a live peer.
        let mut b = TraceBuilder::new(2);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0));
        let (_, m) = b.send(p(0), p(1));
        b.recv_logged(p(1), p(0), m);
        let (_, cm) = b.send_control(p(0), p(1));
        b.recv_control(p(1), p(0), cm);
        b.commit(p(1));
        b.visible(p(1), 7);
        let v = check_recovery(&c, &vis, &b.finish(), &vis, 0).unwrap();
        assert_eq!(v.duplicates, 0);
    }

    #[test]
    fn inconsistent_output_is_reported_after_prefix_passes() {
        let (c, _) = canonical();
        // History fine, but the run never delivered the output (e.g. it
        // was lost by a broken recovery path that still recorded events).
        let err = check_recovery(&c, &[(1, 7)], &c, &[], 0).unwrap_err();
        assert!(matches!(err, InvariantViolation::InconsistentOutput(_)));
    }

    #[test]
    fn app_event_projects_only_semantic_kinds() {
        let (c, _) = canonical();
        let shapes: Vec<AppEvent> = c.iter().filter_map(app_event).collect();
        assert_eq!(
            shapes,
            vec![
                AppEvent::Nd {
                    source: NdSource::Random,
                    class: NdClass::Transient,
                    logged: false
                },
                AppEvent::Visible { token: 7 },
            ]
        );
    }

    #[test]
    fn rollback_past_a_commit_is_a_durability_violation() {
        let (c, vis) = canonical();
        // P0 commits, works, crashes — and the recovery rolls back to
        // BEFORE the commit (to_seq 0): the committed state was lost.
        let mut b = TraceBuilder::new(2);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0)); // seq 1
        let (_, m) = b.send(p(0), p(1));
        b.crash(p(0));
        b.rollback(p(0), 0); // Undoes [0, 4): includes the commit.
        b.recv_logged(p(1), p(0), m);
        b.visible(p(1), 7);
        let err = check_recovery(&c, &vis, &b.finish(), &vis, 0).unwrap_err();
        assert_eq!(
            err,
            InvariantViolation::CommitRolledBack {
                pid: p(0),
                commit_id: 0,
                commit_seq: 1,
                rollback_seq: 4,
            }
        );
        assert!(err.to_string().contains("durability lost"));
    }

    #[test]
    fn rollback_to_the_last_commit_is_durable() {
        // The legal shape: the undone window starts just past the commit.
        let mut b = TraceBuilder::new(1);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0)); // seq 1
        b.visible(p(0), 3); // seq 2 — uncommitted, legally undone
        b.crash(p(0)); // seq 3
        b.rollback(p(0), 2);
        assert!(check_commit_durability(&b.finish()).is_ok());
    }

    #[test]
    fn commit_durability_ignores_other_processes_commits() {
        // P1's rollback window must not be confused by P0's commits.
        let mut b = TraceBuilder::new(2);
        b.commit(p(0));
        b.nd(p(1), NdSource::Random);
        b.crash(p(1));
        b.rollback(p(1), 0);
        assert!(check_commit_durability(&b.finish()).is_ok());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = InvariantViolation::Incomplete { abandoned: 2 };
        assert!(v.to_string().contains("2 process(es)"));
        let d = InvariantViolation::PrefixDivergence {
            pid: p(1),
            at: 4,
            expected: None,
            got: AppEvent::Visible { token: 9 },
        };
        assert!(d.to_string().contains("app-event 4"));
    }
}
