//! The Save-work invariant and theorem checker (§2.3), plus orphan detection.
//!
//! > **Save-work Theorem.** A computation is guaranteed consistent recovery
//! > from stop failures if and only if for each executed non-deterministic
//! > event `e_p^i` that causally precedes a visible or commit event `e`,
//! > process `p` executes a commit event `e_p^j` such that `e_p^j`
//! > happens-before (or atomic with) `e`, and `i < j`.
//!
//! The checker verifies the invariant over a recorded [`Trace`]. It splits
//! the invariant into its two constituent rules:
//!
//! * **Save-work-visible** — commit every non-deterministic event that
//!   causally precedes a *visible* event (upholds the visible constraint of
//!   consistent recovery).
//! * **Save-work-orphan** — commit every non-deterministic event that
//!   causally precedes a *commit* event (prevents orphan processes and so
//!   upholds the no-orphan constraint).
//!
//! The implementation exploits two structural facts for efficiency. First,
//! with per-event vector clocks, event `n` of process `p` causally precedes
//! target `e` iff `n.seq < e.clock[p]` (for `p != e.pid`). Second, if the
//! *earliest* commit after `n` on `p` does not happen-before `e`, no later
//! commit can (program order composes with happens-before), so only one
//! candidate commit per (nd, target) pair needs testing. The whole check is
//! `O(targets × processes × log commits)`.

use crate::event::{EventId, EventKind, ProcessId};
use crate::trace::Trace;

/// Which of the two Save-work sub-invariants a violation falls under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveWorkRule {
    /// An uncommitted non-deterministic event causally precedes a visible
    /// event.
    Visible,
    /// An uncommitted non-deterministic event causally precedes another
    /// process's commit event (orphan hazard).
    Orphan,
}

/// A witness that the Save-work invariant is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveWorkViolation {
    /// The uncommitted non-deterministic event.
    pub nd: EventId,
    /// The visible or commit event it causally precedes.
    pub target: EventId,
    /// Which rule was violated.
    pub rule: SaveWorkRule,
}

impl std::fmt::Display for SaveWorkViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Save-work-{} violated: nd event {} causally precedes {} without an intervening commit",
            match self.rule {
                SaveWorkRule::Visible => "visible",
                SaveWorkRule::Orphan => "orphan",
            },
            self.nd,
            self.target
        )
    }
}

/// Per-process index of non-deterministic and commit event positions.
struct ProcessIndex {
    nd_seqs: Vec<u64>,
    commit_seqs: Vec<u64>,
    /// Commits that belong to a coordinated round: (seq, group).
    grouped_commits: Vec<(u64, u64)>,
    /// Recovery rollbacks: (rollback event seq, restore point). Events in
    /// `[restore, event_seq)` were undone and are causally dead for
    /// anything after `event_seq`.
    rollbacks: Vec<(u64, u64)>,
}

impl ProcessIndex {
    /// Did the event at `n` survive every rollback that intervenes before
    /// `upto` (i.e. is it a live causal predecessor of events at `upto`)?
    fn survives(&self, n: u64, upto: u64) -> bool {
        self.rollbacks
            .iter()
            .filter(|&&(at, _)| n < at && at <= upto)
            .all(|&(_, to)| n < to)
    }

    /// The last non-deterministic event below `limit` that is still a live
    /// predecessor of events at `upto`.
    fn last_live_nd_below(&self, limit: u64, upto: u64) -> Option<u64> {
        let pos = self.nd_seqs.partition_point(|&s| s < limit);
        self.nd_seqs[..pos]
            .iter()
            .rev()
            .copied()
            .find(|&n| self.survives(n, upto))
    }
}

fn build_index(
    trace: &Trace,
) -> (
    Vec<ProcessIndex>,
    std::collections::HashMap<u64, Vec<EventId>>,
) {
    // Determinism: the map is only read back by group-id key (`groups[&g]`),
    // never iterated, so hash order cannot reach any output.
    let mut groups: std::collections::HashMap<u64, Vec<EventId>> = std::collections::HashMap::new();
    let idx = (0..trace.num_processes())
        .map(|p| {
            let pid = ProcessId::from_index(p);
            let mut nd_seqs = Vec::new();
            let mut commit_seqs = Vec::new();
            let mut grouped_commits = Vec::new();
            let mut rollbacks = Vec::new();
            for e in trace.process(pid) {
                if e.is_effectively_nd() {
                    nd_seqs.push(e.id.seq);
                } else if e.kind.is_commit() {
                    commit_seqs.push(e.id.seq);
                    if let Some(g) = e.atomic_group {
                        grouped_commits.push((e.id.seq, g));
                        groups.entry(g).or_default().push(e.id);
                    }
                } else if let EventKind::Rollback { to_seq } = e.kind {
                    rollbacks.push((e.id.seq, to_seq));
                }
            }
            ProcessIndex {
                nd_seqs,
                commit_seqs,
                grouped_commits,
                rollbacks,
            }
        })
        .collect();
    (idx, groups)
}

/// True if a commit seq exists in the open-closed interval `(after, below)`.
fn commit_in(idx: &ProcessIndex, after: u64, below: u64) -> bool {
    let pos = idx.commit_seqs.partition_point(|&s| s <= after);
    pos < idx.commit_seqs.len() && idx.commit_seqs[pos] < below
}

/// Checks the full Save-work invariant over a trace.
///
/// Returns `Ok(())` if the invariant holds, or the first discovered
/// [`SaveWorkViolation`] otherwise. "Atomic with" is honored for commit
/// targets on the non-determinism's own process: a commit always covers the
/// non-deterministic events that precede it on its own process.
///
/// # Examples
///
/// ```
/// use ft_core::trace::TraceBuilder;
/// use ft_core::event::{NdSource, ProcessId};
/// use ft_core::savework::check_save_work;
///
/// let p = ProcessId(0);
/// let mut b = TraceBuilder::new(1);
/// b.nd(p, NdSource::TimeOfDay);
/// b.commit(p);
/// b.visible(p, 42);
/// assert!(check_save_work(&b.finish()).is_ok());
/// ```
pub fn check_save_work(trace: &Trace) -> Result<(), SaveWorkViolation> {
    check_rules(trace, true, true)
}

/// Checks only the Save-work-visible sub-invariant.
pub fn check_save_work_visible(trace: &Trace) -> Result<(), SaveWorkViolation> {
    check_rules(trace, true, false)
}

/// Checks only the Save-work-orphan sub-invariant.
pub fn check_save_work_orphan(trace: &Trace) -> Result<(), SaveWorkViolation> {
    check_rules(trace, false, true)
}

fn check_rules(
    trace: &Trace,
    visible_rule: bool,
    orphan_rule: bool,
) -> Result<(), SaveWorkViolation> {
    let (idx, groups) = build_index(trace);
    for q in 0..trace.num_processes() {
        let qid = ProcessId::from_index(q);
        for e in trace.process(qid) {
            let rule = match e.kind {
                EventKind::Visible { .. } if visible_rule => SaveWorkRule::Visible,
                EventKind::Commit { .. } if orphan_rule => SaveWorkRule::Orphan,
                _ => continue,
            };
            for (p, pidx) in idx.iter().enumerate() {
                let pid = ProcessId::from_index(p);
                // How many of p's events *causally precede* e (application
                // causality generates the Save-work obligation): for p != q
                // the causal-clock component; for p == q, program order.
                let req_known = if p == q {
                    // For a commit target on its own process, "atomic with"
                    // lets the target itself serve as the covering commit.
                    if rule == SaveWorkRule::Orphan {
                        continue;
                    }
                    e.id.seq
                } else {
                    e.causal.get(pid)
                };
                // How many of p's events *happen-before* e (coverage uses
                // plain happens-before, which control messages extend).
                let known = if p == q { e.id.seq } else { e.clock.get(pid) };
                // Only *live* non-determinism generates obligations: an nd
                // event undone by a recovery rollback no longer precedes
                // anything after the rollback (same-process), and its
                // unwound effects are the recovery machinery's concern
                // cross-process (withdrawal, cascades, deterministic
                // regeneration).
                let upto = if p == q { e.id.seq } else { u64::MAX };
                if let Some(nd_seq) = pidx.last_live_nd_below(req_known, upto) {
                    // Plain coverage: a commit on p strictly between the nd
                    // and the target in the happens-before order.
                    let mut covered = commit_in(pidx, nd_seq, known);
                    // Atomic closure: a coordinated commit on p after the
                    // nd covers the target if *any member* of its round
                    // happens-before (or is) the target — the round's
                    // commits are atomic with one another, so the whole
                    // round is ordered by its best-ordered member.
                    if !covered {
                        covered = pidx
                            .grouped_commits
                            .iter()
                            .filter(|&&(s, _)| s > nd_seq)
                            .any(|&(_, g)| {
                                groups[&g].iter().any(|&m| {
                                    m == e.id
                                        || if m.pid == qid {
                                            m.seq < e.id.seq
                                        } else {
                                            m.seq < e.clock.get(m.pid)
                                        }
                                })
                            });
                    }
                    if !covered {
                        return Err(SaveWorkViolation {
                            nd: EventId::new(pid, nd_seq),
                            target: e.id,
                            rule,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// A process rollback point after a failure: all events of `pid` with
/// `seq >= first_lost` were lost (rolled back and possibly not re-executed
/// with the same results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rollback {
    /// The failed process.
    pub pid: ProcessId,
    /// Sequence number of the first lost event.
    pub first_lost: u64,
}

/// Report of an orphan process (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrphanReport {
    /// The orphan: it committed a dependence on a lost event.
    pub orphan: ProcessId,
    /// The orphan's commit event that captured the dependence.
    pub commit: EventId,
    /// The lost non-deterministic event depended upon.
    pub lost_nd: EventId,
}

/// Finds orphan processes: processes that committed a dependence on a
/// non-deterministic event another process lost in a failure.
///
/// A process is an orphan if one of its commits causally depends on a lost
/// non-deterministic event; that commit can never be reconciled with the
/// failed process's re-execution, so the computation may be unable to
/// complete (the no-orphan constraint, §2.3).
pub fn find_orphans(trace: &Trace, rollbacks: &[Rollback]) -> Vec<OrphanReport> {
    let mut reports = Vec::new();
    for rb in rollbacks {
        // Lost effectively-nd events of the failed process.
        let lost_nds: Vec<u64> = trace
            .process(rb.pid)
            .iter()
            .filter(|e| e.id.seq >= rb.first_lost && e.is_effectively_nd())
            .map(|e| e.id.seq)
            .collect();
        if lost_nds.is_empty() {
            continue;
        }
        for q in 0..trace.num_processes() {
            let qid = ProcessId::from_index(q);
            if qid == rb.pid {
                continue;
            }
            for e in trace.process(qid) {
                if !e.kind.is_commit() {
                    continue;
                }
                let known = e.causal.get(rb.pid);
                // Any lost nd with seq < known is a committed dependence.
                if let Some(&nd_seq) = lost_nds.iter().find(|&&s| s < known) {
                    reports.push(OrphanReport {
                        orphan: qid,
                        commit: e.id,
                        lost_nd: EventId::new(rb.pid, nd_seq),
                    });
                    break;
                }
            }
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NdSource;
    use crate::trace::TraceBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn uncommitted_nd_before_visible_violates() {
        // The coin-flip application of Figure 1: nd then visible, no commit.
        let mut b = TraceBuilder::new(1);
        let nd = b.nd(p(0), NdSource::Random);
        let v = b.visible(p(0), 1);
        let err = check_save_work(&b.finish()).unwrap_err();
        assert_eq!(err.nd, nd);
        assert_eq!(err.target, v);
        assert_eq!(err.rule, SaveWorkRule::Visible);
    }

    #[test]
    fn commit_between_nd_and_visible_satisfies() {
        let mut b = TraceBuilder::new(1);
        b.nd(p(0), NdSource::Random);
        b.commit(p(0));
        b.visible(p(0), 1);
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn commit_before_nd_does_not_cover_it() {
        let mut b = TraceBuilder::new(1);
        b.commit(p(0));
        b.nd(p(0), NdSource::Random);
        b.visible(p(0), 1);
        assert!(check_save_work(&b.finish()).is_err());
    }

    #[test]
    fn logged_nd_needs_no_commit() {
        // Logging renders the event deterministic (§2.4).
        let mut b = TraceBuilder::new(1);
        b.nd_logged(p(0), NdSource::UserInput);
        b.visible(p(0), 1);
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn deterministic_events_need_no_commit() {
        let mut b = TraceBuilder::new(1);
        b.internal(p(0));
        b.internal(p(0));
        b.visible(p(0), 1);
        b.visible(p(0), 2);
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn figure_2_orphan_scenario_violates_orphan_rule() {
        // Process B executes a nd event, sends to A, A commits: A has
        // committed a dependence on B's uncommitted nd event.
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        let nd = b.nd(bb, NdSource::TimeOfDay);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m); // Logged so the recv itself is not the culprit.
        let c = b.commit(a);
        let err = check_save_work_orphan(&b.finish()).unwrap_err();
        assert_eq!(err.rule, SaveWorkRule::Orphan);
        assert_eq!(err.nd, nd);
        assert_eq!(err.target, c);
    }

    #[test]
    fn sender_commit_before_send_prevents_orphan_violation() {
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(bb, NdSource::TimeOfDay);
        b.commit(bb);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        b.commit(a);
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn unlogged_recv_is_nd_and_must_be_committed() {
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.commit(bb);
        let (_, m) = b.send(bb, a);
        b.recv(a, bb, m); // Unlogged: transient nd on A.
        b.visible(a, 9);
        let err = check_save_work(&b.finish()).unwrap_err();
        assert_eq!(err.rule, SaveWorkRule::Visible);
        assert_eq!(err.nd.pid, a);
    }

    #[test]
    fn commit_target_on_own_process_is_atomic() {
        // A commit covers its own process's preceding nd events; only the
        // visible rule could complain, and there is no visible here.
        let mut b = TraceBuilder::new(1);
        b.nd(p(0), NdSource::Signal);
        b.commit(p(0));
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn cross_process_nd_covered_by_remote_visible_needs_sender_commit() {
        // B's nd flows to A which does a visible; B never commits.
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        let nd = b.nd(bb, NdSource::Random);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        b.commit(a); // A commits, covering its own events.
        let v = b.visible(a, 5);
        let t = b.finish();
        // The visible rule fires on B's nd (the orphan rule fires first on
        // A's commit when checking the full invariant).
        let err = check_save_work_visible(&t).unwrap_err();
        assert_eq!(err.nd, nd);
        assert_eq!(err.target, v);
    }

    #[test]
    fn visible_rule_checker_ignores_orphan_violations() {
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(bb, NdSource::Random);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        b.commit(a); // Orphan-rule violation only; no visible events at all.
        let t = b.finish();
        assert!(check_save_work_visible(&t).is_ok());
        assert!(check_save_work_orphan(&t).is_err());
    }

    #[test]
    fn orphan_detection_matches_figure_2() {
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        let nd = b.nd(bb, NdSource::TimeOfDay);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        let c = b.commit(a);
        // B fails, losing everything (it never committed).
        let t = b.finish();
        let orphans = find_orphans(
            &t,
            &[Rollback {
                pid: bb,
                first_lost: 0,
            }],
        );
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].orphan, a);
        assert_eq!(orphans[0].commit, c);
        assert_eq!(orphans[0].lost_nd, nd);
    }

    #[test]
    fn no_orphans_when_sender_committed_its_nd() {
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(bb, NdSource::TimeOfDay);
        b.commit(bb);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        b.commit(a);
        let t = b.finish();
        // B fails but only loses events after its commit (seq >= 2).
        let orphans = find_orphans(
            &t,
            &[Rollback {
                pid: bb,
                first_lost: 2,
            }],
        );
        assert!(orphans.is_empty());
    }

    #[test]
    fn coordinated_commit_members_cover_each_other() {
        // P1 has uncommitted nd; a coordinated round commits both P0 and P1.
        // P0's commit would otherwise be an orphan-rule target for P1's nd
        // (it causally depends on it via the message), but the round is
        // atomic.
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(bb, NdSource::Signal);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        b.coordinated_commit(&[a, bb]);
        let t = b.finish();
        assert!(check_save_work(&t).is_ok());
    }

    #[test]
    fn two_pc_round_covers_the_coordinator_visible() {
        // A visible after a coordinated commit is covered through the
        // atomic closure: B's commit is atomic with A's commit, and A's
        // commit happens-before A's visible in program order. (The runtime
        // still waits for acks before releasing output — that is a
        // real-time obligation 2PC discharges, which the atomicity of the
        // round encodes.)
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(bb, NdSource::Signal);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        b.coordinated_commit(&[a, bb]);
        b.visible(a, 1);
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn uncoordinated_remote_commit_does_not_cover_the_visible() {
        // Same scenario but B's commit is *not* part of a coordinated
        // round and does not happen-before A's visible: violation.
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(bb, NdSource::Signal);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        b.commit(a);
        b.commit(bb); // Local commit, concurrent with A's visible.
        b.visible(a, 1);
        assert!(check_save_work_visible(&b.finish()).is_err());
    }

    #[test]
    fn second_round_sees_first_round_through_atomic_closure() {
        // Round 1 commits {A, B}; a later round 2 commits {B} alone. B's
        // round-2 commit depends on A's nd, which A committed in round 1;
        // round 1's B-member happens-before B's round-2 commit, so the
        // closure covers it.
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(a, NdSource::UserInput);
        let (_, m) = b.send(a, bb);
        b.recv_logged(bb, a, m);
        b.coordinated_commit(&[a, bb]);
        b.coordinated_commit(&[bb]);
        b.visible(bb, 2);
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn separate_rounds_do_not_cover_each_other() {
        let a = p(0);
        let bb = p(1);
        let mut b = TraceBuilder::new(2);
        b.nd(bb, NdSource::Signal);
        let (_, m) = b.send(bb, a);
        b.recv_logged(a, bb, m);
        // Two different rounds: A's commit is in round 0, B's in round 1,
        // and B's commit comes causally after A's... A's commit depends on
        // B's nd which is only covered by a commit in a *different* group
        // that does not happen-before A's commit.
        b.coordinated_commit(&[a]);
        b.coordinated_commit(&[bb]);
        let t = b.finish();
        assert!(check_save_work_orphan(&t).is_err());
    }

    #[test]
    fn rolled_back_nd_generates_no_obligation() {
        // nd, crash, rollback to before the nd, then a visible: the nd was
        // undone and does not causally precede the replayed visible.
        let mut b = TraceBuilder::new(1);
        b.commit(p(0)); // seq 0: restore point is after this commit.
        b.nd(p(0), NdSource::TimeOfDay); // seq 1: will be rolled back.
        b.crash(p(0)); // seq 2.
        b.rollback(p(0), 1); // seq 3: undo seqs 1..3.
        b.visible(p(0), 9); // seq 4: replay.
        assert!(check_save_work(&b.finish()).is_ok());
    }

    #[test]
    fn nd_before_the_restore_point_still_obliges() {
        // The nd happened before the restore point: it survived the
        // rollback and the later visible still needs it committed.
        let mut b = TraceBuilder::new(1);
        b.nd(p(0), NdSource::TimeOfDay); // seq 0: survives.
        b.crash(p(0)); // seq 1.
        b.rollback(p(0), 1); // seq 2: undo seq 1 only.
        b.visible(p(0), 9); // seq 3.
        assert!(check_save_work(&b.finish()).is_err());
    }

    #[test]
    fn replayed_nd_after_rollback_obliges_again() {
        let mut b = TraceBuilder::new(1);
        b.commit(p(0));
        b.nd(p(0), NdSource::TimeOfDay);
        b.crash(p(0));
        b.rollback(p(0), 1);
        b.nd(p(0), NdSource::TimeOfDay); // The replayed (fresh) nd.
        b.visible(p(0), 9);
        let err = check_save_work(&b.finish()).unwrap_err();
        assert_eq!(err.nd.seq, 4, "the live replayed nd is the obligation");
    }

    #[test]
    fn pre_crash_visible_still_requires_commit() {
        // nd then visible then crash: the visible happened before the
        // failure, so the obligation stands even though a rollback follows.
        let mut b = TraceBuilder::new(1);
        b.nd(p(0), NdSource::TimeOfDay);
        b.visible(p(0), 1);
        b.crash(p(0));
        b.rollback(p(0), 0);
        let err = check_save_work(&b.finish()).unwrap_err();
        assert_eq!(err.target.seq, 1);
    }

    #[test]
    fn violation_display_is_informative() {
        let v = SaveWorkViolation {
            nd: EventId::new(p(1), 4),
            target: EventId::new(p(0), 9),
            rule: SaveWorkRule::Visible,
        };
        let s = v.to_string();
        assert!(s.contains("Save-work-visible"));
        assert!(s.contains("e_1^4"));
        assert!(s.contains("e_0^9"));
    }

    #[test]
    fn many_nds_one_commit_covers_all_prior() {
        let mut b = TraceBuilder::new(1);
        for _ in 0..10 {
            b.nd(p(0), NdSource::Random);
        }
        b.commit(p(0));
        b.visible(p(0), 3);
        assert!(check_save_work(&b.finish()).is_ok());
    }
}
