//! State-machine graphs, crash events, and the dangerous-paths algorithms
//! (§2.5), plus the Lose-work theorem checker.
//!
//! > **Lose-work Theorem.** Application-generic recovery from propagation
//! > failures is guaranteed to be possible if and only if the application
//! > executes no commit event on a dangerous path.
//!
//! A process is a state machine whose transitions are events. A *crash
//! event* ends in a crash state. The Single-Process Dangerous Paths
//! Algorithm colors events:
//!
//! 1. Color all crash events.
//! 2. Color an event `e` if **all** events out of `e`'s end state are
//!    colored.
//! 3. Color an event `e` if at least one event out of `e`'s end state is
//!    colored **and** is a *fixed* non-deterministic event.
//!
//! Committing anywhere along a colored (dangerous) path can prevent
//! recovery. We compute the coloring as a fixpoint over *states*: an edge is
//! colored iff its target state is dangerous, and a state is dangerous iff
//! it is a crash state, or all of its outgoing edges are colored (and it has
//! at least one), or some colored outgoing edge is fixed non-deterministic.

use std::collections::BTreeMap;

/// Index of a state in a [`StateGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// Index of an edge (event) in a [`StateGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// Kind of an edge in a process state machine, as the dangerous-paths
/// analysis needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Deterministic event.
    Det,
    /// Transient non-deterministic event: may resolve differently after a
    /// failure.
    TransientNd,
    /// Fixed non-deterministic event: cannot be relied on to resolve
    /// differently after a failure.
    FixedNd,
}

/// An edge (event) of the state machine.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Source state.
    pub from: StateId,
    /// End state.
    pub to: StateId,
    /// The event's analysis-relevant kind.
    pub kind: EdgeKind,
    /// Human-readable label for rendering.
    pub label: String,
}

/// A process state machine with crash states.
#[derive(Debug, Clone, Default)]
pub struct StateGraph {
    labels: Vec<String>,
    crash: Vec<bool>,
    edges: Vec<Edge>,
    out: Vec<Vec<EdgeId>>,
}

impl StateGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a (non-crash) state.
    pub fn add_state(&mut self, label: impl Into<String>) -> StateId {
        self.labels.push(label.into());
        self.crash.push(false);
        self.out.push(Vec::new());
        StateId(self.labels.len() - 1)
    }

    /// Adds a crash state — a state from which the process cannot continue
    /// (§2.5). Edges ending here are crash events.
    pub fn add_crash_state(&mut self, label: impl Into<String>) -> StateId {
        let id = self.add_state(label);
        self.crash[id.0] = true;
        id
    }

    /// Adds an edge (event) from `from` to `to` of kind `kind`.
    pub fn add_edge(
        &mut self,
        from: StateId,
        to: StateId,
        kind: EdgeKind,
        label: impl Into<String>,
    ) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge {
            from,
            to,
            kind,
            label: label.into(),
        });
        self.out[from.0].push(id);
        id
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Is `s` a crash state?
    pub fn is_crash_state(&self, s: StateId) -> bool {
        self.crash[s.0]
    }

    /// The edge record for `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0]
    }

    /// Outgoing edges of `s`.
    pub fn out_edges(&self, s: StateId) -> &[EdgeId] {
        &self.out[s.0]
    }

    /// The label of state `s`.
    pub fn state_label(&self, s: StateId) -> &str {
        &self.labels[s.0]
    }

    /// Runs the Single-Process Dangerous Paths Algorithm (§2.5).
    pub fn dangerous_paths(&self) -> DangerousPaths {
        let n_states = self.num_states();
        let n_edges = self.num_edges();
        let mut dangerous_state = vec![false; n_states];
        let mut colored_edge = vec![false; n_edges];
        for (i, &c) in self.crash.iter().enumerate() {
            dangerous_state[i] = c;
        }
        // Monotone fixpoint; colors only grow, so iteration terminates.
        loop {
            let mut changed = false;
            for (i, e) in self.edges.iter().enumerate() {
                if !colored_edge[i] && dangerous_state[e.to.0] {
                    colored_edge[i] = true;
                    changed = true;
                }
            }
            for (s, danger) in dangerous_state.iter_mut().enumerate() {
                if *danger {
                    continue;
                }
                let outs = &self.out[s];
                if outs.is_empty() {
                    continue; // Terminal success state: never dangerous.
                }
                let all_colored = outs.iter().all(|e| colored_edge[e.0]);
                let colored_fixed = outs
                    .iter()
                    .any(|e| colored_edge[e.0] && self.edges[e.0].kind == EdgeKind::FixedNd);
                if all_colored || colored_fixed {
                    *danger = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        DangerousPaths {
            dangerous_state,
            colored_edge,
        }
    }

    /// Renders the graph with its dangerous paths as an ASCII adjacency
    /// listing, for the Figure 7 reproduction.
    pub fn render(&self, dp: &DangerousPaths) -> String {
        let mut s = String::new();
        for st in 0..self.num_states() {
            let marker = if self.crash[st] {
                "CRASH"
            } else if dp.dangerous_state[st] {
                "DANGEROUS"
            } else {
                "safe"
            };
            s.push_str(&format!("state {} [{}] {}\n", st, marker, self.labels[st]));
            for &e in &self.out[st] {
                let edge = &self.edges[e.0];
                let kind = match edge.kind {
                    EdgeKind::Det => "det",
                    EdgeKind::TransientNd => "transient-nd",
                    EdgeKind::FixedNd => "fixed-nd",
                };
                let color = if dp.colored_edge[e.0] {
                    " *colored*"
                } else {
                    ""
                };
                s.push_str(&format!(
                    "  --[{} {}]--> state {}{}\n",
                    kind, edge.label, edge.to.0, color
                ));
            }
        }
        s
    }
}

/// The result of the dangerous-paths coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DangerousPaths {
    /// `dangerous_state[s]` — committing *at* state `s` violates Lose-work.
    pub dangerous_state: Vec<bool>,
    /// `colored_edge[e]` — the event lies on a dangerous path.
    pub colored_edge: Vec<bool>,
}

impl DangerousPaths {
    /// Is committing at state `s` safe under the Lose-work theorem?
    pub fn commit_safe(&self, s: StateId) -> bool {
        !self.dangerous_state[s.0]
    }

    /// Is event `e` on a dangerous path?
    pub fn is_colored(&self, e: EdgeId) -> bool {
        self.colored_edge[e.0]
    }

    /// Number of dangerous states.
    pub fn dangerous_count(&self) -> usize {
        self.dangerous_state.iter().filter(|&&d| d).count()
    }
}

/// A witness that Lose-work was violated along an executed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoseWorkViolation {
    /// The commit's position along the path (number of edges executed
    /// before the commit).
    pub commit_at: usize,
    /// The dangerous state the commit preserved.
    pub state: StateId,
}

/// Checks the Lose-work theorem for one executed path through `graph`.
///
/// `path` is the sequence of edges the process executed from `start`;
/// `commits_at` holds the path positions at which the process committed
/// (position `k` = after executing `k` edges; `0` = the initial state, which
/// is always committed). Returns the first commit that landed on a dangerous
/// state, if any.
///
/// # Panics
///
/// Panics if the path is not connected (an edge's `from` is not the current
/// state) or a commit position exceeds the path length.
pub fn check_lose_work(
    graph: &StateGraph,
    start: StateId,
    path: &[EdgeId],
    commits_at: &[usize],
) -> Result<(), LoseWorkViolation> {
    let dp = graph.dangerous_paths();
    // Reconstruct the state at each path position.
    let mut states = Vec::with_capacity(path.len() + 1);
    states.push(start);
    let mut cur = start;
    for &e in path {
        let edge = graph.edge(e);
        assert_eq!(edge.from, cur, "path is not connected");
        cur = edge.to;
        states.push(cur);
    }
    // The initial state is always committed (§4: Bohrbugs), so position 0 is
    // checked implicitly as well.
    let mut positions: Vec<usize> = commits_at.to_vec();
    if !positions.contains(&0) {
        positions.insert(0, 0);
    }
    for &k in &positions {
        assert!(k < states.len(), "commit position beyond path");
        let s = states[k];
        if !dp.commit_safe(s) {
            return Err(LoseWorkViolation {
                commit_at: k,
                state: s,
            });
        }
    }
    Ok(())
}

/// Metadata about an executed receive event, for the multi-process
/// dangerous-paths algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvMeta {
    /// Index of the sending process in the run set.
    pub sender: usize,
    /// Path position of the matching send on the sender (number of edges the
    /// sender had executed *before* the send edge).
    pub send_step: usize,
}

/// One process's executed history, for the multi-process algorithm.
#[derive(Debug, Clone)]
pub struct ProcessRun {
    /// The process's state machine.
    pub graph: StateGraph,
    /// Start state.
    pub start: StateId,
    /// Executed path (edges, in order).
    pub path: Vec<EdgeId>,
    /// Path positions of this process's commits (see [`check_lose_work`]).
    pub commits_at: Vec<usize>,
    /// For each executed receive: path position → metadata. A `BTreeMap`
    /// because [`multi_process_dangerous`] iterates it: the per-entry edge
    /// reclassification is order-independent, but keeping the walk ordered
    /// costs nothing and keeps the determinism lint's audit trivial.
    pub recv_meta: BTreeMap<usize, RecvMeta>,
}

impl ProcessRun {
    /// The last committed path position (0 if never committed: the initial
    /// state is always committed).
    pub fn last_commit(&self) -> usize {
        self.commits_at.iter().copied().max().unwrap_or(0)
    }

    /// Did this process execute a transient non-deterministic event in path
    /// positions `[from, to)`?
    pub fn transient_nd_between(&self, from: usize, to: usize) -> bool {
        self.path[from..to.min(self.path.len())]
            .iter()
            .any(|&e| self.graph.edge(e).kind == EdgeKind::TransientNd)
    }
}

/// Runs the Multi-Process Dangerous Paths Algorithm (§2.5) for process
/// `target`, returning the coloring of a *reclassified* copy of its graph.
///
/// The algorithm takes a snapshot of where every process last committed and
/// reclassifies each receive event `target` has executed:
///
/// * **transient** — the sender's last commit occurred before the send *and*
///   the sender executed a transient non-deterministic event between its
///   last commit and the send (the message may be regenerated differently);
/// * **fixed** — otherwise (the sender will deterministically regenerate the
///   same message).
///
/// Receives that `target` has not executed keep their static classification.
pub fn multi_process_dangerous(runs: &[ProcessRun], target: usize) -> (StateGraph, DangerousPaths) {
    let t = &runs[target];
    let mut graph = t.graph.clone();
    for (&pos, meta) in &t.recv_meta {
        let edge_id = t.path[pos];
        let sender = &runs[meta.sender];
        let lc = sender.last_commit();
        let transient = lc <= meta.send_step && sender.transient_nd_between(lc, meta.send_step);
        graph.edges[edge_id.0].kind = if transient {
            EdgeKind::TransientNd
        } else {
            EdgeKind::FixedNd
        };
    }
    let dp = graph.dangerous_paths();
    (graph, dp)
}

/// Convenience: may process `target` commit *now* (at the end of its
/// executed path) without violating Lose-work, per the multi-process
/// analysis?
pub fn can_commit_now(runs: &[ProcessRun], target: usize) -> bool {
    let t = &runs[target];
    let (graph, dp) = multi_process_dangerous(runs, target);
    let mut cur = t.start;
    for &e in &t.path {
        cur = graph.edge(e).to;
    }
    dp.commit_safe(cur)
}

/// Builds the Figure 6 example machines (A, B, C) for tests and demos.
///
/// Returns `(graph, start, probe_state)` where `probe_state` is the state at
/// the point marked in the figure (where the commit is contemplated).
pub fn figure6(case: char) -> (StateGraph, StateId, StateId) {
    let mut g = StateGraph::new();
    match case {
        // A: a straight deterministic run ending in a crash.
        'A' => {
            let s0 = g.add_state("s0");
            let s1 = g.add_state("s1 (probe)");
            let s2 = g.add_state("s2");
            let crash = g.add_crash_state("crash");
            g.add_edge(s0, s1, EdgeKind::Det, "d1");
            g.add_edge(s1, s2, EdgeKind::Det, "d2");
            g.add_edge(s2, crash, EdgeKind::Det, "crash event");
            (g, s0, s1)
        }
        // B: a transient nd event after the probe point, one branch of
        // which avoids the crash.
        'B' => {
            let s0 = g.add_state("s0");
            let s1 = g.add_state("s1 (probe)");
            let good = g.add_state("good");
            let done = g.add_state("done");
            let bad = g.add_state("bad");
            let crash = g.add_crash_state("crash");
            g.add_edge(s0, s1, EdgeKind::Det, "d1");
            g.add_edge(s1, good, EdgeKind::TransientNd, "nd-good");
            g.add_edge(s1, bad, EdgeKind::TransientNd, "nd-bad");
            g.add_edge(good, done, EdgeKind::Det, "finish");
            g.add_edge(bad, crash, EdgeKind::Det, "crash event");
            (g, s0, s1)
        }
        // C: a fixed nd event after the probe point with a crashing branch.
        'C' => {
            let s0 = g.add_state("s0");
            let s1 = g.add_state("s1 (probe)");
            let good = g.add_state("good");
            let done = g.add_state("done");
            let bad = g.add_state("bad");
            let crash = g.add_crash_state("crash");
            g.add_edge(s0, s1, EdgeKind::Det, "d1");
            g.add_edge(s1, good, EdgeKind::FixedNd, "fixed-good");
            g.add_edge(s1, bad, EdgeKind::FixedNd, "fixed-bad");
            g.add_edge(good, done, EdgeKind::Det, "finish");
            g.add_edge(bad, crash, EdgeKind::Det, "crash event");
            (g, s0, s1)
        }
        _ => panic!("figure6 case must be 'A', 'B', or 'C'"),
    }
}

/// Builds a graph in the spirit of Figure 7: a lattice with a fixed
/// non-deterministic fork and two crash events, exercising all three
/// coloring rules.
pub fn figure7() -> (StateGraph, StateId) {
    let mut g = StateGraph::new();
    let s0 = g.add_state("s0");
    let s1 = g.add_state("s1");
    let s2 = g.add_state("s2");
    let s3 = g.add_state("s3");
    let s4 = g.add_state("s4");
    let s5 = g.add_state("s5");
    let done = g.add_state("done");
    let crash1 = g.add_crash_state("crash1");
    let crash2 = g.add_crash_state("crash2");
    // s0: transient fork — one side is doomed, the other survivable.
    g.add_edge(s0, s1, EdgeKind::TransientNd, "t1");
    g.add_edge(s0, s2, EdgeKind::TransientNd, "t2");
    // s1 deterministically reaches a fixed-nd fork with a crashing branch.
    g.add_edge(s1, s3, EdgeKind::Det, "d1");
    g.add_edge(s3, s4, EdgeKind::FixedNd, "f-ok");
    g.add_edge(s3, crash1, EdgeKind::FixedNd, "f-crash");
    g.add_edge(s4, done, EdgeKind::Det, "d2");
    // s2 deterministically crashes.
    g.add_edge(s2, s5, EdgeKind::Det, "d3");
    g.add_edge(s5, crash2, EdgeKind::Det, "d4");
    (g, s0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6a_commit_on_deterministic_doom_is_dangerous() {
        let (g, start, probe) = figure6('A');
        let dp = g.dangerous_paths();
        // Every state on the deterministic path to the crash is dangerous.
        assert!(!dp.commit_safe(start));
        assert!(!dp.commit_safe(probe));
    }

    #[test]
    fn figure6b_commit_before_transient_nd_is_safe() {
        let (g, start, probe) = figure6('B');
        let dp = g.dangerous_paths();
        // "A process can safely commit before a transient nd event as long
        // as at least one of the possible results does not lead to a crash."
        assert!(dp.commit_safe(probe));
        assert!(dp.commit_safe(start));
    }

    #[test]
    fn figure6c_commit_before_fixed_nd_with_crash_branch_is_dangerous() {
        let (g, start, probe) = figure6('C');
        let dp = g.dangerous_paths();
        // "We cannot commit before any fixed nd event that might lead to a
        // crash."
        assert!(!dp.commit_safe(probe));
        assert!(!dp.commit_safe(start));
    }

    #[test]
    fn crash_events_are_colored() {
        let (g, _, _) = figure6('A');
        let dp = g.dangerous_paths();
        // All three edges of case A are colored (rule 1 then rule 2 twice).
        assert!(dp.colored_edge.iter().all(|&c| c));
    }

    #[test]
    fn terminal_success_states_are_never_dangerous() {
        let mut g = StateGraph::new();
        let s0 = g.add_state("s0");
        let done = g.add_state("done");
        g.add_edge(s0, done, EdgeKind::Det, "d");
        let dp = g.dangerous_paths();
        assert!(dp.commit_safe(s0));
        assert!(dp.commit_safe(done));
        assert_eq!(dp.dangerous_count(), 0);
    }

    #[test]
    fn figure7_coloring_shape() {
        let (g, s0) = figure7();
        let dp = g.dangerous_paths();
        // The fixed-nd fork state (s3) is dangerous (rule 3), as is
        // everything after the doomed transient branch (s2, s5). The root
        // survives because one transient branch... also leads to the fixed
        // fork, which is dangerous, so BOTH branches are colored and s0 is
        // dangerous by rule 2? No: s1 leads deterministically to s3 which is
        // dangerous, so the s0->s1 edge is colored only if s1 is dangerous.
        // s1's only outgoing edge goes to dangerous s3, so s1 is dangerous
        // (all outgoing colored); both of s0's transient branches are
        // colored, so s0 is dangerous too.
        assert!(!dp.commit_safe(StateId(3))); // Fixed-nd fork.
        assert!(!dp.commit_safe(StateId(2))); // Doomed branch head.
        assert!(!dp.commit_safe(StateId(5)));
        assert!(!dp.commit_safe(s0));
        // The post-fork good states are safe.
        assert!(dp.commit_safe(StateId(4)));
        assert!(dp.commit_safe(StateId(6)));
    }

    #[test]
    fn lose_work_checker_flags_commit_on_dangerous_path() {
        let (g, start, _) = figure6('A');
        // Path: d1, d2, crash. Commit after 1 edge (at the probe state).
        let path: Vec<EdgeId> = vec![EdgeId(0), EdgeId(1), EdgeId(2)];
        let err = check_lose_work(&g, start, &path, &[1]).unwrap_err();
        assert_eq!(err.commit_at, 0); // Initial state already violates in case A.
    }

    #[test]
    fn lose_work_checker_accepts_safe_commit() {
        let (g, start, _) = figure6('B');
        // Path: d1 then nd-good then finish; commit after d1 (safe probe).
        let path = vec![EdgeId(0), EdgeId(1), EdgeId(3)];
        assert!(check_lose_work(&g, start, &path, &[1]).is_ok());
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn lose_work_checker_rejects_disconnected_path() {
        let (g, start, _) = figure6('B');
        check_lose_work(&g, start, &[EdgeId(3)], &[]).unwrap();
    }

    #[test]
    fn multi_process_recv_is_fixed_when_sender_deterministic() {
        // Sender committed, then deterministically sent: receiver must treat
        // the receive as fixed.
        let mut sender_g = StateGraph::new();
        let a0 = sender_g.add_state("a0");
        let a1 = sender_g.add_state("a1");
        sender_g.add_edge(a0, a1, EdgeKind::Det, "send");
        let sender = ProcessRun {
            graph: sender_g,
            start: a0,
            path: vec![EdgeId(0)],
            commits_at: vec![0],
            recv_meta: BTreeMap::new(),
        };

        // Receiver: recv forks to done or crash (like figure 6C but with a
        // recv edge).
        let mut recv_g = StateGraph::new();
        let b0 = recv_g.add_state("b0");
        let good = recv_g.add_state("good");
        let bad = recv_g.add_state("bad");
        let crash = recv_g.add_crash_state("crash");
        let done = recv_g.add_state("done");
        recv_g.add_edge(b0, good, EdgeKind::TransientNd, "recv-good");
        recv_g.add_edge(b0, bad, EdgeKind::TransientNd, "recv-bad");
        recv_g.add_edge(good, done, EdgeKind::Det, "finish");
        recv_g.add_edge(bad, crash, EdgeKind::Det, "boom");
        let mut recv_meta = BTreeMap::new();
        recv_meta.insert(
            0usize,
            RecvMeta {
                sender: 0,
                send_step: 0,
            },
        );
        let receiver = ProcessRun {
            graph: recv_g,
            start: b0,
            path: vec![EdgeId(0)],
            commits_at: vec![],
            recv_meta,
        };

        let runs = vec![sender, receiver];
        let (g2, dp) = multi_process_dangerous(&runs, 1);
        // The executed recv (edge 0) was reclassified fixed.
        assert_eq!(g2.edge(EdgeId(0)).kind, EdgeKind::FixedNd);
        // b0 is dangerous only if a *colored* fixed edge leaves it; the
        // executed recv went to `good` (safe), but its sibling edge 1 is
        // still transient and colored — rule 3 needs a colored FIXED edge.
        // Edge 0 (fixed) goes to safe `good`, so not colored: b0 stays safe.
        assert!(dp.commit_safe(b0));
    }

    #[test]
    fn multi_process_recv_is_transient_when_sender_has_uncommitted_nd() {
        // Sender: transient nd then send, no commit after the nd.
        let mut sender_g = StateGraph::new();
        let a0 = sender_g.add_state("a0");
        let a1 = sender_g.add_state("a1");
        let a2 = sender_g.add_state("a2");
        sender_g.add_edge(a0, a1, EdgeKind::TransientNd, "nd");
        sender_g.add_edge(a1, a2, EdgeKind::Det, "send");
        let sender = ProcessRun {
            graph: sender_g,
            start: a0,
            path: vec![EdgeId(0), EdgeId(1)],
            commits_at: vec![],
            recv_meta: BTreeMap::new(),
        };

        let mut recv_g = StateGraph::new();
        let b0 = recv_g.add_state("b0");
        let b1 = recv_g.add_state("b1");
        let crash = recv_g.add_crash_state("crash");
        let done = recv_g.add_state("done");
        // Statically fixed recv that forks to crash or done.
        recv_g.add_edge(b0, b1, EdgeKind::FixedNd, "recv");
        recv_g.add_edge(b1, crash, EdgeKind::Det, "boom");
        recv_g.add_edge(b0, done, EdgeKind::FixedNd, "recv-alt");
        let mut recv_meta = BTreeMap::new();
        recv_meta.insert(
            0usize,
            RecvMeta {
                sender: 0,
                send_step: 1,
            },
        );
        let receiver = ProcessRun {
            graph: recv_g,
            start: b0,
            path: vec![EdgeId(0)],
            commits_at: vec![],
            recv_meta,
        };

        let runs = vec![sender, receiver];
        let (g2, _dp) = multi_process_dangerous(&runs, 1);
        // Sender executed a transient nd after its (implicit) last commit
        // and before the send → the receive is transient for the receiver.
        assert_eq!(g2.edge(EdgeId(0)).kind, EdgeKind::TransientNd);
    }

    #[test]
    fn can_commit_now_composes() {
        // Receiver sits at a safe state after its receive.
        let mut sender_g = StateGraph::new();
        let a0 = sender_g.add_state("a0");
        let a1 = sender_g.add_state("a1");
        sender_g.add_edge(a0, a1, EdgeKind::Det, "send");
        let sender = ProcessRun {
            graph: sender_g,
            start: a0,
            path: vec![EdgeId(0)],
            commits_at: vec![0],
            recv_meta: BTreeMap::new(),
        };
        let mut recv_g = StateGraph::new();
        let b0 = recv_g.add_state("b0");
        let b1 = recv_g.add_state("b1");
        let done = recv_g.add_state("done");
        recv_g.add_edge(b0, b1, EdgeKind::TransientNd, "recv");
        recv_g.add_edge(b1, done, EdgeKind::Det, "finish");
        let mut recv_meta = BTreeMap::new();
        recv_meta.insert(
            0usize,
            RecvMeta {
                sender: 0,
                send_step: 0,
            },
        );
        let receiver = ProcessRun {
            graph: recv_g,
            start: b0,
            path: vec![EdgeId(0)],
            commits_at: vec![],
            recv_meta,
        };
        assert!(can_commit_now(&[sender, receiver], 1));
    }

    #[test]
    fn render_marks_dangerous_states_and_colored_edges() {
        let (g, _) = figure7();
        let dp = g.dangerous_paths();
        let out = g.render(&dp);
        assert!(out.contains("DANGEROUS"));
        assert!(out.contains("*colored*"));
        assert!(out.contains("CRASH"));
        assert!(out.contains("safe"));
    }

    #[test]
    #[should_panic(expected = "must be 'A', 'B', or 'C'")]
    fn figure6_rejects_unknown_case() {
        figure6('Z');
    }

    #[test]
    fn cycle_with_escape_is_safe() {
        // A retry loop: transient nd either escapes to done or loops; no
        // crash anywhere — nothing is dangerous.
        let mut g = StateGraph::new();
        let s0 = g.add_state("loop");
        let done = g.add_state("done");
        g.add_edge(s0, s0, EdgeKind::TransientNd, "retry");
        g.add_edge(s0, done, EdgeKind::TransientNd, "escape");
        let dp = g.dangerous_paths();
        assert_eq!(dp.dangerous_count(), 0);
    }

    #[test]
    fn cycle_that_must_crash_is_dangerous() {
        // Deterministic loop into a crash.
        let mut g = StateGraph::new();
        let s0 = g.add_state("s0");
        let s1 = g.add_state("s1");
        let crash = g.add_crash_state("crash");
        g.add_edge(s0, s1, EdgeKind::Det, "a");
        g.add_edge(s1, crash, EdgeKind::Det, "b");
        let dp = g.dangerous_paths();
        assert!(!dp.commit_safe(s0));
        assert!(!dp.commit_safe(s1));
    }
}
