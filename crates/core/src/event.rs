//! The computation model of §2.2: processes, events, and event kinds.
//!
//! A *computation* is one or more processes working together on a task. Each
//! process is modeled as a state machine that computes by executing *events*
//! (state transitions). Events carry a [`EventKind`] describing their role in
//! recovery theory: deterministic internal transitions, non-deterministic
//! events (further split into *transient* and *fixed*, §2.5), message sends
//! and receives, user-visible outputs, commits, crashes, and the
//! fault-activation markers used by the Table 1 methodology.

use crate::clock::VectorClock;

/// Identifier of a process within a computation.
///
/// Process ids are small dense integers so they can index vector clocks and
/// per-process trace vectors directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense `usize` index (the inverse of
    /// [`ProcessId::index`]), centralizing the narrowing so call sites
    /// don't each carry an unchecked `as u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ProcessId(u32::try_from(i).expect("process indices are small and dense"))
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of an event: the `seq`'th event executed by process `pid`.
///
/// This mirrors the paper's notation `e_p^i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    /// The executing process.
    pub pid: ProcessId,
    /// Zero-based position in that process's event sequence.
    pub seq: u64,
}

impl EventId {
    /// Creates an event id.
    pub fn new(pid: ProcessId, seq: u64) -> Self {
        Self { pid, seq }
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e_{}^{}", self.pid.0, self.seq)
    }
}

/// Identifier of a message, unique within a computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

/// The source of a non-deterministic event.
///
/// The source determines the *default* classification of the event as
/// transient or fixed (§2.5), which governs the dangerous-path analysis:
/// transient non-determinism may resolve differently after a failure and so
/// bounds dangerous paths; fixed non-determinism cannot be relied upon to
/// change and so extends them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NdSource {
    /// User input *values* — the user cannot be depended on to type
    /// something different after a failure, so values are fixed. (The
    /// *timing* of user input is transient and modeled as [`NdSource::TimeOfDay`]
    /// or scheduling non-determinism where relevant.)
    UserInput,
    /// `gettimeofday` and friends: transient.
    TimeOfDay,
    /// Asynchronous signal delivery: transient.
    Signal,
    /// Message receipt (ordering and timing): transient by default; the
    /// multi-process dangerous-path algorithm (§2.5) may reclassify a
    /// specific receive as fixed when the sender will deterministically
    /// regenerate the same message.
    MessageRecv,
    /// `select`-style readiness probing: transient.
    Select,
    /// Scheduler decisions (e.g. thread interleaving): transient.
    SchedDecision,
    /// Resource probes whose results depend on slowly-changing global state,
    /// such as disk fullness (`write`) or free slots in the kernel open-file
    /// table (`open`): fixed.
    ResourceProbe,
    /// A pseudo-random value drawn from an OS entropy source: transient.
    Random,
}

impl NdSource {
    /// The default transient/fixed classification for this source (§2.5).
    pub fn default_class(self) -> NdClass {
        match self {
            NdSource::UserInput | NdSource::ResourceProbe => NdClass::Fixed,
            NdSource::TimeOfDay
            | NdSource::Signal
            | NdSource::MessageRecv
            | NdSource::Select
            | NdSource::SchedDecision
            | NdSource::Random => NdClass::Transient,
        }
    }
}

impl std::fmt::Display for NdSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NdSource::UserInput => "user-input",
            NdSource::TimeOfDay => "time-of-day",
            NdSource::Signal => "signal",
            NdSource::MessageRecv => "message-recv",
            NdSource::Select => "select",
            NdSource::SchedDecision => "sched-decision",
            NdSource::ResourceProbe => "resource-probe",
            NdSource::Random => "random",
        };
        f.write_str(s)
    }
}

/// Classification of a non-deterministic event (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NdClass {
    /// May have a different result when re-executed after a failure
    /// (scheduling, signals, message ordering, `gettimeofday`, …).
    Transient,
    /// Expected to have the *same* result after a failure (user input
    /// values, disk fullness, open-file-table occupancy, …). The recovery
    /// system cannot depend on these events to steer execution away from a
    /// crash.
    Fixed,
}

/// The kind of an event in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A deterministic internal state transition.
    Internal,
    /// A non-deterministic event with its source and classification.
    NonDeterministic {
        /// Where the non-determinism came from.
        source: NdSource,
        /// Transient or fixed (§2.5).
        class: NdClass,
    },
    /// Sending message `msg` to process `to`.
    Send {
        /// The receiving process.
        to: ProcessId,
        /// The message's computation-unique id.
        msg: MsgId,
    },
    /// Receiving message `msg` from process `from`.
    ///
    /// A receive is itself a non-deterministic event (its timing and
    /// ordering are not determined by the receiver) unless it has been
    /// rendered deterministic by logging; see [`Event::logged`].
    Recv {
        /// The sending process.
        from: ProcessId,
        /// The message's computation-unique id.
        msg: MsgId,
    },
    /// A user-visible output event ("output event" in earlier literature).
    /// The token identifies the output content for equivalence checking.
    Visible {
        /// Token identifying the output content.
        token: u64,
    },
    /// A commit event: the process preserves its current state so it can be
    /// restored after a failure (§2.1).
    Commit {
        /// Computation-unique commit number.
        commit_id: u64,
    },
    /// A crash event: the process transitions to a state from which it
    /// cannot continue (§2.5).
    Crash,
    /// Journal marker recording that an injected fault's buggy code was
    /// executed (Table 1 methodology, §4.1). Not part of the paper's event
    /// taxonomy; it is instrumentation, invisible to the protocols.
    FaultActivation {
        /// Identifier of the injected fault.
        fault: u32,
    },
    /// Journal marker recording that recovery rolled this process back:
    /// its events with `seq` in `[to_seq, this event's seq)` were undone
    /// and no longer causally precede anything that follows. Recorded by
    /// the recovery runtime, invisible to the protocols.
    Rollback {
        /// First undone sequence number (the restore point).
        to_seq: u64,
    },
}

impl EventKind {
    /// Is this a visible event?
    pub fn is_visible(&self) -> bool {
        matches!(self, EventKind::Visible { .. })
    }

    /// Is this a commit event?
    pub fn is_commit(&self) -> bool {
        matches!(self, EventKind::Commit { .. })
    }

    /// Is this a crash event?
    pub fn is_crash(&self) -> bool {
        matches!(self, EventKind::Crash)
    }
}

/// A single executed event, as recorded in a [`crate::trace::Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The event's identity (`e_p^i`).
    pub id: EventId,
    /// What the event did.
    pub kind: EventKind,
    /// Happens-before vector clock *after* executing this event. Joined on
    /// **every** message, including recovery-layer control messages
    /// (two-phase-commit prepares and acks). Used to decide whether a
    /// commit *happens-before* a target event (coverage).
    pub clock: VectorClock,
    /// Application-causality vector clock *after* executing this event.
    /// Joined only on **application** messages. The paper distinguishes
    /// happens-before's use as an ordering constraint from its use as an
    /// approximation of causality ("causally precedes", §2.2); recovery
    /// control messages order events but do not transmit application state,
    /// so they must not generate Save-work obligations.
    pub causal: VectorClock,
    /// True if the event's non-determinism has been rendered deterministic
    /// by logging (§2.4): its result is on stable storage and constrained
    /// re-execution will reproduce it. Logged events do not count as
    /// non-deterministic for the Save-work invariant.
    pub logged: bool,
    /// For commit events executed as part of a coordinated (two-phase)
    /// commit: the round's group id. Commits in the same group are *atomic
    /// with* one another in the Save-work theorem's sense.
    pub atomic_group: Option<u64>,
}

impl Event {
    /// Is this event *effectively non-deterministic*: a non-deterministic
    /// event (including an unlogged receive) whose result may differ on
    /// re-execution and which therefore falls under the Save-work invariant?
    pub fn is_effectively_nd(&self) -> bool {
        if self.logged {
            return false;
        }
        matches!(
            self.kind,
            EventKind::NonDeterministic { .. } | EventKind::Recv { .. }
        )
    }

    /// The transient/fixed classification of this event, if it is
    /// effectively non-deterministic.
    pub fn nd_class(&self) -> Option<NdClass> {
        if self.logged {
            return None;
        }
        match self.kind {
            EventKind::NonDeterministic { class, .. } => Some(class),
            EventKind::Recv { .. } => Some(NdClass::Transient),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nd_source_default_classes_match_the_paper() {
        // §2.5 enumerates the classes explicitly.
        assert_eq!(NdSource::UserInput.default_class(), NdClass::Fixed);
        assert_eq!(NdSource::ResourceProbe.default_class(), NdClass::Fixed);
        assert_eq!(NdSource::TimeOfDay.default_class(), NdClass::Transient);
        assert_eq!(NdSource::Signal.default_class(), NdClass::Transient);
        assert_eq!(NdSource::MessageRecv.default_class(), NdClass::Transient);
        assert_eq!(NdSource::Select.default_class(), NdClass::Transient);
        assert_eq!(NdSource::SchedDecision.default_class(), NdClass::Transient);
        assert_eq!(NdSource::Random.default_class(), NdClass::Transient);
    }

    #[test]
    fn logged_events_are_not_effectively_nd() {
        let mut e = Event {
            id: EventId::new(ProcessId(0), 0),
            kind: EventKind::NonDeterministic {
                source: NdSource::TimeOfDay,
                class: NdClass::Transient,
            },
            clock: VectorClock::new(1),
            causal: VectorClock::new(1),
            logged: false,
            atomic_group: None,
        };
        assert!(e.is_effectively_nd());
        e.logged = true;
        assert!(!e.is_effectively_nd());
        assert_eq!(e.nd_class(), None);
    }

    #[test]
    fn unlogged_recv_is_transient_nd() {
        let e = Event {
            id: EventId::new(ProcessId(1), 3),
            kind: EventKind::Recv {
                from: ProcessId(0),
                msg: MsgId(7),
            },
            clock: VectorClock::new(2),
            causal: VectorClock::new(2),
            logged: false,
            atomic_group: None,
        };
        assert!(e.is_effectively_nd());
        assert_eq!(e.nd_class(), Some(NdClass::Transient));
    }

    #[test]
    fn event_id_display_matches_paper_notation() {
        assert_eq!(EventId::new(ProcessId(2), 5).to_string(), "e_2^5");
    }

    #[test]
    fn kind_predicates() {
        assert!(EventKind::Visible { token: 1 }.is_visible());
        assert!(EventKind::Commit { commit_id: 0 }.is_commit());
        assert!(EventKind::Crash.is_crash());
        assert!(!EventKind::Internal.is_visible());
    }
}
