//! Consistent recovery and duplicate-tolerant output equivalence (§2.3).
//!
//! > **Definition (Consistent Recovery).** Recovery is consistent if and
//! > only if there exists a complete, failure-free execution of the
//! > computation that would result in a sequence of visible events
//! > equivalent to the sequence of visible events actually output in the
//! > failed and recovered run.
//!
//! The paper's equivalence allows the recovered run to *repeat* earlier
//! visible events (exactly-once output is impractical; users can overlook
//! duplicates), but nothing else may differ. This module implements that
//! equivalence as a dynamic program and packages the two constraints of the
//! definition: the *visible constraint* (output must extend a legal
//! failure-free sequence) and the *no-orphan constraint* (the computation
//! must run to completion).

/// Why a recovered output sequence failed the consistency check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// The recovered sequence emitted a token that is neither the next
    /// expected failure-free output nor a repeat of an already-delivered
    /// one. Holds the offending index into the recovered sequence.
    VisibleConstraint {
        /// Index of the offending output in the recovered sequence.
        at: usize,
    },
    /// The recovered run did not deliver the complete failure-free sequence
    /// (it stopped short — e.g. an orphan prevented completion). Holds the
    /// number of reference outputs that were delivered.
    Incomplete {
        /// Number of reference outputs that were delivered.
        delivered: usize,
    },
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::VisibleConstraint { at } => write!(
                f,
                "visible constraint violated: output at index {at} extends no legal failure-free sequence"
            ),
            ConsistencyError::Incomplete { delivered } => write!(
                f,
                "no-orphan constraint violated: run incomplete after {delivered} delivered outputs"
            ),
        }
    }
}

/// Checks the paper's output equivalence: `recovered` must equal
/// `reference` except that it may additionally contain *repeats of earlier
/// events* of itself, and it must be complete (cover all of `reference`).
///
/// The check is a dynamic program over (recovered position, reference
/// position): at each recovered element we may either *match* it against the
/// next reference element, or *absorb* it as a duplicate of some
/// already-matched reference element. Backtracking (rather than a greedy
/// scan) is required because an element can be both a legal duplicate and
/// the next expected output.
///
/// # Examples
///
/// ```
/// use ft_core::consistency::check_equivalence;
///
/// // A failure between outputs 2 and 3 re-emitted output 2 on recovery.
/// assert!(check_equivalence(&[1, 2, 2, 3], &[1, 2, 3]).is_ok());
/// // Emitting something that never appears in the reference is not allowed.
/// assert!(check_equivalence(&[1, 99], &[1, 2]).is_err());
/// ```
pub fn check_equivalence(recovered: &[u64], reference: &[u64]) -> Result<(), ConsistencyError> {
    let m = reference.len();
    // reachable[j] = true if after consuming some prefix of `recovered` we
    // can be at reference position j. Process recovered elements one at a
    // time, updating the reachable set.
    let mut reachable = vec![false; m + 1];
    reachable[0] = true;
    for (i, &tok) in recovered.iter().enumerate() {
        let mut next = vec![false; m + 1];
        let mut any = false;
        for j in 0..=m {
            if !reachable[j] {
                continue;
            }
            // Option 1: match against the next reference element.
            if j < m && reference[j] == tok {
                next[j + 1] = true;
                any = true;
            }
            // Option 2: absorb as a duplicate of an already-matched element.
            if reference[..j].contains(&tok) {
                next[j] = true;
                any = true;
            }
        }
        if !any {
            return Err(ConsistencyError::VisibleConstraint { at: i });
        }
        reachable = next;
    }
    if reachable[m] {
        Ok(())
    } else {
        // The best (furthest) reachable position tells how much was
        // delivered.
        let delivered = (0..=m).rev().find(|&j| reachable[j]).unwrap_or(0);
        Err(ConsistencyError::Incomplete { delivered })
    }
}

/// Checks only the *visible constraint*: the recovered output so far must be
/// a legal (possibly incomplete) prefix of the reference modulo duplicates.
///
/// Use this mid-run, before the computation has had a chance to complete.
pub fn check_prefix(recovered: &[u64], reference: &[u64]) -> Result<(), ConsistencyError> {
    match check_equivalence(recovered, reference) {
        Ok(()) | Err(ConsistencyError::Incomplete { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Result of a full consistent-recovery check over a recovered run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryVerdict {
    /// Whether recovery was consistent.
    pub consistent: bool,
    /// Count of duplicate visible events the user observed (allowed).
    pub duplicates: usize,
    /// The failure reason, if inconsistent.
    pub error: Option<ConsistencyError>,
}

/// Full consistent-recovery check with duplicate accounting.
///
/// `recovered` is the visible token sequence the user actually saw across
/// the failed and recovered run; `reference` is the visible sequence of a
/// complete failure-free execution of the same computation.
pub fn check_consistent_recovery(recovered: &[u64], reference: &[u64]) -> RecoveryVerdict {
    match check_equivalence(recovered, reference) {
        Ok(()) => RecoveryVerdict {
            consistent: true,
            duplicates: recovered.len() - reference.len(),
            error: None,
        },
        Err(e) => RecoveryVerdict {
            consistent: false,
            duplicates: 0,
            error: Some(e),
        },
    }
}

/// Multi-process consistent-recovery check: each process's visible
/// subsequence must be duplicate-equivalent to its failure-free reference
/// subsequence.
///
/// Different failure-free executions of a computation may interleave
/// *independent* processes' outputs differently, so a single global
/// reference order is too strict; what the §2.3 definition pins down is
/// each process's own output sequence (cross-process order is constrained
/// only through causality, which the per-process sequences inherit from
/// the messages that produced them).
pub fn check_consistent_recovery_multi(
    recovered: &[(u32, u64)],
    reference: &[(u32, u64)],
) -> RecoveryVerdict {
    let pids: std::collections::BTreeSet<u32> =
        recovered.iter().chain(reference).map(|&(p, _)| p).collect();
    let mut duplicates = 0;
    for p in pids {
        let rec: Vec<u64> = recovered
            .iter()
            .filter(|&&(q, _)| q == p)
            .map(|&(_, t)| t)
            .collect();
        let rf: Vec<u64> = reference
            .iter()
            .filter(|&&(q, _)| q == p)
            .map(|&(_, t)| t)
            .collect();
        match check_equivalence(&rec, &rf) {
            Ok(()) => duplicates += rec.len() - rf.len(),
            Err(e) => {
                return RecoveryVerdict {
                    consistent: false,
                    duplicates: 0,
                    error: Some(e),
                }
            }
        }
    }
    RecoveryVerdict {
        consistent: true,
        duplicates,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_are_equivalent() {
        assert!(check_equivalence(&[1, 2, 3], &[1, 2, 3]).is_ok());
        assert!(check_equivalence(&[], &[]).is_ok());
    }

    #[test]
    fn suffix_repeat_after_failure_is_allowed() {
        // Crash after emitting 1,2,3; recovery replays from a checkpoint
        // taken after 1, re-emitting 2,3 then continuing with 4.
        assert!(check_equivalence(&[1, 2, 3, 2, 3, 4], &[1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn repeat_of_any_earlier_event_is_allowed() {
        assert!(check_equivalence(&[1, 2, 1, 3], &[1, 2, 3]).is_ok());
    }

    #[test]
    fn novel_token_violates_visible_constraint() {
        let err = check_equivalence(&[1, 99], &[1, 2]).unwrap_err();
        assert_eq!(err, ConsistencyError::VisibleConstraint { at: 1 });
    }

    #[test]
    fn coin_flip_heads_then_tails_is_inconsistent() {
        // Figure 1: no failure-free run outputs both heads (1) and tails (2).
        let heads_run = [1u64];
        let tails_run = [2u64];
        assert!(check_equivalence(&[1, 2], &heads_run).is_err());
        assert!(check_equivalence(&[1, 2], &tails_run).is_err());
    }

    #[test]
    fn incomplete_run_violates_no_orphan_constraint() {
        let err = check_equivalence(&[1, 2], &[1, 2, 3]).unwrap_err();
        assert_eq!(err, ConsistencyError::Incomplete { delivered: 2 });
    }

    #[test]
    fn prefix_check_tolerates_incompleteness_but_not_divergence() {
        assert!(check_prefix(&[1, 2], &[1, 2, 3]).is_ok());
        assert!(check_prefix(&[1, 7], &[1, 2, 3]).is_err());
    }

    #[test]
    fn duplicate_that_is_also_next_requires_backtracking() {
        // Reference 1,1,2. Recovered 1,1,1,2: the middle 1s can each be
        // either a duplicate or a match; only backtracking finds the split.
        assert!(check_equivalence(&[1, 1, 1, 2], &[1, 1, 2]).is_ok());
    }

    #[test]
    fn duplicate_before_first_delivery_is_illegal() {
        // A token can only repeat an *earlier delivered* event.
        let err = check_equivalence(&[2, 1, 2], &[1, 2]).unwrap_err();
        assert_eq!(err, ConsistencyError::VisibleConstraint { at: 0 });
    }

    #[test]
    fn out_of_order_delivery_is_inconsistent() {
        assert!(check_equivalence(&[2, 1], &[1, 2]).is_err());
    }

    #[test]
    fn verdict_counts_duplicates() {
        let v = check_consistent_recovery(&[1, 2, 2, 3], &[1, 2, 3]);
        assert!(v.consistent);
        assert_eq!(v.duplicates, 1);
        assert!(v.error.is_none());
    }

    #[test]
    fn verdict_reports_error() {
        let v = check_consistent_recovery(&[5], &[1]);
        assert!(!v.consistent);
        assert!(matches!(
            v.error,
            Some(ConsistencyError::VisibleConstraint { at: 0 })
        ));
    }

    #[test]
    fn empty_recovered_against_nonempty_reference_is_incomplete() {
        let err = check_equivalence(&[], &[1]).unwrap_err();
        assert_eq!(err, ConsistencyError::Incomplete { delivered: 0 });
    }

    #[test]
    fn long_sequences_run_fast() {
        // Sanity: the DP is O(n*m) worst case but the reachable set stays
        // small for realistic traces.
        let reference: Vec<u64> = (0..2000).collect();
        let mut recovered = reference.clone();
        recovered.insert(1000, 999); // One duplicate.
        assert!(check_equivalence(&recovered, &reference).is_ok());
    }

    #[test]
    fn multi_process_tolerates_reordered_independent_outputs() {
        // P0 and P1 each emit their own sequence; global interleaving
        // differs between the runs.
        let reference = [(0, 1), (1, 10), (0, 2), (1, 20)];
        let recovered = [(1, 10), (1, 20), (0, 1), (0, 2)];
        assert!(check_consistent_recovery_multi(&recovered, &reference).consistent);
    }

    #[test]
    fn multi_process_catches_per_process_divergence() {
        let reference = [(0, 1), (0, 2)];
        let recovered = [(0, 2), (0, 1)];
        assert!(!check_consistent_recovery_multi(&recovered, &reference).consistent);
    }

    #[test]
    fn multi_process_counts_duplicates_across_processes() {
        let reference = [(0, 1), (1, 10)];
        let recovered = [(0, 1), (0, 1), (1, 10), (1, 10)];
        let v = check_consistent_recovery_multi(&recovered, &reference);
        assert!(v.consistent);
        assert_eq!(v.duplicates, 2);
    }

    #[test]
    fn error_display() {
        let e = ConsistencyError::VisibleConstraint { at: 3 };
        assert!(e.to_string().contains("index 3"));
        let e = ConsistencyError::Incomplete { delivered: 7 };
        assert!(e.to_string().contains("7 delivered"));
    }
}
