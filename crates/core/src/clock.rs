//! Vector clocks and Lamport's happens-before relation (§2.2).
//!
//! The paper orders events in asynchronous computations with Lamport's
//! *happens-before* relation and uses it as an approximation of causality
//! ("causally precedes"). We realize the relation with per-event vector
//! clocks: each process increments its own component before recording an
//! event, and a receive joins the sender's clock at the send. With that
//! discipline, event `a` happens-before event `b` if and only if
//! `a.clock[a.pid] <= b.clock[a.pid]` (for distinct events).

use crate::event::ProcessId;

/// A vector clock over a fixed number of processes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// Creates a zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            components: vec![0; n],
        }
    }

    /// Number of processes this clock covers.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the clock covers zero processes.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn get(&self, p: ProcessId) -> u64 {
        self.components[p.index()]
    }

    /// Increments the component for process `p` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn tick(&mut self, p: ProcessId) -> u64 {
        let c = &mut self.components[p.index()];
        *c += 1;
        *c
    }

    /// Joins (component-wise max) `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different lengths.
    pub fn join(&mut self, other: &VectorClock) {
        assert_eq!(
            self.components.len(),
            other.components.len(),
            "vector clocks must cover the same processes"
        );
        for (a, b) in self.components.iter_mut().zip(&other.components) {
            *a = (*a).max(*b);
        }
    }

    /// Component-wise `<=`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.components.len() == other.components.len()
            && self
                .components
                .iter()
                .zip(&other.components)
                .all(|(a, b)| a <= b)
    }

    /// True if `self` and `other` are concurrent (neither `<=` the other and
    /// not equal).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Raw components, for inspection and testing.
    pub fn components(&self) -> &[u64] {
        &self.components
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

/// Happens-before test over per-event clocks.
///
/// `a_pid`/`a_clock` describe the clock *after* event `a` on process
/// `a_pid`; likewise for `b`. Returns true iff `a` happens-before `b` under
/// the clock discipline described in the module docs. Two distinct events on
/// the same process are ordered by their own component.
pub fn happens_before(
    a_pid: ProcessId,
    a_clock: &VectorClock,
    b_pid: ProcessId,
    b_clock: &VectorClock,
) -> bool {
    if a_pid == b_pid {
        // Same process: program order, strict.
        a_clock.get(a_pid) < b_clock.get(b_pid)
    } else {
        // a's knowledge has reached b.
        a_clock.get(a_pid) <= b_clock.get(a_pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new(3);
        assert_eq!(c.get(p(1)), 0);
        assert_eq!(c.tick(p(1)), 1);
        assert_eq!(c.tick(p(1)), 2);
        assert_eq!(c.get(p(1)), 2);
        assert_eq!(c.get(p(0)), 0);
    }

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = VectorClock::new(2);
        a.tick(p(0));
        a.tick(p(0));
        let mut b = VectorClock::new(2);
        b.tick(p(1));
        a.join(&b);
        assert_eq!(a.components(), &[2, 1]);
    }

    #[test]
    fn le_and_concurrency() {
        let mut a = VectorClock::new(2);
        a.tick(p(0));
        let mut b = a.clone();
        b.tick(p(1));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent(&b));

        let mut c = VectorClock::new(2);
        c.tick(p(1));
        assert!(a.concurrent(&c));
    }

    #[test]
    fn happens_before_program_order() {
        // Two events on the same process: clocks <1,0> then <2,0>.
        let mut e1 = VectorClock::new(2);
        e1.tick(p(0));
        let mut e2 = e1.clone();
        e2.tick(p(0));
        assert!(happens_before(p(0), &e1, p(0), &e2));
        assert!(!happens_before(p(0), &e2, p(0), &e1));
        // An event does not happen before itself.
        assert!(!happens_before(p(0), &e1, p(0), &e1));
    }

    #[test]
    fn happens_before_via_message() {
        // P0 executes send (clock <1,0>); P1 receives, joining: <1,1>.
        let mut send = VectorClock::new(2);
        send.tick(p(0));
        let mut recv = VectorClock::new(2);
        recv.tick(p(1));
        recv.join(&send);
        assert!(happens_before(p(0), &send, p(1), &recv));
        assert!(!happens_before(p(1), &recv, p(0), &send));
    }

    #[test]
    fn concurrent_events_not_ordered() {
        let mut a = VectorClock::new(2);
        a.tick(p(0));
        let mut b = VectorClock::new(2);
        b.tick(p(1));
        assert!(!happens_before(p(0), &a, p(1), &b));
        assert!(!happens_before(p(1), &b, p(0), &a));
    }

    #[test]
    #[should_panic(expected = "same processes")]
    fn join_length_mismatch_panics() {
        let mut a = VectorClock::new(2);
        let b = VectorClock::new(3);
        a.join(&b);
    }

    #[test]
    fn display_formats() {
        let mut c = VectorClock::new(3);
        c.tick(p(0));
        c.tick(p(2));
        assert_eq!(c.to_string(), "<1,0,1>");
    }
}
