//! Vector clocks and Lamport's happens-before relation (§2.2).
//!
//! The paper orders events in asynchronous computations with Lamport's
//! *happens-before* relation and uses it as an approximation of causality
//! ("causally precedes"). We realize the relation with per-event vector
//! clocks: each process increments its own component before recording an
//! event, and a receive joins the sender's clock at the send. With that
//! discipline, event `a` happens-before event `b` if and only if
//! `a.clock[a.pid] <= b.clock[a.pid]` (for distinct events).

use crate::event::ProcessId;

/// Components held inline before spilling to the heap. Every workload in
/// the evaluation suite runs at most four processes, so in practice a
/// clock clone is a flat copy with no allocation — two clocks are cloned
/// per recorded trace event, which made `Vec`-backed clocks a measurable
/// slice of whole-campaign wall time.
const INLINE_COMPONENTS: usize = 4;

/// A vector clock over a fixed number of processes.
///
/// Small-vector representation: clocks over at most
/// [`INLINE_COMPONENTS`] processes live entirely inline; larger
/// computations spill to a heap vector. The representation is a function
/// of `n` alone (never of the values), so derived equality and hashing
/// stay consistent, and `Debug` output is kept identical to the old
/// `Vec`-backed struct because trace fingerprints hash it.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    /// Number of live components.
    len: u32,
    /// Inline storage, used iff `len <= INLINE_COMPONENTS`; unused slots
    /// stay zero so derived comparisons see a canonical form.
    inline: [u64; INLINE_COMPONENTS],
    /// Heap storage, used iff `len > INLINE_COMPONENTS` (empty otherwise).
    spill: Vec<u64>,
}

impl VectorClock {
    /// Creates a zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            len: u32::try_from(n).expect("clock width fits u32"),
            inline: [0; INLINE_COMPONENTS],
            spill: if n > INLINE_COMPONENTS {
                vec![0; n]
            } else {
                Vec::new()
            },
        }
    }

    fn as_slice(&self) -> &[u64] {
        if self.len as usize <= INLINE_COMPONENTS {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }

    fn as_mut_slice(&mut self) -> &mut [u64] {
        if self.len as usize <= INLINE_COMPONENTS {
            &mut self.inline[..self.len as usize]
        } else {
            &mut self.spill
        }
    }

    /// Number of processes this clock covers.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the clock covers zero processes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The component for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn get(&self, p: ProcessId) -> u64 {
        self.as_slice()[p.index()]
    }

    /// Increments the component for process `p` and returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn tick(&mut self, p: ProcessId) -> u64 {
        let c = &mut self.as_mut_slice()[p.index()];
        *c += 1;
        *c
    }

    /// Joins (component-wise max) `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different lengths.
    pub fn join(&mut self, other: &VectorClock) {
        assert_eq!(
            self.len, other.len,
            "vector clocks must cover the same processes"
        );
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a = (*a).max(*b);
        }
    }

    /// Component-wise `<=`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.len == other.len
            && self
                .as_slice()
                .iter()
                .zip(other.as_slice())
                .all(|(a, b)| a <= b)
    }

    /// True if `self` and `other` are concurrent (neither `<=` the other and
    /// not equal).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Raw components, for inspection and testing.
    pub fn components(&self) -> &[u64] {
        self.as_slice()
    }
}

impl std::fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Bit-identical to the old `struct VectorClock { components:
        // Vec<u64> }` derive: golden trace fingerprints hash this output.
        f.debug_struct("VectorClock")
            .field("components", &self.as_slice())
            .finish()
    }
}

impl std::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        for (i, c) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ">")
    }
}

/// Happens-before test over per-event clocks.
///
/// `a_pid`/`a_clock` describe the clock *after* event `a` on process
/// `a_pid`; likewise for `b`. Returns true iff `a` happens-before `b` under
/// the clock discipline described in the module docs. Two distinct events on
/// the same process are ordered by their own component.
pub fn happens_before(
    a_pid: ProcessId,
    a_clock: &VectorClock,
    b_pid: ProcessId,
    b_clock: &VectorClock,
) -> bool {
    if a_pid == b_pid {
        // Same process: program order, strict.
        a_clock.get(a_pid) < b_clock.get(b_pid)
    } else {
        // a's knowledge has reached b.
        a_clock.get(a_pid) <= b_clock.get(a_pid)
    }
}

#[cfg(test)]
// Test clock widths are single digits; index narrowing cannot truncate.
#[allow(clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new(3);
        assert_eq!(c.get(p(1)), 0);
        assert_eq!(c.tick(p(1)), 1);
        assert_eq!(c.tick(p(1)), 2);
        assert_eq!(c.get(p(1)), 2);
        assert_eq!(c.get(p(0)), 0);
    }

    #[test]
    fn join_takes_componentwise_max() {
        let mut a = VectorClock::new(2);
        a.tick(p(0));
        a.tick(p(0));
        let mut b = VectorClock::new(2);
        b.tick(p(1));
        a.join(&b);
        assert_eq!(a.components(), &[2, 1]);
    }

    #[test]
    fn le_and_concurrency() {
        let mut a = VectorClock::new(2);
        a.tick(p(0));
        let mut b = a.clone();
        b.tick(p(1));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent(&b));

        let mut c = VectorClock::new(2);
        c.tick(p(1));
        assert!(a.concurrent(&c));
    }

    #[test]
    fn happens_before_program_order() {
        // Two events on the same process: clocks <1,0> then <2,0>.
        let mut e1 = VectorClock::new(2);
        e1.tick(p(0));
        let mut e2 = e1.clone();
        e2.tick(p(0));
        assert!(happens_before(p(0), &e1, p(0), &e2));
        assert!(!happens_before(p(0), &e2, p(0), &e1));
        // An event does not happen before itself.
        assert!(!happens_before(p(0), &e1, p(0), &e1));
    }

    #[test]
    fn happens_before_via_message() {
        // P0 executes send (clock <1,0>); P1 receives, joining: <1,1>.
        let mut send = VectorClock::new(2);
        send.tick(p(0));
        let mut recv = VectorClock::new(2);
        recv.tick(p(1));
        recv.join(&send);
        assert!(happens_before(p(0), &send, p(1), &recv));
        assert!(!happens_before(p(1), &recv, p(0), &send));
    }

    #[test]
    fn concurrent_events_not_ordered() {
        let mut a = VectorClock::new(2);
        a.tick(p(0));
        let mut b = VectorClock::new(2);
        b.tick(p(1));
        assert!(!happens_before(p(0), &a, p(1), &b));
        assert!(!happens_before(p(1), &b, p(0), &a));
    }

    #[test]
    #[should_panic(expected = "same processes")]
    fn join_length_mismatch_panics() {
        let mut a = VectorClock::new(2);
        let b = VectorClock::new(3);
        a.join(&b);
    }

    #[test]
    fn spilled_clocks_behave_like_inline_ones() {
        // Seven processes exceeds the inline capacity.
        let mut big = VectorClock::new(7);
        big.tick(p(6));
        big.tick(p(6));
        big.tick(p(0));
        assert_eq!(big.components(), &[1, 0, 0, 0, 0, 0, 2]);
        let mut other = VectorClock::new(7);
        other.tick(p(3));
        other.join(&big);
        assert_eq!(other.components(), &[1, 0, 0, 1, 0, 0, 2]);
        assert!(big.concurrent(&{
            let mut c = VectorClock::new(7);
            c.tick(p(1));
            c
        }));
        assert_eq!(big.clone(), big);
    }

    #[test]
    fn debug_matches_the_vec_backed_derive() {
        // Trace fingerprints hash the debug output; it must stay exactly
        // what `#[derive(Debug)]` printed for `components: Vec<u64>`.
        let mut c = VectorClock::new(2);
        c.tick(p(1));
        assert_eq!(format!("{c:?}"), "VectorClock { components: [0, 1] }");
        assert_eq!(
            format!("{:#?}", VectorClock::new(1)),
            "VectorClock {\n    components: [\n        0,\n    ],\n}"
        );
    }

    #[test]
    fn display_formats() {
        let mut c = VectorClock::new(3);
        c.tick(p(0));
        c.tick(p(2));
        assert_eq!(c.to_string(), "<1,0,1>");
    }

    #[test]
    fn empty_clocks_compare_as_equal_not_concurrent() {
        // Zero-process clocks: vacuously `<=` each other, so never
        // concurrent, and the canonical representation keeps them equal.
        let a = VectorClock::new(0);
        let b = VectorClock::new(0);
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert!(a.le(&b) && b.le(&a));
        assert!(!a.concurrent(&b));
        assert_eq!(a, b);
        assert_eq!(a.components(), &[] as &[u64]);
        assert_eq!(a.to_string(), "<>");
        assert_eq!(format!("{a:?}"), "VectorClock { components: [] }");
    }

    #[test]
    fn unequal_lengths_are_never_ordered_hence_concurrent() {
        // `le` is defined only within one computation; clocks over
        // different process counts refuse to order in either direction,
        // which `concurrent` therefore reports as true. Pinned so the
        // analyzers can rely on it instead of panicking like `join`.
        let mut a = VectorClock::new(2);
        a.tick(p(0));
        let mut b = VectorClock::new(3);
        b.tick(p(0));
        b.tick(p(1));
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        assert!(a.concurrent(&b));
        // Even the zero clocks of different widths stay unordered.
        assert!(!VectorClock::new(2).le(&VectorClock::new(3)));
    }

    #[test]
    fn le_is_reflexive_and_concurrent_is_irreflexive() {
        for n in [0usize, 1, 3, 4, 5, 9] {
            let mut c = VectorClock::new(n);
            for i in 0..n {
                for _ in 0..=i {
                    c.tick(p(i as u32));
                }
            }
            assert!(c.le(&c), "le must be reflexive at n={n}");
            assert!(!c.concurrent(&c), "self-concurrency at n={n}");
            assert_eq!(c.clone(), c);
        }
    }

    #[test]
    fn inline_to_heap_boundary_is_seamless() {
        // n = 4 is the last inline width, n = 5 the first spilled one:
        // every operation must behave identically across the boundary.
        for n in [INLINE_COMPONENTS, INLINE_COMPONENTS + 1] {
            let mut a = VectorClock::new(n);
            let mut b = VectorClock::new(n);
            for i in 0..n {
                assert_eq!(a.tick(p(i as u32)), 1);
            }
            b.tick(p(0));
            b.tick(p(0));
            assert!(!a.le(&b) && !b.le(&a), "concurrent at n={n}");
            assert!(a.concurrent(&b));
            let mut j = a.clone();
            j.join(&b);
            let mut expect = vec![1u64; n];
            expect[0] = 2;
            assert_eq!(j.components(), &expect[..], "join at n={n}");
            assert!(a.le(&j) && b.le(&j));
            // Equality and hashing see through the representation: a
            // clock is equal to its clone regardless of storage.
            assert_eq!(j.clone(), j);
            assert_eq!(j.len(), n);
            assert_eq!(
                format!("{j:?}"),
                format!("VectorClock {{ components: {:?} }}", j.components()),
                "debug form is representation-independent at n={n}"
            );
        }
    }

    #[test]
    fn boundary_happens_before_crossing_four_processes() {
        // The same message scenario at the inline width and just past
        // it: happens-before answers must not depend on storage.
        for n in [INLINE_COMPONENTS, INLINE_COMPONENTS + 1] {
            let last = p((n - 1) as u32);
            let mut send = VectorClock::new(n);
            send.tick(p(0));
            let mut recv = VectorClock::new(n);
            recv.tick(last);
            recv.join(&send);
            assert!(happens_before(p(0), &send, last, &recv), "n={n}");
            assert!(!happens_before(last, &recv, p(0), &send), "n={n}");
        }
    }
}
