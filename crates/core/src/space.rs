//! The protocol space of §2.4 (Figures 3 and 4).
//!
//! Every consistent-recovery protocol falls somewhere in a two-dimensional
//! space: one axis is the effort made to *identify or convert*
//! non-deterministic events (logging converts non-determinism into
//! determinism); the other is the effort made to *commit only visible
//! events* (avoiding commits for sends and internal events, up to asking
//! remote processes to commit). This module places the paper's protocols
//! and the literature protocols it unifies at their qualitative coordinates
//! and exposes the Figure 4 design-variable trends.

use crate::protocol::Protocol;

/// A named point in the protocol space.
#[derive(Debug, Clone, PartialEq)]
pub struct SpacePoint {
    /// Display name.
    pub name: String,
    /// Effort made to identify/convert non-deterministic events, in [0, 1].
    pub nd_effort: f64,
    /// Effort made to commit only visible events, in [0, 1].
    pub visible_effort: f64,
    /// The executable protocol, when this point is one of ours.
    pub protocol: Option<Protocol>,
}

/// Coordinates for one of the executable protocols (Figure 3 / Figure 8
/// layout).
pub fn coordinates(p: Protocol) -> (f64, f64) {
    match p {
        Protocol::CommitAll => (0.0, 0.0),
        Protocol::Cand => (0.30, 0.0),
        Protocol::CandLog => (0.60, 0.0),
        Protocol::Cpvs => (0.30, 0.55),
        Protocol::Cbndvs => (0.50, 0.55),
        Protocol::CbndvsLog => (0.70, 0.55),
        Protocol::Cpv2pc => (0.30, 0.85),
        Protocol::Cbndv2pc => (0.50, 0.85),
    }
}

/// The full Figure 3 layout: executable protocols plus the literature
/// protocols the space unifies.
pub fn figure3_points() -> Vec<SpacePoint> {
    let mut pts: Vec<SpacePoint> = [
        Protocol::CommitAll,
        Protocol::Cand,
        Protocol::CandLog,
        Protocol::Cpvs,
        Protocol::Cbndvs,
        Protocol::CbndvsLog,
        Protocol::Cpv2pc,
        Protocol::Cbndv2pc,
    ]
    .into_iter()
    .map(|p| {
        let (x, y) = coordinates(p);
        SpacePoint {
            name: p.name().to_string(),
            nd_effort: x,
            visible_effort: y,
            protocol: Some(p),
        }
    })
    .collect();
    // Literature protocols (§2.4): positions reflect the paper's Figure 3.
    let lit: [(&str, f64, f64); 7] = [
        ("SBL", 0.50, 0.05),
        ("FBL", 0.50, 0.15),
        ("Targon/32", 0.72, 0.0),
        ("Hypervisor", 0.95, 0.0),
        ("Optimistic logging", 0.62, 0.78),
        ("Coordinated checkpointing", 0.40, 0.88),
        ("Manetho", 0.80, 0.88),
    ];
    pts.extend(lit.iter().map(|&(n, x, y)| SpacePoint {
        name: n.to_string(),
        nd_effort: x,
        visible_effort: y,
        protocol: None,
    }));
    pts
}

/// The Figure 4 design-variable trends, evaluated at a point in the space.
///
/// All values are qualitative ranks in [0, 1]; only their ordering between
/// points is meaningful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignTrends {
    /// Expected commit frequency: decreases with radial distance from the
    /// origin (1.0 at the origin).
    pub commit_frequency: f64,
    /// Implementation simplicity / likelihood of a correct implementation:
    /// decreases with radial distance.
    pub simplicity: f64,
    /// Recovery time from constrained re-execution: grows with effort spent
    /// converting non-determinism (logging means replaying the pre-failure
    /// path).
    pub constrained_reexecution: f64,
    /// Chance of surviving propagation failures: grows with distance from
    /// the horizontal axis (§2.6 — the farther from the axis, the more
    /// non-determinism is safely left uncommitted).
    pub propagation_survival: f64,
}

/// Evaluates the Figure 4 trends at `(nd_effort, visible_effort)`.
pub fn trends(nd_effort: f64, visible_effort: f64) -> DesignTrends {
    let radius = (nd_effort * nd_effort + visible_effort * visible_effort)
        .sqrt()
        .min(1.0);
    DesignTrends {
        commit_frequency: 1.0 - radius,
        simplicity: 1.0 - radius,
        constrained_reexecution: nd_effort,
        propagation_survival: visible_effort,
    }
}

/// Renders the protocol space as an ASCII plot (the Figure 3 reproduction).
///
/// `width`/`height` are the plot dimensions in characters; points are
/// labeled with an index into the returned legend.
#[expect(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    reason = "efforts are in [0, 1] (clamped onto the grid) and labels cycle through 36 digits"
)]
pub fn ascii_plot(points: &[SpacePoint], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 5, "plot too small");
    let mut grid = vec![vec![' '; width]; height];
    let mut legend = String::new();
    for (i, p) in points.iter().enumerate() {
        let x = ((p.nd_effort * (width - 1) as f64).round() as usize).min(width - 1);
        let y = ((p.visible_effort * (height - 1) as f64).round() as usize).min(height - 1);
        let row = height - 1 - y; // Flip so the origin is bottom-left.
        let label = std::char::from_digit((i % 36) as u32, 36).unwrap_or('?');
        grid[row][x] = label;
        legend.push_str(&format!(
            "  {} = {} ({:.2}, {:.2})\n",
            label, p.name, p.nd_effort, p.visible_effort
        ));
    }
    let mut out = String::new();
    out.push_str("effort to commit only visible events\n");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("> effort to identify/convert non-determinism\n");
    out.push_str(&legend);
    out
}

/// §2.6's key observation as a predicate: protocols on the horizontal axis
/// (no effort to avoid committing non-visible events... more precisely, all
/// protocols that commit or convert *all* non-determinism) guarantee that
/// applications will not recover from propagation failures.
pub fn prevents_propagation_recovery(p: Protocol) -> bool {
    let (_, y) = coordinates(p);
    y == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executable_protocols_have_coordinates_in_range() {
        for p in Protocol::FIGURE8 {
            let (x, y) = coordinates(p);
            assert!((0.0..=1.0).contains(&x));
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn log_variants_sit_right_of_their_base() {
        let (cand_x, _) = coordinates(Protocol::Cand);
        let (candlog_x, _) = coordinates(Protocol::CandLog);
        assert!(candlog_x > cand_x);
        let (b_x, _) = coordinates(Protocol::Cbndvs);
        let (bl_x, _) = coordinates(Protocol::CbndvsLog);
        assert!(bl_x > b_x);
    }

    #[test]
    fn two_phase_variants_sit_above_their_base() {
        let (_, cpvs_y) = coordinates(Protocol::Cpvs);
        let (_, cpv2pc_y) = coordinates(Protocol::Cpv2pc);
        assert!(cpv2pc_y > cpvs_y);
    }

    #[test]
    fn figure3_has_all_fifteen_points() {
        let pts = figure3_points();
        assert_eq!(pts.len(), 15);
        assert!(pts.iter().any(|p| p.name == "Hypervisor"));
        assert!(pts.iter().any(|p| p.name == "Manetho"));
        assert!(pts.iter().any(|p| p.name == "CAND"));
    }

    #[test]
    fn trends_follow_figure_4() {
        let origin = trends(0.0, 0.0);
        let far = trends(0.9, 0.9);
        assert!(origin.commit_frequency > far.commit_frequency);
        assert!(origin.simplicity > far.simplicity);
        assert!(origin.constrained_reexecution < far.constrained_reexecution);
        assert!(origin.propagation_survival < far.propagation_survival);
    }

    #[test]
    fn horizontal_axis_protocols_prevent_propagation_recovery() {
        // §2.6: CAND, SBL, Targon/32 and Hypervisor all prevent applications
        // from surviving propagation failures; of our executable set that is
        // CAND, CAND-LOG, and COMMIT-ALL.
        assert!(prevents_propagation_recovery(Protocol::Cand));
        assert!(prevents_propagation_recovery(Protocol::CandLog));
        assert!(prevents_propagation_recovery(Protocol::CommitAll));
        assert!(!prevents_propagation_recovery(Protocol::Cpvs));
        assert!(!prevents_propagation_recovery(Protocol::Cbndv2pc));
    }

    #[test]
    fn ascii_plot_contains_all_labels() {
        let pts = figure3_points();
        let plot = ascii_plot(&pts, 60, 16);
        assert!(plot.contains("CAND"));
        assert!(plot.contains("Hypervisor"));
        assert!(plot.contains("non-determinism"));
        // One legend line per point.
        assert_eq!(plot.matches(" = ").count(), pts.len());
    }

    #[test]
    #[should_panic(expected = "plot too small")]
    fn ascii_plot_rejects_tiny_canvas() {
        ascii_plot(&figure3_points(), 5, 2);
    }
}
