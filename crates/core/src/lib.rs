//! # ft-core — failure transparency theory
//!
//! The primary contribution of *Exploring Failure Transparency and the
//! Limits of Generic Recovery* (Lowell, Chandra, Chen — OSDI 2000), as an
//! executable library:
//!
//! * the **computation model** of §2.2 — processes as state machines,
//!   events classified as deterministic, non-deterministic (transient or
//!   fixed), sends, receives, visibles, commits, and crashes
//!   ([`event`], [`clock`], [`trace`]);
//! * the **Save-work invariant** and theorem checker (§2.3) with its
//!   visible and no-orphan sub-rules, plus orphan detection ([`savework`]);
//! * **consistent recovery** as duplicate-tolerant output equivalence
//!   ([`consistency`]);
//! * the **dangerous-paths algorithms** (single- and multi-process) and the
//!   **Lose-work theorem** (§2.5) over explicit state graphs ([`graph`]),
//!   plus the measurable commit-after-activation criterion of §4 and the
//!   Save-work/Lose-work conflict arithmetic ([`losework`]);
//! * the seven **recovery protocols** of §2.4/§3 as pure commit-decision
//!   planners ([`protocol`]), and the **protocol space** of Figures 3/4
//!   ([`space`]).
//!
//! Everything here is pure and simulation-agnostic; the substrate crates
//! (`ft-sim`, `ft-mem`, `ft-dc`, …) execute real workloads against these
//! definitions and the checkers verify the executions after the fact.
//!
//! ## Quick example
//!
//! ```
//! use ft_core::event::{NdSource, ProcessId};
//! use ft_core::savework::check_save_work;
//! use ft_core::trace::TraceBuilder;
//!
//! // The coin-flip application of Figure 1: without a commit between the
//! // non-deterministic flip and the visible output, Save-work is violated
//! // and consistent recovery cannot be guaranteed.
//! let p = ProcessId(0);
//! let mut run = TraceBuilder::new(1);
//! run.nd(p, NdSource::Random);
//! run.visible(p, /* "heads" */ 1);
//! assert!(check_save_work(&run.finish()).is_err());
//!
//! // Committing the flip first restores the guarantee.
//! let mut run = TraceBuilder::new(1);
//! run.nd(p, NdSource::Random);
//! run.commit(p);
//! run.visible(p, 1);
//! assert!(check_save_work(&run.finish()).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod avail;
pub mod clock;
pub mod consistency;
pub mod event;
pub mod graph;
pub mod losework;
pub mod oracle;
pub mod protocol;
pub mod render;
pub mod savework;
pub mod space;
pub mod trace;

pub use avail::{availability, nines, total_downtime_ns, Incident};
pub use clock::{happens_before, VectorClock};
pub use consistency::{
    check_consistent_recovery, check_consistent_recovery_multi, check_equivalence, ConsistencyError,
};
pub use event::{Event, EventId, EventKind, MsgId, NdClass, NdSource, ProcessId};
pub use graph::{check_lose_work, DangerousPaths, EdgeKind, StateGraph};
pub use losework::{check_commit_after_activation, conflict_composition, LoseWorkOutcome};
pub use oracle::{
    check_commit_durability, check_prefix_extension, check_recovery, InvariantViolation,
    OracleVerdict,
};
pub use protocol::{
    coordinated_participants, CommitPlanner, CommitScope, Decision, DepTracker, InterceptedEvent,
    Protocol,
};
pub use render::render_trace;
pub use savework::{check_save_work, find_orphans, SaveWorkViolation};
pub use trace::{Trace, TraceBuilder};
