//! Human-readable trace rendering: one column per process, one row per
//! happens-before "tick", commits and crashes highlighted. A debugging and
//! teaching aid — the ASCII analogue of the paper's timeline figures.

use crate::event::{Event, EventKind, ProcessId};
use crate::trace::Trace;

/// Renders a short label for one event.
pub fn event_label(e: &Event) -> String {
    let core = match e.kind {
        EventKind::Internal => "·".to_string(),
        EventKind::NonDeterministic { source, class } => format!(
            "nd:{source}{}",
            if class == crate::event::NdClass::Fixed {
                "(fixed)"
            } else {
                ""
            }
        ),
        EventKind::Send { to, msg } => format!("send→P{} m{}", to.0, msg.0),
        EventKind::Recv { from, msg } => format!("recv←P{} m{}", from.0, msg.0),
        EventKind::Visible { token } => format!("VISIBLE {:x}", token & 0xFFFF),
        EventKind::Commit { commit_id } => format!("COMMIT #{commit_id}"),
        EventKind::Crash => "CRASH".to_string(),
        EventKind::FaultActivation { fault } => format!("fault!{fault}"),
        EventKind::Rollback { to_seq } => format!("ROLLBACK→{to_seq}"),
    };
    if e.logged {
        format!("[{core}]")
    } else {
        core
    }
}

/// Renders a trace as aligned per-process columns in program order.
///
/// # Examples
///
/// ```
/// use ft_core::trace::TraceBuilder;
/// use ft_core::event::{NdSource, ProcessId};
/// use ft_core::render::render_trace;
///
/// let mut b = TraceBuilder::new(2);
/// b.nd(ProcessId(0), NdSource::UserInput);
/// b.commit(ProcessId(0));
/// b.visible(ProcessId(0), 7);
/// let out = render_trace(&b.finish(), 40);
/// assert!(out.contains("COMMIT"));
/// assert!(out.contains("VISIBLE"));
/// ```
pub fn render_trace(trace: &Trace, max_rows: usize) -> String {
    let n = trace.num_processes();
    let mut out = String::new();
    let width = 24;
    for p in 0..n {
        out.push_str(&format!("{:<width$}", format!("P{p}")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(width * n));
    out.push('\n');
    let rows = (0..n)
        .map(|p| trace.process(ProcessId::from_index(p)).len())
        .max()
        .unwrap_or(0);
    let shown = rows.min(max_rows);
    for r in 0..shown {
        for p in 0..n {
            let cell = trace
                .process(ProcessId::from_index(p))
                .get(r)
                .map(event_label)
                .unwrap_or_default();
            out.push_str(&format!("{cell:<width$}"));
        }
        out.push('\n');
    }
    if rows > shown {
        out.push_str(&format!("… {} more rows\n", rows - shown));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NdSource;
    use crate::trace::TraceBuilder;

    #[test]
    fn renders_all_event_kinds() {
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        let mut b = TraceBuilder::new(2);
        b.internal(p0);
        b.nd(p0, NdSource::UserInput);
        b.nd_logged(p1, NdSource::MessageRecv);
        let (_, m) = b.send(p0, p1);
        b.recv(p1, p0, m);
        b.visible(p0, 0xBEEF);
        b.commit(p1);
        b.fault_activation(p0, 3);
        b.crash(p0);
        b.rollback(p0, 2);
        let out = render_trace(&b.finish(), 100);
        for needle in [
            "nd:user-input(fixed)",
            "send→P1",
            "recv←P0",
            "VISIBLE",
            "COMMIT #0",
            "fault!3",
            "CRASH",
            "ROLLBACK→2",
            "[nd:message-recv]",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn truncates_long_traces() {
        let mut b = TraceBuilder::new(1);
        for _ in 0..50 {
            b.internal(ProcessId(0));
        }
        let out = render_trace(&b.finish(), 10);
        assert!(out.contains("… 40 more rows"));
    }
}
