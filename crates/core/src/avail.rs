//! Incident and availability accounting for the continuous-fault campaign.
//!
//! The paper's evaluation scores each protocol per *single* injected
//! crash; the availability campaign instead drives a sustained Poisson
//! fault process and measures the operational consequences. The unit of
//! accounting is the [`Incident`]: everything between a crash landing on
//! a process and that process catching back up to where it was. From a
//! trial's incident list the campaign derives the three classic
//! serviceability metrics — MTTR percentiles, steady-state availability
//! (and its "nines"), and goodput relative to a failure-free baseline.
//!
//! These types are pure bookkeeping: the runtime (`ft-dc`) fills them in,
//! the benchmark layer aggregates them, and `ft_core::oracle` separately
//! adjudicates whether each trial's recovery was *consistent* — metrics
//! here never substitute for the Save-work verdict.

/// One crash-to-recovery episode of a single process.
///
/// An incident opens when a crash lands and closes when the process has
/// re-executed past the trace position it had reached before the crash
/// (or finishes its workload). Repeated failures before catch-up — e.g. a
/// microreboot that does not stick — extend the same incident rather than
/// opening a new one, so MTTR reflects the user-observed outage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// The crashed process.
    pub pid: u32,
    /// Simulated time at which the (first) crash of this incident landed.
    pub crash_at: u64,
    /// Simulated time at which the process caught back up, or `None` if
    /// the incident was still open when the trial ended (an abandoned
    /// recovery or a trial-horizon truncation).
    pub recovered_at: Option<u64>,
    /// Trace events rolled back and owed to re-execution, summed over
    /// every failure folded into this incident — the "re-execution work"
    /// column of the campaign.
    pub lost_events: u64,
    /// Partial-restart (microreboot) attempts spent on this incident.
    pub microreboot_attempts: u32,
    /// Restart delay of each microreboot attempt, in order — the ladder's
    /// realized backoff schedule.
    pub attempt_delays: Vec<u64>,
    /// Whether the ladder was exhausted and recovery escalated to a full
    /// rollback.
    pub escalated: bool,
}

impl Incident {
    /// Crash-to-recovery latency, or `None` while unresolved.
    pub fn mttr_ns(&self) -> Option<u64> {
        self.recovered_at.map(|r| r.saturating_sub(self.crash_at))
    }

    /// Downtime this incident contributes within a horizon ending at
    /// `end_ns`: unresolved incidents count as down through the horizon.
    pub fn downtime_ns(&self, end_ns: u64) -> u64 {
        let until = self.recovered_at.unwrap_or(end_ns).min(end_ns);
        until.saturating_sub(self.crash_at)
    }
}

/// Total downtime of a set of incidents within a horizon.
pub fn total_downtime_ns(incidents: &[Incident], end_ns: u64) -> u64 {
    incidents.iter().map(|i| i.downtime_ns(end_ns)).sum()
}

/// Steady-state availability: the fraction of process-time spent up.
///
/// With `procs` processes observed over `horizon_ns`, the denominator is
/// `procs * horizon_ns` process-nanoseconds. Returns 1.0 for an empty
/// horizon (no observed time, no observed downtime).
pub fn availability(downtime_ns: u64, procs: u64, horizon_ns: u64) -> f64 {
    let total = procs.saturating_mul(horizon_ns);
    if total == 0 {
        return 1.0;
    }
    let down = downtime_ns.min(total);
    1.0 - down as f64 / total as f64
}

/// The "nines" of an availability figure: `-log10(1 - a)`, so 0.999 → 3.
///
/// Clamped to `[0, 9]`: a perfect (or better-than-observable) figure
/// reports 9 — the simulation horizon cannot resolve more — and anything
/// at or below zero availability reports 0.
pub fn nines(availability: f64) -> f64 {
    if availability >= 1.0 {
        return 9.0;
    }
    if availability <= 0.0 {
        return 0.0;
    }
    (-(1.0 - availability).log10()).clamp(0.0, 9.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incident(crash_at: u64, recovered_at: Option<u64>) -> Incident {
        Incident {
            pid: 0,
            crash_at,
            recovered_at,
            lost_events: 0,
            microreboot_attempts: 0,
            attempt_delays: Vec::new(),
            escalated: false,
        }
    }

    #[test]
    fn mttr_is_crash_to_recovery() {
        assert_eq!(incident(100, Some(350)).mttr_ns(), Some(250));
        assert_eq!(incident(100, None).mttr_ns(), None);
    }

    #[test]
    fn downtime_counts_unresolved_through_horizon() {
        assert_eq!(incident(100, Some(350)).downtime_ns(1000), 250);
        assert_eq!(incident(100, None).downtime_ns(1000), 900);
        // Recovery recorded past the horizon is clipped to it.
        assert_eq!(incident(100, Some(1500)).downtime_ns(1000), 900);
    }

    #[test]
    fn total_downtime_sums_incidents() {
        let v = vec![
            incident(0, Some(10)),
            incident(50, Some(75)),
            incident(90, None),
        ];
        assert_eq!(total_downtime_ns(&v, 100), 10 + 25 + 10);
    }

    #[test]
    fn availability_fractions() {
        assert_eq!(availability(0, 4, 1000), 1.0);
        let a = availability(100, 1, 1000);
        assert!((a - 0.9).abs() < 1e-12);
        // Four processes, one down for the whole horizon: 75%.
        let a = availability(1000, 4, 1000);
        assert!((a - 0.75).abs() < 1e-12);
        // Degenerate horizon.
        assert_eq!(availability(123, 0, 1000), 1.0);
        assert_eq!(availability(123, 4, 0), 1.0);
        // Downtime can never exceed observed process-time.
        assert_eq!(availability(u64::MAX, 2, 10), 0.0);
    }

    #[test]
    fn nines_of_common_availabilities() {
        assert!((nines(0.9) - 1.0).abs() < 1e-9);
        assert!((nines(0.999) - 3.0).abs() < 1e-9);
        assert_eq!(nines(1.0), 9.0);
        assert_eq!(nines(0.0), 0.0);
        assert_eq!(nines(-0.5), 0.0);
        // Sub-one-nine availabilities still report their fraction.
        assert!((nines(0.5) - 0.5f64.log10().abs()).abs() < 1e-9);
    }
}
