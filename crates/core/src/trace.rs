//! Traces: the recorded event history of a computation.
//!
//! A [`Trace`] holds the per-process event sequences of one (possibly failed
//! and recovered) execution, with vector clocks maintained so the checkers
//! in [`crate::savework`], [`crate::losework`], and [`crate::consistency`]
//! can ask causal questions after the fact. Traces are built through a
//! [`TraceBuilder`], which owns the clock discipline: ticking the executing
//! process's component on each event, and joining the sender's clock into
//! the receiver's on a receive.

use std::collections::HashMap;

use crate::clock::{happens_before, VectorClock};
use crate::event::{Event, EventId, EventKind, MsgId, NdClass, NdSource, ProcessId};

/// Chunk size for reserve-ahead appends on recording hot paths.
pub const RECORD_CHUNK: usize = 256;

/// Reserve-ahead chunked append for recording hot paths: reserves a whole
/// [`RECORD_CHUNK`] whenever the vector is at capacity, so a fresh log
/// skips the 1-2-4-8 doubling cascade of plain `push` (one allocation per
/// 256 records early on). Still amortized O(1): once the vector is large,
/// `Vec::reserve` grows at least geometrically regardless of the
/// requested additional capacity.
#[inline]
pub fn chunked_push<T>(v: &mut Vec<T>, x: T) {
    if v.len() == v.capacity() {
        v.reserve(RECORD_CHUNK);
    }
    v.push(x);
}

/// A recorded execution of a computation.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// `events[p]` is the event sequence of process `p`, in program order.
    events: Vec<Vec<Event>>,
}

impl Trace {
    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.events.len()
    }

    /// The events of process `p`, in program order.
    pub fn process(&self, p: ProcessId) -> &[Event] {
        &self.events[p.index()]
    }

    /// Looks up an event by id.
    pub fn get(&self, id: EventId) -> Option<&Event> {
        self.events
            .get(id.pid.index())?
            .get(usize::try_from(id.seq).ok()?)
    }

    /// Iterates over all events of all processes.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().flatten()
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Happens-before between two recorded events.
    ///
    /// # Panics
    ///
    /// Panics if either id is not in the trace.
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        let ea = self.get(a).expect("event a not in trace");
        let eb = self.get(b).expect("event b not in trace");
        happens_before(a.pid, &ea.clock, b.pid, &eb.clock)
    }

    /// All commit events of process `p`, in program order.
    pub fn commits_of(&self, p: ProcessId) -> impl Iterator<Item = &Event> {
        self.process(p).iter().filter(|e| e.kind.is_commit())
    }

    /// The visible-output token sequence of the whole computation, in a
    /// global order consistent with causality (here: by interleaving
    /// recorded order; the builder records events in execution order).
    pub fn visible_sequence(&self) -> Vec<u64> {
        // Events are globally ordered by the builder-assigned global seq.
        let mut vis: Vec<(u64, u64)> = Vec::new();
        for e in self.iter() {
            if let EventKind::Visible { token } = e.kind {
                vis.push((e.clock.components().iter().sum::<u64>(), token));
            }
        }
        // A causal order suffices for the duplicate-equivalence check; sort
        // by clock mass, which respects happens-before, tie-broken stably.
        vis.sort_by_key(|&(mass, _)| mass);
        vis.into_iter().map(|(_, t)| t).collect()
    }

    /// Number of commit events across all processes.
    pub fn total_commits(&self) -> usize {
        self.iter().filter(|e| e.kind.is_commit()).count()
    }
}

/// Incremental builder for a [`Trace`].
///
/// The builder maintains one vector clock per process and the send-side
/// clock of every in-flight message, so receives acquire the correct causal
/// history.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    n: usize,
    clocks: Vec<VectorClock>,
    causal_clocks: Vec<VectorClock>,
    trace: Trace,
    /// Clocks captured at each send (happens-before, causal), keyed by
    /// message id, consumed at recv. Determinism: keyed insert/remove
    /// only, never iterated — hash order cannot reach any output.
    msg_clocks: HashMap<MsgId, (VectorClock, VectorClock)>,
    next_msg: u64,
    next_commit: u64,
    next_group: u64,
}

impl TraceBuilder {
    /// Creates a builder for a computation of `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            clocks: (0..n).map(|_| VectorClock::new(n)).collect(),
            causal_clocks: (0..n).map(|_| VectorClock::new(n)).collect(),
            trace: Trace {
                events: vec![Vec::new(); n],
            },
            msg_clocks: HashMap::new(),
            next_msg: 0,
            next_commit: 0,
            next_group: 0,
        }
    }

    fn push(&mut self, p: ProcessId, kind: EventKind, logged: bool) -> EventId {
        self.push_grouped(p, kind, logged, None)
    }

    fn push_grouped(
        &mut self,
        p: ProcessId,
        kind: EventKind,
        logged: bool,
        atomic_group: Option<u64>,
    ) -> EventId {
        assert!(p.index() < self.n, "process id out of range");
        self.clocks[p.index()].tick(p);
        self.causal_clocks[p.index()].tick(p);
        let seq = self.trace.events[p.index()].len() as u64;
        let id = EventId::new(p, seq);
        let ev = Event {
            id,
            kind,
            clock: self.clocks[p.index()].clone(),
            causal: self.causal_clocks[p.index()].clone(),
            logged,
            atomic_group,
        };
        chunked_push(&mut self.trace.events[p.index()], ev);
        id
    }

    /// Records a deterministic internal event.
    pub fn internal(&mut self, p: ProcessId) -> EventId {
        self.push(p, EventKind::Internal, false)
    }

    /// Records a non-deterministic event from `source` with its default
    /// classification.
    pub fn nd(&mut self, p: ProcessId, source: NdSource) -> EventId {
        self.nd_with(p, source, source.default_class(), false)
    }

    /// Records a non-deterministic event that has been logged (rendered
    /// deterministic).
    pub fn nd_logged(&mut self, p: ProcessId, source: NdSource) -> EventId {
        self.nd_with(p, source, source.default_class(), true)
    }

    /// Records a non-deterministic event with explicit class and logging.
    pub fn nd_with(
        &mut self,
        p: ProcessId,
        source: NdSource,
        class: NdClass,
        logged: bool,
    ) -> EventId {
        self.push(p, EventKind::NonDeterministic { source, class }, logged)
    }

    /// Records a send from `from` to `to`, returning the event id and the
    /// fresh message id the matching receive must use.
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> (EventId, MsgId) {
        let msg = MsgId(self.next_msg);
        self.next_msg += 1;
        let id = self.push(from, EventKind::Send { to, msg }, false);
        // Capture the clocks after the send for the receive to join.
        self.msg_clocks.insert(
            msg,
            (
                self.clocks[from.index()].clone(),
                self.causal_clocks[from.index()].clone(),
            ),
        );
        (id, msg)
    }

    /// Records a *control* send from the recovery layer (e.g. a two-phase
    /// commit prepare or ack). Control messages order events (they join the
    /// happens-before clock at the receive) but transmit no application
    /// state, so they do not join the causal clock and generate no
    /// Save-work obligations.
    pub fn send_control(&mut self, from: ProcessId, to: ProcessId) -> (EventId, MsgId) {
        let msg = MsgId(self.next_msg);
        self.next_msg += 1;
        let id = self.push(from, EventKind::Send { to, msg }, true);
        self.msg_clocks.insert(
            msg,
            (
                self.clocks[from.index()].clone(),
                self.causal_clocks[from.index()].clone(),
            ),
        );
        (id, msg)
    }

    /// Records the receive of a control message: deterministic from the
    /// application's point of view (logged), joining only the
    /// happens-before clock.
    ///
    /// # Panics
    ///
    /// Panics if `msg` was never sent.
    pub fn recv_control(&mut self, to: ProcessId, from: ProcessId, msg: MsgId) -> EventId {
        let (hb, _) = self
            .msg_clocks
            .get(&msg)
            .cloned()
            .expect("receive of a message that was never sent");
        self.clocks[to.index()].join(&hb);
        self.push(to, EventKind::Recv { from, msg }, true)
    }

    /// Records a receive of message `msg` (previously sent via
    /// [`TraceBuilder::send`]) by process `to`.
    ///
    /// # Panics
    ///
    /// Panics if `msg` was never sent.
    pub fn recv(&mut self, to: ProcessId, from: ProcessId, msg: MsgId) -> EventId {
        self.recv_with(to, from, msg, false)
    }

    /// Records a receive whose non-determinism has been logged.
    pub fn recv_logged(&mut self, to: ProcessId, from: ProcessId, msg: MsgId) -> EventId {
        self.recv_with(to, from, msg, true)
    }

    fn recv_with(&mut self, to: ProcessId, from: ProcessId, msg: MsgId, logged: bool) -> EventId {
        let (hb, causal) = self
            .msg_clocks
            .get(&msg)
            .cloned()
            .expect("receive of a message that was never sent");
        self.clocks[to.index()].join(&hb);
        self.causal_clocks[to.index()].join(&causal);
        self.push(to, EventKind::Recv { from, msg }, logged)
    }

    /// Records a visible (user-observable) output event.
    pub fn visible(&mut self, p: ProcessId, token: u64) -> EventId {
        self.push(p, EventKind::Visible { token }, false)
    }

    /// Records a commit event, returning its id.
    pub fn commit(&mut self, p: ProcessId) -> EventId {
        let cid = self.next_commit;
        self.next_commit += 1;
        self.push(p, EventKind::Commit { commit_id: cid }, false)
    }

    /// Records a coordinated (two-phase) commit across `participants`: one
    /// commit event per participant, all sharing an atomic group so the
    /// Save-work checker treats them as atomic with one another.
    ///
    /// The caller is responsible for also recording the coordination
    /// messages if it wants the happens-before edges they induce; the atomic
    /// group alone is what makes the commits cover each other's
    /// dependencies.
    pub fn coordinated_commit(&mut self, participants: &[ProcessId]) -> Vec<EventId> {
        let group = self.next_group;
        self.next_group += 1;
        participants
            .iter()
            .map(|&p| {
                let cid = self.next_commit;
                self.next_commit += 1;
                self.push_grouped(p, EventKind::Commit { commit_id: cid }, false, Some(group))
            })
            .collect()
    }

    /// Records a crash event.
    pub fn crash(&mut self, p: ProcessId) -> EventId {
        self.push(p, EventKind::Crash, false)
    }

    /// Records a fault-activation journal marker.
    pub fn fault_activation(&mut self, p: ProcessId, fault: u32) -> EventId {
        self.push(p, EventKind::FaultActivation { fault }, false)
    }

    /// Records that recovery rolled `p` back to `to_seq` (its events with
    /// sequence numbers in `[to_seq, now)` were undone).
    pub fn rollback(&mut self, p: ProcessId, to_seq: u64) -> EventId {
        self.push(p, EventKind::Rollback { to_seq }, false)
    }

    /// Number of events recorded so far for `p` (the next event's seq).
    pub fn position(&self, p: ProcessId) -> u64 {
        self.trace.events[p.index()].len() as u64
    }

    /// Finishes the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    /// Read access to the trace built so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn program_order_is_happens_before() {
        let mut b = TraceBuilder::new(1);
        let e0 = b.internal(p(0));
        let e1 = b.visible(p(0), 42);
        let t = b.finish();
        assert!(t.happens_before(e0, e1));
        assert!(!t.happens_before(e1, e0));
    }

    #[test]
    fn message_creates_cross_process_order() {
        let mut b = TraceBuilder::new(2);
        let nd = b.nd(p(0), NdSource::TimeOfDay);
        let (s, m) = b.send(p(0), p(1));
        let r = b.recv(p(1), p(0), m);
        let v = b.visible(p(1), 1);
        let t = b.finish();
        assert!(t.happens_before(nd, s));
        assert!(t.happens_before(s, r));
        assert!(t.happens_before(nd, v));
    }

    #[test]
    fn unrelated_events_concurrent() {
        let mut b = TraceBuilder::new(2);
        let a = b.internal(p(0));
        let c = b.internal(p(1));
        let t = b.finish();
        assert!(!t.happens_before(a, c));
        assert!(!t.happens_before(c, a));
    }

    #[test]
    #[should_panic(expected = "never sent")]
    fn recv_of_unsent_message_panics() {
        let mut b = TraceBuilder::new(2);
        b.recv(p(1), p(0), MsgId(99));
    }

    #[test]
    fn visible_sequence_orders_causally() {
        let mut b = TraceBuilder::new(2);
        b.visible(p(0), 10);
        let (_, m) = b.send(p(0), p(1));
        b.recv(p(1), p(0), m);
        b.visible(p(1), 20);
        let t = b.finish();
        assert_eq!(t.visible_sequence(), vec![10, 20]);
    }

    #[test]
    fn commit_ids_are_unique_and_counted() {
        let mut b = TraceBuilder::new(2);
        b.commit(p(0));
        b.commit(p(1));
        b.commit(p(0));
        let t = b.finish();
        assert_eq!(t.total_commits(), 3);
        let ids: Vec<u64> = t
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Commit { commit_id } => Some(commit_id),
                _ => None,
            })
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn get_and_len() {
        let mut b = TraceBuilder::new(2);
        let e = b.internal(p(1));
        let t = b.finish();
        assert_eq!(t.len(), 1);
        assert!(t.get(e).is_some());
        assert!(t.get(EventId::new(p(0), 0)).is_none());
        assert_eq!(t.num_processes(), 2);
    }
}
