//! Recovery protocols for upholding the Save-work invariant (§2.4).
//!
//! The paper implements seven protocols in Discount Checking:
//!
//! | Protocol     | Rule                                                            |
//! |--------------|-----------------------------------------------------------------|
//! | CAND         | Commit immediately **A**fter every **N**on-**D**eterministic event |
//! | CPVS         | **C**ommit **P**rior to every **V**isible or **S**end event      |
//! | CBNDVS       | Commit **B**etween **ND** and **V**isible-or-**S**end (only if dirty) |
//! | CAND-LOG     | CAND, with user input and receives logged (rendered deterministic) |
//! | CBNDVS-LOG   | CBNDVS with logging                                              |
//! | CPV-2PC      | Commit prior to visible only, coordinated across all processes   |
//! | CBNDV-2PC    | As CPV-2PC but only dirty processes commit                       |
//!
//! A [`CommitPlanner`] turns a protocol into a pure decision function the
//! checkpointing runtime consults at every intercepted event: whether to
//! log the event, and whether to commit before (locally or coordinated)
//! and/or after it.

use crate::event::NdSource;

/// A recovery protocol for upholding Save-work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Commit every event — the origin of the protocol space. Trivially
    /// correct: needs no knowledge of event types.
    CommitAll,
    /// Commit immediately after every non-deterministic event.
    Cand,
    /// CAND with user-input and receive logging.
    CandLog,
    /// Commit prior to every visible or send event.
    Cpvs,
    /// Commit between non-determinism and a visible or send event: commit
    /// before a visible/send only if a non-deterministic event executed
    /// since the last commit.
    Cbndvs,
    /// CBNDVS with user-input and receive logging.
    CbndvsLog,
    /// Two-phase commit before visible events only: all processes commit
    /// whenever any process executes a visible event; no commits before
    /// sends.
    Cpv2pc,
    /// As [`Protocol::Cpv2pc`], but only processes with uncommitted
    /// non-determinism commit in the coordinated round.
    Cbndv2pc,
}

impl Protocol {
    /// The seven protocols measured in Figure 8, in the paper's order.
    pub const FIGURE8: [Protocol; 7] = [
        Protocol::Cand,
        Protocol::CandLog,
        Protocol::Cpvs,
        Protocol::Cbndvs,
        Protocol::CbndvsLog,
        Protocol::Cpv2pc,
        Protocol::Cbndv2pc,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::CommitAll => "COMMIT-ALL",
            Protocol::Cand => "CAND",
            Protocol::CandLog => "CAND-LOG",
            Protocol::Cpvs => "CPVS",
            Protocol::Cbndvs => "CBNDVS",
            Protocol::CbndvsLog => "CBNDVS-LOG",
            Protocol::Cpv2pc => "CPV-2PC",
            Protocol::Cbndv2pc => "CBNDV-2PC",
        }
    }

    /// Does this protocol log events from `source` to render them
    /// deterministic?
    ///
    /// Per §3, Discount Checking's logging covers non-deterministic *user
    /// input* and *message receive* events; other sources (signals,
    /// `gettimeofday`, scheduling) stay non-deterministic.
    pub fn logs(self, source: NdSource) -> bool {
        match self {
            Protocol::CandLog | Protocol::CbndvsLog => {
                matches!(source, NdSource::UserInput | NdSource::MessageRecv)
            }
            _ => false,
        }
    }

    /// Does this protocol use a coordinated (two-phase) commit before
    /// visible events?
    pub fn is_two_phase(self) -> bool {
        matches!(self, Protocol::Cpv2pc | Protocol::Cbndv2pc)
    }

    /// Does this protocol track whether non-determinism executed since the
    /// last commit (the "dirty" bit)?
    pub fn tracks_dirty(self) -> bool {
        matches!(
            self,
            Protocol::Cbndvs | Protocol::CbndvsLog | Protocol::Cbndv2pc
        )
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classification of an intercepted application event, from the
/// checkpointing runtime's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterceptedEvent {
    /// A non-deterministic event from `source` (including receives, which
    /// carry [`NdSource::MessageRecv`]).
    Nd {
        /// Where the non-determinism came from.
        source: NdSource,
    },
    /// A user-visible output.
    Visible,
    /// A message send to another process.
    Send,
    /// Anything else (deterministic computation, writes to private state).
    Other,
}

/// Scope of a commit decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitScope {
    /// No commit.
    None,
    /// This process commits locally.
    Local,
    /// A coordinated two-phase commit: every process in the computation is
    /// asked to commit (dirty-only filtering is applied by the runtime for
    /// [`Protocol::Cbndv2pc`]).
    Coordinated,
}

/// The planner's decision for one intercepted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Commit (and with what scope) immediately *before* the event.
    pub before: CommitScope,
    /// Commit locally immediately *after* the event.
    pub after: bool,
    /// Write the event's result to the non-determinism log (it is rendered
    /// deterministic and replayed on recovery).
    pub log: bool,
}

impl Decision {
    /// The no-op decision.
    pub const NONE: Decision = Decision {
        before: CommitScope::None,
        after: false,
        log: false,
    };
}

/// Per-process protocol state machine: consult [`CommitPlanner::decide`]
/// before executing each intercepted event, then apply the decision and call
/// [`CommitPlanner::note_committed`] whenever a commit actually executes
/// (including commits forced by a remote coordinator).
#[derive(Debug, Clone)]
pub struct CommitPlanner {
    protocol: Protocol,
    nd_since_commit: bool,
}

impl CommitPlanner {
    /// Creates a planner for `protocol`. A fresh process starts clean: its
    /// initial state is considered committed (§4).
    pub fn new(protocol: Protocol) -> Self {
        Self {
            protocol,
            nd_since_commit: false,
        }
    }

    /// The protocol this planner implements.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Has this process executed unlogged non-determinism since its last
    /// commit?
    pub fn is_dirty(&self) -> bool {
        self.nd_since_commit
    }

    /// Decides what to do for `event`.
    ///
    /// An unlogged non-deterministic event sets the dirty bit; the planner
    /// does **not** assume the decision's commits execute — the runtime must
    /// call [`CommitPlanner::note_committed`] on every process that actually
    /// commits (this matters for coordinated rounds, where the runtime needs
    /// to read each participant's dirty bit before clearing it).
    ///
    /// # Examples
    ///
    /// ```
    /// use ft_core::protocol::{CommitPlanner, CommitScope, InterceptedEvent, Protocol};
    /// use ft_core::event::NdSource;
    ///
    /// let mut p = CommitPlanner::new(Protocol::Cbndvs);
    /// // No nd yet: a visible event needs no commit.
    /// let d = p.decide(InterceptedEvent::Visible);
    /// assert_eq!(d.before, CommitScope::None);
    /// // After an nd event, the next visible forces a commit before it.
    /// p.decide(InterceptedEvent::Nd { source: NdSource::TimeOfDay });
    /// let d = p.decide(InterceptedEvent::Visible);
    /// assert_eq!(d.before, CommitScope::Local);
    /// ```
    pub fn decide(&mut self, event: InterceptedEvent) -> Decision {
        let mut d = Decision::NONE;
        match event {
            InterceptedEvent::Nd { source } => {
                if self.protocol.logs(source) {
                    d.log = true;
                } else {
                    match self.protocol {
                        Protocol::CommitAll | Protocol::Cand | Protocol::CandLog => {
                            d.after = true;
                        }
                        _ => {}
                    }
                    self.nd_since_commit = true;
                }
            }
            InterceptedEvent::Visible => match self.protocol {
                Protocol::CommitAll => d.after = true,
                Protocol::Cpvs => d.before = CommitScope::Local,
                Protocol::Cbndvs | Protocol::CbndvsLog => {
                    if self.nd_since_commit {
                        d.before = CommitScope::Local;
                    }
                }
                Protocol::Cpv2pc | Protocol::Cbndv2pc => {
                    d.before = CommitScope::Coordinated;
                }
                Protocol::Cand | Protocol::CandLog => {}
            },
            InterceptedEvent::Send => match self.protocol {
                Protocol::CommitAll => d.after = true,
                Protocol::Cpvs => d.before = CommitScope::Local,
                Protocol::Cbndvs | Protocol::CbndvsLog => {
                    if self.nd_since_commit {
                        d.before = CommitScope::Local;
                    }
                }
                // 2PC protocols do not commit before sends: a dependence on
                // an uncommitted nd event may flow to the receiver; the
                // coordinated commit at the next visible event covers it.
                Protocol::Cpv2pc | Protocol::Cbndv2pc => {}
                Protocol::Cand | Protocol::CandLog => {}
            },
            InterceptedEvent::Other => {
                if self.protocol == Protocol::CommitAll {
                    d.after = true;
                }
            }
        }
        d
    }

    /// Records that a commit executed (e.g. forced by a remote 2PC
    /// coordinator), clearing the dirty bit.
    pub fn note_committed(&mut self) {
        self.nd_since_commit = false;
    }

    /// Records that this process received a dependence on another process's
    /// uncommitted non-determinism (an unlogged receive already sets the
    /// dirty bit via [`CommitPlanner::decide`]; a *logged* receive of a
    /// tainted message must still dirty the receiver for
    /// [`Protocol::Cbndv2pc`] to include it in the coordinated round).
    pub fn note_tainted(&mut self) {
        self.nd_since_commit = true;
    }
}

/// Tracks which processes' *uncommitted non-determinism* this process
/// causally depends on, for coordinated-commit participant selection
/// (§2.4: "involving in the coordinated commit only those processes with
/// relevant non-deterministic events").
///
/// Senders piggyback their dependency snapshot on every application
/// message; receivers union it in. Whether the receive itself is logged is
/// irrelevant — logging renders the *receive* deterministic but the message
/// content still depends on the sender's non-determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepTracker {
    self_pid: u32,
    deps: std::collections::BTreeSet<u32>,
}

impl DepTracker {
    /// Creates a tracker for process `self_pid`, initially clean.
    pub fn new(self_pid: u32) -> Self {
        Self {
            self_pid,
            deps: std::collections::BTreeSet::new(),
        }
    }

    /// Records a local unlogged non-deterministic event.
    pub fn on_nd(&mut self) {
        self.deps.insert(self.self_pid);
    }

    /// Records the receipt of a message carrying the sender's dependency
    /// snapshot.
    pub fn on_recv(&mut self, sender_deps: &std::collections::BTreeSet<u32>, recv_logged: bool) {
        self.deps.extend(sender_deps.iter().copied());
        if !recv_logged {
            // The receive itself is non-deterministic.
            self.deps.insert(self.self_pid);
        }
    }

    /// The snapshot to piggyback on outgoing messages.
    pub fn snapshot(&self) -> std::collections::BTreeSet<u32> {
        self.deps.clone()
    }

    /// The processes this process currently depends on (possibly including
    /// itself).
    pub fn deps(&self) -> &std::collections::BTreeSet<u32> {
        &self.deps
    }

    /// Clears the tracker after this process's dependencies were committed.
    pub fn clear(&mut self) {
        self.deps.clear();
    }
}

/// Computes the participant set of a coordinated commit round: the
/// transitive closure of `coordinator`'s dependencies (a participant's own
/// commit is a Save-work target, so every process *it* depends on must
/// commit atomically too), always including the coordinator itself.
pub fn coordinated_participants(trackers: &[DepTracker], coordinator: u32) -> Vec<u32> {
    let mut set = std::collections::BTreeSet::new();
    set.insert(coordinator);
    let mut frontier = vec![coordinator];
    while let Some(p) = frontier.pop() {
        for &d in trackers[p as usize].deps() {
            if set.insert(d) {
                frontier.push(d);
            }
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nd(source: NdSource) -> InterceptedEvent {
        InterceptedEvent::Nd { source }
    }

    #[test]
    fn dep_tracker_unions_and_clears() {
        let mut a = DepTracker::new(0);
        let mut b = DepTracker::new(1);
        b.on_nd();
        a.on_recv(&b.snapshot(), true);
        assert!(a.deps().contains(&1));
        assert!(!a.deps().contains(&0)); // Logged recv: a itself stays clean.
        a.on_recv(&Default::default(), false);
        assert!(a.deps().contains(&0));
        a.clear();
        assert!(a.deps().is_empty());
    }

    #[test]
    fn participants_take_transitive_closure() {
        // P0 depends on P1; P1 depends on P2.
        let mut t0 = DepTracker::new(0);
        let mut t1 = DepTracker::new(1);
        let mut t2 = DepTracker::new(2);
        t2.on_nd();
        t1.on_recv(&t2.snapshot(), false);
        t0.on_recv(&t1.snapshot(), true);
        // NOTE: t0 received t1's snapshot which already includes 2 and 1,
        // but closure also chases what t1/t2 currently hold.
        let parts = coordinated_participants(&[t0, t1, t2], 0);
        assert_eq!(parts, vec![0, 1, 2]);
    }

    #[test]
    fn participants_of_clean_coordinator_is_just_itself() {
        let trackers = [DepTracker::new(0), DepTracker::new(1)];
        assert_eq!(coordinated_participants(&trackers, 1), vec![1]);
    }

    #[test]
    fn cand_commits_after_every_nd() {
        let mut p = CommitPlanner::new(Protocol::Cand);
        let d = p.decide(nd(NdSource::TimeOfDay));
        assert!(d.after);
        assert!(!d.log);
        let d = p.decide(nd(NdSource::UserInput));
        assert!(d.after);
        // But not after deterministic events or visibles.
        assert_eq!(p.decide(InterceptedEvent::Other), Decision::NONE);
        assert_eq!(p.decide(InterceptedEvent::Visible), Decision::NONE);
    }

    #[test]
    fn cand_log_logs_input_and_recv_but_commits_on_signals() {
        let mut p = CommitPlanner::new(Protocol::CandLog);
        let d = p.decide(nd(NdSource::UserInput));
        assert!(d.log);
        assert!(!d.after);
        let d = p.decide(nd(NdSource::MessageRecv));
        assert!(d.log);
        assert!(!d.after);
        let d = p.decide(nd(NdSource::Signal));
        assert!(!d.log);
        assert!(d.after);
    }

    #[test]
    fn cpvs_commits_before_visible_and_send() {
        let mut p = CommitPlanner::new(Protocol::Cpvs);
        assert_eq!(
            p.decide(InterceptedEvent::Visible).before,
            CommitScope::Local
        );
        assert_eq!(p.decide(InterceptedEvent::Send).before, CommitScope::Local);
        assert_eq!(p.decide(nd(NdSource::TimeOfDay)), Decision::NONE);
    }

    #[test]
    fn cbndvs_commits_only_when_dirty() {
        let mut p = CommitPlanner::new(Protocol::Cbndvs);
        assert_eq!(
            p.decide(InterceptedEvent::Visible).before,
            CommitScope::None
        );
        p.decide(nd(NdSource::Random));
        assert!(p.is_dirty());
        assert_eq!(p.decide(InterceptedEvent::Send).before, CommitScope::Local);
        p.note_committed();
        assert!(!p.is_dirty());
        // Clean again: next visible needs nothing.
        assert_eq!(
            p.decide(InterceptedEvent::Visible).before,
            CommitScope::None
        );
    }

    #[test]
    fn cbndvs_log_stays_clean_on_logged_sources() {
        let mut p = CommitPlanner::new(Protocol::CbndvsLog);
        p.decide(nd(NdSource::UserInput)); // Logged.
        assert!(!p.is_dirty());
        assert_eq!(
            p.decide(InterceptedEvent::Visible).before,
            CommitScope::None
        );
        p.decide(nd(NdSource::TimeOfDay)); // Unlogged.
        assert!(p.is_dirty());
        assert_eq!(
            p.decide(InterceptedEvent::Visible).before,
            CommitScope::Local
        );
    }

    #[test]
    fn two_phase_protocols_skip_send_commits() {
        for proto in [Protocol::Cpv2pc, Protocol::Cbndv2pc] {
            let mut p = CommitPlanner::new(proto);
            p.decide(nd(NdSource::MessageRecv));
            assert_eq!(p.decide(InterceptedEvent::Send).before, CommitScope::None);
            assert_eq!(
                p.decide(InterceptedEvent::Visible).before,
                CommitScope::Coordinated
            );
        }
    }

    #[test]
    fn note_committed_clears_dirty() {
        let mut p = CommitPlanner::new(Protocol::Cbndv2pc);
        p.decide(nd(NdSource::Signal));
        assert!(p.is_dirty());
        p.note_committed();
        assert!(!p.is_dirty());
        p.note_tainted();
        assert!(p.is_dirty());
    }

    #[test]
    fn commit_all_commits_everything() {
        let mut p = CommitPlanner::new(Protocol::CommitAll);
        assert!(p.decide(InterceptedEvent::Other).after);
        assert!(p.decide(nd(NdSource::Random)).after);
        assert!(p.decide(InterceptedEvent::Visible).after);
        assert!(p.decide(InterceptedEvent::Send).after);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Protocol::Cand.name(), "CAND");
        assert_eq!(Protocol::CandLog.name(), "CAND-LOG");
        assert_eq!(Protocol::Cpvs.name(), "CPVS");
        assert_eq!(Protocol::Cbndvs.name(), "CBNDVS");
        assert_eq!(Protocol::CbndvsLog.name(), "CBNDVS-LOG");
        assert_eq!(Protocol::Cpv2pc.name(), "CPV-2PC");
        assert_eq!(Protocol::Cbndv2pc.name(), "CBNDV-2PC");
        assert_eq!(Protocol::FIGURE8.len(), 7);
    }

    #[test]
    fn dirty_until_runtime_confirms_the_commit() {
        // CAND's decision is commit-after; the planner stays dirty until the
        // runtime confirms the commit executed.
        let mut p = CommitPlanner::new(Protocol::Cand);
        let d = p.decide(nd(NdSource::TimeOfDay));
        assert!(d.after);
        assert!(p.is_dirty());
        p.note_committed();
        assert!(!p.is_dirty());
    }
}
