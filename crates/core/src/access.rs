//! The shared-memory access stream: DSM-layer operation records for the
//! `ft-analyze` race passes.
//!
//! The event trace ([`crate::trace`]) captures the *causal* structure of a
//! run — sends, receives, commits — but deliberately abstracts away what
//! the application did to distributed shared memory between events. The
//! happens-before and lockset analyses need exactly that missing layer:
//! which bytes of the DSM region each process read and wrote, and where
//! the synchronization operations (lock acquire/release, barrier
//! completion) fell relative to those accesses.
//!
//! A [`ShmRecord`] therefore carries no clock of its own. It is stamped
//! with the process's **trace position** at the instant of the operation:
//! an operation at position `pos` is ordered after the process's event
//! `pos - 1` and before its event `pos`. The analyzer recovers the
//! operation's happens-before knowledge from the clock of event `pos - 1`
//! — every synchronization edge (message, lock grant, barrier diff,
//! two-phase-commit control round) is already materialized as recorded
//! message events, so the access stream composes with the trace without
//! any new edge machinery:
//!
//! * access `a` on process `p` at position `i` happens-before access `b`
//!   on process `q ≠ p` at position `j` iff `clock(q, j).get(p) > i`,
//!   where `clock(q, j)` is the clock of `q`'s event `j - 1`;
//! * on the same process, stream order is program order.
//!
//! Records are appended in global execution order by the simulator; the
//! stream is exactly as deterministic as the trace itself.

use crate::event::ProcessId;

/// One DSM-layer shared-memory operation, as reported by the DSM
/// frontend. Offsets are in bytes from the start of the shared region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmOp {
    /// Application-level read of `len` bytes at region offset `off`.
    Read {
        /// Byte offset in the shared region.
        off: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Application-level write of `len` bytes at region offset `off`.
    Write {
        /// Byte offset in the shared region.
        off: u32,
        /// Length in bytes.
        len: u32,
    },
    /// A lock acquisition completed (the grant was consumed). Subsequent
    /// accesses by this process hold `lock` until the matching release.
    LockAcq {
        /// Lock id.
        lock: u32,
    },
    /// A lock release was issued.
    LockRel {
        /// Lock id.
        lock: u32,
    },
    /// A barrier round completed on this process; `round` is the number
    /// of rounds this process has now completed. The lockset pass resets
    /// its per-location state machine at round boundaries (barrier-
    /// synchronized phases must not intersect their candidate locksets).
    Barrier {
        /// Completed barrier rounds on this process.
        round: u64,
    },
}

/// A stamped record in the global access stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmRecord {
    /// The process performing the operation.
    pub pid: ProcessId,
    /// The process's trace position at the operation: the number of
    /// events already recorded for `pid`. The operation is ordered after
    /// event `pos - 1` and before event `pos` of `pid`.
    pub pos: u64,
    /// The operation.
    pub op: ShmOp,
}

/// The whole access stream of a run, in global execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShmLog {
    /// Records in the order the simulator executed them.
    pub records: Vec<ShmRecord>,
}

impl ShmLog {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no operations were recorded (non-DSM workloads).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of data accesses (reads + writes), excluding sync records.
    pub fn data_accesses(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.op, ShmOp::Read { .. } | ShmOp::Write { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_access_count_excludes_sync_records() {
        let log = ShmLog {
            records: vec![
                ShmRecord {
                    pid: ProcessId(0),
                    pos: 0,
                    op: ShmOp::Read { off: 0, len: 8 },
                },
                ShmRecord {
                    pid: ProcessId(0),
                    pos: 1,
                    op: ShmOp::LockAcq { lock: 0 },
                },
                ShmRecord {
                    pid: ProcessId(1),
                    pos: 0,
                    op: ShmOp::Write { off: 8, len: 8 },
                },
                ShmRecord {
                    pid: ProcessId(1),
                    pos: 2,
                    op: ShmOp::Barrier { round: 1 },
                },
            ],
        };
        assert_eq!(log.len(), 4);
        assert_eq!(log.data_accesses(), 2);
        assert!(!log.is_empty());
        assert!(ShmLog::default().is_empty());
    }
}
