//! Trace-level Lose-work analysis and the Save-work/Lose-work conflict
//! arithmetic of §4.
//!
//! The graph-theoretic Lose-work checker lives in [`crate::graph`]; this
//! module implements the *measurable* criterion the paper uses in its fault
//! injection study (Table 1): a run violates Lose-work if the application
//! commits causally after the injected fault's activation — that commit
//! preserves (or guarantees regeneration of) the buggy state, so recovery
//! must re-crash. It also implements the §4.1 composition that combines the
//! fault-injection results with published Bohrbug/Heisenbug ratios into the
//! headline "transparent recovery impossible for >90% of application
//! faults" figure.

use crate::event::{EventId, EventKind, ProcessId};
use crate::trace::Trace;

/// The outcome of the Table 1 criterion on one crashed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoseWorkOutcome {
    /// No commit executed causally after the fault activation: rollback
    /// escapes the dangerous-path suffix, so generic recovery is possible
    /// (provided the activation itself depends on uncommitted transient
    /// non-determinism).
    Upheld,
    /// A commit executed causally after the fault activation; the committed
    /// state regenerates the crash and recovery is doomed.
    Violated {
        /// The fault-activation event.
        activation: EventId,
        /// The offending commit.
        commit: EventId,
    },
}

impl LoseWorkOutcome {
    /// True if the invariant was violated.
    pub fn is_violated(&self) -> bool {
        matches!(self, LoseWorkOutcome::Violated { .. })
    }
}

/// Applies the Table 1 criterion to a crashed run's trace: did any process
/// commit causally at-or-after a fault activation?
///
/// The activation may propagate across processes (a message carrying buggy
/// state); any commit that causally depends on the activation preserves the
/// failure, so the check uses happens-before rather than program order.
pub fn check_commit_after_activation(trace: &Trace) -> LoseWorkOutcome {
    // Collect activations.
    let activations: Vec<EventId> = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::FaultActivation { .. }))
        .map(|e| e.id)
        .collect();
    if activations.is_empty() {
        return LoseWorkOutcome::Upheld;
    }
    for q in 0..trace.num_processes() {
        let qid = ProcessId::from_index(q);
        for e in trace.process(qid) {
            if !e.kind.is_commit() {
                continue;
            }
            for &a in &activations {
                let after = if a.pid == qid {
                    a.seq < e.id.seq
                } else {
                    // Cross-process: buggy state reached the commit through
                    // application messages (causal clock).
                    a.seq < e.causal.get(a.pid)
                };
                if after {
                    return LoseWorkOutcome::Violated {
                        activation: a,
                        commit: e.id,
                    };
                }
            }
        }
    }
    LoseWorkOutcome::Upheld
}

/// Bohrbug/Heisenbug classification (§4.1, after Gray \[13\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugNature {
    /// Deterministic: the dangerous path extends back to the initial state
    /// of the program, which is always committed — Lose-work is inherently
    /// violated.
    Bohrbug,
    /// Depends on a transient non-deterministic event: rollback past that
    /// event gives recovery a chance.
    Heisenbug,
}

/// The §4.1 composition: given the fraction of *Heisenbug* crashes that
/// nonetheless violate Lose-work (from fault injection, Table 1) and the
/// fraction of field bugs that are Heisenbugs at all (5–15% per Chandra &
/// Chen), returns the fraction of application crashes for which Lose-work
/// is upheld — i.e. for which transparent recovery remains possible.
///
/// With the paper's numbers (35% violation, 15% Heisenbugs) this yields at
/// most `0.65 × 0.15 ≈ 10%`; Save-work and Lose-work conflict for the
/// remaining ~90%.
///
/// # Panics
///
/// Panics if either fraction is outside [0, 1].
pub fn conflict_composition(
    heisenbug_violation_fraction: f64,
    heisenbug_fraction: f64,
) -> ConflictEstimate {
    assert!(
        (0.0..=1.0).contains(&heisenbug_violation_fraction),
        "violation fraction out of range"
    );
    assert!(
        (0.0..=1.0).contains(&heisenbug_fraction),
        "heisenbug fraction out of range"
    );
    let upheld = (1.0 - heisenbug_violation_fraction) * heisenbug_fraction;
    ConflictEstimate {
        recovery_possible: upheld,
        invariants_conflict: 1.0 - upheld,
    }
}

/// Result of [`conflict_composition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConflictEstimate {
    /// Fraction of application crashes for which Lose-work is upheld and
    /// generic recovery can succeed.
    pub recovery_possible: f64,
    /// Fraction for which Save-work and Lose-work conflict.
    pub invariants_conflict: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NdSource;
    use crate::trace::TraceBuilder;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    #[test]
    fn commit_after_activation_violates() {
        // The Figure 9 timeline: transient nd → fault activation → commit
        // (forced by Save-work before the visible) → visible → crash.
        let mut b = TraceBuilder::new(1);
        b.nd(p(0), NdSource::SchedDecision);
        let a = b.fault_activation(p(0), 1);
        let c = b.commit(p(0));
        b.visible(p(0), 7);
        b.crash(p(0));
        let out = check_commit_after_activation(&b.finish());
        assert_eq!(
            out,
            LoseWorkOutcome::Violated {
                activation: a,
                commit: c
            }
        );
    }

    #[test]
    fn commit_before_activation_upholds() {
        let mut b = TraceBuilder::new(1);
        b.commit(p(0));
        b.nd(p(0), NdSource::SchedDecision);
        b.fault_activation(p(0), 1);
        b.crash(p(0));
        assert_eq!(
            check_commit_after_activation(&b.finish()),
            LoseWorkOutcome::Upheld
        );
    }

    #[test]
    fn no_activation_trivially_upholds() {
        let mut b = TraceBuilder::new(1);
        b.commit(p(0));
        b.visible(p(0), 1);
        assert!(!check_commit_after_activation(&b.finish()).is_violated());
    }

    #[test]
    fn cross_process_commit_after_propagated_activation_violates() {
        // P0 activates a fault, sends buggy state to P1, P1 commits.
        let mut b = TraceBuilder::new(2);
        b.fault_activation(p(0), 3);
        let (_, m) = b.send(p(0), p(1));
        b.recv(p(1), p(0), m);
        b.commit(p(1));
        b.crash(p(0));
        let out = check_commit_after_activation(&b.finish());
        assert!(out.is_violated());
        if let LoseWorkOutcome::Violated { commit, .. } = out {
            assert_eq!(commit.pid, p(1));
        }
    }

    #[test]
    fn concurrent_commit_does_not_violate() {
        // P1 commits concurrently with (not after) P0's activation.
        let mut b = TraceBuilder::new(2);
        b.commit(p(1));
        b.fault_activation(p(0), 3);
        b.crash(p(0));
        assert!(!check_commit_after_activation(&b.finish()).is_violated());
    }

    #[test]
    fn composition_reproduces_the_90_percent_figure() {
        // 35% of Heisenbug crashes violate Lose-work; 15% of bugs are
        // Heisenbugs → recovery possible for at most ~10% of crashes.
        let e = conflict_composition(0.35, 0.15);
        assert!((e.recovery_possible - 0.0975).abs() < 1e-9);
        assert!(e.invariants_conflict > 0.90);
    }

    #[test]
    fn composition_bounds() {
        let e = conflict_composition(0.0, 1.0);
        assert!((e.recovery_possible - 1.0).abs() < 1e-12);
        let e = conflict_composition(1.0, 1.0);
        assert_eq!(e.recovery_possible, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn composition_rejects_bad_fractions() {
        conflict_composition(1.5, 0.1);
    }
}
