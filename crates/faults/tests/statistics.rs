//! Statistical and splitting validation of the fault/population streams:
//! exponential inter-arrival moments, and the O(1)-split determinism
//! that makes sharded campaigns bitwise-identical to serial ones.

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use ft_faults::arrivals::ExpSampler;
use ft_faults::population::OpenLoopPopulation;
use ft_sim::rng::SplitMix64;

/// Inter-arrival gaps have exponential mean AND variance: mean ≈ 1/λ and
/// variance ≈ 1/λ² (the coefficient of variation of an exponential is
/// exactly 1 — a Poisson process, not a jittered clock).
#[test]
fn poisson_interarrival_mean_and_variance_match_rate() {
    const RATE: f64 = 250.0; // per second
    const N: usize = 100_000;
    let mut s = ExpSampler::new(0x9A15, RATE);
    let gaps: Vec<f64> = (0..N).map(|_| s.next_gap_ns() as f64 / 1e9).collect();
    let mean = gaps.iter().sum::<f64>() / N as f64;
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / (N - 1) as f64;
    let expect_mean = 1.0 / RATE;
    let expect_var = expect_mean * expect_mean;
    assert!(
        (mean - expect_mean).abs() / expect_mean < 0.02,
        "mean {mean:.6}s vs 1/λ {expect_mean:.6}s"
    );
    assert!(
        (var - expect_var).abs() / expect_var < 0.05,
        "variance {var:.3e} vs 1/λ² {expect_var:.3e}"
    );
}

/// `gap_ns(n)` (the O(1) random-access draw) is byte-identical to
/// advancing the sequential sampler `n` steps — including straddling
/// arbitrary "shard boundary" offsets.
#[test]
fn random_access_gap_equals_sequential_advance() {
    let rate = 40.0;
    let reference = ExpSampler::new(0x0C0A, rate);
    let mut walker = ExpSampler::new(0x0C0A, rate);
    let sequential: Vec<u64> = (0..512).map(|_| walker.next_gap_ns()).collect();
    for boundary in [0usize, 1, 7, 64, 129, 511] {
        assert_eq!(
            reference.gap_ns(boundary as u64),
            sequential[boundary],
            "gap {boundary} diverges from the sequential stream"
        );
    }
    // A shard starting mid-stream reproduces the suffix exactly.
    let suffix: Vec<u64> = (129..512).map(|i| reference.gap_ns(i as u64)).collect();
    assert_eq!(&suffix[..], &sequential[129..]);
}

/// `SplitMix64::nth(k)` equals `k` sequential `next_u64` advances, so a
/// shard seeded at offset `k` continues the serial stream bit for bit.
#[test]
fn splitmix_nth_equals_k_step_advance() {
    let base = SplitMix64::new(0x5EED);
    let mut walk = SplitMix64::new(0x5EED);
    for k in 0..200u64 {
        assert_eq!(base.nth(k), walk.next_u64(), "nth({k}) != step {k}");
    }
}

/// Two shards of an open-loop population, each recomputing its half of
/// the gap/attribution streams independently from the same seed, produce
/// byte-identical results to one serial pass — at every split point.
#[test]
fn population_streams_are_identical_across_shard_boundaries() {
    let pop_a = OpenLoopPopulation::new(0xB00B, 10_000, 3.0);
    let pop_b = OpenLoopPopulation::new(0xB00B, 10_000, 3.0);
    let serial: Vec<(u64, u64)> = (0..256)
        .map(|i| (pop_a.gap_ns(i), pop_a.session_of(i)))
        .collect();
    for split in [1usize, 63, 100, 255] {
        let left: Vec<(u64, u64)> = (0..split as u64)
            .map(|i| (pop_b.gap_ns(i), pop_b.session_of(i)))
            .collect();
        let right: Vec<(u64, u64)> = (split as u64..256)
            .map(|i| (pop_b.gap_ns(i), pop_b.session_of(i)))
            .collect();
        assert_eq!(&serial[..split], &left[..]);
        assert_eq!(&serial[split..], &right[..]);
    }
}
