//! Open-loop client population generator for planet-scale workloads.
//!
//! A closed-loop client waits for each response before issuing the next
//! request, so a slow server throttles its own offered load. Production
//! traffic is *open-loop*: millions of independent sessions each issue
//! requests at their own Poisson rate, and the superposition of `S`
//! Poisson processes at rate `λ` is itself Poisson at rate `S·λ`
//! (requests keep arriving whether or not the service is keeping up —
//! which is exactly what makes goodput under crashes an honest metric).
//!
//! [`OpenLoopPopulation`] exploits that superposition theorem: rather
//! than simulating `S` per-session clocks, one aggregate exponential
//! stream generates the merged arrival sequence, and each arrival is
//! attributed to a uniformly chosen session (the memoryless property
//! makes uniform attribution exact, not an approximation). Both the
//! `i`-th gap and the `i`-th session are O(1) random-accessible via
//! [`SplitMix64::nth`], so a gateway process recomputing request `i`
//! after a rollback — or a sharded campaign runner replaying trial `t`
//! on another thread — needs no sequential state at all.
//!
//! [`SplitMix64::nth`]: ft_sim::rng::SplitMix64::nth

use ft_sim::rng::SplitMix64;

use crate::arrivals::ExpSampler;

/// A population of `sessions` open-loop clients, each issuing requests
/// as a Poisson process at `rate_per_session` requests/second, merged
/// into one aggregate arrival stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopPopulation {
    sampler: ExpSampler,
    session_rng: SplitMix64,
    sessions: u64,
    rate_per_session: f64,
}

impl OpenLoopPopulation {
    /// Builds the population. The aggregate rate is
    /// `sessions × rate_per_session`; the gap stream and the session
    /// attribution stream are split from `seed` so neither perturbs the
    /// other.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is zero or the per-session rate is not
    /// positive and finite (delegated to [`ExpSampler::new`]).
    pub fn new(seed: u64, sessions: u64, rate_per_session: f64) -> Self {
        assert!(sessions > 0, "population needs at least one session");
        let mut split = SplitMix64::new(seed);
        let gap_seed = split.next_u64();
        let session_seed = split.next_u64();
        OpenLoopPopulation {
            sampler: ExpSampler::new(gap_seed, rate_per_session * sessions as f64),
            session_rng: SplitMix64::new(session_seed),
            sessions,
            rate_per_session,
        }
    }

    /// Number of sessions in the population.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Per-session request rate (requests/second).
    pub fn rate_per_session(&self) -> f64 {
        self.rate_per_session
    }

    /// The aggregate request rate of the merged stream (requests/second).
    pub fn aggregate_rate(&self) -> f64 {
        self.rate_per_session * self.sessions as f64
    }

    /// The gap (ns) between merged arrival `i-1` and arrival `i`
    /// (0-indexed; `gap_ns(0)` is the gap from time zero to the first
    /// arrival). O(1), non-advancing.
    pub fn gap_ns(&self, i: u64) -> u64 {
        self.sampler.gap_ns(i)
    }

    /// The session (in `0..sessions`) that issued merged arrival `i`.
    /// O(1), non-advancing. Uses the unbiased rejection-free threshold
    /// trick of `SplitMix64::below` applied to a random-accessed draw.
    pub fn session_of(&self, i: u64) -> u64 {
        // 128-bit multiply-shift maps a uniform u64 onto 0..sessions with
        // bias at most 2^-64 per bucket — negligible against the 2^-53
        // resolution of the gap sampler, and crucially a pure function of
        // draw `i` (no rejection loop, so random access stays O(1)).
        let raw = self.session_rng.nth(i);
        ((u128::from(raw) * u128::from(self.sessions)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_rate_is_superposition_of_sessions() {
        let p = OpenLoopPopulation::new(1, 1_000_000, 0.25);
        assert!((p.aggregate_rate() - 250_000.0).abs() < 1e-6);
        assert_eq!(p.sessions(), 1_000_000);
    }

    #[test]
    fn gap_stream_matches_plain_exponential_at_aggregate_rate() {
        // The merged stream must be exactly the ExpSampler stream at
        // S·λ drawn from the first split of the seed.
        let p = OpenLoopPopulation::new(42, 1000, 2.0);
        let mut split = SplitMix64::new(42);
        let reference = ExpSampler::new(split.next_u64(), 2000.0);
        for i in 0..200 {
            assert_eq!(p.gap_ns(i), reference.gap_ns(i), "gap {i}");
        }
    }

    #[test]
    fn session_attribution_is_in_range_and_covers_the_space() {
        let p = OpenLoopPopulation::new(7, 8, 1.0);
        let mut seen = [false; 8];
        for i in 0..2000 {
            let s = p.session_of(i);
            assert!(s < 8);
            seen[usize::try_from(s).unwrap()] = true;
        }
        assert!(seen.iter().all(|&b| b), "some session never attributed");
    }

    #[test]
    fn random_access_is_stateless() {
        let p = OpenLoopPopulation::new(99, 64, 3.0);
        // Query out of order, twice; answers must be identical and the
        // struct is Copy so there is no hidden advancing state.
        let probe: Vec<(u64, u64)> = [17u64, 3, 200, 3, 0, 17]
            .iter()
            .map(|&i| (p.gap_ns(i), p.session_of(i)))
            .collect();
        assert_eq!(probe[0], probe[5]);
        assert_eq!(probe[1], probe[3]);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn empty_population_panics() {
        OpenLoopPopulation::new(0, 0, 1.0);
    }
}
