//! Poisson fault arrivals and the microreboot escalation policy.
//!
//! The Table 1 / Table 2 campaigns inject exactly one fault per trial and
//! ask *was recovery consistent?* The availability campaign asks the
//! production question instead: under a *sustained* fault process, what are
//! the recovery latency distribution, the steady-state availability, and
//! the goodput of each protocol? The classic model for sustained faults is
//! a Poisson process — memoryless arrivals at rate λ — which is generated
//! here by sampling exponential inter-arrival gaps with inverse-transform
//! sampling over [`SplitMix64`].
//!
//! Everything is deterministic and splittable in the PR 2 seed-stream
//! style: trial `t`'s entire arrival schedule is reachable in O(1) from a
//! base seed (no sequential draw is shared between threads), so the
//! sharded campaign runner reproduces the serial campaign bit for bit.
//!
//! [`EscalationPolicy`] is the companion knob for the microreboot recovery
//! strategy: how many partial-restart attempts an incident is allowed,
//! and the backoff delay ladder between them, before the runtime escalates
//! to a full rollback.

use ft_sim::cost::MS;
use ft_sim::rng::SplitMix64;

/// Exponential inter-arrival gap sampler at a fixed rate.
///
/// Gaps are drawn by inverse-transform sampling: for `u ∈ [0, 1)` uniform,
/// `-ln(1 - u) / λ` is exponentially distributed with mean `1/λ`. Gaps are
/// reported in simulated nanoseconds and clamped to at least 1 ns so the
/// arrival clock always advances.
///
/// The sampler mirrors [`SplitMix64`]'s dual interface: [`next_gap_ns`]
/// draws sequentially, while [`gap_ns`] computes the `n`-th upcoming gap
/// in O(1) without advancing (the two agree — see the property tests).
///
/// [`next_gap_ns`]: ExpSampler::next_gap_ns
/// [`gap_ns`]: ExpSampler::gap_ns
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpSampler {
    rng: SplitMix64,
    rate_per_sec: f64,
}

/// Converts one raw 64-bit draw into an exponential gap in nanoseconds.
#[expect(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    reason = "-ln(1-u) is >= 0 and gaps are clamped to plausible nanosecond ranges far below u64::MAX"
)]
fn gap_from_raw(raw: u64, rate_per_sec: f64) -> u64 {
    // Same bit-to-unit mapping as `SplitMix64::unit_f64`: u ∈ [0, 1), so
    // 1 - u ∈ (0, 1] and the logarithm is finite.
    let u = (raw >> 11) as f64 / (1u64 << 53) as f64;
    let secs = -(1.0 - u).ln() / rate_per_sec;
    ((secs * 1e9) as u64).max(1)
}

impl ExpSampler {
    /// Creates a sampler with mean gap `1/rate_per_sec` seconds.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite.
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite"
        );
        ExpSampler {
            rng: SplitMix64::new(seed),
            rate_per_sec,
        }
    }

    /// Draws the next gap, advancing the sampler.
    pub fn next_gap_ns(&mut self) -> u64 {
        gap_from_raw(self.rng.next_u64(), self.rate_per_sec)
    }

    /// The `n`-th upcoming gap (0-indexed) without advancing — O(1) via
    /// the Weyl-sequence jump of [`SplitMix64::nth`].
    pub fn gap_ns(&self, n: u64) -> u64 {
        gap_from_raw(self.rng.nth(n), self.rate_per_sec)
    }
}

/// A Poisson fault-arrival process: the running sum of exponential gaps.
///
/// [`next_arrival_ns`](PoissonArrivals::next_arrival_ns) yields strictly
/// increasing absolute simulated timestamps; the campaign's injection hook
/// kills a victim whenever the simulation clock passes the next arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    sampler: ExpSampler,
    clock_ns: u64,
}

impl PoissonArrivals {
    /// Creates an arrival process starting at simulated time zero.
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        PoissonArrivals {
            sampler: ExpSampler::new(seed, rate_per_sec),
            clock_ns: 0,
        }
    }

    /// The seed of trial `t`'s arrival stream, derived in O(1) from a base
    /// seed. Identical to drawing `t + 1` seeds sequentially from
    /// `SplitMix64::new(base_seed)` and taking the last — so a sharded
    /// runner needs no shared sequential state.
    pub fn trial_seed(base_seed: u64, trial: u64) -> u64 {
        SplitMix64::new(base_seed).nth(trial)
    }

    /// Creates trial `t`'s arrival process directly from the base seed.
    pub fn for_trial(base_seed: u64, trial: u64, rate_per_sec: f64) -> Self {
        PoissonArrivals::new(Self::trial_seed(base_seed, trial), rate_per_sec)
    }

    /// Advances to, and returns, the next absolute arrival time (ns).
    pub fn next_arrival_ns(&mut self) -> u64 {
        self.clock_ns = self.clock_ns.saturating_add(self.sampler.next_gap_ns());
        self.clock_ns
    }
}

/// The bounded retry/backoff ladder for microreboot recovery.
///
/// An incident is allowed `max_attempts` partial restarts; attempt `k`
/// (1-based) waits `base_delay_ns * backoff_factor^(k-1)` before resuming
/// the component. When the ladder is exhausted — the component keeps
/// failing — the runtime escalates to a full rollback, which is always
/// available as the sound fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// Partial-restart attempts before escalating to full rollback.
    pub max_attempts: u32,
    /// Restart delay of the first attempt, in simulated nanoseconds.
    pub base_delay_ns: u64,
    /// Multiplier applied to the delay after each failed attempt.
    pub backoff_factor: u64,
}

impl Default for EscalationPolicy {
    /// Three attempts at 5 ms, 10 ms, 20 ms — an order of magnitude under
    /// the 50 ms full-reboot delay, which is what makes microreboot's
    /// MTTR win measurable when the partial restart sticks.
    fn default() -> Self {
        EscalationPolicy {
            max_attempts: 3,
            base_delay_ns: 5 * MS,
            backoff_factor: 2,
        }
    }
}

impl EscalationPolicy {
    /// The restart delay of 1-based attempt `k`, saturating on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is 0 (attempts are 1-based).
    pub fn attempt_delay_ns(&self, attempt: u32) -> u64 {
        assert!(attempt > 0, "attempts are 1-based");
        self.base_delay_ns
            .saturating_mul(self.backoff_factor.saturating_pow(attempt - 1))
    }

    /// The full backoff schedule, for reports and directed tests.
    pub fn schedule(&self) -> Vec<u64> {
        (1..=self.max_attempts)
            .map(|k| self.attempt_delay_ns(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_across_runs() {
        let mut a = ExpSampler::new(0xA11, 3.0);
        let mut b = ExpSampler::new(0xA11, 3.0);
        for _ in 0..1000 {
            assert_eq!(a.next_gap_ns(), b.next_gap_ns());
        }
    }

    #[test]
    fn sampler_is_deterministic_across_threads() {
        let draw = || -> Vec<u64> {
            let mut s = ExpSampler::new(0xBEEF, 7.5);
            (0..500).map(|_| s.next_gap_ns()).collect()
        };
        let reference = draw();
        let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(draw)).collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), reference);
        }
    }

    #[test]
    fn mean_gap_tracks_inverse_rate() {
        // Mean of 10^4 exponential samples has relative standard error
        // 1/sqrt(10^4) = 1%; a 5% tolerance gives wide deterministic
        // margin for these fixed seeds.
        for (seed, rate) in [(1u64, 0.5f64), (2, 5.0), (3, 50.0)] {
            let mut s = ExpSampler::new(seed, rate);
            let n = 10_000u64;
            let sum: u64 = (0..n).map(|_| s.next_gap_ns()).sum();
            let mean = sum as f64 / n as f64;
            let expect = 1e9 / rate;
            let err = (mean - expect).abs() / expect;
            assert!(
                err < 0.05,
                "rate {rate}: mean {mean} vs expected {expect} (err {err})"
            );
        }
    }

    #[test]
    fn random_access_matches_sequential_draws() {
        let base = ExpSampler::new(0xFEED, 2.0);
        let mut seq = base;
        for n in 0..200u64 {
            assert_eq!(base.gap_ns(n), seq.next_gap_ns(), "gap {n}");
        }
        // gap_ns never advances the sampler it is called on.
        assert_eq!(base, ExpSampler::new(0xFEED, 2.0));
    }

    #[test]
    fn trial_splitting_agrees_with_sequential_seed_draws() {
        let base = 0x5EED;
        let mut seq = SplitMix64::new(base);
        for t in 0..64u64 {
            let split = PoissonArrivals::for_trial(base, t, 1.0);
            let sequential = PoissonArrivals::new(seq.next_u64(), 1.0);
            assert_eq!(split, sequential, "trial {t}");
        }
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut a = PoissonArrivals::new(9, 100.0);
        let mut last = 0;
        for _ in 0..1000 {
            let t = a.next_arrival_ns();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn gaps_are_positive() {
        // Even at an absurd rate the clamp keeps the clock advancing.
        let mut s = ExpSampler::new(4, 1e12);
        for _ in 0..1000 {
            assert!(s.next_gap_ns() >= 1);
        }
    }

    #[test]
    fn escalation_schedule_doubles_from_base() {
        let p = EscalationPolicy {
            max_attempts: 4,
            base_delay_ns: 5 * MS,
            backoff_factor: 2,
        };
        assert_eq!(p.schedule(), vec![5 * MS, 10 * MS, 20 * MS, 40 * MS]);
        assert_eq!(p.attempt_delay_ns(1), 5 * MS);
        assert_eq!(p.attempt_delay_ns(4), 40 * MS);
    }

    #[test]
    fn escalation_delay_saturates() {
        let p = EscalationPolicy {
            max_attempts: 200,
            base_delay_ns: u64::MAX / 2,
            backoff_factor: 1000,
        };
        assert_eq!(p.attempt_delay_ns(100), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn attempt_zero_panics() {
        EscalationPolicy::default().attempt_delay_ns(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        ExpSampler::new(0, 0.0);
    }
}
