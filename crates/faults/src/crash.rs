//! Declarative crash points for the `ft-check` crash-schedule explorer.
//!
//! A [`CrashPoint`] names one place in a run's canonical event trace where
//! the model checker kills a process: before it executes anything, after
//! it has emitted its `pos`-th traced event, or *inside* one of its
//! commits at a sub-step of the Vista-style atomic commit (pre-log,
//! mid-undo-walk, post-bump). The enum is pure data — applying a point is
//! the checker's job (a `kill_at` watcher for positions, a
//! `DcConfig::commit_kill` for mid-commit tears) — so schedules can be
//! enumerated, deduplicated, sorted, and rendered into replay scripts
//! without touching the simulator.

use ft_mem::arena::CommitCrashPoint;

/// One kill the crash scheduler injects into an otherwise-deterministic
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrashPoint {
    /// Kill `pid` before it executes its first event (the "fails during
    /// reboot"-adjacent edge case: nothing committed beyond the initial
    /// snapshot).
    AtStart {
        /// The process to kill.
        pid: u32,
    },
    /// Kill `pid` once it has appended `pos` events to its per-process
    /// trace — i.e. between its `pos`-th and `pos+1`-th canonical events.
    AtPosition {
        /// The process to kill.
        pid: u32,
        /// Number of traced events the process completes before dying.
        pos: u64,
    },
    /// Kill `pid` *inside* its `nth` commit point, torn at `point`. Commit
    /// points count local commits plus coordinated rounds the process
    /// coordinates, monotonically across recoveries.
    InCommit {
        /// The process to kill.
        pid: u32,
        /// Zero-based commit-point index.
        nth: u64,
        /// The sub-step of the atomic commit where the crash lands.
        point: CommitCrashPoint,
    },
}

impl CrashPoint {
    /// The process this point kills.
    pub fn pid(&self) -> u32 {
        match *self {
            CrashPoint::AtStart { pid }
            | CrashPoint::AtPosition { pid, .. }
            | CrashPoint::InCommit { pid, .. } => pid,
        }
    }

    /// A stable one-line description, used in counterexample reports and
    /// replay-script comments.
    pub fn describe(&self) -> String {
        match *self {
            CrashPoint::AtStart { pid } => format!("kill p{pid} before its first event"),
            CrashPoint::AtPosition { pid, pos } => {
                format!("kill p{pid} after its event #{pos}")
            }
            CrashPoint::InCommit { pid, nth, point } => {
                format!("kill p{pid} inside commit #{nth} at {point}")
            }
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_extraction_covers_every_variant() {
        let pts = [
            CrashPoint::AtStart { pid: 2 },
            CrashPoint::AtPosition { pid: 2, pos: 7 },
            CrashPoint::InCommit {
                pid: 2,
                nth: 1,
                point: CommitCrashPoint::MidUndoWalk,
            },
        ];
        assert!(pts.iter().all(|p| p.pid() == 2));
    }

    #[test]
    fn descriptions_are_stable() {
        assert_eq!(
            CrashPoint::AtStart { pid: 0 }.describe(),
            "kill p0 before its first event"
        );
        assert_eq!(
            CrashPoint::AtPosition { pid: 1, pos: 12 }.to_string(),
            "kill p1 after its event #12"
        );
        assert_eq!(
            CrashPoint::InCommit {
                pid: 3,
                nth: 0,
                point: CommitCrashPoint::PreLog,
            }
            .to_string(),
            "kill p3 inside commit #0 at pre-log"
        );
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let mut pts = [
            CrashPoint::InCommit {
                pid: 0,
                nth: 0,
                point: CommitCrashPoint::PostBump,
            },
            CrashPoint::AtPosition { pid: 0, pos: 3 },
            CrashPoint::AtStart { pid: 1 },
            CrashPoint::AtStart { pid: 0 },
        ];
        pts.sort();
        assert_eq!(pts[0], CrashPoint::AtStart { pid: 0 });
        assert_eq!(pts[1], CrashPoint::AtStart { pid: 1 });
    }
}
