//! # ft-faults — software fault injection
//!
//! The §4 fault model: "running a version of the application with changes
//! in the source code to simulate a variety of programming errors …
//! overwriting random data in the stack or heap, changing the destination
//! variable, neglecting to initialize a variable, deleting a branch,
//! deleting a random line of source code, and off-by-one errors in
//! conditions like `>=` and `<`."
//!
//! Applications register *fault sites* by calling [`FaultInjector`] hooks
//! at branch points, loop bounds, initializations, and writes. An injected
//! [`FaultPlan`] arms exactly one (fault type, site); when execution
//! reaches that site the fault *activates* — the hook perturbs behavior
//! and journals the activation into the trace — and a crash, if any,
//! follows later from ordinary consistency checks or wild accesses, just
//! as §2.5 models propagation failures.
//!
//! The injector also carries the Table 1 end-to-end check's suppression
//! switch: "we suppress the fault activation during recovery, recover the
//! process, and try to complete the run."
//!
//! Kernel faults (§4.2) are armed with [`KernelFaultPlan`]: a fault either
//! panics the node immediately (a stop failure) or corrupts a few syscall
//! results before panicking (a propagation failure), with the propagation
//! probability and corruption depth drawn per fault type.
//!
//! Network faults sit alongside both: a [`NetFaultSpec`] describes an
//! unreliable fabric (loss, duplication, reordering, partitions) and
//! builds the `ft-sim` transport's [`NetFaultPlan`], so a campaign can
//! combine environment failures with code and kernel bugs.
//!
//! Finally, [`arrivals`] generates *sustained* fault processes for the
//! availability campaign: seeded Poisson crash arrivals (deterministic,
//! O(1)-splittable per trial) and the bounded retry/backoff
//! [`EscalationPolicy`] for microreboot recovery — and [`population`]
//! scales the same machinery to workload traffic, merging millions of
//! open-loop client sessions into one O(1)-random-accessible Poisson
//! arrival stream for the kvstore campaign.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod crash;
pub mod population;

pub use arrivals::{EscalationPolicy, ExpSampler, PoissonArrivals};
pub use crash::CrashPoint;
pub use population::OpenLoopPopulation;

use ft_core::event::ProcessId;
use ft_mem::arena::Region;
use ft_mem::mem::Mem;
use ft_sim::cost::{SimTime, MS, US};
use ft_sim::net::{NetFaultPlan, Partition};
use ft_sim::rng::SplitMix64;
use ft_sim::sim::Simulator;
use ft_sim::syscalls::{SysMem, Syscalls};

/// The seven application fault types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultType {
    /// Flip a random bit in the stack region.
    StackBitFlip,
    /// Flip a random bit in the heap region.
    HeapBitFlip,
    /// Write a computed value to the wrong destination.
    DestinationReg,
    /// Neglect to initialize a variable/buffer.
    Initialization,
    /// Delete a branch (the guarded code always/never runs).
    DeleteBranch,
    /// Delete a source line (skip a statement).
    DeleteInstruction,
    /// Off-by-one in a condition (`>=` vs `>`, `<` vs `<=`).
    OffByOne,
}

impl FaultType {
    /// All seven, in Table 1's order.
    pub const ALL: [FaultType; 7] = [
        FaultType::StackBitFlip,
        FaultType::HeapBitFlip,
        FaultType::DestinationReg,
        FaultType::Initialization,
        FaultType::DeleteBranch,
        FaultType::DeleteInstruction,
        FaultType::OffByOne,
    ];

    /// Table 1's row label.
    pub fn name(self) -> &'static str {
        match self {
            FaultType::StackBitFlip => "Stack bit flip",
            FaultType::HeapBitFlip => "Heap bit flip",
            FaultType::DestinationReg => "Destination reg",
            FaultType::Initialization => "Initialization",
            FaultType::DeleteBranch => "Delete branch",
            FaultType::DeleteInstruction => "Delete instruction",
            FaultType::OffByOne => "Off by one",
        }
    }
}

impl std::fmt::Display for FaultType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One armed fault: a (type, site, trigger visit) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault type.
    pub fault: FaultType,
    /// The site it lives at (each hook call names its site). `site % n` is
    /// typically derived from a sweep counter, so any site can be hit.
    pub site: u64,
    /// Activate from this visit of the site onward (a buggy line misfires
    /// every time it runs — Table 1's bugs are in the *code*).
    pub trigger_visit: u32,
    /// Identifier journaled with activations.
    pub id: u32,
    /// Sticky faults activate on *every* visit from the trigger onward (a
    /// Bohrbug); one-shot faults activate exactly at the trigger visit —
    /// since the visit counter is physical (it keeps counting through
    /// recovery re-execution), a one-shot fault is automatically
    /// *suppressed during recovery*, the Table 1 end-to-end methodology.
    pub sticky: bool,
}

/// The per-process fault injector. Lives in the application struct: it
/// models the *source code*, so it is deliberately **not** checkpointed or
/// rolled back.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
    /// Suppress activations (the Table 1 end-to-end recovery check).
    pub suppressed: bool,
    visits: std::collections::HashMap<u64, u32>,
    activations: u32,
    rng: SplitMix64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// No fault armed.
    pub fn none() -> Self {
        FaultInjector {
            plan: None,
            suppressed: false,
            visits: std::collections::HashMap::new(),
            activations: 0,
            rng: SplitMix64::new(0),
        }
    }

    /// Arms a fault plan.
    pub fn armed(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector {
            plan: Some(plan),
            suppressed: false,
            visits: std::collections::HashMap::new(),
            activations: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// How many times the fault activated.
    pub fn activations(&self) -> u32 {
        self.activations
    }

    /// The armed plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Visits `site` and reports whether `fault` activates there now.
    fn hit(&mut self, fault: FaultType, site: u64, sys: &mut dyn Syscalls) -> bool {
        let Some(plan) = self.plan else { return false };
        if plan.fault != fault || plan.site != site {
            return false;
        }
        let v = self.visits.entry(site).or_insert(0);
        *v += 1;
        let due = if plan.sticky {
            *v >= plan.trigger_visit
        } else {
            *v == plan.trigger_visit
        };
        if !due || self.suppressed {
            return false;
        }
        self.activations += 1;
        sys.note_fault_activation(plan.id);
        true
    }

    /// DeleteBranch hook: place at `if` statements; when it fires, the
    /// branch outcome is forced to `!taken`.
    pub fn branch(&mut self, site: u64, taken: bool, sys: &mut dyn Syscalls) -> bool {
        if self.hit(FaultType::DeleteBranch, site, sys) {
            !taken
        } else {
            taken
        }
    }

    /// DeleteInstruction hook: place before a statement; when it fires the
    /// statement must be skipped.
    pub fn deleted(&mut self, site: u64, sys: &mut dyn Syscalls) -> bool {
        self.hit(FaultType::DeleteInstruction, site, sys)
    }

    /// OffByOne hook: place at loop bounds and index computations; when it
    /// fires the value is perturbed by one (alternating direction by site).
    pub fn bound(&mut self, site: u64, n: usize, sys: &mut dyn Syscalls) -> usize {
        if self.hit(FaultType::OffByOne, site, sys) {
            if site.is_multiple_of(2) {
                n + 1
            } else {
                n.saturating_sub(1)
            }
        } else {
            n
        }
    }

    /// Initialization hook: place at buffer/variable initializations; when
    /// it fires, initialization must be skipped (the caller uses
    /// `alloc_uninit` or leaves stale data).
    pub fn skip_init(&mut self, site: u64, sys: &mut dyn Syscalls) -> bool {
        self.hit(FaultType::Initialization, site, sys)
    }

    /// DestinationReg hook: place at stores; returns a corrupted
    /// destination offset when it fires.
    pub fn dest(&mut self, site: u64, intended: usize, sys: &mut dyn Syscalls) -> usize {
        if self.hit(FaultType::DestinationReg, site, sys) {
            // The compiler picked the wrong register: a nearby slot, which
            // one depending on what the register happened to hold.
            intended ^ (8 << self.rng.below(4))
        } else {
            intended
        }
    }

    /// Bit-flip hook: place at the top of event-handling code; when it
    /// fires, flips a random bit in the stack or heap region (per the
    /// armed type). Corruption goes through the normal write path, so it
    /// rolls back like any other state.
    pub fn maybe_flip(&mut self, site: u64, sys: &mut dyn SysMem) {
        let (region, fault) = match self.plan.map(|p| p.fault) {
            Some(FaultType::StackBitFlip) => (Region::Stack, FaultType::StackBitFlip),
            Some(FaultType::HeapBitFlip) => (Region::Heap, FaultType::HeapBitFlip),
            _ => return,
        };
        if !self.hit(fault, site, sys) {
            return;
        }
        let mem: &mut Mem = sys.mem();
        // Target *live* data: the active stack frame sits at the bottom of
        // the stack region, and the live heap runs up to the allocator's
        // high-water mark. Flipping dead bytes models nothing.
        let range = match region {
            Region::Stack => {
                let r = mem.arena.region_range(Region::Stack);
                r.start..(r.start + 32).min(r.end)
            }
            _ => {
                let r = mem.arena.region_range(Region::Heap);
                r.start..mem.alloc.high_water().max(r.start + 64).min(r.end)
            }
        };
        let off = range.start + self.rng.index(range.end - range.start);
        let bit = u8::try_from(self.rng.below(8)).expect("draw is < 8");
        // A corruption that lands out of a mapped page cannot happen here
        // (regions are always mapped); the write is infallible.
        mem.arena.flip_bit(off, bit).expect("region is mapped");
    }
}

/// A kernel fault campaign entry (§4.2): injected into the node kernel
/// under an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelFaultPlan {
    /// The fault type (reusing the application taxonomy, as the paper
    /// does).
    pub fault: FaultType,
    /// When to inject (simulated time).
    pub inject_at: u64,
    /// Probability that the fault manifests as a propagation failure
    /// (corrupting syscall results) rather than an immediate panic.
    pub propagation_prob: f64,
    /// How many syscall results get corrupted before the panic, when it
    /// propagates.
    pub corrupt_calls: u32,
}

impl KernelFaultPlan {
    /// The per-type default shape: pointer-ish corruptions (bit flips,
    /// destination, off-by-one) tend to wild-write and panic fast; logic
    /// faults (deleted branch/instruction, initialization) linger and leak
    /// bad results to applications first.
    pub fn for_type(fault: FaultType, inject_at: u64) -> Self {
        let (propagation_prob, corrupt_calls) = match fault {
            FaultType::StackBitFlip => (0.25, 2),
            FaultType::HeapBitFlip => (0.30, 3),
            FaultType::DestinationReg => (0.20, 2),
            FaultType::Initialization => (0.35, 3),
            FaultType::DeleteBranch => (0.45, 4),
            FaultType::DeleteInstruction => (0.30, 3),
            FaultType::OffByOne => (0.35, 2),
        };
        KernelFaultPlan {
            fault,
            inject_at,
            propagation_prob,
            corrupt_calls,
        }
    }

    /// How long a propagating kernel fault lingers before the node dies.
    /// Only syscalls the application issues inside this window can catch a
    /// corrupted result — so the propagation *reach* scales with the
    /// application's syscall rate, the paper's hypothesized mechanism for
    /// the nvi/postgres difference (§4.2).
    pub const PANIC_DELAY_NS: u64 = 20_000_000;

    /// Injects the fault into `pid`'s kernel: decides stop vs. propagation
    /// with the plan's probability. A stop failure kills the node at
    /// `inject_at`; a propagation failure arms syscall-result corruption at
    /// `inject_at` and kills the node [`Self::PANIC_DELAY_NS`] later.
    /// Returns true if the fault will propagate.
    pub fn inject(&self, sim: &mut Simulator, pid: ProcessId, rng: &mut SplitMix64) -> bool {
        let propagate = rng.chance(self.propagation_prob);
        if propagate {
            sim.kernel_of_mut(pid)
                .arm_corruption(self.inject_at, self.corrupt_calls);
            sim.kill_at(pid, self.inject_at + Self::PANIC_DELAY_NS);
        } else {
            sim.kill_at(pid, self.inject_at);
        }
        propagate
    }
}

/// The network fault taxonomy: environment failures of the fabric under
/// the testbed, as opposed to the Table 1 code faults and §4.2 kernel
/// faults. The reliable transport must mask all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFaultType {
    /// A transmission attempt (data or ack) vanishes.
    MessageLoss,
    /// A delivered payload is duplicated in flight.
    Duplication,
    /// Arrivals are delayed by a random window, letting later sends
    /// overtake earlier ones.
    Reordering,
    /// An ordered process pair cannot communicate for an interval.
    Partition,
}

impl NetFaultType {
    /// All four network fault types.
    pub const ALL: [NetFaultType; 4] = [
        NetFaultType::MessageLoss,
        NetFaultType::Duplication,
        NetFaultType::Reordering,
        NetFaultType::Partition,
    ];

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            NetFaultType::MessageLoss => "Message loss",
            NetFaultType::Duplication => "Duplication",
            NetFaultType::Reordering => "Reordering",
            NetFaultType::Partition => "Partition",
        }
    }
}

impl std::fmt::Display for NetFaultType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for an unreliable-fabric description. Composes the network
/// fault types into one [`NetFaultPlan`] for the simulator's transport.
///
/// ```
/// use ft_faults::NetFaultSpec;
/// use ft_core::event::ProcessId;
///
/// let plan = NetFaultSpec::new(0xFAB)
///     .loss(0.05)
///     .duplication(0.01)
///     .reorder_window_us(300)
///     .partition(ProcessId(0), ProcessId(1), 1_000_000, 5_000_000)
///     .build();
/// assert_eq!(plan.partitions.len(), 2); // Both directions.
/// ```
#[derive(Debug, Clone)]
pub struct NetFaultSpec {
    plan: NetFaultPlan,
}

impl NetFaultSpec {
    /// A lossless fabric with the given fabric seed (independent of the
    /// simulator seed).
    pub fn new(seed: u64) -> Self {
        NetFaultSpec {
            plan: NetFaultPlan {
                seed,
                ..NetFaultPlan::default()
            },
        }
    }

    /// Sets the per-attempt drop probability ([`NetFaultType::MessageLoss`]).
    pub fn loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.plan.drop_prob = p;
        self
    }

    /// Sets the payload duplication probability
    /// ([`NetFaultType::Duplication`]).
    pub fn duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "dup probability out of range");
        self.plan.dup_prob = p;
        self
    }

    /// Sets the reordering window in microseconds
    /// ([`NetFaultType::Reordering`]).
    pub fn reorder_window_us(mut self, us: u64) -> Self {
        self.plan.reorder_window_ns = us * US;
        self
    }

    /// Sets the per-attempt latency jitter in microseconds.
    pub fn jitter_us(mut self, us: u64) -> Self {
        self.plan.jitter_ns = us * US;
        self
    }

    /// Adds a symmetric partition between `a` and `b` over `[start, end)`
    /// ([`NetFaultType::Partition`]).
    pub fn partition(mut self, a: ProcessId, b: ProcessId, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "empty partition interval");
        for (f, t) in [(a.0, b.0), (b.0, a.0)] {
            self.plan.partitions.push(Partition {
                from: f,
                to: t,
                start,
                end,
            });
        }
        self
    }

    /// Adds a one-directional partition (asymmetric link failure).
    pub fn one_way_partition(
        mut self,
        from: ProcessId,
        to: ProcessId,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        assert!(start < end, "empty partition interval");
        self.plan.partitions.push(Partition {
            from: from.0,
            to: to.0,
            start,
            end,
        });
        self
    }

    /// Overrides the transport's retransmission parameters.
    pub fn retransmit(
        mut self,
        rto_ns: SimTime,
        max_backoff_ns: SimTime,
        max_retries: u32,
    ) -> Self {
        self.plan.rto_ns = rto_ns;
        self.plan.max_backoff_ns = max_backoff_ns;
        self.plan.max_retries = max_retries;
        self
    }

    /// The network fault types this spec actually exercises.
    pub fn kinds(&self) -> Vec<NetFaultType> {
        let mut kinds = Vec::new();
        if self.plan.drop_prob > 0.0 {
            kinds.push(NetFaultType::MessageLoss);
        }
        if self.plan.dup_prob > 0.0 {
            kinds.push(NetFaultType::Duplication);
        }
        if self.plan.reorder_window_ns > 0 || self.plan.jitter_ns > 0 {
            kinds.push(NetFaultType::Reordering);
        }
        if !self.plan.partitions.is_empty() {
            kinds.push(NetFaultType::Partition);
        }
        kinds
    }

    /// The built plan.
    pub fn build(self) -> NetFaultPlan {
        self.plan
    }

    /// Builds and installs the plan on a simulator (before the run).
    pub fn install(self, sim: &mut Simulator) {
        sim.install_net_fault_plan(self.plan);
    }

    /// The canonical lossy-fabric shape used by the degradation sweeps: a
    /// given loss rate plus light duplication and a reordering window on
    /// the order of the base network latency.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        NetFaultSpec::new(seed)
            .loss(loss)
            .duplication(0.01)
            .reorder_window_us(200)
            .jitter_us(50)
            .retransmit(500 * US, 20 * MS, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_mem::arena::Layout;
    use ft_sim::sim::SimConfig;

    /// A minimal Syscalls stand-in for hook tests.
    struct NullSys {
        activations: Vec<u32>,
        mem: Mem,
    }

    impl SysMem for NullSys {
        fn mem(&mut self) -> &mut Mem {
            &mut self.mem
        }
    }

    impl Syscalls for NullSys {
        fn pid(&self) -> ProcessId {
            ProcessId(0)
        }
        fn now(&self) -> u64 {
            0
        }
        fn compute(&mut self, _ns: u64) {}
        fn gettimeofday(&mut self) -> u64 {
            0
        }
        fn random(&mut self) -> u64 {
            0
        }
        fn read_input(&mut self) -> Option<Vec<u8>> {
            None
        }
        fn input_exhausted(&self) -> bool {
            true
        }
        fn send(&mut self, _to: ProcessId, _p: Vec<u8>) -> ft_sim::syscalls::SysResult<()> {
            Ok(())
        }
        fn try_recv(&mut self) -> Option<ft_sim::syscalls::Message> {
            None
        }
        fn visible(&mut self, _t: u64) {}
        fn take_signal(&mut self) -> Option<u32> {
            None
        }
        fn open(&mut self, _n: &str) -> ft_sim::syscalls::SysResult<u32> {
            Ok(0)
        }
        fn write_file(&mut self, _fd: u32, _b: &[u8]) -> ft_sim::syscalls::SysResult<()> {
            Ok(())
        }
        fn read_file(&mut self, _fd: u32, _l: usize) -> ft_sim::syscalls::SysResult<Vec<u8>> {
            Ok(Vec::new())
        }
        fn close(&mut self, _fd: u32) -> ft_sim::syscalls::SysResult<()> {
            Ok(())
        }
        fn note_fault_activation(&mut self, fault: u32) {
            self.activations.push(fault);
        }
    }

    fn sys() -> NullSys {
        NullSys {
            activations: Vec::new(),
            mem: Mem::new(Layout::small()),
        }
    }

    #[test]
    fn unarmed_injector_is_inert() {
        let mut f = FaultInjector::none();
        let mut s = sys();
        assert!(f.branch(1, true, &mut s));
        assert!(!f.branch(1, false, &mut s));
        assert!(!f.deleted(2, &mut s));
        assert_eq!(f.bound(3, 10, &mut s), 10);
        assert!(!f.skip_init(4, &mut s));
        assert_eq!(f.dest(5, 100, &mut s), 100);
        assert_eq!(f.activations(), 0);
        assert!(s.activations.is_empty());
    }

    #[test]
    fn delete_branch_flips_outcome_and_journals() {
        let plan = FaultPlan {
            fault: FaultType::DeleteBranch,
            site: 7,
            trigger_visit: 2,
            id: 42,
            sticky: true,
        };
        let mut f = FaultInjector::armed(plan, 1);
        let mut s = sys();
        // First visit: below the trigger.
        assert!(f.branch(7, true, &mut s));
        // Second visit onward: inverted.
        assert!(!f.branch(7, true, &mut s));
        assert!(!f.branch(7, true, &mut s));
        assert_eq!(f.activations(), 2);
        assert_eq!(s.activations, vec![42, 42]);
        // Other sites unaffected.
        assert!(f.branch(8, true, &mut s));
    }

    #[test]
    fn suppression_disables_activation() {
        let plan = FaultPlan {
            fault: FaultType::OffByOne,
            site: 1,
            trigger_visit: 1,
            id: 9,
            sticky: true,
        };
        let mut f = FaultInjector::armed(plan, 1);
        f.suppressed = true;
        let mut s = sys();
        assert_eq!(f.bound(1, 10, &mut s), 10);
        assert_eq!(f.activations(), 0);
    }

    #[test]
    fn off_by_one_perturbs_by_one() {
        let mut s = sys();
        let even = FaultPlan {
            fault: FaultType::OffByOne,
            site: 2,
            trigger_visit: 1,
            id: 1,
            sticky: true,
        };
        let mut f = FaultInjector::armed(even, 1);
        assert_eq!(f.bound(2, 10, &mut s), 11);
        let odd = FaultPlan {
            fault: FaultType::OffByOne,
            site: 3,
            trigger_visit: 1,
            id: 1,
            sticky: true,
        };
        let mut f = FaultInjector::armed(odd, 1);
        assert_eq!(f.bound(3, 10, &mut s), 9);
        assert_eq!(f.bound(3, 0, &mut s), 0, "saturating");
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit_in_the_right_region() {
        for (fault, region) in [
            (FaultType::StackBitFlip, Region::Stack),
            (FaultType::HeapBitFlip, Region::Heap),
        ] {
            let plan = FaultPlan {
                fault,
                site: 5,
                trigger_visit: 1,
                id: 2,
                sticky: true,
            };
            let mut f = FaultInjector::armed(plan, 3);
            let mut s = sys();
            let before = s.mem.arena.read(0, s.mem.arena.size()).unwrap().to_vec();
            f.maybe_flip(5, &mut s);
            let mem = &s.mem;
            let after = mem.arena.read(0, mem.arena.size()).unwrap();
            let diff: Vec<usize> = (0..before.len())
                .filter(|&i| before[i] != after[i])
                .collect();
            assert_eq!(diff.len(), 1);
            let range = mem.arena.region_range(region);
            assert!(range.contains(&diff[0]), "{fault}: flipped outside region");
            assert_eq!(
                (before[diff[0]] ^ after[diff[0]]).count_ones(),
                1,
                "exactly one bit"
            );
        }
    }

    #[test]
    fn destination_reg_moves_the_store() {
        let plan = FaultPlan {
            fault: FaultType::DestinationReg,
            site: 0,
            trigger_visit: 1,
            id: 3,
            sticky: true,
        };
        let mut f = FaultInjector::armed(plan, 1);
        let mut s = sys();
        let d = f.dest(0, 256, &mut s);
        assert_ne!(d, 256);
    }

    #[test]
    fn kernel_plan_stop_vs_propagation() {
        let mut stop_count = 0;
        let mut prop_count = 0;
        for seed in 0..200 {
            let mut sim = Simulator::new(SimConfig::single_node(1, seed));
            let plan = KernelFaultPlan::for_type(FaultType::DeleteBranch, 0);
            let mut rng = SplitMix64::new(seed * 7 + 1);
            if plan.inject(&mut sim, ProcessId(0), &mut rng) {
                prop_count += 1;
                assert!(sim.kernel_of(ProcessId(0)).corrupting());
            } else {
                stop_count += 1;
            }
            // Either way the node is scheduled to die (a Kill is queued).
            assert!(!sim.kernel_of(ProcessId(0)).panicked());
        }
        // DeleteBranch propagates ~45% of the time.
        assert!(
            prop_count > 50 && stop_count > 50,
            "{prop_count}/{stop_count}"
        );
    }

    #[test]
    fn one_shot_fault_fires_exactly_once() {
        let plan = FaultPlan {
            fault: FaultType::DeleteInstruction,
            site: 4,
            trigger_visit: 2,
            id: 5,
            sticky: false,
        };
        let mut f = FaultInjector::armed(plan, 1);
        let mut s = sys();
        assert!(!f.deleted(4, &mut s)); // Visit 1.
        assert!(f.deleted(4, &mut s)); // Visit 2: fires.
        assert!(!f.deleted(4, &mut s)); // Visit 3 (recovery replay): quiet.
        assert_eq!(f.activations(), 1);
    }

    #[test]
    fn fault_type_names_match_table_1() {
        assert_eq!(FaultType::ALL.len(), 7);
        assert_eq!(FaultType::StackBitFlip.name(), "Stack bit flip");
        assert_eq!(FaultType::OffByOne.name(), "Off by one");
    }

    #[test]
    fn net_fault_spec_builds_and_reports_kinds() {
        let spec = NetFaultSpec::new(9)
            .loss(0.1)
            .duplication(0.02)
            .reorder_window_us(100)
            .partition(ProcessId(0), ProcessId(2), 10, 20)
            .one_way_partition(ProcessId(1), ProcessId(0), 5, 15);
        assert_eq!(spec.kinds(), NetFaultType::ALL.to_vec());
        let plan = spec.build();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.drop_prob, 0.1);
        assert_eq!(plan.partitions.len(), 3);
        // The symmetric partition covers both directions.
        assert!(plan
            .partitioned_until(ProcessId(0), ProcessId(2), 10)
            .is_some());
        assert!(plan
            .partitioned_until(ProcessId(2), ProcessId(0), 19)
            .is_some());
        assert!(plan
            .partitioned_until(ProcessId(0), ProcessId(2), 20)
            .is_none());
    }

    #[test]
    fn lossless_spec_exercises_nothing() {
        let spec = NetFaultSpec::new(1);
        assert!(spec.kinds().is_empty());
        let plan = spec.build();
        assert_eq!(
            plan,
            NetFaultPlan {
                seed: 1,
                ..NetFaultPlan::default()
            }
        );
    }

    #[test]
    fn spec_installs_on_a_simulator() {
        let mut sim = Simulator::new(SimConfig::single_node(2, 5));
        NetFaultSpec::lossy(77, 0.05).install(&mut sim);
        let plan = sim.network().fault_plan().expect("plan installed");
        assert_eq!(plan.seed, 77);
        assert_eq!(plan.drop_prob, 0.05);
    }
}
