//! End-to-end scheduler tests: interactive sessions, message ping-pong,
//! blocking semantics, signals, stop failures, and trace recording.

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use ft_core::event::ProcessId;
use ft_core::savework::check_save_work;
use ft_mem::error::MemResult;
use ft_mem::mem::{ArenaCell, Mem};
use ft_sim::harness::PlainSys;
use ft_sim::script::{InputScript, SignalSchedule};
use ft_sim::sim::{SimConfig, Simulator, StepOutcome, Wake};
use ft_sim::syscalls::{App, AppStatus, SysMem, WaitCond};
use ft_sim::{MS, US};

/// Runs a set of apps with a minimal loop, invoking `on_kill` for stop
/// failures. Returns nothing; inspect the simulator afterwards.
fn drive(
    sim: &mut Simulator,
    apps: &mut [&mut dyn App],
    mems: &mut [Mem],
    mut on_kill: impl FnMut(&mut Simulator, ProcessId),
) -> Vec<StepOutcome> {
    let mut outcomes = Vec::new();
    let mut steps = 0u64;
    while let Some(wake) = sim.next_wake() {
        steps += 1;
        assert!(steps < 1_000_000, "runaway simulation");
        match wake {
            Wake::Step(pid) => {
                let p = pid.index();
                let mut ctx = sim.ctx(pid);
                let mut sys = PlainSys::new(&mut ctx, &mut mems[p]);
                let st = apps[p].step(&mut sys);
                let el = ctx.elapsed();
                outcomes.push(sim.finish_step(pid, st, el));
            }
            Wake::Killed(pid) => on_kill(sim, pid),
        }
    }
    outcomes
}

/// Echoes each scripted input as a visible event; count lives in the arena.
struct Echo;

impl App for Echo {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        if let Some(bytes) = sys.read_input() {
            sys.compute(10 * US);
            let m = sys.mem();
            let cell: ArenaCell<u64> = ArenaCell::at(0);
            let n = cell.get(&m.arena)? + 1;
            cell.set(&mut m.arena, n)?;
            sys.visible(bytes.iter().map(|&b| b as u64).sum::<u64>() + n);
            Ok(AppStatus::Running)
        } else if sys.input_exhausted() {
            Ok(AppStatus::Done)
        } else {
            Ok(AppStatus::Blocked(WaitCond::input()))
        }
    }
}

fn echoed(mem: &Mem) -> u64 {
    ArenaCell::<u64>::at(0).get(&mem.arena).unwrap()
}

#[test]
fn interactive_session_respects_think_time() {
    let mut sim = Simulator::new(SimConfig::single_node(1, 1));
    let keys: Vec<Vec<u8>> = (0..50).map(|i| vec![b'a' + (i % 26) as u8]).collect();
    sim.set_input_script(ProcessId(0), InputScript::evenly_spaced(0, 100 * MS, keys));
    let mut app = Echo;
    let mut mems = vec![Mem::new(app.layout())];
    drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
    assert_eq!(echoed(&mems[0]), 50);
    // 50 keystrokes, 100 ms apart: the run takes at least 4.9 s and is
    // think-time dominated.
    assert!(sim.now() >= 4_900 * MS, "now = {}", sim.now());
    assert!(sim.now() < 5_200 * MS);
    let (trace, visibles, _) = sim.finish();
    assert_eq!(visibles.len(), 50);
    let nds = trace.iter().filter(|e| e.is_effectively_nd()).count();
    assert_eq!(nds, 50);
}

#[test]
fn visible_tokens_recorded_in_order() {
    let mut sim = Simulator::new(SimConfig::single_node(1, 1));
    sim.set_input_script(
        ProcessId(0),
        InputScript::evenly_spaced(0, MS, vec![vec![1], vec![2], vec![3]]),
    );
    let mut app = Echo;
    let mut mems = vec![Mem::new(app.layout())];
    drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
    let (_, visibles, _) = sim.finish();
    let tokens: Vec<u64> = visibles.iter().map(|&(_, _, t)| t).collect();
    assert_eq!(tokens, vec![2, 4, 6]);
}

/// Ping-pong: initiator sends, both relay; state in arena cells.
struct Pinger {
    rounds: u64,
    peer: ProcessId,
}

impl App for Pinger {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        let sent: ArenaCell<u64> = ArenaCell::at(0);
        let m_sent = sent.get(&sys.mem().arena)?;
        if m_sent == 0 {
            sent.set(&mut sys.mem().arena, 1)?;
            sys.send(self.peer, vec![0]).expect("send");
            return Ok(AppStatus::Running);
        }
        if let Some(msg) = sys.try_recv() {
            sys.visible(msg.payload[0] as u64);
            if m_sent < self.rounds {
                sent.set(&mut sys.mem().arena, m_sent + 1)?;
                sys.send(self.peer, vec![msg.payload[0] + 1]).expect("send");
                Ok(AppStatus::Running)
            } else {
                Ok(AppStatus::Done)
            }
        } else {
            Ok(AppStatus::Blocked(WaitCond::message()))
        }
    }
}

struct Ponger {
    peer: ProcessId,
    done_after: u64,
}

impl App for Ponger {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        let seen: ArenaCell<u64> = ArenaCell::at(0);
        if let Some(msg) = sys.try_recv() {
            let n = seen.get(&sys.mem().arena)? + 1;
            seen.set(&mut sys.mem().arena, n)?;
            sys.send(self.peer, msg.payload.into_vec()).expect("send");
            if n >= self.done_after {
                return Ok(AppStatus::Done);
            }
            Ok(AppStatus::Running)
        } else {
            Ok(AppStatus::Blocked(WaitCond::message()))
        }
    }
}

#[test]
fn ping_pong_round_trips_charge_network_latency() {
    let mut sim = Simulator::new(SimConfig::one_node_each(2, 7));
    let mut ping = Pinger {
        rounds: 10,
        peer: ProcessId(1),
    };
    let mut pong = Ponger {
        peer: ProcessId(0),
        done_after: 10,
    };
    let mut mems = vec![Mem::new(ping.layout()), Mem::new(pong.layout())];
    drive(&mut sim, &mut [&mut ping, &mut pong], &mut mems, |_, _| {});
    // 10 round trips at >= 240 µs each.
    assert!(sim.now() >= 2_400 * US, "now = {}", sim.now());
    let s0 = sim.proc_stats(ProcessId(0));
    assert_eq!(s0.sends, 10);
    assert_eq!(s0.recvs, 10);
    assert_eq!(s0.visibles, 10);
    let (trace, _, _) = sim.finish();
    // Receives are nd events; nothing commits, and there ARE visibles, so
    // the bare substrate (no recovery runtime) violates Save-work.
    assert!(check_save_work(&trace).is_err());
}

#[test]
fn kill_interrupts_and_respawn_resumes() {
    let mut sim = Simulator::new(SimConfig::single_node(1, 3));
    let keys: Vec<Vec<u8>> = (0..20).map(|_| vec![1]).collect();
    sim.set_input_script(ProcessId(0), InputScript::evenly_spaced(0, 10 * MS, keys));
    sim.kill_at(ProcessId(0), 55 * MS);
    let mut app = Echo;
    let mut mems = vec![Mem::new(app.layout())];
    let mut killed = false;
    drive(&mut sim, &mut [&mut app], &mut mems, |sim, pid| {
        killed = true;
        assert!(sim.is_crashed(pid));
        // "Reboot" after 100 ms and continue (no rollback here: this test
        // checks scheduling only; the memory survived).
        sim.respawn(pid, 100 * MS);
    });
    assert!(killed);
    assert!(sim.is_done(ProcessId(0)));
    assert_eq!(echoed(&mems[0]), 20);
}

#[test]
fn signals_wake_blocked_processes() {
    struct Waiter;
    impl App for Waiter {
        fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
            if sys.take_signal().is_some() {
                let done: ArenaCell<u64> = ArenaCell::at(0);
                done.set(&mut sys.mem().arena, 1)?;
                return Ok(AppStatus::Done);
            }
            // Block on a message that never comes; only the signal can end
            // this.
            Ok(AppStatus::Blocked(WaitCond::message()))
        }
    }
    let mut sim = Simulator::new(SimConfig::single_node(1, 5));
    sim.set_signal_schedule(ProcessId(0), SignalSchedule::new(vec![(30 * MS, 14)]));
    let mut app = Waiter;
    let mut mems = vec![Mem::new(app.layout())];
    drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
    assert_eq!(ArenaCell::<u64>::at(0).get(&mems[0].arena).unwrap(), 1);
    assert!(sim.now() >= 30 * MS);
}

#[test]
fn kernel_panic_kills_whole_node() {
    struct Syscaller;
    impl App for Syscaller {
        fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
            sys.gettimeofday();
            sys.compute(MS);
            Ok(AppStatus::Running)
        }
    }
    let mut sim = Simulator::new(SimConfig::single_node(2, 9));
    // Propagation fault: corrupt 3 syscall results, then panic.
    sim.kernel_of_mut(ProcessId(0)).corrupt_next(3);
    let mut a = Syscaller;
    let mut b = Syscaller;
    let mut mems = vec![Mem::new(a.layout()), Mem::new(b.layout())];
    let mut kills = 0;
    drive(&mut sim, &mut [&mut a, &mut b], &mut mems, |_, _| {
        kills += 1;
    });
    assert_eq!(kills, 2, "both processes on the panicked node die");
}

#[test]
fn done_processes_ignore_pending_kills() {
    let mut sim = Simulator::new(SimConfig::single_node(1, 11));
    sim.set_input_script(
        ProcessId(0),
        InputScript::evenly_spaced(0, MS, vec![vec![1]]),
    );
    sim.kill_at(ProcessId(0), 10_000 * MS); // Long after completion.
    let mut app = Echo;
    let mut mems = vec![Mem::new(app.layout())];
    drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {
        panic!("kill after Done must not fire")
    });
    assert!(sim.is_done(ProcessId(0)));
    assert!(!sim.is_crashed(ProcessId(0)));
}

#[test]
fn crash_records_crash_event() {
    struct Crasher;
    impl App for Crasher {
        fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
            // Dereference far out of bounds: a segfault.
            sys.mem().arena.read(usize::MAX - 8, 4)?;
            Ok(AppStatus::Done)
        }
    }
    let mut sim = Simulator::new(SimConfig::single_node(1, 13));
    let mut app = Crasher;
    let mut mems = vec![Mem::new(app.layout())];
    let outcomes = drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
    assert!(outcomes
        .iter()
        .any(|o| matches!(o, StepOutcome::Crashed(_))));
    let (trace, _, _) = sim.finish();
    assert!(trace.iter().any(|e| e.kind.is_crash()));
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let mut sim = Simulator::new(SimConfig::single_node(1, seed));
        sim.set_input_script(
            ProcessId(0),
            InputScript::evenly_spaced(0, MS, (0..10).map(|i| vec![i]).collect()),
        );
        let mut app = Echo;
        let mut mems = vec![Mem::new(app.layout())];
        drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
        let (_, visibles, t) = sim.finish();
        (visibles, t)
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn reactivate_revives_blocked_and_done_processes() {
    // A process that finishes can be reactivated (used when cascading
    // rollback rewinds a completed peer).
    let mut sim = Simulator::new(SimConfig::single_node(1, 77));
    sim.set_input_script(
        ProcessId(0),
        InputScript::evenly_spaced(0, MS, vec![vec![1]]),
    );
    let mut app = Echo;
    let mut mems = vec![Mem::new(app.layout())];
    drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
    assert!(sim.is_done(ProcessId(0)));
    // Rewind its input and reactivate: it runs again.
    sim.set_input_cursor(ProcessId(0), 0);
    sim.reactivate(ProcessId(0));
    drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
    assert!(sim.is_done(ProcessId(0)));
    assert_eq!(echoed(&mems[0]), 2, "the keystroke was re-echoed");
}

#[test]
fn coordinated_commit_recording_shapes_the_trace() {
    // Drive a raw coordinated round through the SysCtx hooks and verify
    // the trace shape: prepare/ack control edges and an atomic group.
    use ft_core::event::EventKind;
    let mut sim = Simulator::new(SimConfig::one_node_each(2, 5));
    // Take P0's first step manually.
    let wake = sim.next_wake();
    assert!(matches!(wake, Some(Wake::Step(_))));
    let pid = match wake.unwrap() {
        Wake::Step(p) => p,
        _ => unreachable!(),
    };
    let mut ctx = sim.ctx(pid);
    ctx.record_coordinated_commit(&[ProcessId(0), ProcessId(1)], &[1000, 2000]);
    let el = ctx.elapsed();
    assert!(el >= 2000, "coordinator pays rtt + slowest remote");
    sim.finish_step(pid, Ok(ft_sim::AppStatus::Done), el);
    let (trace, _, _) =
        std::mem::replace(&mut sim, Simulator::new(SimConfig::single_node(0, 0))).finish();
    let commits: Vec<_> = trace
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Commit { .. }))
        .collect();
    assert_eq!(commits.len(), 2);
    let g0 = commits[0].atomic_group.expect("grouped");
    assert_eq!(commits[1].atomic_group, Some(g0), "same atomic round");
    // Control edges recorded as logged send/recv pairs.
    let control_recvs = trace
        .iter()
        .filter(|e| e.logged && matches!(e.kind, EventKind::Recv { .. }))
        .count();
    assert_eq!(control_recvs, 2, "prepare + ack");
}

/// Sleeps `spans.len()` times, each for the given duration, then exits.
struct Napper {
    spans: Vec<u64>,
    i: usize,
}

impl App for Napper {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        if self.i < self.spans.len() {
            sys.compute(self.spans[self.i]);
            self.i += 1;
            Ok(AppStatus::Running)
        } else {
            Ok(AppStatus::Done)
        }
    }
}

/// Fast-forwarding over an idle span costs O(1) queue operations,
/// independent of the span's length: a run that sleeps ~39 hours per step
/// performs exactly as many queue ops as one sleeping 1 ms per step
/// (entries land on higher wheel levels, not on longer scan paths).
#[test]
fn idle_span_queue_cost_is_span_independent() {
    let ops_for = |span: u64| {
        let mut sim = Simulator::new(SimConfig::single_node(1, 1));
        let mut app = Napper {
            spans: vec![span; 32],
            i: 0,
        };
        let mut mems = vec![Mem::new(app.layout())];
        drive(&mut sim, &mut [&mut app], &mut mems, |_, _| {});
        assert!(sim.now() >= 32 * span, "slept through every span");
        sim.queue_ops()
    };
    let short = ops_for(MS);
    let long = ops_for(1 << 47); // ~39 hours of simulated time per nap
    assert_eq!(short, long, "queue ops must not scale with idle-span size");
}
