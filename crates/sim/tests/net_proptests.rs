//! Randomized model tests for the network fabric: the delivery cursor
//! against a model queue, rewind semantics, dedup, and tainted withdrawal.
//! Driven by the in-repo seeded PRNG so runs are deterministic.

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use std::collections::BTreeSet;

use ft_core::event::{MsgId, ProcessId};
use ft_sim::net::Network;
use ft_sim::rng::SplitMix64;

#[derive(Debug, Clone, Copy)]
enum NetOp {
    /// Send seq `s` from P0 with given taint.
    Send(u8, bool),
    /// Receive the next deliverable at P1.
    Recv,
    /// Snapshot the consumption counts.
    Snapshot,
    /// Rewind to the last snapshot.
    Rewind,
}

fn random_op(rng: &mut SplitMix64) -> NetOp {
    match rng.below(4) {
        0 => NetOp::Send(rng.below(40) as u8, rng.chance(0.5)),
        1 => NetOp::Recv,
        2 => NetOp::Snapshot,
        _ => NetOp::Rewind,
    }
}

/// The single-channel network agrees with a model: sends append unless
/// the sequence already exists; receives pop in order; rewind returns
/// the cursor to the snapshot.
#[test]
fn channel_matches_model() {
    let mut seeds = SplitMix64::new(0x0C0A_57A1);
    for _ in 0..192 {
        let mut rng = SplitMix64::new(seeds.next_u64());
        let n_ops = rng.below(120) as usize;
        let from = ProcessId(0);
        let to = ProcessId(1);
        let mut net = Network::new();
        let mut model: Vec<u8> = Vec::new(); // Sequence numbers in order.
        let mut seen: BTreeSet<u8> = BTreeSet::new();
        let mut cursor = 0usize;
        let mut snap = net.consumed_counts(to);
        let mut snap_cursor = 0usize;
        let mut trace_msg = 0u64;
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                NetOp::Send(s, tainted) => {
                    trace_msg += 1;
                    net.send(
                        from,
                        to,
                        s as u64,
                        vec![s],
                        Default::default(),
                        tainted,
                        0,
                        MsgId(trace_msg),
                    );
                    if seen.insert(s) {
                        model.push(s);
                    }
                }
                NetOp::Recv => {
                    let got = net.try_recv(to, 10).map(|(m, _)| m.seq as u8);
                    let want = model.get(cursor).copied();
                    assert_eq!(got, want);
                    if want.is_some() {
                        cursor += 1;
                    }
                }
                NetOp::Snapshot => {
                    snap = net.consumed_counts(to);
                    snap_cursor = cursor;
                }
                NetOp::Rewind => {
                    net.rewind_receiver(to, &snap);
                    cursor = snap_cursor;
                }
            }
        }
    }
}

/// Withdrawing tainted messages beyond the committed floor removes
/// exactly the tainted-uncommitted suffix and cascades iff a removed
/// message had been consumed.
#[test]
fn withdrawal_matches_model() {
    let mut seeds = SplitMix64::new(0x71D0);
    for _ in 0..256 {
        let mut rng = SplitMix64::new(seeds.next_u64());
        let n_msgs = 1 + rng.below(29) as usize;
        let msgs: Vec<bool> = (0..n_msgs).map(|_| rng.chance(0.5)).collect();
        let consumed = rng.below(30) as usize;
        let floor = rng.below(30);

        let from = ProcessId(0);
        let to = ProcessId(1);
        let mut net = Network::new();
        for (i, &tainted) in msgs.iter().enumerate() {
            net.send(
                from,
                to,
                i as u64,
                vec![],
                Default::default(),
                tainted,
                0,
                MsgId(i as u64),
            );
        }
        let consumed = consumed.min(msgs.len());
        for _ in 0..consumed {
            net.try_recv(to, 10).unwrap();
        }
        let counts = [(to.0, floor)];
        let cascade = net.withdraw_tainted(from, &counts);
        // Model: which messages survive.
        let kept: Vec<usize> = (0..msgs.len())
            .filter(|&i| !(msgs[i] && i as u64 >= floor))
            .collect();
        let ch = net.channel(from, to).unwrap();
        let got: Vec<usize> = ch.messages().iter().map(|m| m.seq as usize).collect();
        assert_eq!(&got, &kept);
        // Cascade iff a consumed message was removed.
        let removed_consumed = (0..consumed).any(|i| msgs[i] && i as u64 >= floor);
        assert_eq!(!cascade.is_empty(), removed_consumed);
    }
}
