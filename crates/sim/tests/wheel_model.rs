//! Model test: [`TimerWheel`] against a binary-heap reference.
//!
//! The wheel replaced `BinaryHeap<Reverse<(SimTime, u64, QEv)>>` as the
//! simulator's event queue, so its observable contract is exactly the
//! heap's: pops come out in ascending `(time, seq)` order, with same-time
//! entries ordered by `seq` (which the simulator assigns in push order).
//! This test drives both structures through identical randomized
//! push/pop/advance schedules — including same-instant ties, pushes into
//! the past, u32-boundary times, and near-`u64::MAX` times — and demands
//! bitwise-identical pop sequences.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ft_sim::wheel::TimerWheel;

/// splitmix64: tiny deterministic RNG, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Generates a push time around the cursor, spread across the regimes the
/// simulator produces: dense near-term work, repeated identical instants
/// (tie-breaks), far-future timeouts, pushes into the past (the wheel's
/// side heap), and times at the u32 boundary and near `u64::MAX`.
fn gen_time(rng: &mut Rng, now: u64, last: u64) -> u64 {
    match rng.next() % 16 {
        // Dense near-term: the common case, many same-slot collisions.
        0..=6 => now.saturating_add(rng.next() % 64),
        // Exact repeat of the previous push time: same-instant tie-break.
        7..=9 => last,
        // Mid-range jump within one wheel level.
        10..=11 => now.saturating_add(rng.next() % 100_000),
        // Far-future idle span (high wheel levels).
        12 => now.saturating_add(rng.next() % (1 << 40)),
        // u32 wrap edge: SimTime is u64 but PR 2's overflow audit calls
        // out 32-bit boundaries as the place truncation bugs hide.
        13 => (u32::MAX as u64)
            .wrapping_add(rng.next() % 8)
            .wrapping_sub(4),
        // Near the top of the domain.
        14 => u64::MAX - rng.next() % 4,
        // The past (relative to times already popped): side-heap path.
        _ => now.saturating_sub(rng.next() % 1_000),
    }
}

fn run_model(seed: u64, ops: usize) {
    let mut rng = Rng(seed);
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64; // time of the last pop: the wheel floor
    let mut last_t = 0u64; // time of the last push: tie-break fodder
    for _ in 0..ops {
        let r = rng.next() % 100;
        if r < 55 || wheel.is_empty() {
            let t = gen_time(&mut rng, now, last_t);
            wheel.push(t, seq, seq);
            heap.push(Reverse((t, seq)));
            last_t = t;
            seq += 1;
        } else {
            let Reverse(want) = heap.pop().expect("models agree on len");
            let got = wheel.pop().expect("wheel non-empty when heap is");
            assert_eq!(got, (want.0, want.1, want.1), "seed {seed}");
            now = want.0;
        }
        assert_eq!(wheel.len(), heap.len(), "seed {seed}");
    }
    // Drain: every remaining entry must come out in heap order.
    while let Some(Reverse(want)) = heap.pop() {
        let got = wheel.pop().expect("wheel drains with heap");
        assert_eq!(got, (want.0, want.1, want.1), "seed {seed} (drain)");
    }
    assert!(wheel.pop().is_none());
    assert!(wheel.is_empty());
}

#[test]
fn wheel_matches_heap_reference_across_seeds() {
    for seed in 0..8u64 {
        run_model(0xA076_1D64_78BD_642F ^ (seed << 17), 10_000);
    }
}

/// Same-instant pushes pop strictly in push (seq) order, even when they
/// arrive interleaved with other instants and across a pop that moves the
/// wheel floor between them.
#[test]
fn same_instant_ties_pop_in_push_order() {
    let mut wheel: TimerWheel<u64> = TimerWheel::new();
    // Three batches at the same instant, split around unrelated pushes.
    for (t, seq) in [(500, 0), (100, 1), (500, 2), (900, 3), (500, 4)] {
        wheel.push(t, seq, seq);
    }
    assert_eq!(wheel.pop(), Some((100, 1, 1)));
    // Late push at the already-active instant, after the floor moved.
    wheel.push(500, 5, 5);
    assert_eq!(wheel.pop(), Some((500, 0, 0)));
    assert_eq!(wheel.pop(), Some((500, 2, 2)));
    assert_eq!(wheel.pop(), Some((500, 4, 4)));
    assert_eq!(wheel.pop(), Some((500, 5, 5)));
    assert_eq!(wheel.pop(), Some((900, 3, 3)));
    assert_eq!(wheel.pop(), None);
}
