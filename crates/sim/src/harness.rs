//! The plain harness: runs applications with **no** recovery runtime.
//!
//! This is the "unrecoverable version of the application" Figure 8 compares
//! against — same simulator, same costs, but no interposition, no commits,
//! no copy-on-write charges. It is also the reference-run generator for the
//! consistent-recovery checker: a failure-free plain run yields the visible
//! sequence a recovered run must be equivalent to.

use ft_core::event::ProcessId;
use ft_core::trace::Trace;
use ft_mem::mem::Mem;

use crate::cost::SimTime;
use crate::sim::{SimConfig, Simulator, SysCtx, Wake};
use crate::syscalls::{App, Message, SysMem, SysResult, Syscalls};

/// A raw syscall context paired with the process's memory.
pub struct PlainSys<'a, 'b> {
    ctx: &'a mut SysCtx<'b>,
    mem: &'a mut Mem,
}

impl<'a, 'b> PlainSys<'a, 'b> {
    /// Pairs a syscall context with a memory image.
    pub fn new(ctx: &'a mut SysCtx<'b>, mem: &'a mut Mem) -> Self {
        PlainSys { ctx, mem }
    }
}

impl Syscalls for PlainSys<'_, '_> {
    fn pid(&self) -> ProcessId {
        self.ctx.pid()
    }
    fn now(&self) -> SimTime {
        self.ctx.now()
    }
    fn compute(&mut self, ns: SimTime) {
        self.ctx.compute(ns);
    }
    fn gettimeofday(&mut self) -> SimTime {
        self.ctx.gettimeofday()
    }
    fn random(&mut self) -> u64 {
        self.ctx.random()
    }
    fn read_input(&mut self) -> Option<Vec<u8>> {
        self.ctx.read_input()
    }
    fn input_exhausted(&self) -> bool {
        self.ctx.input_exhausted()
    }
    fn send(&mut self, to: ProcessId, payload: Vec<u8>) -> SysResult<()> {
        self.ctx.send(to, payload)
    }
    fn try_recv(&mut self) -> Option<Message> {
        self.ctx.try_recv()
    }
    fn visible(&mut self, token: u64) {
        self.ctx.visible(token);
    }
    fn take_signal(&mut self) -> Option<u32> {
        self.ctx.take_signal()
    }
    fn open(&mut self, name: &str) -> SysResult<u32> {
        self.ctx.open(name)
    }
    fn write_file(&mut self, fd: u32, bytes: &[u8]) -> SysResult<()> {
        self.ctx.write_file(fd, bytes)
    }
    fn read_file(&mut self, fd: u32, len: usize) -> SysResult<Vec<u8>> {
        self.ctx.read_file(fd, len)
    }
    fn close(&mut self, fd: u32) -> SysResult<()> {
        self.ctx.close(fd)
    }
    fn note_fault_activation(&mut self, fault: u32) {
        self.ctx.note_fault_activation(fault);
    }
    fn shm_op(&mut self, op: ft_core::access::ShmOp) {
        self.ctx.shm_op(op);
    }
}

impl SysMem for PlainSys<'_, '_> {
    fn mem(&mut self) -> &mut Mem {
        self.mem
    }
}

/// Result of a plain run.
#[derive(Debug)]
pub struct PlainReport {
    /// Recorded event trace.
    pub trace: Trace,
    /// Visible outputs in real-time order: (time, process, token).
    pub visibles: Vec<(SimTime, ProcessId, u64)>,
    /// Final simulated time.
    pub runtime: SimTime,
    /// True if every process ran to completion.
    pub all_done: bool,
    /// Final contents of node 0's files (inspection). Determinism: tests
    /// look files up by name and compare maps with the order-insensitive
    /// `PartialEq`; the map is never iterated into ordered output.
    pub files: std::collections::HashMap<String, Vec<u8>>,
    /// DSM shared-memory access stream (empty for non-DSM workloads).
    pub shm: ft_core::access::ShmLog,
}

/// Runs `apps` to completion (or deadlock) with no recovery; killed or
/// crashed processes simply stay dead.
pub fn run_plain(cfg: SimConfig, apps: &mut [Box<dyn App>]) -> PlainReport {
    run_plain_on(Simulator::new(cfg), apps)
}

/// As [`run_plain`], against a pre-configured simulator (input scripts,
/// signal schedules, kill times already installed).
pub fn run_plain_on(mut sim: Simulator, apps: &mut [Box<dyn App>]) -> PlainReport {
    let sim = &mut sim;
    let mut mems: Vec<Mem> = apps.iter().map(|a| Mem::new(a.layout())).collect();
    while let Some(wake) = sim.next_wake() {
        match wake {
            Wake::Step(pid) => {
                let p = pid.index();
                let mut ctx = sim.ctx(pid);
                let mut sys = PlainSys {
                    ctx: &mut ctx,
                    mem: &mut mems[p],
                };
                let st = apps[p].step(&mut sys);
                let el = ctx.elapsed();
                sim.finish_step(pid, st, el);
            }
            Wake::Killed(_) => {
                // No recovery: the process stays dead.
            }
        }
    }
    let all_done = (0..apps.len()).all(|p| sim.is_done(ProcessId::from_index(p)));
    let now = sim.now();
    let files = if apps.is_empty() {
        Default::default()
    } else {
        sim.kernel_of(ProcessId(0)).files_snapshot()
    };
    let shm = sim.take_shm_log();
    let (trace, visibles, _) =
        std::mem::replace(sim, Simulator::new(SimConfig::single_node(0, 0))).finish();
    PlainReport {
        trace,
        visibles,
        runtime: now,
        all_done,
        files,
        shm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::InputScript;
    use crate::syscalls::{AppStatus, WaitCond};
    use crate::MS;
    use ft_mem::error::MemResult;
    use ft_mem::mem::ArenaCell;

    /// Counts inputs in an arena cell and echoes them.
    struct CellEcho;

    impl App for CellEcho {
        fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
            let count: ArenaCell<u64> = ArenaCell::at(0);
            if let Some(bytes) = sys.read_input() {
                let m = sys.mem();
                let c = count.get(&m.arena)? + 1;
                count.set(&mut m.arena, c)?;
                sys.visible(bytes[0] as u64 + c);
                Ok(AppStatus::Running)
            } else if sys.input_exhausted() {
                Ok(AppStatus::Done)
            } else {
                Ok(AppStatus::Blocked(WaitCond::input()))
            }
        }
    }

    #[test]
    fn plain_run_completes_and_reports() {
        let mut sim = Simulator::new(SimConfig::single_node(1, 1));
        sim.set_input_script(
            ProcessId(0),
            InputScript::evenly_spaced(0, MS, vec![vec![1], vec![2]]),
        );
        let mut apps: Vec<Box<dyn App>> = vec![Box::new(CellEcho)];
        let report = run_plain_on(sim, &mut apps);
        assert!(report.all_done);
        assert_eq!(report.visibles.len(), 2);
        assert_eq!(report.visibles[0].2, 2); // 1 + count 1.
        assert_eq!(report.visibles[1].2, 4); // 2 + count 2.
        assert!(report.runtime >= MS);
    }

    #[test]
    fn killed_process_stays_dead_without_recovery() {
        let mut sim = Simulator::new(SimConfig::single_node(1, 2));
        sim.set_input_script(
            ProcessId(0),
            InputScript::evenly_spaced(0, MS, (0..10).map(|i| vec![i]).collect()),
        );
        sim.kill_at(ProcessId(0), 4 * MS + 1);
        let mut apps: Vec<Box<dyn App>> = vec![Box::new(CellEcho)];
        let report = run_plain_on(sim, &mut apps);
        assert!(!report.all_done);
        assert!(report.visibles.len() < 10);
    }
}
