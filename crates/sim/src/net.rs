//! The simulated network: per-channel message buffers with sender-side
//! recovery semantics, plus an optional unreliable fabric with a reliable
//! transport layered on top.
//!
//! §2.1: "for receive events to be redoable, messages must be saved at
//! either the sender or receiver so they can be re-delivered after a
//! failure." Every ordered process pair has a [`Channel`] that retains all
//! messages ever sent on it, plus a delivery cursor. Recovery rewinds the
//! receiver's cursor to its last committed consumption count (re-delivery),
//! deduplicates re-sends during deterministic replay (same per-channel
//! sequence number), and *withdraws* tainted messages — messages sent while
//! the sender had uncommitted non-determinism — when the sender rolls back
//! past them, reporting which receivers consumed withdrawn messages so the
//! recovery manager can cascade their rollback.
//!
//! # The unreliable fabric and the transport
//!
//! The paper's testbed ran over switched Ethernet with a reliable
//! transport underneath the applications. Installing a [`NetFaultPlan`]
//! models that stack explicitly: individual transmission *attempts* may be
//! dropped, duplicated, jittered, or blocked by a partition, and a
//! per-channel transport state machine (sequence-number acknowledgements,
//! retransmission timers with exponential backoff and a retry cap,
//! duplicate filtering) re-establishes exactly-once FIFO delivery that the
//! recovery protocols above it assume. Attempt outcomes are drawn from the
//! plan's own seeded generator, never the simulator's, so installing a
//! plan with all probabilities zero reproduces the reliable fabric
//! bit-for-bit — same trace, same schedule.
//!
//! A buffered message whose payload has not yet arrived carries
//! [`UNDELIVERED`] as its delivery time; the transport stamps the real
//! arrival time when an attempt gets through. FIFO order is restored for
//! free: the delivery cursor hands out messages in send order, so an
//! arrival that overtakes an earlier undelivered message waits in the
//! buffer until the head of the channel arrives.

use std::collections::{BTreeMap, BTreeSet};

use ft_core::event::{MsgId, ProcessId};

use crate::cost::{SimTime, MS, US};
use crate::rng::SplitMix64;
use crate::syscalls::{Message, Payload};

/// Sentinel delivery time for a buffered message whose payload has not yet
/// arrived at the receiver (every transmission attempt so far was lost).
pub const UNDELIVERED: SimTime = SimTime::MAX;

/// A one-directional network partition: attempts from `from` to `to`
/// during `[start, end)` are dropped. Model a symmetric partition with two
/// entries, one per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Sending process.
    pub from: u32,
    /// Receiving process.
    pub to: u32,
    /// First instant the partition is active.
    pub start: SimTime,
    /// First instant after the partition heals.
    pub end: SimTime,
}

/// A seeded description of an unreliable network fabric. Installing one on
/// the [`Network`] activates the transport layer; all probabilities zero
/// (the default) makes the fabric lossless and the run identical to the
/// plain reliable network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Seed for the fabric's private generator (independent of the
    /// simulator seed, so fault draws never perturb application-visible
    /// randomness).
    pub seed: u64,
    /// Probability that any single transmission attempt (data or ack) is
    /// dropped.
    pub drop_prob: f64,
    /// Probability that a delivered payload is duplicated in flight; the
    /// copy is filtered by the receiver's sequence check.
    pub dup_prob: f64,
    /// Extra uniformly-drawn delay in `[0, reorder_window_ns]` added to
    /// arrivals, letting later sends overtake earlier ones.
    pub reorder_window_ns: SimTime,
    /// Uniform per-attempt latency jitter in `[0, jitter_ns]`.
    pub jitter_ns: SimTime,
    /// Scheduled one-directional partitions.
    pub partitions: Vec<Partition>,
    /// Initial retransmission timeout.
    pub rto_ns: SimTime,
    /// Cap on the exponential backoff of the retransmission timeout.
    pub max_backoff_ns: SimTime,
    /// Attempts before a channel is reported as exhausted. The transport
    /// keeps retrying at the capped backoff afterwards (the recovery model
    /// needs eventual delivery), but the [`NetStats::exhausted`] counter
    /// records that the cap was hit.
    pub max_retries: u32,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan {
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_window_ns: 0,
            jitter_ns: 0,
            partitions: Vec::new(),
            rto_ns: 500 * US,
            max_backoff_ns: 20 * MS,
            max_retries: 8,
        }
    }
}

impl NetFaultPlan {
    /// If `(from, to)` is partitioned at `t`, the healing time of the
    /// longest-lasting active partition.
    pub fn partitioned_until(&self, from: ProcessId, to: ProcessId, t: SimTime) -> Option<SimTime> {
        self.partitions
            .iter()
            .filter(|p| p.from == from.0 && p.to == to.0 && p.start <= t && t < p.end)
            .map(|p| p.end)
            .max()
    }

    /// Retransmission delay after `attempts` tries: `rto * 2^(attempts-1)`,
    /// capped at `max_backoff_ns`.
    pub fn backoff_ns(&self, attempts: u32) -> SimTime {
        let shift = attempts.saturating_sub(1).min(20);
        self.rto_ns
            .saturating_mul(1u64 << shift)
            .clamp(self.rto_ns, self.max_backoff_ns.max(self.rto_ns))
    }
}

/// Transport-layer counters, accumulated while a [`NetFaultPlan`] is
/// installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Data attempts lost to random drop.
    pub drops: u64,
    /// Data attempts lost to an active partition.
    pub partition_drops: u64,
    /// Payloads duplicated in flight by the fabric.
    pub dup_deliveries: u64,
    /// Duplicate payloads filtered by the receiver's sequence check
    /// (fabric duplicates plus retransmissions of already-arrived data).
    pub dup_drops: u64,
    /// Retransmission attempts issued by the transport.
    pub retransmissions: u64,
    /// Retransmission timers that fired with the message still
    /// unacknowledged.
    pub timeouts: u64,
    /// Acknowledgements lost (random drop or reverse-direction partition).
    pub ack_drops: u64,
    /// Messages whose attempt count first exceeded the retry cap.
    pub exhausted: u64,
}

/// A message retained in a channel buffer.
#[derive(Debug, Clone)]
pub struct StoredMsg {
    /// Sender-assigned per-channel sequence number.
    pub seq: u64,
    /// Payload bytes, shared with every delivered view of this message.
    pub payload: Payload,
    /// Sender's dependency snapshot.
    pub deps: BTreeSet<u32>,
    /// Sent while the sender had uncommitted non-determinism.
    pub tainted: bool,
    /// Simulated delivery time ([`UNDELIVERED`] until the transport lands
    /// an attempt, when a fault plan is installed).
    pub deliver_at: SimTime,
    /// The trace event id of the send, so receives join the right clock.
    pub trace_msg: MsgId,
}

/// Transport state for one unacknowledged message.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    /// Transmission attempts so far.
    attempts: u32,
    /// When the currently-armed retransmission timer fires. A timer event
    /// that pops with a different timestamp is stale (superseded or
    /// re-armed) and is ignored.
    next_retry: SimTime,
    /// One-way latency for this message's payload size.
    latency_ns: SimTime,
}

/// One ordered-pair channel.
#[derive(Debug, Clone, Default)]
pub struct Channel {
    msgs: Vec<StoredMsg>,
    /// Index of the next message to deliver to the receiver.
    cursor: usize,
    /// Sequence number -> index in `msgs`, so replay-dedup lookups are
    /// O(log n) instead of a linear scan of the retained buffer.
    seq_index: BTreeMap<u64, usize>,
    /// Transport state for unacknowledged sequences (fault plan only).
    inflight: BTreeMap<u64, Inflight>,
}

impl Channel {
    /// Number of messages consumed by the receiver so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// All retained messages.
    pub fn messages(&self) -> &[StoredMsg] {
        &self.msgs
    }
}

/// One receiver's inbound channels, kept in ascending-sender order
/// (struct-of-arrays: a sorted key column beside a channel column).
#[derive(Debug, Clone, Default)]
struct Row {
    senders: Vec<u32>,
    chans: Vec<Channel>,
}

impl Row {
    fn get(&self, from: u32) -> Option<&Channel> {
        self.senders
            .binary_search(&from)
            .ok()
            .map(|i| &self.chans[i])
    }

    fn get_mut(&mut self, from: u32) -> Option<&mut Channel> {
        self.senders
            .binary_search(&from)
            .ok()
            .map(|i| &mut self.chans[i])
    }
}

/// The network fabric.
#[derive(Debug, Clone)]
pub struct Network {
    // Indexed by receiver, each row sender-sorted, so every scan runs in
    // (from, to) order: `try_recv` breaks same-instant delivery ties toward
    // the lowest sender id DETERMINISTICALLY, and receiver-side scans touch
    // only that receiver's channels instead of the whole fabric. (The
    // predecessor was a BTreeMap keyed by (from, to); a HashMap here once
    // made replay order differ between the original run and a recovery's
    // re-execution, breaking log-based protocols.)
    rows: Vec<Row>,
    /// The installed fabric description; `None` means the plain reliable
    /// network (no transport machinery at all).
    plan: Option<NetFaultPlan>,
    /// The fabric's private generator (seeded from the plan).
    frng: SplitMix64,
    stats: NetStats,
}

impl Default for Network {
    fn default() -> Self {
        Network {
            rows: Vec::new(),
            plan: None,
            frng: SplitMix64::new(0),
            stats: NetStats::default(),
        }
    }
}

/// Outcome of [`Network::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message was enqueued; it will be deliverable at this time
    /// ([`UNDELIVERED`] while a fault plan's transport still owes the
    /// first successful attempt).
    Enqueued(SimTime),
    /// A replayed duplicate (same channel sequence): dropped; the original
    /// buffered copy (deliverable at this time) stands.
    Duplicate(SimTime),
}

impl SendOutcome {
    /// The effective delivery time either way.
    pub fn deliver_at(self) -> SimTime {
        match self {
            SendOutcome::Enqueued(t) | SendOutcome::Duplicate(t) => t,
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    /// Installs an unreliable-fabric description, activating the transport
    /// layer. Call before the run starts.
    pub fn install_fault_plan(&mut self, plan: NetFaultPlan) {
        self.frng = SplitMix64::new(plan.seed);
        self.plan = Some(plan);
    }

    /// The installed fabric description, if any.
    pub fn fault_plan(&self) -> Option<&NetFaultPlan> {
        self.plan.as_ref()
    }

    /// Transport-layer counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn channel_mut(&mut self, from: ProcessId, to: ProcessId) -> &mut Channel {
        let t = to.index();
        if self.rows.len() <= t {
            self.rows.resize_with(t + 1, Row::default);
        }
        let row = &mut self.rows[t];
        let i = match row.senders.binary_search(&from.0) {
            Ok(i) => i,
            Err(i) => {
                row.senders.insert(i, from.0);
                row.chans.insert(i, Channel::default());
                i
            }
        };
        &mut row.chans[i]
    }

    fn chan_mut(&mut self, from: ProcessId, to: ProcessId) -> Option<&mut Channel> {
        self.rows.get_mut(to.index())?.get_mut(from.0)
    }

    /// Enqueues a message. Re-sends of an already-buffered sequence number
    /// (deterministic replay after a failure) are deduplicated.
    ///
    /// With a fault plan installed the buffered copy starts
    /// [`UNDELIVERED`]; the caller must follow up with
    /// [`Network::dispatch`] to run the first transmission attempt.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        seq: u64,
        payload: Vec<u8>,
        deps: BTreeSet<u32>,
        tainted: bool,
        deliver_at: SimTime,
        trace_msg: MsgId,
    ) -> SendOutcome {
        let transport = self.plan.is_some();
        let ch = self.channel_mut(from, to);
        if let Some(&i) = ch.seq_index.get(&seq) {
            return SendOutcome::Duplicate(ch.msgs[i].deliver_at);
        }
        let deliver_at = if transport { UNDELIVERED } else { deliver_at };
        ch.seq_index.insert(seq, ch.msgs.len());
        ch.msgs.push(StoredMsg {
            seq,
            payload: Payload::new(payload),
            deps,
            tainted,
            deliver_at,
            trace_msg,
        });
        SendOutcome::Enqueued(deliver_at)
    }

    /// Runs the first transmission attempt for a freshly enqueued message
    /// (fault plan only). `sent_at` is the send instant and `latency_ns`
    /// the fault-free one-way time for this payload. Returns
    /// `(arrival, retry)`: the caller schedules a delivery wake at
    /// `arrival` and a retransmission timer at `retry` when present.
    pub fn dispatch(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        seq: u64,
        sent_at: SimTime,
        latency_ns: SimTime,
    ) -> (Option<SimTime>, Option<SimTime>) {
        debug_assert!(self.plan.is_some(), "dispatch requires a fault plan");
        let ch = self.channel_mut(from, to);
        ch.inflight.insert(
            seq,
            Inflight {
                attempts: 0,
                next_retry: 0,
                latency_ns,
            },
        );
        self.attempt(from, to, seq, sent_at)
    }

    /// Handles a retransmission-timer pop for `(from, to, seq)` armed for
    /// time `t`. Stale timers (message withdrawn, acknowledged, or timer
    /// re-armed since) are ignored. Returns `(arrival, retry)` as for
    /// [`Network::dispatch`].
    pub fn handle_retransmit(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        seq: u64,
        t: SimTime,
    ) -> (Option<SimTime>, Option<SimTime>) {
        let Some(ch) = self.chan_mut(from, to) else {
            return (None, None);
        };
        if !ch.seq_index.contains_key(&seq) {
            // Withdrawn while in flight.
            ch.inflight.remove(&seq);
            return (None, None);
        }
        let Some(st) = ch.inflight.get(&seq) else {
            return (None, None); // Already acknowledged.
        };
        if st.next_retry != t {
            return (None, None); // Superseded timer.
        }
        self.stats.timeouts += 1;
        self.attempt(from, to, seq, t)
    }

    /// One transmission attempt: draws partition / drop / jitter /
    /// duplication / ack fate from the fabric generator and updates the
    /// transport state. Returns `(arrival, retry)`.
    fn attempt(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        seq: u64,
        now: SimTime,
    ) -> (Option<SimTime>, Option<SimTime>) {
        let plan = self.plan.clone().expect("attempt requires a fault plan");
        // Field-level borrow: `self.stats` and `self.frng` stay usable
        // while the channel is held.
        let ch = self
            .rows
            .get_mut(to.index())
            .and_then(|r| r.get_mut(from.0))
            .expect("attempt on a known channel");
        let Some(&idx) = ch.seq_index.get(&seq) else {
            return (None, None);
        };
        let st = ch.inflight.get_mut(&seq).expect("inflight entry exists");
        st.attempts += 1;
        let attempts = st.attempts;
        let latency = st.latency_ns;
        let backoff = plan.backoff_ns(attempts);
        if attempts > 1 {
            self.stats.retransmissions += 1;
        }
        if attempts == plan.max_retries + 1 {
            self.stats.exhausted += 1;
        }

        // Partition-aware deferral: an attempt into an active partition is
        // lost, and the next try waits for the later of the backoff and
        // the partition healing.
        if let Some(heal) = plan.partitioned_until(from, to, now) {
            self.stats.partition_drops += 1;
            let retry = (now + backoff).max(heal);
            ch.inflight.get_mut(&seq).expect("inflight").next_retry = retry;
            return (None, Some(retry));
        }
        if self.frng.chance(plan.drop_prob) {
            self.stats.drops += 1;
            let retry = now + backoff;
            ch.inflight.get_mut(&seq).expect("inflight").next_retry = retry;
            return (None, Some(retry));
        }

        // The attempt gets through.
        let already_arrived = ch.msgs[idx].deliver_at != UNDELIVERED;
        let arrival = if already_arrived {
            // A retransmission of data the receiver already has (its ack
            // was lost): filtered by the sequence check, re-acknowledged.
            self.stats.dup_drops += 1;
            None
        } else {
            let spread = plan.jitter_ns + plan.reorder_window_ns;
            let jitter = if spread > 0 {
                self.frng.below(spread + 1)
            } else {
                0
            };
            let at = now + latency + jitter;
            ch.msgs[idx].deliver_at = at;
            if self.frng.chance(plan.dup_prob) {
                // The fabric duplicated the payload; the extra copy is
                // filtered on arrival.
                self.stats.dup_deliveries += 1;
                self.stats.dup_drops += 1;
            }
            Some(at)
        };

        // The acknowledgement races back; it can be lost to the reverse
        // partition or to random drop, in which case the timer stays armed
        // and the sender will retransmit.
        let ack_at = arrival.unwrap_or(now) + latency;
        let ack_lost =
            plan.partitioned_until(to, from, ack_at).is_some() || self.frng.chance(plan.drop_prob);
        if ack_lost {
            self.stats.ack_drops += 1;
            let retry = now + backoff;
            ch.inflight.get_mut(&seq).expect("inflight").next_retry = retry;
            (arrival, Some(retry))
        } else {
            ch.inflight.remove(&seq);
            (arrival, None)
        }
    }

    /// Delivers the next deliverable message for `to` (the earliest
    /// `deliver_at` at or before `now` across all of `to`'s channels).
    /// Returns the message plus its trace id.
    pub fn try_recv(&mut self, to: ProcessId, now: SimTime) -> Option<(Message, MsgId)> {
        let row = self.rows.get_mut(to.index())?;
        let mut best: Option<(usize, SimTime)> = None;
        // Ascending-sender scan: a strict `<` keeps the first (lowest
        // sender) among same-instant candidates.
        for (i, ch) in row.chans.iter().enumerate() {
            if let Some(m) = ch.msgs.get(ch.cursor) {
                if m.deliver_at <= now && best.is_none_or(|(_, bt)| m.deliver_at < bt) {
                    best = Some((i, m.deliver_at));
                }
            }
        }
        let (i, _) = best?;
        let from = row.senders[i];
        let ch = &mut row.chans[i];
        let m = &ch.msgs[ch.cursor];
        ch.cursor += 1;
        Some((
            Message {
                from: ProcessId(from),
                seq: m.seq,
                payload: m.payload.clone(),
                deps: m.deps.clone(),
                tainted: m.tainted,
            },
            m.trace_msg,
        ))
    }

    /// The earliest pending delivery time for `to`, if any message is
    /// buffered, unconsumed, and actually arrived (an [`UNDELIVERED`]
    /// channel head is still in the transport's hands — the retransmission
    /// timer, not the receiver, owns the next wake for it).
    pub fn earliest_pending(&self, to: ProcessId) -> Option<SimTime> {
        self.rows
            .get(to.index())?
            .chans
            .iter()
            .filter_map(|ch| ch.msgs.get(ch.cursor).map(|m| m.deliver_at))
            .filter(|&d| d != UNDELIVERED)
            .min()
    }

    /// Snapshot of `to`'s per-sender consumption counts as a sparse
    /// `(sender, count)` list sorted by sender (taken at commit time by
    /// the recovery runtime). Senders absent from the list have consumed
    /// count 0. Sparse, like the simulator's send counters, so snapshot
    /// size is O(peers), not O(processes) — the 10⁴-process budget.
    pub fn consumed_counts(&self, to: ProcessId) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        self.consumed_counts_into(to, &mut out);
        out
    }

    /// As [`Network::consumed_counts`], but reusing the caller's buffer —
    /// the commit hot path recycles the previous snapshot's allocation.
    pub fn consumed_counts_into(&self, to: ProcessId, out: &mut Vec<(u32, usize)>) {
        out.clear();
        let Some(row) = self.rows.get(to.index()) else {
            return;
        };
        for (&from, ch) in row.senders.iter().zip(&row.chans) {
            if ch.cursor > 0 {
                out.push((from, ch.cursor));
            }
        }
    }

    /// Rewinds `to`'s delivery cursors to a committed snapshot (a sparse
    /// sender-sorted list, as produced by [`Network::consumed_counts`]):
    /// messages consumed after the snapshot will be re-delivered.
    pub fn rewind_receiver(&mut self, to: ProcessId, counts: &[(u32, usize)]) {
        let Some(row) = self.rows.get_mut(to.index()) else {
            return;
        };
        for (&from, ch) in row.senders.iter().zip(row.chans.iter_mut()) {
            let count = counts
                .binary_search_by_key(&from, |e| e.0)
                .map(|i| counts[i].1)
                .unwrap_or(0);
            ch.cursor = count.min(ch.msgs.len());
        }
    }

    /// Withdraws tainted messages `from` sent at-or-after the given
    /// per-channel sequence floor (its committed send counts, a sparse
    /// destination-sorted list): the sender rolled back past them and may
    /// not regenerate them. Untainted messages beyond the floor are kept —
    /// the sender's replay is deterministic up to them and dedup will
    /// match the re-sends.
    ///
    /// Returns the receivers that had already consumed a withdrawn message;
    /// the recovery manager must cascade their rollback.
    pub fn withdraw_tainted(
        &mut self,
        from: ProcessId,
        committed_send_counts: &[(u32, u64)],
    ) -> Vec<ProcessId> {
        let mut cascade = Vec::new();
        // Ascending-receiver iteration preserves the old (from, to)
        // BTreeMap cascade order.
        for (to, row) in (0u32..).zip(self.rows.iter_mut()) {
            let Some(ch) = row.get_mut(from.0) else {
                continue;
            };
            let floor = committed_send_counts
                .binary_search_by_key(&to, |e| e.0)
                .map(|i| committed_send_counts[i].1)
                .unwrap_or(0);
            let mut kept = Vec::with_capacity(ch.msgs.len());
            let mut removed_consumed = false;
            for (i, m) in ch.msgs.drain(..).enumerate() {
                if m.seq >= floor && m.tainted {
                    if i < ch.cursor {
                        removed_consumed = true;
                    }
                    continue;
                }
                kept.push(m);
            }
            // Recompute the cursor: count of kept messages that were
            // already consumed. Conservatively, clamp to kept length.
            if removed_consumed {
                cascade.push(ProcessId(to));
            }
            let consumed_before = ch.cursor;
            ch.cursor = kept
                .iter()
                .enumerate()
                .take_while(|(i, _)| *i < consumed_before)
                .count()
                .min(kept.len());
            let index: BTreeMap<u64, usize> =
                kept.iter().enumerate().map(|(i, m)| (m.seq, i)).collect();
            ch.inflight.retain(|s, _| index.contains_key(s));
            ch.seq_index = index;
            ch.msgs = kept;
        }
        cascade
    }

    /// Read access to a channel (tests / inspection).
    pub fn channel(&self, from: ProcessId, to: ProcessId) -> Option<&Channel> {
        self.rows.get(to.index())?.get(from.0)
    }

    /// Total buffered messages (tests).
    pub fn total_buffered(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| &r.chans)
            .map(|c| c.msgs.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn mid(i: u64) -> MsgId {
        MsgId(i)
    }

    #[test]
    fn send_and_receive_in_delivery_order() {
        let mut n = Network::new();
        n.send(
            p(0),
            p(1),
            0,
            b"a".to_vec(),
            Default::default(),
            false,
            100,
            mid(0),
        );
        n.send(
            p(2),
            p(1),
            0,
            b"b".to_vec(),
            Default::default(),
            false,
            50,
            mid(1),
        );
        // Not deliverable before their times.
        assert!(n.try_recv(p(1), 10).is_none());
        let (m, _) = n.try_recv(p(1), 200).unwrap();
        assert_eq!(m.payload, b"b"); // Earlier delivery wins.
        let (m, t) = n.try_recv(p(1), 200).unwrap();
        assert_eq!(m.payload, b"a");
        assert_eq!(t, mid(0));
        assert!(n.try_recv(p(1), 999).is_none());
    }

    #[test]
    fn duplicate_sends_are_dropped() {
        let mut n = Network::new();
        let o1 = n.send(
            p(0),
            p(1),
            7,
            b"x".to_vec(),
            Default::default(),
            false,
            10,
            mid(0),
        );
        let o2 = n.send(
            p(0),
            p(1),
            7,
            b"x".to_vec(),
            Default::default(),
            false,
            99,
            mid(5),
        );
        assert_eq!(o1, SendOutcome::Enqueued(10));
        assert_eq!(o2, SendOutcome::Duplicate(10));
        assert_eq!(n.total_buffered(), 1);
    }

    #[test]
    fn rewind_replays_consumed_messages() {
        let mut n = Network::new();
        n.send(
            p(0),
            p(1),
            0,
            b"a".to_vec(),
            Default::default(),
            false,
            0,
            mid(0),
        );
        n.send(
            p(0),
            p(1),
            1,
            b"b".to_vec(),
            Default::default(),
            false,
            0,
            mid(1),
        );
        let committed = n.consumed_counts(p(1)); // 0 consumed.
        n.try_recv(p(1), 10).unwrap();
        n.try_recv(p(1), 10).unwrap();
        n.rewind_receiver(p(1), &committed);
        let (m, _) = n.try_recv(p(1), 10).unwrap();
        assert_eq!(m.payload, b"a", "re-delivered after rollback");
    }

    #[test]
    fn earliest_pending_sees_unconsumed_only() {
        let mut n = Network::new();
        assert_eq!(n.earliest_pending(p(1)), None);
        n.send(p(0), p(1), 0, vec![], Default::default(), false, 77, mid(0));
        assert_eq!(n.earliest_pending(p(1)), Some(77));
        n.try_recv(p(1), 100).unwrap();
        assert_eq!(n.earliest_pending(p(1)), None);
    }

    #[test]
    fn withdraw_tainted_removes_only_uncommitted_tainted() {
        let mut n = Network::new();
        // seq 0: committed (floor 1). seq 1: tainted, uncommitted. seq 2:
        // clean, uncommitted (kept for deterministic replay dedup).
        n.send(
            p(0),
            p(1),
            0,
            b"c".to_vec(),
            Default::default(),
            true,
            0,
            mid(0),
        );
        n.send(
            p(0),
            p(1),
            1,
            b"t".to_vec(),
            Default::default(),
            true,
            0,
            mid(1),
        );
        n.send(
            p(0),
            p(1),
            2,
            b"k".to_vec(),
            Default::default(),
            false,
            0,
            mid(2),
        );
        // Sparse by receiver: receiver 1 has committed-send floor 1.
        let cascade = n.withdraw_tainted(p(0), &[(1, 1)]);
        assert!(cascade.is_empty(), "nothing consumed yet");
        let ch = n.channel(p(0), p(1)).unwrap();
        assert_eq!(ch.messages().len(), 2);
        assert_eq!(ch.messages()[0].seq, 0);
        assert_eq!(ch.messages()[1].seq, 2);
    }

    #[test]
    fn withdrawing_consumed_message_cascades() {
        let mut n = Network::new();
        n.send(
            p(0),
            p(1),
            0,
            b"t".to_vec(),
            Default::default(),
            true,
            0,
            mid(0),
        );
        n.try_recv(p(1), 10).unwrap();
        let cascade = n.withdraw_tainted(p(0), &[]);
        assert_eq!(cascade, vec![p(1)]);
        assert_eq!(n.total_buffered(), 0);
    }

    #[test]
    fn consumed_counts_snapshot() {
        let mut n = Network::new();
        n.send(p(0), p(1), 0, vec![], Default::default(), false, 0, mid(0));
        n.send(p(2), p(1), 0, vec![], Default::default(), false, 0, mid(1));
        n.try_recv(p(1), 10).unwrap();
        let counts = n.consumed_counts(p(1));
        let total: usize = counts.iter().map(|e| e.1).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn dedup_after_withdrawal_matches_resend() {
        // The seq index must track withdrawals: a withdrawn sequence can
        // be re-sent (fresh enqueue), and a kept sequence re-send dedups.
        let mut n = Network::new();
        n.send(
            p(0),
            p(1),
            0,
            b"t".to_vec(),
            Default::default(),
            true,
            5,
            mid(0),
        );
        n.send(
            p(0),
            p(1),
            1,
            b"k".to_vec(),
            Default::default(),
            false,
            6,
            mid(1),
        );
        n.withdraw_tainted(p(0), &[]); // Removes seq 0 only.
        let o = n.send(
            p(0),
            p(1),
            0,
            b"t2".to_vec(),
            Default::default(),
            false,
            9,
            mid(2),
        );
        assert_eq!(o, SendOutcome::Enqueued(9));
        let o = n.send(
            p(0),
            p(1),
            1,
            b"k".to_vec(),
            Default::default(),
            false,
            99,
            mid(3),
        );
        assert_eq!(o, SendOutcome::Duplicate(6));
        assert_eq!(n.total_buffered(), 2);
    }

    #[test]
    fn zero_plan_dispatch_arrives_at_base_latency() {
        let mut n = Network::new();
        n.install_fault_plan(NetFaultPlan::default());
        let o = n.send(
            p(0),
            p(1),
            0,
            b"x".to_vec(),
            Default::default(),
            false,
            777,
            mid(0),
        );
        // With a plan installed the enqueue itself is undelivered...
        assert_eq!(o, SendOutcome::Enqueued(UNDELIVERED));
        assert_eq!(n.earliest_pending(p(1)), None);
        // ...and the lossless first attempt lands exactly at sent_at +
        // latency with no retry timer.
        let (arrival, retry) = n.dispatch(p(0), p(1), 0, 100, 50);
        assert_eq!(arrival, Some(150));
        assert_eq!(retry, None);
        assert_eq!(n.earliest_pending(p(1)), Some(150));
        let (m, _) = n.try_recv(p(1), 150).unwrap();
        assert_eq!(m.payload, b"x");
        assert_eq!(n.stats(), NetStats::default());
    }

    #[test]
    fn dropped_attempt_retries_with_backoff_until_delivery() {
        let mut n = Network::new();
        n.install_fault_plan(NetFaultPlan {
            seed: 42,
            drop_prob: 1.0, // Every attempt lost...
            rto_ns: 100,
            max_backoff_ns: 400,
            max_retries: 2,
            ..NetFaultPlan::default()
        });
        n.send(
            p(0),
            p(1),
            0,
            b"x".to_vec(),
            Default::default(),
            false,
            0,
            mid(0),
        );
        let (arrival, retry) = n.dispatch(p(0), p(1), 0, 0, 50);
        assert_eq!(arrival, None);
        let mut retry = retry.expect("drop arms the timer");
        assert_eq!(retry, 100); // rto
        for _ in 0..6 {
            let (a, r) = n.handle_retransmit(p(0), p(1), 0, retry);
            assert_eq!(a, None);
            retry = r.expect("still dropping");
        }
        let s = n.stats();
        assert_eq!(s.drops, 7);
        assert_eq!(s.retransmissions, 6);
        assert_eq!(s.timeouts, 6);
        assert_eq!(s.exhausted, 1, "cap of 2 exceeded exactly once");
        // ...until the fabric heals: delivery completes and the timer
        // disarms (liveness after the retry cap).
        n.install_fault_plan(NetFaultPlan {
            seed: 42,
            drop_prob: 0.0,
            rto_ns: 100,
            ..NetFaultPlan::default()
        });
        let (a, r) = n.handle_retransmit(p(0), p(1), 0, retry);
        assert_eq!(a, Some(retry + 50));
        assert_eq!(r, None);
    }

    #[test]
    fn stale_and_foreign_retransmit_timers_are_ignored() {
        let mut n = Network::new();
        n.install_fault_plan(NetFaultPlan {
            seed: 7,
            drop_prob: 1.0,
            rto_ns: 100,
            ..NetFaultPlan::default()
        });
        n.send(p(0), p(1), 0, vec![], Default::default(), false, 0, mid(0));
        let (_, retry) = n.dispatch(p(0), p(1), 0, 0, 50);
        let retry = retry.unwrap();
        // Wrong timestamp, unknown seq, unknown channel: all no-ops.
        assert_eq!(n.handle_retransmit(p(0), p(1), 0, retry + 1), (None, None));
        assert_eq!(n.handle_retransmit(p(0), p(1), 9, retry), (None, None));
        assert_eq!(n.handle_retransmit(p(3), p(4), 0, retry), (None, None));
        assert_eq!(n.stats().timeouts, 0);
    }

    #[test]
    fn partition_defers_past_healing() {
        let mut n = Network::new();
        n.install_fault_plan(NetFaultPlan {
            seed: 1,
            partitions: vec![Partition {
                from: 0,
                to: 1,
                start: 0,
                end: 10_000,
            }],
            rto_ns: 100,
            ..NetFaultPlan::default()
        });
        n.send(p(0), p(1), 0, vec![], Default::default(), false, 0, mid(0));
        let (arrival, retry) = n.dispatch(p(0), p(1), 0, 5, 50);
        assert_eq!(arrival, None);
        // Deferred to the healing time, not just the backoff.
        assert_eq!(retry, Some(10_000));
        assert_eq!(n.stats().partition_drops, 1);
        let (arrival, retry) = n.handle_retransmit(p(0), p(1), 0, 10_000);
        assert_eq!(arrival, Some(10_050));
        assert_eq!(retry, None);
    }

    #[test]
    fn lost_ack_retransmits_and_receiver_filters_duplicate() {
        let mut n = Network::new();
        // Acks from 1 to 0 are partitioned; data gets through.
        n.install_fault_plan(NetFaultPlan {
            seed: 3,
            partitions: vec![Partition {
                from: 1,
                to: 0,
                start: 0,
                end: 500,
            }],
            rto_ns: 100,
            ..NetFaultPlan::default()
        });
        n.send(p(0), p(1), 0, vec![], Default::default(), false, 0, mid(0));
        let (arrival, retry) = n.dispatch(p(0), p(1), 0, 0, 50);
        assert_eq!(arrival, Some(50), "data arrived");
        let retry = retry.expect("lost ack keeps the timer armed");
        assert_eq!(n.stats().ack_drops, 1);
        // Retransmissions are duplicates: filtered, no second arrival;
        // once the partition heals the ack lands and the timer disarms.
        let mut timer = Some(retry);
        let mut rounds = 0u64;
        while let Some(t) = timer {
            let (a, r) = n.handle_retransmit(p(0), p(1), 0, t);
            assert_eq!(a, None, "payload never re-arrives");
            timer = r;
            rounds += 1;
            assert!(rounds < 20, "timer must disarm after the heal");
        }
        assert!(n.stats().dup_drops >= 1);
        assert_eq!(n.stats().retransmissions, rounds);
        // Exactly one copy was ever deliverable.
        let mut got = 0;
        while n.try_recv(p(1), 1_000_000).is_some() {
            got += 1;
        }
        assert_eq!(got, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let plan = NetFaultPlan {
            rto_ns: 100,
            max_backoff_ns: 450,
            ..NetFaultPlan::default()
        };
        assert_eq!(plan.backoff_ns(1), 100);
        assert_eq!(plan.backoff_ns(2), 200);
        assert_eq!(plan.backoff_ns(3), 400);
        assert_eq!(plan.backoff_ns(4), 450);
        assert_eq!(plan.backoff_ns(40), 450);
    }
}
