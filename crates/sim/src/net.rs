//! The simulated network: per-channel message buffers with sender-side
//! recovery semantics.
//!
//! §2.1: "for receive events to be redoable, messages must be saved at
//! either the sender or receiver so they can be re-delivered after a
//! failure." Every ordered process pair has a [`Channel`] that retains all
//! messages ever sent on it, plus a delivery cursor. Recovery rewinds the
//! receiver's cursor to its last committed consumption count (re-delivery),
//! deduplicates re-sends during deterministic replay (same per-channel
//! sequence number), and *withdraws* tainted messages — messages sent while
//! the sender had uncommitted non-determinism — when the sender rolls back
//! past them, reporting which receivers consumed withdrawn messages so the
//! recovery manager can cascade their rollback.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ft_core::event::{MsgId, ProcessId};
use serde::{Deserialize, Serialize};

use crate::cost::SimTime;
use crate::syscalls::Message;

/// A message retained in a channel buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredMsg {
    /// Sender-assigned per-channel sequence number.
    pub seq: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Sender's dependency snapshot.
    pub deps: BTreeSet<u32>,
    /// Sent while the sender had uncommitted non-determinism.
    pub tainted: bool,
    /// Simulated delivery time.
    pub deliver_at: SimTime,
    /// The trace event id of the send, so receives join the right clock.
    pub trace_msg: MsgId,
}

/// One ordered-pair channel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Channel {
    msgs: Vec<StoredMsg>,
    /// Index of the next message to deliver to the receiver.
    cursor: usize,
}

impl Channel {
    /// Number of messages consumed by the receiver so far.
    pub fn consumed(&self) -> usize {
        self.cursor
    }

    /// All retained messages.
    pub fn messages(&self) -> &[StoredMsg] {
        &self.msgs
    }
}

/// The network fabric.
#[derive(Debug, Clone, Default)]
pub struct Network {
    // A BTreeMap so every scan is in (from, to) order: `try_recv` breaks
    // same-instant delivery ties toward the lowest sender id DETERMINISTICALLY.
    // A HashMap here once made replay order differ between the original run
    // and a recovery's re-execution, breaking log-based protocols.
    channels: BTreeMap<(u32, u32), Channel>,
}

/// Outcome of [`Network::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message was enqueued; it will be deliverable at this time.
    Enqueued(SimTime),
    /// A replayed duplicate (same channel sequence): dropped; the original
    /// buffered copy (deliverable at this time) stands.
    Duplicate(SimTime),
}

impl SendOutcome {
    /// The effective delivery time either way.
    pub fn deliver_at(self) -> SimTime {
        match self {
            SendOutcome::Enqueued(t) | SendOutcome::Duplicate(t) => t,
        }
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network::default()
    }

    fn channel_mut(&mut self, from: ProcessId, to: ProcessId) -> &mut Channel {
        self.channels.entry((from.0, to.0)).or_default()
    }

    /// Enqueues a message. Re-sends of an already-buffered sequence number
    /// (deterministic replay after a failure) are deduplicated.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        seq: u64,
        payload: Vec<u8>,
        deps: BTreeSet<u32>,
        tainted: bool,
        deliver_at: SimTime,
        trace_msg: MsgId,
    ) -> SendOutcome {
        let ch = self.channel_mut(from, to);
        if let Some(existing) = ch.msgs.iter().find(|m| m.seq == seq) {
            return SendOutcome::Duplicate(existing.deliver_at);
        }
        ch.msgs.push(StoredMsg {
            seq,
            payload,
            deps,
            tainted,
            deliver_at,
            trace_msg,
        });
        SendOutcome::Enqueued(deliver_at)
    }

    /// Delivers the next deliverable message for `to` (the earliest
    /// `deliver_at` at or before `now` across all of `to`'s channels).
    /// Returns the message plus its trace id.
    pub fn try_recv(&mut self, to: ProcessId, now: SimTime) -> Option<(Message, MsgId)> {
        let mut best: Option<(u32, SimTime)> = None;
        for (&(from, t), ch) in &self.channels {
            if t != to.0 {
                continue;
            }
            if let Some(m) = ch.msgs.get(ch.cursor) {
                if m.deliver_at <= now && best.is_none_or(|(_, bt)| m.deliver_at < bt) {
                    best = Some((from, m.deliver_at));
                }
            }
        }
        let (from, _) = best?;
        let ch = self
            .channels
            .get_mut(&(from, to.0))
            .expect("channel exists");
        let m = &ch.msgs[ch.cursor];
        ch.cursor += 1;
        Some((
            Message {
                from: ProcessId(from),
                seq: m.seq,
                payload: m.payload.clone(),
                deps: m.deps.clone(),
                tainted: m.tainted,
            },
            m.trace_msg,
        ))
    }

    /// The earliest pending delivery time for `to`, if any message is
    /// buffered and unconsumed.
    pub fn earliest_pending(&self, to: ProcessId) -> Option<SimTime> {
        self.channels
            .iter()
            .filter(|(&(_, t), _)| t == to.0)
            .filter_map(|(_, ch)| ch.msgs.get(ch.cursor).map(|m| m.deliver_at))
            .min()
    }

    /// Snapshot of `to`'s per-sender consumption counts (taken at commit
    /// time by the recovery runtime).
    pub fn consumed_counts(&self, to: ProcessId) -> HashMap<u32, usize> {
        self.channels
            .iter()
            .filter(|(&(_, t), _)| t == to.0)
            .map(|(&(from, _), ch)| (from, ch.cursor))
            .collect()
    }

    /// Rewinds `to`'s delivery cursors to a committed snapshot: messages
    /// consumed after the snapshot will be re-delivered.
    pub fn rewind_receiver(&mut self, to: ProcessId, counts: &HashMap<u32, usize>) {
        for (&(from, t), ch) in self.channels.iter_mut() {
            if t != to.0 {
                continue;
            }
            ch.cursor = counts.get(&from).copied().unwrap_or(0).min(ch.msgs.len());
        }
    }

    /// Withdraws tainted messages `from` sent at-or-after the given
    /// per-channel sequence floor (its committed send counts): the sender
    /// rolled back past them and may not regenerate them. Untainted
    /// messages beyond the floor are kept — the sender's replay is
    /// deterministic up to them and dedup will match the re-sends.
    ///
    /// Returns the receivers that had already consumed a withdrawn message;
    /// the recovery manager must cascade their rollback.
    pub fn withdraw_tainted(
        &mut self,
        from: ProcessId,
        committed_send_counts: &HashMap<u32, u64>,
    ) -> Vec<ProcessId> {
        let mut cascade = Vec::new();
        for (&(f, to), ch) in self.channels.iter_mut() {
            if f != from.0 {
                continue;
            }
            let floor = committed_send_counts.get(&to).copied().unwrap_or(0);
            let mut kept = Vec::with_capacity(ch.msgs.len());
            let mut removed_consumed = false;
            for (i, m) in ch.msgs.drain(..).enumerate() {
                if m.seq >= floor && m.tainted {
                    if i < ch.cursor {
                        removed_consumed = true;
                    }
                    continue;
                }
                kept.push(m);
            }
            // Recompute the cursor: count of kept messages that were
            // already consumed. Conservatively, clamp to kept length.
            if removed_consumed {
                cascade.push(ProcessId(to));
            }
            let consumed_before = ch.cursor;
            ch.cursor = kept
                .iter()
                .enumerate()
                .take_while(|(i, _)| *i < consumed_before)
                .count()
                .min(kept.len());
            ch.msgs = kept;
        }
        cascade
    }

    /// Read access to a channel (tests / inspection).
    pub fn channel(&self, from: ProcessId, to: ProcessId) -> Option<&Channel> {
        self.channels.get(&(from.0, to.0))
    }

    /// Total buffered messages (tests).
    pub fn total_buffered(&self) -> usize {
        self.channels.values().map(|c| c.msgs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId(i)
    }

    fn mid(i: u64) -> MsgId {
        MsgId(i)
    }

    #[test]
    fn send_and_receive_in_delivery_order() {
        let mut n = Network::new();
        n.send(
            p(0),
            p(1),
            0,
            b"a".to_vec(),
            Default::default(),
            false,
            100,
            mid(0),
        );
        n.send(
            p(2),
            p(1),
            0,
            b"b".to_vec(),
            Default::default(),
            false,
            50,
            mid(1),
        );
        // Not deliverable before their times.
        assert!(n.try_recv(p(1), 10).is_none());
        let (m, _) = n.try_recv(p(1), 200).unwrap();
        assert_eq!(m.payload, b"b"); // Earlier delivery wins.
        let (m, t) = n.try_recv(p(1), 200).unwrap();
        assert_eq!(m.payload, b"a");
        assert_eq!(t, mid(0));
        assert!(n.try_recv(p(1), 999).is_none());
    }

    #[test]
    fn duplicate_sends_are_dropped() {
        let mut n = Network::new();
        let o1 = n.send(
            p(0),
            p(1),
            7,
            b"x".to_vec(),
            Default::default(),
            false,
            10,
            mid(0),
        );
        let o2 = n.send(
            p(0),
            p(1),
            7,
            b"x".to_vec(),
            Default::default(),
            false,
            99,
            mid(5),
        );
        assert_eq!(o1, SendOutcome::Enqueued(10));
        assert_eq!(o2, SendOutcome::Duplicate(10));
        assert_eq!(n.total_buffered(), 1);
    }

    #[test]
    fn rewind_replays_consumed_messages() {
        let mut n = Network::new();
        n.send(
            p(0),
            p(1),
            0,
            b"a".to_vec(),
            Default::default(),
            false,
            0,
            mid(0),
        );
        n.send(
            p(0),
            p(1),
            1,
            b"b".to_vec(),
            Default::default(),
            false,
            0,
            mid(1),
        );
        let committed = n.consumed_counts(p(1)); // 0 consumed.
        n.try_recv(p(1), 10).unwrap();
        n.try_recv(p(1), 10).unwrap();
        n.rewind_receiver(p(1), &committed);
        let (m, _) = n.try_recv(p(1), 10).unwrap();
        assert_eq!(m.payload, b"a", "re-delivered after rollback");
    }

    #[test]
    fn earliest_pending_sees_unconsumed_only() {
        let mut n = Network::new();
        assert_eq!(n.earliest_pending(p(1)), None);
        n.send(p(0), p(1), 0, vec![], Default::default(), false, 77, mid(0));
        assert_eq!(n.earliest_pending(p(1)), Some(77));
        n.try_recv(p(1), 100).unwrap();
        assert_eq!(n.earliest_pending(p(1)), None);
    }

    #[test]
    fn withdraw_tainted_removes_only_uncommitted_tainted() {
        let mut n = Network::new();
        // seq 0: committed (floor 1). seq 1: tainted, uncommitted. seq 2:
        // clean, uncommitted (kept for deterministic replay dedup).
        n.send(
            p(0),
            p(1),
            0,
            b"c".to_vec(),
            Default::default(),
            true,
            0,
            mid(0),
        );
        n.send(
            p(0),
            p(1),
            1,
            b"t".to_vec(),
            Default::default(),
            true,
            0,
            mid(1),
        );
        n.send(
            p(0),
            p(1),
            2,
            b"k".to_vec(),
            Default::default(),
            false,
            0,
            mid(2),
        );
        let mut counts = HashMap::new();
        counts.insert(1u32, 1u64);
        let cascade = n.withdraw_tainted(p(0), &counts);
        assert!(cascade.is_empty(), "nothing consumed yet");
        let ch = n.channel(p(0), p(1)).unwrap();
        assert_eq!(ch.messages().len(), 2);
        assert_eq!(ch.messages()[0].seq, 0);
        assert_eq!(ch.messages()[1].seq, 2);
    }

    #[test]
    fn withdrawing_consumed_message_cascades() {
        let mut n = Network::new();
        n.send(
            p(0),
            p(1),
            0,
            b"t".to_vec(),
            Default::default(),
            true,
            0,
            mid(0),
        );
        n.try_recv(p(1), 10).unwrap();
        let cascade = n.withdraw_tainted(p(0), &HashMap::new());
        assert_eq!(cascade, vec![p(1)]);
        assert_eq!(n.total_buffered(), 0);
    }

    #[test]
    fn consumed_counts_snapshot() {
        let mut n = Network::new();
        n.send(p(0), p(1), 0, vec![], Default::default(), false, 0, mid(0));
        n.send(p(2), p(1), 0, vec![], Default::default(), false, 0, mid(1));
        n.try_recv(p(1), 10).unwrap();
        let counts = n.consumed_counts(p(1));
        let total: usize = counts.values().sum();
        assert_eq!(total, 1);
    }
}
