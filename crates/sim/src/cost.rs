//! Time-cost constants for the simulated testbed.
//!
//! Calibrated against the paper's hardware (§3): 400 MHz Pentium II,
//! FreeBSD 2.2.7, 100 Mb/s switched Ethernet, X11 display. Only the *shape*
//! of Figure 8 depends on these — ratios between syscall costs, commit
//! costs, and think times — not the absolute values.

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// One millisecond.
pub const MS: SimTime = 1_000_000;
/// One microsecond.
pub const US: SimTime = 1_000;
/// One second.
pub const SEC: SimTime = 1_000_000_000;

/// Per-operation costs charged by the syscall layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Base cost of entering/leaving a (interposed) system call.
    pub syscall_ns: SimTime,
    /// `gettimeofday`.
    pub gettimeofday_ns: SimTime,
    /// Reading one user-input token.
    pub read_input_ns: SimTime,
    /// Local cost of a message send (copy + protocol stack).
    pub send_ns: SimTime,
    /// Local cost of a message receive.
    pub recv_ns: SimTime,
    /// Cost of a visible output event (an X protocol round, a terminal
    /// write).
    pub visible_ns: SimTime,
    /// `open` (path lookup + file-table slot).
    pub open_ns: SimTime,
    /// Per byte of file I/O through the buffer cache.
    pub file_ns_per_byte: SimTime,
    /// One-way network latency (switch + stacks).
    pub net_latency_ns: SimTime,
    /// Network bandwidth, bytes per second (100 Mb/s).
    pub net_bytes_per_sec: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            syscall_ns: 2 * US,
            gettimeofday_ns: US,
            read_input_ns: 3 * US,
            send_ns: 15 * US,
            recv_ns: 10 * US,
            visible_ns: 40 * US,
            open_ns: 20 * US,
            file_ns_per_byte: 15,
            net_latency_ns: 120 * US,
            net_bytes_per_sec: 12_500_000,
        }
    }
}

impl CostModel {
    /// Network transfer time for a payload of `bytes`.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "bytes * 1e9 / bandwidth fits u64 for any realistic transfer (< ~584 years of ns)"
    )]
    pub fn net_transfer_ns(&self, bytes: usize) -> SimTime {
        (bytes as u128 * 1_000_000_000 / self.net_bytes_per_sec as u128) as SimTime
    }

    /// Full one-way message time: latency + transfer.
    pub fn net_delivery_ns(&self, bytes: usize) -> SimTime {
        self.net_latency_ns + self.net_transfer_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.syscall_ns < c.visible_ns);
        assert!(c.net_latency_ns > c.send_ns);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let c = CostModel::default();
        assert_eq!(c.net_transfer_ns(0), 0);
        // 12.5 MB at 12.5 MB/s = 1 s.
        assert_eq!(c.net_transfer_ns(12_500_000), SEC);
        assert!(c.net_delivery_ns(1000) > c.net_latency_ns);
    }
}
