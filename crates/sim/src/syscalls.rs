//! The syscall surface simulated processes run against, and the `App`
//! trait the workload applications implement.
//!
//! Every operation here corresponds to an interposition point of Discount
//! Checking (§3): "Discount Checking intercepts a process's signals and
//! non-deterministic system calls such as `gettimeofday`, `bind`, `select`,
//! `read`, `recvmsg`, `recv`, and `recvfrom`. To learn of a process'
//! visible and send events, Discount Checking intercepts calls to `write`,
//! `send`, `sendto`, and `sendmsg`." The checkpointing runtime in `ft-dc`
//! wraps a raw [`Syscalls`] with exactly those interpositions.

use std::collections::BTreeSet;
use std::ops::Deref;
use std::sync::Arc;

use ft_core::event::ProcessId;
use ft_mem::arena::Layout;
use ft_mem::error::MemResult;
use ft_mem::mem::Mem;

use crate::cost::SimTime;

/// Errors returned by the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysError {
    /// Bad file descriptor.
    BadFd,
    /// No free slot in the open-file table (a *fixed* non-deterministic
    /// outcome of `open` — §2.5).
    TableFull,
    /// The disk is full (a *fixed* non-deterministic outcome of `write`).
    NoSpace,
    /// No such file.
    NoSuchFile,
    /// The kernel has panicked beneath this process.
    KernelPanic,
}

impl std::fmt::Display for SysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SysError::BadFd => "bad file descriptor",
            SysError::TableFull => "open file table full",
            SysError::NoSpace => "no space left on device",
            SysError::NoSuchFile => "no such file",
            SysError::KernelPanic => "kernel panic",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SysError {}

/// Result alias for syscalls.
pub type SysResult<T> = Result<T, SysError>;

/// An immutable, reference-counted message payload.
///
/// The sender's bytes are copied into a shared buffer once at `send` —
/// the same single copy the old per-delivery `Vec<u8>` clone paid, moved
/// to the producer side. The network's buffered copy (sender-side
/// retention for recovery), every delivery, and every committed
/// `PendingNd` snapshot then share it: cloning is a refcount bump, never
/// a byte copy, so broadcasts and snapshots are free. A slice `Arc`
/// (header and bytes in one allocation) rather than `Arc<Vec<u8>>`, which
/// would add a second heap block per message. `Arc` (not `Rc`) because
/// applications are `Send` and trials run on campaign worker threads.
/// Reads go through `Deref<Target = [u8]>`, so payload slicing and
/// indexing look exactly like they did when this was a `Vec<u8>`.
#[derive(Clone, PartialEq, Eq)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Packs the sender's bytes into the shared buffer (the one copy).
    pub fn new(bytes: Vec<u8>) -> Self {
        Payload(bytes.into())
    }

    /// Extracts the bytes into an owned buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.0.to_vec()
    }

    /// Mutable access for the rare in-kernel corruption fault path:
    /// unshares the buffer first so other holders keep the pristine bytes.
    pub fn make_mut(&mut self) -> &mut [u8] {
        if Arc::get_mut(&mut self.0).is_none() {
            self.0 = Arc::from(&*self.0);
        }
        Arc::get_mut(&mut self.0).expect("buffer was just unshared")
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload::new(bytes)
    }
}

// Formats like the `Vec<u8>` it replaced, so any Debug-derived output
// (and therefore any fingerprint over it) is unchanged.
impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Payload {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == **other
    }
}

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending process.
    pub from: ProcessId,
    /// Per-channel sequence number assigned by the sender.
    pub seq: u64,
    /// Payload bytes (a shared view of the sender's buffer).
    pub payload: Payload,
    /// Dependency snapshot piggybacked by the sender's recovery runtime
    /// (empty when no runtime is interposed).
    pub deps: BTreeSet<u32>,
    /// True if the sender had uncommitted non-determinism at send time (the
    /// message may not be regenerated after a sender failure).
    pub tainted: bool,
}

/// What a blocked process is waiting for. Any satisfied condition wakes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaitCond {
    /// Wake when a message is deliverable.
    pub message: bool,
    /// Wake when the next scripted user input is due.
    pub input: bool,
    /// Wake at this absolute simulated time.
    pub until: Option<SimTime>,
}

impl WaitCond {
    /// Wait for a message.
    pub fn message() -> Self {
        WaitCond {
            message: true,
            ..Default::default()
        }
    }

    /// Wait for user input.
    pub fn input() -> Self {
        WaitCond {
            input: true,
            ..Default::default()
        }
    }

    /// Sleep until an absolute time.
    pub fn until(t: SimTime) -> Self {
        WaitCond {
            until: Some(t),
            ..Default::default()
        }
    }

    /// Wait for a message or a timeout.
    pub fn message_or_until(t: SimTime) -> Self {
        WaitCond {
            message: true,
            until: Some(t),
            ..Default::default()
        }
    }

    /// Wait for input or a message.
    pub fn input_or_message() -> Self {
        WaitCond {
            message: true,
            input: true,
            until: None,
        }
    }
}

/// The status an application step reports back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStatus {
    /// Ready to run again immediately (after the charged time elapses).
    Running,
    /// Blocked until the condition is satisfied.
    Blocked(WaitCond),
    /// The computation is complete.
    Done,
}

/// The system interface a process sees. Implemented by the raw simulator
/// context and, with recovery interposition, by `ft-dc`'s wrapper.
pub trait Syscalls {
    /// This process's id.
    fn pid(&self) -> ProcessId;

    /// Current simulated time including time charged so far in this step.
    /// (Scheduler-internal; reading it is free and records no event — use
    /// [`Syscalls::gettimeofday`] for the observable clock.)
    fn now(&self) -> SimTime;

    /// Burns CPU time.
    fn compute(&mut self, ns: SimTime);

    /// Reads the time-of-day clock: a *transient* non-deterministic event.
    fn gettimeofday(&mut self) -> SimTime;

    /// Draws entropy: a *transient* non-deterministic event.
    fn random(&mut self) -> u64;

    /// Takes the next due scripted user input, if any: a *fixed*
    /// non-deterministic event when it returns `Some`. Returns `None` when
    /// no input is due yet (block with [`WaitCond::input`]) — no event is
    /// recorded in that case.
    fn read_input(&mut self) -> Option<Vec<u8>>;

    /// True when the input script is exhausted (the session is over).
    fn input_exhausted(&self) -> bool;

    /// Sends a message: a send event.
    fn send(&mut self, to: ProcessId, payload: Vec<u8>) -> SysResult<()>;

    /// Receives the next deliverable message, if any: a *transient*
    /// non-deterministic (receive) event when it returns `Some`.
    fn try_recv(&mut self) -> Option<Message>;

    /// Emits user-visible output: a visible event. `token` identifies the
    /// content for output-equivalence checking.
    fn visible(&mut self, token: u64);

    /// Takes a pending signal, if one is due: a *transient*
    /// non-deterministic event when it returns `Some`.
    fn take_signal(&mut self) -> Option<u32>;

    /// Opens (creating if absent) a file: a *fixed* non-deterministic event
    /// (its outcome depends on open-file-table occupancy).
    fn open(&mut self, name: &str) -> SysResult<u32>;

    /// Appends to an open file: a *fixed* non-deterministic event (its
    /// outcome depends on disk fullness).
    fn write_file(&mut self, fd: u32, bytes: &[u8]) -> SysResult<()>;

    /// Reads from an open file at the current position.
    fn read_file(&mut self, fd: u32, len: usize) -> SysResult<Vec<u8>>;

    /// Closes a descriptor.
    fn close(&mut self, fd: u32) -> SysResult<()>;

    /// Journals that an injected fault's buggy code executed (§4
    /// instrumentation: "instrumenting Discount Checking to log each fault
    /// activation and commit event"). A no-op event for the protocols.
    fn note_fault_activation(&mut self, fault: u32);

    /// Reports a DSM-layer shared-memory operation (page read/write, lock
    /// acquire/release, barrier completion) to the access stream consumed
    /// by `ft-analyze`. Pure instrumentation: records no event, charges no
    /// time, and never perturbs the run. The default discards the record —
    /// only the simulator-backed implementations persist it.
    fn shm_op(&mut self, op: ft_core::access::ShmOp) {
        let _ = op;
    }
}

/// System interface plus access to the process's recoverable memory.
///
/// Applications reach their [`Mem`] *through* the syscall layer so the
/// checkpointing runtime can checkpoint and roll it back without aliasing
/// the application's borrow. Hold the `&mut Mem` only between syscalls.
pub trait SysMem: Syscalls {
    /// The process's recoverable memory image.
    fn mem(&mut self) -> &mut Mem;
}

/// A workload application: a state machine whose **entire recoverable
/// state lives in its [`Mem`]** — the application struct itself holds only
/// immutable configuration. That is the §2.2 process model made literal,
/// and it is what makes commits at arbitrary interposition points sound.
///
/// # The one-event-per-step discipline
///
/// Each `step` must execute **at most one syscall that generates an event
/// or mutates kernel state** (`read_input`, `try_recv`, `gettimeofday`,
/// `random`, `take_signal`, `open`, `write_file`, `read_file` — which
/// advances the file position — `close`, `send`, or `visible`). Pure
/// operations (`compute`, `now`, memory access) are unrestricted. The
/// recovery runtime commits *at* interposition points; with one event per
/// step and the state-machine phase stored in the arena, re-executing the
/// enclosing step after a rollback is equivalent to resuming the saved
/// program counter: duplicated sends are deduplicated by the network,
/// duplicated visibles are permitted by consistent recovery, and a
/// commit-after-nd checkpoint carries the nd result as a pending value.
///
/// `Send` is a supertrait so a fully built trial — simulator plus
/// applications — is self-contained and can be constructed and run on any
/// worker thread of the parallel campaign runner (`ft-bench`). Every
/// application is plain owned data; the bound just makes that a
/// compile-time guarantee.
pub trait App: Send {
    /// Executes one step. Memory faults are crash events.
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus>;

    /// The arena layout this application needs.
    fn layout(&self) -> Layout {
        Layout::small()
    }

    /// Called by the recovery harness after this process is rolled back.
    /// Fault-study applications suppress further fault activations here —
    /// "we suppress the fault activation during recovery" (§4.1).
    fn on_recovered(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_cond_constructors() {
        assert!(WaitCond::message().message);
        assert!(!WaitCond::message().input);
        assert!(WaitCond::input().input);
        assert_eq!(WaitCond::until(5).until, Some(5));
        let mu = WaitCond::message_or_until(9);
        assert!(mu.message);
        assert_eq!(mu.until, Some(9));
        let im = WaitCond::input_or_message();
        assert!(im.input && im.message);
    }

    #[test]
    fn sys_error_display() {
        assert_eq!(SysError::NoSpace.to_string(), "no space left on device");
        assert_eq!(SysError::TableFull.to_string(), "open file table full");
    }
}
