//! # ft-sim — the simulated testbed
//!
//! A deterministic discrete-event simulator standing in for the paper's
//! FreeBSD 2.2.7 testbed (§3): processes with a syscall surface, per-node
//! kernels (open-file tables, a buffer-cache filesystem, signal delivery,
//! fault-injection hooks), a 100 Mb/s network with sender-side message
//! retention, scripted interactive input, stop failures, and integrated
//! trace recording against the `ft-core` event model.
//!
//! The simulator deliberately does **not** own the applications: the run
//! loop lives in the harness (plain, or `ft-dc`'s checkpointing runtime),
//! which steps each process against a [`sim::SysCtx`] and decides what to
//! do about failures. See [`sim::Simulator`] for the protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod harness;
pub mod kernel;
pub mod net;
pub mod rng;
pub mod script;
pub mod sim;
pub mod syscalls;
pub mod wheel;

pub use cost::{CostModel, SimTime, MS, SEC, US};
pub use harness::{run_plain, run_plain_on, PlainReport, PlainSys};
pub use kernel::{Kernel, KernelSnapshot};
pub use net::{Network, SendOutcome};
pub use rng::SplitMix64;
pub use script::{InputScript, SignalSchedule};
pub use sim::{ProcStats, SimConfig, Simulator, StepOutcome, SysCtx, Wake};
pub use syscalls::{
    App, AppStatus, Message, Payload, SysError, SysMem, SysResult, Syscalls, WaitCond,
};
