//! Scripted user input and signal schedules.
//!
//! Interactive sessions are driven by timed input scripts — "we simulate
//! fast interactive rates by delaying 100 ms between each keystroke in nvi
//! and by delaying 1 second between each mouse-generated command in magic"
//! (§3). Input *values* are fixed non-determinism: after a failure the user
//! retypes the same thing, which the script models by letting its cursor be
//! rolled back.

use crate::cost::SimTime;

/// A timed user-input script.
///
/// Two pacing modes: *absolute* scripts pin each input to a wall-clock
/// time; *relative* scripts (the paper's "delaying 100 ms between each
/// keystroke") make each input due a fixed think time after the previous
/// one was consumed — so recovery-runtime overhead lengthens the session
/// instead of hiding inside idle time.
#[derive(Debug, Clone, Default)]
pub struct InputScript {
    items: Vec<(SimTime, Vec<u8>)>,
    cursor: usize,
    /// Relative mode: item times are think-time delays, armed when the
    /// application first polls after handling the previous input (i.e. the
    /// user starts thinking when the response appears).
    relative: bool,
    armed: Option<SimTime>,
}

impl InputScript {
    /// Creates an absolute script from (due time, bytes) pairs; times must
    /// be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if times decrease.
    pub fn new(items: Vec<(SimTime, Vec<u8>)>) -> Self {
        assert!(
            items.windows(2).all(|w| w[0].0 <= w[1].0),
            "input script times must be non-decreasing"
        );
        InputScript {
            items,
            cursor: 0,
            relative: false,
            armed: None,
        }
    }

    /// Builds an absolute script delivering `tokens` at a fixed `interval`,
    /// starting at `start`.
    pub fn evenly_spaced(start: SimTime, interval: SimTime, tokens: Vec<Vec<u8>>) -> Self {
        let items = tokens
            .into_iter()
            .enumerate()
            .map(|(i, t)| (start + interval * i as SimTime, t))
            .collect();
        InputScript::new(items)
    }

    /// Builds a relative script: each token becomes due `think` after the
    /// previous token was consumed (the §3 interactive pacing).
    pub fn think_time(think: SimTime, tokens: Vec<Vec<u8>>) -> Self {
        InputScript {
            items: tokens.into_iter().map(|t| (think, t)).collect(),
            cursor: 0,
            relative: true,
            armed: None,
        }
    }

    /// Takes the next input if it is due at `now`. In relative mode the
    /// first poll after the previous input *arms* the next one (`now +
    /// think`) and returns `None`; block on input and retry.
    pub fn take_due(&mut self, now: SimTime) -> Option<Vec<u8>> {
        let (delay, _) = self.items.get(self.cursor)?;
        let due = if self.relative {
            match self.armed {
                Some(d) => d,
                None => {
                    self.armed = Some(now + delay);
                    return None;
                }
            }
        } else {
            *delay
        };
        if due <= now {
            let bytes = self.items[self.cursor].1.clone();
            self.cursor += 1;
            self.armed = None;
            Some(bytes)
        } else {
            None
        }
    }

    /// Time of the next pending input (in relative mode, only known once
    /// armed by a poll).
    pub fn next_time(&self) -> Option<SimTime> {
        let (t, _) = self.items.get(self.cursor)?;
        Some(if self.relative { self.armed? } else { *t })
    }

    /// True when all input has been consumed.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.items.len()
    }

    /// Current cursor (for checkpointing).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Rolls the cursor back (recovery: the user "retypes" the lost input —
    /// fixed non-determinism re-resolves identically, at typing speed).
    pub fn set_cursor(&mut self, cursor: usize) {
        assert!(cursor <= self.items.len(), "cursor beyond script");
        self.cursor = cursor;
        self.armed = None;
    }

    /// Total number of scripted inputs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the script has no items at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A schedule of asynchronous signals.
#[derive(Debug, Clone, Default)]
pub struct SignalSchedule {
    items: Vec<(SimTime, u32)>,
    cursor: usize,
}

impl SignalSchedule {
    /// Creates a schedule from (time, signo) pairs; times must be
    /// non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if times decrease.
    pub fn new(items: Vec<(SimTime, u32)>) -> Self {
        assert!(
            items.windows(2).all(|w| w[0].0 <= w[1].0),
            "signal times must be non-decreasing"
        );
        SignalSchedule { items, cursor: 0 }
    }

    /// Takes the next signal if due.
    pub fn take_due(&mut self, now: SimTime) -> Option<u32> {
        let (t, signo) = self.items.get(self.cursor)?;
        if *t <= now {
            self.cursor += 1;
            Some(*signo)
        } else {
            None
        }
    }

    /// Delivery times (for scheduler wakeups).
    pub fn pending_times(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.items[self.cursor..].iter().map(|(t, _)| *t)
    }

    /// Current cursor (for checkpointing).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Rolls the cursor back.
    pub fn set_cursor(&mut self, cursor: usize) {
        assert!(cursor <= self.items.len(), "cursor beyond schedule");
        self.cursor = cursor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_due_respects_time() {
        let mut s = InputScript::new(vec![(10, b"a".to_vec()), (20, b"b".to_vec())]);
        assert_eq!(s.take_due(5), None);
        assert_eq!(s.take_due(10), Some(b"a".to_vec()));
        assert_eq!(s.take_due(15), None);
        assert_eq!(s.next_time(), Some(20));
        assert_eq!(s.take_due(25), Some(b"b".to_vec()));
        assert!(s.exhausted());
        assert_eq!(s.take_due(100), None);
    }

    #[test]
    fn evenly_spaced_builds_correct_times() {
        let s =
            InputScript::evenly_spaced(100, 50, vec![b"x".to_vec(), b"y".to_vec(), b"z".to_vec()]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.next_time(), Some(100));
    }

    #[test]
    fn relative_script_arms_on_poll_then_delivers() {
        let mut s = InputScript::think_time(100, vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(s.next_time(), None, "unarmed until the first poll");
        assert_eq!(s.take_due(50), None); // Arms at 50 → due 150.
        assert_eq!(s.next_time(), Some(150));
        assert_eq!(s.take_due(100), None);
        assert_eq!(s.take_due(150), Some(b"a".to_vec()));
        // The app responds, then polls again at 180: due 280.
        assert_eq!(s.take_due(180), None);
        assert_eq!(s.next_time(), Some(280));
        assert_eq!(s.take_due(280), Some(b"b".to_vec()));
        assert!(s.exhausted());
    }

    #[test]
    fn cursor_rollback_replays_input() {
        let mut s = InputScript::new(vec![(0, b"a".to_vec()), (1, b"b".to_vec())]);
        s.take_due(10);
        s.take_due(10);
        assert!(s.exhausted());
        let saved = 1;
        s.set_cursor(saved);
        assert_eq!(s.take_due(10), Some(b"b".to_vec()), "the user retypes");
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_times_rejected() {
        InputScript::new(vec![(10, vec![]), (5, vec![])]);
    }

    #[test]
    fn signal_schedule_works() {
        let mut s = SignalSchedule::new(vec![(10, 14), (30, 2)]);
        assert_eq!(s.take_due(9), None);
        assert_eq!(s.take_due(10), Some(14));
        assert_eq!(s.pending_times().collect::<Vec<_>>(), vec![30]);
        assert_eq!(s.cursor(), 1);
        s.set_cursor(0);
        assert_eq!(s.take_due(10), Some(14));
    }
}
