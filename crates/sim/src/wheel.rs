//! A hierarchical timer wheel: the simulator's event queue.
//!
//! Replaces the former `BinaryHeap<Reverse<(SimTime, u64, QEv)>>` with a
//! radix-on-time wheel in the desim/FoundationDB mold: **idle spans must
//! cost zero**. Fast-forwarding over an arbitrarily long gap with nothing
//! scheduled in it costs one occupancy-bitmap scan per level — O(levels),
//! independent of the span — where a calendar of ticks would cost O(span).
//!
//! # Ordering invariant (the tie-break contract)
//!
//! [`TimerWheel::pop`] yields entries in exactly the order the
//! `BinaryHeap<Reverse<(time, seq, _)>>` it replaced did: ascending by
//! `(time, seq)`, where `seq` is the caller's strictly-increasing push
//! counter. Same-instant events therefore pop in push order. The property
//! suite (`tests/wheel_model.rs`) drives both structures through
//! randomized push/pop/advance scripts and asserts identical pop
//! sequences, including same-time ties and `u32`/`SimTime` wrap edges.
//!
//! # Structure
//!
//! Eleven levels of 64 slots index absolute time by 6-bit digits: level
//! `k`'s slot for time `t` is `(t >> 6k) & 63`, so the levels cover the
//! full `u64` range and the top levels double as the calendar-queue
//! fallback for far-future timers — no overflow list is needed. An entry
//! lives at its *divergence level*: the highest 6-bit digit in which its
//! time differs from the wheel's current floor. When the floor advances
//! into a higher-level slot, that slot's entries cascade down one or more
//! levels (each entry relocates at most once per level over its
//! lifetime). At level 0 a slot holds exactly one instant, and entries
//! sit in push (= seq) order: a cascade into a slot always completes
//! before any direct push lands in it — the floor must first enter the
//! parent slot, which drains it, and only then can later (higher-seq)
//! pushes diverge at the child level — and a cascade preserves the source
//! slot's order, so slot order is seq order by induction.
//!
//! Entries pushed for a time **before** the current floor (a replayed
//! duplicate delivery, for example) go to a small side heap. Every such
//! entry is strictly earlier than everything in the wheel (the floor only
//! advances), so draining the side heap first preserves the global order.
//!
//! # Representation
//!
//! Entries live in a slab (`nodes`) and slots are intrusive FIFO linked
//! lists of slab indices (head + tail per slot, `next` per node). A
//! cascade relocates entries by relinking indices — no entry data moves,
//! no per-slot container allocates — and freed slab indices are recycled
//! through a free list, so the steady state performs no allocation at
//! all.
//!
//! # Overflow discipline
//!
//! All index arithmetic is shift-and-mask on `u64` with shift amounts
//! bounded by 60, plus ORs of disjoint bit ranges — nothing can wrap, so
//! debug and release builds behave identically (the PR 2 convention).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of 6-bit levels: `ceil(64 / 6)`. Level 10 indexes bits 60..64.
const LEVELS: usize = 11;
/// Slots per level.
const SLOTS: usize = 64;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Null slab index (list terminator / empty slot).
const NIL: u32 = u32::MAX;

/// An entry in the past-of-floor side heap, ordered by `(time, seq)` only
/// (reversed, for min-first) — the payload never participates in
/// comparisons, so `T` needs no `Ord` bound.
struct DueEntry<T> {
    t: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for DueEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl<T> Eq for DueEntry<T> {}
impl<T> PartialOrd for DueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for DueEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// One slot's FIFO list endpoints (`NIL` = empty).
#[derive(Clone, Copy)]
struct Slot {
    head: u32,
    tail: u32,
}

/// A slab node: one queued entry plus its list link. `item` is `Some`
/// while queued, `None` while the node sits on the free list.
struct Node<T> {
    t: u64,
    seq: u64,
    next: u32,
    item: Option<T>,
}

/// The hierarchical timer wheel. See the module docs for the ordering
/// invariant and structure.
pub struct TimerWheel<T> {
    /// FIFO list head/tail per slot, level-major (`[level * SLOTS +
    /// slot]`). Head and tail interleave in one 8-byte cell so a slot
    /// touch costs one cache line, not two.
    slots: Box<[Slot]>,
    /// Entry slab; freed indices are recycled via `free`.
    nodes: Vec<Node<T>>,
    /// Free-list head into `nodes`.
    free: u32,
    /// Per-level occupancy bitmap: bit `s` set iff slot `s` is non-empty.
    occupied: [u64; LEVELS],
    /// The wheel's current time: every wheel entry has `t >= floor`.
    /// Monotone — only `pop` advances it.
    floor: u64,
    /// Entries pushed with `t < floor`: strictly earlier than the whole
    /// wheel, drained first.
    due: BinaryHeap<DueEntry<T>>,
    len: usize,
    /// Queue operations performed (slot placements, cascade relocations,
    /// and per-pop level scans). The directed idle-span test asserts this
    /// stays O(levels) per pop regardless of how far the floor jumps.
    ops: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel at floor 0.
    pub fn new() -> Self {
        TimerWheel {
            slots: vec![
                Slot {
                    head: NIL,
                    tail: NIL
                };
                LEVELS * SLOTS
            ]
            .into_boxed_slice(),
            nodes: Vec::new(),
            free: NIL,
            occupied: [0; LEVELS],
            floor: 0,
            due: BinaryHeap::new(),
            len: 0,
            ops: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total queue operations so far (see the field docs).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The wheel's current time (the last popped entry's time).
    pub fn floor(&self) -> u64 {
        self.floor
    }

    /// The slot index (into `slots`) for a time `t >= floor`: its
    /// divergence level — the highest 6-bit digit where `t` and the floor
    /// differ — and `t`'s digit at that level.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "slot indices are 6-bit masks and levels are < 11; both narrowings are exact"
    )]
    fn slot_of(&self, t: u64) -> usize {
        let diff = t ^ self.floor;
        if diff == 0 {
            (t & SLOT_MASK) as usize
        } else {
            let level = ((63 - diff.leading_zeros()) / 6) as usize;
            level * SLOTS + ((t >> (6 * level as u32)) & SLOT_MASK) as usize
        }
    }

    /// Appends slab node `idx` to its slot's FIFO list.
    fn place(&mut self, idx: u32) {
        let t = self.nodes[idx as usize].t;
        debug_assert!(t >= self.floor);
        self.ops += 1;
        let cell = self.slot_of(t);
        self.nodes[idx as usize].next = NIL;
        let slot = &mut self.slots[cell];
        let tail = slot.tail;
        slot.tail = idx;
        if tail == NIL {
            slot.head = idx;
            self.occupied[cell / SLOTS] |= 1u64 << (cell % SLOTS);
        } else {
            self.nodes[tail as usize].next = idx;
        }
    }

    /// Pushes an entry. `seq` must be strictly increasing across pushes
    /// (the caller's global push counter); ties in `t` pop in `seq` order.
    pub fn push(&mut self, t: u64, seq: u64, item: T) {
        self.len += 1;
        if t < self.floor {
            self.ops += 1;
            self.due.push(DueEntry { t, seq, item });
            return;
        }
        let idx = if self.free == NIL {
            self.nodes.push(Node {
                t,
                seq,
                next: NIL,
                item: Some(item),
            });
            u32::try_from(self.nodes.len() - 1).expect("timer slab outgrew u32 indices")
        } else {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            n.t = t;
            n.seq = seq;
            n.item = Some(item);
            idx
        };
        self.place(idx);
    }

    /// Pops the earliest entry by `(t, seq)`, advancing the floor to its
    /// time. O(levels) even when the next entry is arbitrarily far in the
    /// future.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Side-heap entries are strictly earlier than every wheel entry:
        // they were pushed below a floor that has only grown since.
        if let Some(e) = self.due.pop() {
            self.len -= 1;
            return Some((e.t, e.seq, e.item));
        }
        // The lowest occupied level holds the earliest entry: all of its
        // occupied slots precede every occupied slot of any higher level
        // (which lies beyond the current lower-level blocks).
        let mut level = 0;
        while self.occupied[level] == 0 {
            level += 1;
            debug_assert!(
                level < LEVELS,
                "len > 0 with an empty side heap implies an occupied level"
            );
        }
        self.ops += 1;
        let slot = self.occupied[level].trailing_zeros() as usize;
        let cell = level * SLOTS + slot;
        if level == 0 {
            let cell_slot = &mut self.slots[cell];
            let idx = cell_slot.head;
            let n = &mut self.nodes[idx as usize];
            let t = n.t;
            let seq = n.seq;
            let item = n.item.take().expect("queued node holds an item");
            cell_slot.head = n.next;
            if cell_slot.head == NIL {
                cell_slot.tail = NIL;
                self.occupied[0] &= !(1u64 << slot);
            }
            n.next = self.free;
            self.free = idx;
            debug_assert!(t >= self.floor);
            self.floor = t;
            self.len -= 1;
            return Some((t, seq, item));
        }
        // The earliest occupied slot of the lowest occupied level
        // holds the global minimum: every other level's entries are
        // provably later (lower levels are empty; a higher level's
        // entries exceed this one in a more significant digit). Scan
        // the slot's chain for the minimum `(t, seq)` — the chain is
        // in seq order, so a strictly-earlier-`t` test suffices — pop
        // it directly, and re-place only the remaining entries
        // against the advanced floor. Entries thus relocate at most
        // once per level over their lifetime (the classic cascade
        // bound), but the common sparse case — a single entry in the
        // slot — pops with no relocation at all.
        let head = self.slots[cell].head;
        self.slots[cell] = Slot {
            head: NIL,
            tail: NIL,
        };
        self.occupied[level] &= !(1u64 << slot);
        let mut min = head;
        let mut it = self.nodes[head as usize].next;
        while it != NIL {
            let n = &self.nodes[it as usize];
            if n.t < self.nodes[min as usize].t {
                min = it;
            }
            it = n.next;
        }
        let n = &mut self.nodes[min as usize];
        let t = n.t;
        let seq = n.seq;
        let item = n.item.take().expect("queued node holds an item");
        debug_assert!(t >= self.floor);
        self.floor = t;
        self.len -= 1;
        // Re-place the survivors in chain (= seq) order, relative to
        // the new floor; each diverges from it below `level`, and a
        // later direct push into the same destination slot carries a
        // higher seq, so FIFO slot order stays seq order.
        let mut it = head;
        while it != NIL {
            let next = self.nodes[it as usize].next;
            if it != min {
                self.place(it);
            }
            it = next;
        }
        let n = &mut self.nodes[min as usize];
        n.next = self.free;
        self.free = min;
        Some((t, seq, item))
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len)
            .field("floor", &self.floor)
            .field("ops", &self.ops)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(50, 1, "b");
        w.push(10, 2, "a");
        w.push(50, 3, "c");
        w.push(u64::MAX, 4, "z");
        assert_eq!(w.pop(), Some((10, 2, "a")));
        assert_eq!(w.pop(), Some((50, 1, "b")));
        assert_eq!(w.pop(), Some((50, 3, "c")));
        assert_eq!(w.pop(), Some((u64::MAX, 4, "z")));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn past_pushes_pop_before_wheel_entries() {
        let mut w = TimerWheel::new();
        w.push(1000, 1, 1u32);
        w.push(2000, 2, 2);
        assert_eq!(w.pop(), Some((1000, 1, 1)));
        // Floor is now 1000; a replayed event lands in the past.
        w.push(5, 3, 3);
        w.push(999, 4, 4);
        assert_eq!(w.pop(), Some((5, 3, 3)));
        assert_eq!(w.pop(), Some((999, 4, 4)));
        assert_eq!(w.pop(), Some((2000, 2, 2)));
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut w = TimerWheel::new();
        assert_eq!(w.len(), 0);
        for i in 0..100u64 {
            w.push(i * 7919, i, i);
        }
        assert_eq!(w.len(), 100);
        let mut prev = None;
        while let Some((t, _, _)) = w.pop() {
            if let Some(p) = prev {
                assert!(t >= p);
            }
            prev = Some(t);
        }
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn slab_nodes_are_recycled() {
        let mut w = TimerWheel::new();
        for round in 0..1000u64 {
            w.push(round * 131, round, round);
            w.pop().unwrap();
        }
        assert!(
            w.nodes.len() <= 2,
            "steady-state pop/push must reuse slab nodes, got {}",
            w.nodes.len()
        );
    }

    #[test]
    fn far_future_pop_is_constant_ops() {
        // One timer nine orders of magnitude away: the pop must cost a
        // bounded number of queue operations, not O(span).
        let mut w = TimerWheel::new();
        w.push(3, 1, ());
        assert_eq!(w.pop(), Some((3, 1, ())));
        let before = w.ops();
        w.push(3_000_000_000_000, 2, ());
        assert_eq!(w.pop(), Some((3_000_000_000_000, 2, ())));
        let cost = w.ops() - before;
        assert!(
            cost <= 4 * LEVELS as u64,
            "idle fast-forward cost {cost} ops; want O(levels)"
        );
    }
}
