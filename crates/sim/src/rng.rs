//! A tiny deterministic PRNG for the simulator.
//!
//! The simulator must be bit-for-bit reproducible given its seed, cloneable
//! (checkpointing copies kernels), and serializable. SplitMix64 (Steele,
//! Lea & Flood, OOPSLA 2014) is a well-mixed 64-bit generator that fits in
//! one word of state — entirely sufficient for modeling non-deterministic
//! *choice* (the values only need to be well spread, not cryptographic).

/// The Weyl-sequence increment: SplitMix64 advances its state by this
/// constant per draw, which is what makes the stream randomly accessible
/// (see [`SplitMix64::nth`]).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// A SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The `n`-th upcoming draw of this generator (0-indexed), without
    /// advancing it and without computing the intermediate values.
    ///
    /// SplitMix64's state is a Weyl sequence (it advances by a constant
    /// per draw), so the stream supports O(1) random access: jump the
    /// state `n` increments ahead and mix once. This is the split
    /// primitive the parallel campaign runner builds per-trial seed
    /// streams from — worker `k` can compute trial `t`'s seed directly,
    /// with no sequential draw shared between threads, and the resulting
    /// seeds are identical to drawing the stream serially.
    pub fn nth(&self, n: u64) -> u64 {
        SplitMix64 {
            state: self.state.wrapping_add(GOLDEN.wrapping_mul(n)),
        }
        .next_u64()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "the draw is < bound, which fit a usize on the way in"
    )]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn nth_matches_sequential_draws() {
        let base = SplitMix64::new(0xFEED);
        let mut seq = base;
        for n in 0..200u64 {
            assert_eq!(base.nth(n), seq.next_u64(), "draw {n}");
        }
        // nth never advances the generator it is called on.
        assert_eq!(base, SplitMix64::new(0xFEED));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut r = SplitMix64::new(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
