//! The simulated per-node operating system kernel.
//!
//! Holds the state the paper's OS-fault study stresses: an open-file table
//! of fixed size (whose occupancy makes `open` a *fixed* non-deterministic
//! event), a buffer-cache filesystem with finite free space (making `write`
//! fixed non-deterministic), and the fault-injection hooks of §4.2 — a
//! kernel fault either panics the node immediately (a stop failure) or
//! corrupts the next few syscall results seen by applications before
//! panicking (a propagation failure).

use std::collections::HashMap;

use crate::rng::SplitMix64;

use crate::syscalls::{SysError, SysResult};

/// An open-file-table entry.
#[derive(Debug, Clone)]
struct OpenFile {
    name: String,
    pos: usize,
}

/// A simulated kernel instance (one per node).
#[derive(Debug, Clone)]
pub struct Kernel {
    table: Vec<Option<OpenFile>>,
    /// Determinism: accessed by file-name key only (`entry`/`get`) —
    /// iterated only by snapshot/restore, whose per-name effects are
    /// order-independent (and snapshots name-sort their contents).
    files: HashMap<String, Vec<u8>>,
    disk_free: u64,
    /// Propagation-fault state: from `start` onward, corrupt the next
    /// `remaining` syscall results, then panic.
    corrupt_plan: Option<(u64, u32)>,
    /// The kernel has halted; every syscall fails and the node's processes
    /// stop.
    panicked: bool,
    rng: SplitMix64,
    /// Count of syscalls serviced (drives the §4.2 analysis of syscall rate
    /// vs. propagation probability).
    pub syscalls_serviced: u64,
}

impl Kernel {
    /// Creates a kernel with `table_size` open-file slots and `disk_free`
    /// bytes of disk.
    pub fn new(table_size: usize, disk_free: u64, seed: u64) -> Self {
        Kernel {
            table: vec![None; table_size],
            files: HashMap::new(),
            disk_free,
            corrupt_plan: None,
            panicked: false,
            rng: SplitMix64::new(seed),
            syscalls_serviced: 0,
        }
    }

    /// Has the kernel panicked?
    pub fn panicked(&self) -> bool {
        self.panicked
    }

    /// Remaining disk space.
    pub fn disk_free(&self) -> u64 {
        self.disk_free
    }

    /// Halts the kernel immediately (a stop failure for the whole node).
    pub fn panic_now(&mut self) {
        self.panicked = true;
    }

    /// Arms a propagation failure: the next `n` syscall results (starting
    /// immediately) are corrupted, then the kernel panics.
    pub fn corrupt_next(&mut self, n: u32) {
        self.corrupt_plan = Some((0, n));
    }

    /// Arms a propagation failure that begins at simulated time `start`:
    /// from then on the next `n` syscall results are corrupted, then the
    /// kernel panics of its own corruption. Whether the application catches
    /// any corrupted result before the node dies depends entirely on its
    /// syscall *rate* — the §4.2 mechanism.
    pub fn arm_corruption(&mut self, start: u64, n: u32) {
        self.corrupt_plan = Some((start, n));
    }

    /// Is the kernel currently or prospectively corrupting results?
    pub fn corrupting(&self) -> bool {
        self.corrupt_plan.is_some()
    }

    /// Clears any armed corruption and the panic flag — what a reboot does
    /// to an in-memory kernel bug.
    pub fn reboot(&mut self) {
        self.corrupt_plan = None;
        self.panicked = false;
    }

    /// Called by the syscall layer on every serviced call; returns true if
    /// this call's result must be corrupted. Decrements the corruption
    /// budget and panics the kernel when it runs out.
    pub fn tick_corruption(&mut self, now: u64) -> bool {
        self.syscalls_serviced += 1;
        match self.corrupt_plan {
            Some((start, _)) if now < start => false,
            None => false,
            Some((_, 0)) => {
                self.corrupt_plan = None;
                self.panicked = true;
                false
            }
            Some((start, n)) => {
                self.corrupt_plan = Some((start, n - 1));
                true
            }
        }
    }

    /// Corrupts a byte buffer in place (used when
    /// [`Kernel::tick_corruption`] fired).
    pub fn corrupt_bytes(&mut self, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let i = self.rng.index(bytes.len());
        let bit = self.rng.below(8);
        bytes[i] ^= 1 << bit;
    }

    /// Corrupts a scalar value.
    pub fn corrupt_u64(&mut self, v: u64) -> u64 {
        v ^ (1 << self.rng.below(64))
    }

    fn guard(&self) -> SysResult<()> {
        if self.panicked {
            Err(SysError::KernelPanic)
        } else {
            Ok(())
        }
    }

    /// Opens (creating if absent) `name`, returning a descriptor.
    pub fn open(&mut self, name: &str) -> SysResult<u32> {
        self.guard()?;
        let slot = self
            .table
            .iter()
            .position(Option::is_none)
            .ok_or(SysError::TableFull)?;
        self.files.entry(name.to_string()).or_default();
        self.table[slot] = Some(OpenFile {
            name: name.to_string(),
            pos: 0,
        });
        Ok(u32::try_from(slot).expect("fd table is tiny"))
    }

    /// Appends to the file behind `fd`.
    pub fn write(&mut self, fd: u32, bytes: &[u8]) -> SysResult<()> {
        self.guard()?;
        let entry = self
            .table
            .get(fd as usize)
            .and_then(Option::as_ref)
            .ok_or(SysError::BadFd)?;
        if (bytes.len() as u64) > self.disk_free {
            return Err(SysError::NoSpace);
        }
        let name = entry.name.clone();
        self.disk_free -= bytes.len() as u64;
        self.files
            .get_mut(&name)
            .expect("open file exists")
            .extend_from_slice(bytes);
        Ok(())
    }

    /// Reads up to `len` bytes from the current position.
    pub fn read(&mut self, fd: u32, len: usize) -> SysResult<Vec<u8>> {
        self.guard()?;
        let entry = self
            .table
            .get_mut(fd as usize)
            .and_then(Option::as_mut)
            .ok_or(SysError::BadFd)?;
        let data = self.files.get(&entry.name).ok_or(SysError::NoSuchFile)?;
        let start = entry.pos.min(data.len());
        let end = (start + len).min(data.len());
        entry.pos = end;
        Ok(data[start..end].to_vec())
    }

    /// Closes a descriptor.
    pub fn close(&mut self, fd: u32) -> SysResult<()> {
        self.guard()?;
        let slot = self.table.get_mut(fd as usize).ok_or(SysError::BadFd)?;
        if slot.is_none() {
            return Err(SysError::BadFd);
        }
        *slot = None;
        Ok(())
    }

    /// Number of free open-file slots.
    pub fn free_slots(&self) -> usize {
        self.table.iter().filter(|s| s.is_none()).count()
    }

    /// Reads a whole file's contents (test/inspection helper).
    pub fn file_contents(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(Vec::as_slice)
    }

    /// Clones the whole filesystem (test/inspection helper).
    pub fn files_snapshot(&self) -> HashMap<String, Vec<u8>> {
        self.files.clone()
    }

    /// Takes a restorable snapshot. See [`KernelSnapshot`].
    pub fn snapshot(&self) -> KernelSnapshot {
        let mut out = KernelSnapshot::default();
        self.snapshot_into(&mut out);
        out
    }

    /// As [`Kernel::snapshot`], but reusing the caller's buffers — the
    /// commit hot path recycles the previous snapshot's allocations.
    pub fn snapshot_into(&self, out: &mut KernelSnapshot) {
        out.table.clear();
        out.table.extend(self.table.iter().cloned());
        out.file_lens.clear();
        out.file_lens
            // ft-lint: allow(unordered-iteration): order-insensitive copy, canonically sorted two lines below
            .extend(self.files.iter().map(|(n, d)| (n.clone(), d.len())));
        // Name-sorted so the snapshot itself is a deterministic value
        // (restore is order-independent either way, but a canonical form
        // costs nothing at these file counts).
        out.file_lens.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out.disk_free = self.disk_free;
        out.corrupt_plan = self.corrupt_plan;
        out.panicked = self.panicked;
        out.rng = self.rng;
        out.syscalls_serviced = self.syscalls_serviced;
    }

    /// Restores this kernel to a snapshot taken from it earlier: files
    /// created since are dropped, surviving files are truncated back to
    /// their snapshot length, and the scalar state (descriptor table,
    /// disk space, fault plan, rng, counters) is copied back.
    pub fn restore(&mut self, snap: &KernelSnapshot) {
        self.table.clear();
        self.table.extend(snap.table.iter().cloned());
        let lens = &snap.file_lens;
        // ft-lint: allow(unordered-iteration): per-entry keep/truncate decision depends only on the key, never on visit order
        self.files.retain(|name, data| {
            match lens.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => {
                    data.truncate(lens[i].1);
                    true
                }
                Err(_) => false,
            }
        });
        self.disk_free = snap.disk_free;
        self.corrupt_plan = snap.corrupt_plan;
        self.panicked = snap.panicked;
        self.rng = snap.rng;
        self.syscalls_serviced = snap.syscalls_serviced;
    }
}

/// A cheap restorable kernel snapshot: file **names and lengths** plus the
/// scalar kernel state, instead of a deep copy of every file's bytes.
///
/// Sound because the simulated filesystem is append-only — `write` only
/// extends and nothing ever deletes or rewrites a file — so rolling back
/// is truncating each surviving file to its snapshot length and dropping
/// files created since. The snapshot must be restored onto the *same*
/// kernel it was taken from (or a descendant of it), and at most one
/// restore point may be live per node: exactly the
/// [`Simulator::restore_kernel`](crate::sim::Simulator::restore_kernel)
/// single-process-per-node contract.
#[derive(Debug, Clone)]
pub struct KernelSnapshot {
    table: Vec<Option<OpenFile>>,
    /// `(name, committed length)`, name-sorted.
    file_lens: Vec<(String, usize)>,
    disk_free: u64,
    corrupt_plan: Option<(u64, u32)>,
    panicked: bool,
    rng: SplitMix64,
    syscalls_serviced: u64,
}

impl Default for KernelSnapshot {
    fn default() -> Self {
        KernelSnapshot {
            table: Vec::new(),
            file_lens: Vec::new(),
            disk_free: 0,
            corrupt_plan: None,
            panicked: false,
            rng: SplitMix64::new(0),
            syscalls_serviced: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> Kernel {
        Kernel::new(4, 1000, 42)
    }

    #[test]
    fn open_write_read_close() {
        let mut k = k();
        let fd = k.open("data").unwrap();
        k.write(fd, b"hello").unwrap();
        assert_eq!(k.read(fd, 5).unwrap(), b"hello");
        assert_eq!(k.read(fd, 5).unwrap(), b"");
        k.close(fd).unwrap();
        assert!(k.read(fd, 1).is_err());
        assert_eq!(k.file_contents("data").unwrap(), b"hello");
    }

    #[test]
    fn table_exhaustion_is_fixed_nd_outcome() {
        let mut k = k();
        for i in 0..4 {
            k.open(&format!("f{i}")).unwrap();
        }
        assert_eq!(k.free_slots(), 0);
        assert_eq!(k.open("f5"), Err(SysError::TableFull));
        k.close(0).unwrap();
        assert!(k.open("f5").is_ok());
    }

    #[test]
    fn disk_fullness_is_fixed_nd_outcome() {
        let mut k = Kernel::new(4, 10, 1);
        let fd = k.open("f").unwrap();
        k.write(fd, &[0; 8]).unwrap();
        assert_eq!(k.write(fd, &[0; 8]), Err(SysError::NoSpace));
        assert_eq!(k.disk_free(), 2);
        k.write(fd, &[0; 2]).unwrap();
        assert_eq!(k.disk_free(), 0);
    }

    #[test]
    fn panic_fails_everything() {
        let mut k = k();
        let fd = k.open("f").unwrap();
        k.panic_now();
        assert!(k.panicked());
        assert_eq!(k.open("g"), Err(SysError::KernelPanic));
        assert_eq!(k.write(fd, b"x"), Err(SysError::KernelPanic));
    }

    #[test]
    fn corruption_budget_then_panic() {
        let mut k = k();
        k.corrupt_next(2);
        assert!(k.tick_corruption(0));
        assert!(k.tick_corruption(1));
        assert!(!k.tick_corruption(2)); // Budget exhausted → panic.
        assert!(k.panicked());
    }

    #[test]
    fn corrupt_zero_panics_without_corrupting() {
        let mut k = k();
        k.corrupt_next(0);
        assert!(!k.tick_corruption(0));
        assert!(k.panicked());
    }

    #[test]
    fn armed_corruption_waits_for_its_start_time() {
        let mut k = k();
        k.arm_corruption(100, 1);
        assert!(!k.tick_corruption(50), "not started yet");
        assert!(k.tick_corruption(100));
        assert!(!k.tick_corruption(101));
        assert!(k.panicked());
    }

    #[test]
    fn corrupt_bytes_flips_exactly_one_bit() {
        let mut k = k();
        let mut buf = vec![0u8; 16];
        k.corrupt_bytes(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_ne!(k.corrupt_u64(0), 0);
    }

    #[test]
    fn syscall_counter_increments() {
        let mut k = k();
        assert!(!k.tick_corruption(0));
        assert!(!k.tick_corruption(1));
        assert_eq!(k.syscalls_serviced, 2);
    }
}
