//! The discrete-event simulator: scheduler, syscall context, failures.
//!
//! A [`Simulator`] owns the substrate — simulated clock, per-node kernels,
//! network, input scripts, signal schedules, and the trace recorder — while
//! the *harness* (plain in tests, or `ft-dc`'s checkpointing runtime) owns
//! the application objects and their arenas. The run loop is external:
//!
//! ```text
//! while let Some(wake) = sim.next_wake() {
//!     match wake {
//!         Wake::Step(pid)   => { let mut ctx = sim.ctx(pid);
//!                                let st = app.step(&mut arena, &mut ctx);
//!                                let el = ctx.elapsed();
//!                                sim.finish_step(pid, st, el); }
//!         Wake::Killed(pid) => { /* stop failure: run recovery */ }
//!     }
//! }
//! ```

use std::collections::BTreeSet;

use crate::cost::{CostModel, SimTime};
use crate::kernel::{Kernel, KernelSnapshot};
use crate::net::{NetFaultPlan, NetStats, Network, SendOutcome, UNDELIVERED};
use crate::rng::SplitMix64;
use crate::script::{InputScript, SignalSchedule};
use crate::syscalls::{AppStatus, Message, SysError, SysResult, Syscalls, WaitCond};
use crate::wheel::TimerWheel;
use ft_core::access::{ShmLog, ShmOp, ShmRecord};
use ft_core::event::{NdSource, ProcessId};
use ft_core::trace::{Trace, TraceBuilder};
use ft_mem::error::MemResult;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processes.
    pub n_procs: usize,
    /// RNG seed (full determinism given the seed).
    pub seed: u64,
    /// Cost constants.
    pub cost: CostModel,
    /// Node hosting each process.
    pub node_of: Vec<usize>,
    /// Open-file-table slots per node.
    pub file_table_size: usize,
    /// Free disk bytes per node.
    pub disk_free: u64,
}

impl SimConfig {
    /// All processes on a single node.
    pub fn single_node(n_procs: usize, seed: u64) -> Self {
        SimConfig {
            n_procs,
            seed,
            cost: CostModel::default(),
            node_of: vec![0; n_procs],
            file_table_size: 64,
            disk_free: 1 << 30,
        }
    }

    /// One node per process (the distributed workloads).
    pub fn one_node_each(n_procs: usize, seed: u64) -> Self {
        SimConfig {
            n_procs,
            seed,
            cost: CostModel::default(),
            node_of: (0..n_procs).collect(),
            file_table_size: 64,
            disk_free: 1 << 30,
        }
    }

    fn n_nodes(&self) -> usize {
        self.node_of.iter().copied().max().unwrap_or(0) + 1
    }
}

/// Why the scheduler woke the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Run one step of this process (then call
    /// [`Simulator::finish_step`]).
    Step(ProcessId),
    /// The process was hit by a stop failure (killed, or its node's kernel
    /// panicked). The harness may run recovery and
    /// [`Simulator::respawn`].
    Killed(ProcessId),
}

/// Outcome reported by [`Simulator::finish_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process was rescheduled (running or blocked).
    Scheduled,
    /// The process completed.
    Done,
    /// The process crashed (a crash event was recorded); the harness may
    /// run recovery and [`Simulator::respawn`].
    Crashed(ft_mem::error::MemFault),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(WaitCond),
    Done,
    Crashed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QEv {
    Ready {
        pid: u32,
        gen: u64,
    },
    Deliver {
        pid: u32,
    },
    Signal {
        pid: u32,
    },
    Kill {
        pid: u32,
    },
    /// A transport retransmission timer for `(from, to, seq)`. Internal
    /// to the fabric: handled in the pop loop without waking any process.
    Retransmit {
        from: u32,
        to: u32,
        seq: u64,
    },
}

/// Per-process accounting, for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Syscalls issued.
    pub syscalls: u64,
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// Visible events emitted.
    pub visibles: u64,
    /// Non-deterministic events executed (including receives).
    pub nd_events: u64,
    /// Commit events executed (recorded by the recovery runtime).
    pub commits: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    cfg: SimConfig,
    now: SimTime,
    queue: TimerWheel<QEv>,
    qseq: u64,
    status: Vec<Status>,
    gen: Vec<u64>,
    pending_delay: Vec<SimTime>,
    kernels: Vec<Kernel>,
    net: Network,
    scripts: Vec<InputScript>,
    signals: Vec<SignalSchedule>,
    tracer: TraceBuilder,
    visible_log: Vec<(SimTime, ProcessId, u64)>,
    shm_log: ShmLog,
    /// Per-process per-destination send counters, dense rows indexed by
    /// `ProcessId::index()`, each row a sparse `(dest, count)` list sorted
    /// by destination. Dense `n × n` rows cost O(n²) memory (≈800 MB of
    /// counters alone at 10⁴ processes); real topologies are sparse — a
    /// kvstore gateway talks to S primaries, a primary to R−1 replicas —
    /// so memory is O(communication edges) instead.
    send_seqs: Vec<Vec<(u32, u64)>>,
    stats: Vec<ProcStats>,
    rng: SplitMix64,
    nodes_killed: Vec<bool>,
}

impl Simulator {
    /// Creates a simulator; all processes start runnable at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.node_of` does not cover every process.
    pub fn new(cfg: SimConfig) -> Self {
        assert_eq!(
            cfg.node_of.len(),
            cfg.n_procs,
            "node_of must cover all processes"
        );
        let n = cfg.n_procs;
        let n_nodes = cfg.n_nodes();
        let mut sim = Simulator {
            now: 0,
            queue: TimerWheel::new(),
            qseq: 0,
            status: vec![Status::Runnable; n],
            gen: vec![0; n],
            pending_delay: vec![0; n],
            kernels: (0..n_nodes)
                .map(|i| {
                    Kernel::new(
                        cfg.file_table_size,
                        cfg.disk_free,
                        cfg.seed ^ (i as u64) << 32,
                    )
                })
                .collect(),
            net: Network::new(),
            scripts: vec![InputScript::default(); n],
            signals: vec![SignalSchedule::default(); n],
            tracer: TraceBuilder::new(n),
            visible_log: Vec::new(),
            shm_log: ShmLog::default(),
            send_seqs: vec![Vec::new(); n],
            stats: vec![ProcStats::default(); n],
            rng: SplitMix64::new(cfg.seed),
            nodes_killed: vec![false; n_nodes],
            cfg,
        };
        for p in 0..n {
            let gen = sim.gen[p];
            sim.push(
                0,
                QEv::Ready {
                    pid: ProcessId::from_index(p).0,
                    gen,
                },
            );
        }
        sim
    }

    fn push(&mut self, t: SimTime, ev: QEv) {
        self.qseq += 1;
        self.queue.push(t, self.qseq, ev);
    }

    /// Queue operations performed by the event queue so far (see
    /// [`TimerWheel::ops`]; drives the O(1)-idle-span test).
    pub fn queue_ops(&self) -> u64 {
        self.queue.ops()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Installs a process's input script.
    pub fn set_input_script(&mut self, pid: ProcessId, script: InputScript) {
        self.scripts[pid.index()] = script;
    }

    /// Installs a process's signal schedule (also schedules wakeups so
    /// blocked processes see their signals).
    pub fn set_signal_schedule(&mut self, pid: ProcessId, sched: SignalSchedule) {
        // Schedule straight off the incoming value — `sched` is owned by
        // this call, so no temporary time buffer is needed.
        for t in sched.pending_times() {
            self.push(t, QEv::Signal { pid: pid.0 });
        }
        self.signals[pid.index()] = sched;
    }

    /// Schedules a stop failure: the process is killed at `t`.
    pub fn kill_at(&mut self, pid: ProcessId, t: SimTime) {
        self.push(t, QEv::Kill { pid: pid.0 });
    }

    /// Pops the next wake event, advancing simulated time.
    pub fn next_wake(&mut self) -> Option<Wake> {
        while let Some((t, _, ev)) = self.queue.pop() {
            self.now = self.now.max(t);
            match ev {
                QEv::Ready { pid, gen } => {
                    let p = pid as usize;
                    if self.gen[p] == gen
                        && matches!(self.status[p], Status::Runnable | Status::Blocked(_))
                    {
                        // A Ready event wakes both runnable processes and
                        // blocked processes whose definite wake (input due,
                        // timeout) has arrived.
                        self.status[p] = Status::Runnable;
                        return Some(Wake::Step(ProcessId(pid)));
                    }
                }
                QEv::Deliver { pid } => {
                    let p = pid as usize;
                    if let Status::Blocked(cond) = self.status[p] {
                        if cond.message
                            && self
                                .net
                                .earliest_pending(ProcessId(pid))
                                .is_some_and(|d| d <= self.now)
                        {
                            self.status[p] = Status::Runnable;
                            self.gen[p] += 1;
                            return Some(Wake::Step(ProcessId(pid)));
                        }
                    }
                }
                QEv::Signal { pid } => {
                    let p = pid as usize;
                    if matches!(self.status[p], Status::Blocked(_)) {
                        // Signals interrupt blocking syscalls.
                        self.status[p] = Status::Runnable;
                        self.gen[p] += 1;
                        return Some(Wake::Step(ProcessId(pid)));
                    }
                }
                QEv::Kill { pid } => {
                    let p = pid as usize;
                    if !matches!(self.status[p], Status::Done | Status::Crashed) {
                        self.status[p] = Status::Crashed;
                        self.gen[p] += 1;
                        // A stop failure is a crash event in the §2.2 model.
                        self.tracer.crash(ProcessId(pid));
                        return Some(Wake::Killed(ProcessId(pid)));
                    }
                }
                QEv::Retransmit { from, to, seq } => {
                    // Fabric-internal: run the transport attempt and keep
                    // popping. (The queue is time-ordered, so `t` is this
                    // attempt's instant.)
                    let (arrival, retry) =
                        self.net
                            .handle_retransmit(ProcessId(from), ProcessId(to), seq, t);
                    if let Some(at) = arrival {
                        self.push(at, QEv::Deliver { pid: to });
                    }
                    if let Some(rt) = retry {
                        self.push(rt, QEv::Retransmit { from, to, seq });
                    }
                }
            }
        }
        None
    }

    /// Begins a step for `pid`, returning the syscall context the
    /// application runs against.
    pub fn ctx(&mut self, pid: ProcessId) -> SysCtx<'_> {
        SysCtx {
            sim: self,
            pid,
            elapsed: 0,
            log_next: false,
            send_meta: None,
            killed: false,
        }
    }

    /// Completes a step: reschedules (or finalizes) the process and records
    /// crash events.
    pub fn finish_step(
        &mut self,
        pid: ProcessId,
        status: MemResult<AppStatus>,
        elapsed: SimTime,
    ) -> StepOutcome {
        let p = pid.index();
        let end = self.now + elapsed + std::mem::take(&mut self.pending_delay[p]);
        let outcome = match status {
            Ok(AppStatus::Running) => {
                self.status[p] = Status::Runnable;
                self.gen[p] += 1;
                let gen = self.gen[p];
                self.push(end, QEv::Ready { pid: pid.0, gen });
                StepOutcome::Scheduled
            }
            Ok(AppStatus::Blocked(cond)) => {
                self.status[p] = Status::Blocked(cond);
                self.gen[p] += 1;
                let gen = self.gen[p];
                let mut wake: Option<SimTime> = None;
                if cond.input {
                    if let Some(t) = self.scripts[p].next_time() {
                        wake = Some(wake.map_or(t, |w| w.min(t)));
                    }
                }
                if let Some(t) = cond.until {
                    wake = Some(wake.map_or(t, |w| w.min(t)));
                }
                if cond.message {
                    if let Some(d) = self.net.earliest_pending(pid) {
                        wake = Some(wake.map_or(d, |w| w.min(d)));
                    }
                }
                if let Some(t) = wake {
                    // The definite wake: a Ready event that next_wake will
                    // honor for blocked processes (gen-gated, so an earlier
                    // Deliver or Signal wake makes it stale).
                    self.push(t.max(end), QEv::Ready { pid: pid.0, gen });
                }
                StepOutcome::Scheduled
            }
            Ok(AppStatus::Done) => {
                self.status[p] = Status::Done;
                self.gen[p] += 1;
                StepOutcome::Done
            }
            Err(fault) => {
                self.tracer.crash(pid);
                self.status[p] = Status::Crashed;
                self.gen[p] += 1;
                StepOutcome::Crashed(fault)
            }
        };
        // Kernel panics stop every process on the node.
        for node in 0..self.kernels.len() {
            if self.kernels[node].panicked() && !self.nodes_killed[node] {
                self.nodes_killed[node] = true;
                for q in 0..self.cfg.n_procs {
                    if self.cfg.node_of[q] == node {
                        self.push(
                            end,
                            QEv::Kill {
                                pid: ProcessId::from_index(q).0,
                            },
                        );
                    }
                }
            }
        }
        outcome
    }

    /// Brings a crashed (or killed) process back after recovery, runnable
    /// `delay` from now.
    ///
    /// # Panics
    ///
    /// Panics if the process is not crashed.
    pub fn respawn(&mut self, pid: ProcessId, delay: SimTime) {
        let p = pid.index();
        assert_eq!(
            self.status[p],
            Status::Crashed,
            "respawn requires a crashed process"
        );
        self.status[p] = Status::Runnable;
        self.gen[p] += 1;
        let gen = self.gen[p];
        let t = self.now + delay;
        self.push(t, QEv::Ready { pid: pid.0, gen });
    }

    /// Reactivates a process whose state was rolled back as a cascade
    /// victim of another process's failure: blocked processes are woken
    /// (their wait condition may no longer reflect the rolled-back state)
    /// and finished processes are resumed. Crashed processes must use
    /// [`Simulator::respawn`] instead. Runnable processes are untouched.
    pub fn reactivate(&mut self, pid: ProcessId) {
        let p = pid.index();
        if matches!(self.status[p], Status::Blocked(_) | Status::Done) {
            self.status[p] = Status::Runnable;
            self.gen[p] += 1;
            let gen = self.gen[p];
            let t = self.now;
            self.push(t, QEv::Ready { pid: pid.0, gen });
        }
    }

    /// Is the process finished?
    pub fn is_done(&self, pid: ProcessId) -> bool {
        self.status[pid.index()] == Status::Done
    }

    /// Is the process crashed (and not yet respawned)?
    pub fn is_crashed(&self, pid: ProcessId) -> bool {
        self.status[pid.index()] == Status::Crashed
    }

    /// Installs an unreliable-fabric description on the network,
    /// activating the transport layer (acks, retransmission, backoff).
    /// Install before the run starts; a plan with all probabilities zero
    /// reproduces the reliable network bit-for-bit.
    pub fn install_net_fault_plan(&mut self, plan: NetFaultPlan) {
        self.net.install_fault_plan(plan);
    }

    /// Transport-layer counters (zero unless a fault plan is installed).
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// The network fabric (recovery managers rewind cursors through this).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read access to the network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The kernel hosting `pid` (fault injection targets this).
    pub fn kernel_of_mut(&mut self, pid: ProcessId) -> &mut Kernel {
        &mut self.kernels[self.cfg.node_of[pid.index()]]
    }

    /// Read access to `pid`'s kernel.
    pub fn kernel_of(&self, pid: ProcessId) -> &Kernel {
        &self.kernels[self.cfg.node_of[pid.index()]]
    }

    /// Input-script cursor (checkpointed by the recovery runtime).
    pub fn input_cursor(&self, pid: ProcessId) -> usize {
        self.scripts[pid.index()].cursor()
    }

    /// Rolls the input-script cursor back (the user retypes).
    pub fn set_input_cursor(&mut self, pid: ProcessId, cursor: usize) {
        self.scripts[pid.index()].set_cursor(cursor);
    }

    /// Signal-schedule cursor (checkpointed by the recovery runtime).
    pub fn signal_cursor(&self, pid: ProcessId) -> usize {
        self.signals[pid.index()].cursor()
    }

    /// Rolls the signal-schedule cursor back.
    pub fn set_signal_cursor(&mut self, pid: ProcessId, cursor: usize) {
        self.signals[pid.index()].set_cursor(cursor);
    }

    /// Rolls `pid`'s node kernel back to a snapshot taken from it
    /// (recovery reconstructs kernel state, §3) and marks the node
    /// rebooted so its processes can run again. Only meaningful when the
    /// node hosts a single process.
    pub fn restore_kernel(&mut self, pid: ProcessId, snap: &KernelSnapshot) {
        let node = self.cfg.node_of[pid.index()];
        self.kernels[node].restore(snap);
        // A reboot clears in-memory kernel bugs: a snapshot taken while a
        // fault was armed must not resurrect the fault.
        self.kernels[node].reboot();
        self.nodes_killed[node] = false;
    }

    /// Per-destination send counters as a sparse `(dest, count)` list
    /// sorted by destination (checkpointed by the recovery runtime).
    /// Destinations absent from the list have count 0.
    pub fn send_seqs(&self, pid: ProcessId) -> &[(u32, u64)] {
        &self.send_seqs[pid.index()]
    }

    /// Restores per-destination send counters after rollback. Destinations
    /// absent from the snapshot (e.g. the whole empty initial snapshot)
    /// were still at zero.
    pub fn set_send_seqs(&mut self, pid: ProcessId, seqs: &[(u32, u64)]) {
        let row = &mut self.send_seqs[pid.index()];
        row.clear();
        row.extend_from_slice(seqs);
    }

    /// Adds a one-off scheduling delay to another process (used to charge
    /// remote participants their coordinated-commit time).
    pub fn delay_process(&mut self, pid: ProcessId, ns: SimTime) {
        self.pending_delay[pid.index()] += ns;
    }

    /// Direct access to the trace recorder (the recovery runtime records
    /// commit events and control edges through this).
    pub fn tracer_mut(&mut self) -> &mut TraceBuilder {
        &mut self.tracer
    }

    /// Number of trace events recorded so far for `pid`.
    pub fn trace_position(&self, pid: ProcessId) -> u64 {
        self.tracer.position(pid)
    }

    /// Appends a DSM-layer operation to the shared-memory access stream,
    /// stamping it with `pid`'s current trace position (see
    /// [`ft_core::access`] for how the analyzer recovers happens-before
    /// knowledge from that stamp).
    pub fn record_shm(&mut self, pid: ProcessId, op: ShmOp) {
        let pos = self.tracer.position(pid);
        ft_core::trace::chunked_push(&mut self.shm_log.records, ShmRecord { pid, pos, op });
    }

    /// Takes the recorded shared-memory access stream (leaving an empty
    /// one). Harnesses call this right before [`Simulator::finish`].
    pub fn take_shm_log(&mut self) -> ShmLog {
        std::mem::take(&mut self.shm_log)
    }

    /// Notes a commit for stats purposes.
    pub fn count_commit(&mut self, pid: ProcessId) {
        self.stats[pid.index()].commits += 1;
    }

    /// The visible output log in real-time order: (time, process, token).
    pub fn visible_log(&self) -> &[(SimTime, ProcessId, u64)] {
        &self.visible_log
    }

    /// Per-process stats.
    pub fn proc_stats(&self, pid: ProcessId) -> ProcStats {
        self.stats[pid.index()]
    }

    /// Finishes the run, yielding the trace, the visible log, and final
    /// time.
    pub fn finish(self) -> (Trace, Vec<(SimTime, ProcessId, u64)>, SimTime) {
        (self.tracer.finish(), self.visible_log, self.now)
    }
}

/// The syscall context for one step of one process. Implements
/// [`Syscalls`]; the recovery runtime wraps it to interpose.
pub struct SysCtx<'a> {
    sim: &'a mut Simulator,
    pid: ProcessId,
    elapsed: SimTime,
    log_next: bool,
    send_meta: Option<(BTreeSet<u32>, bool)>,
    /// Set when a sub-step crash hook fires mid-step (e.g. a kill injected
    /// inside a commit): the process is dead for the remainder of this
    /// step, so every later syscall is suppressed — no events recorded, no
    /// messages sent, no outputs emitted. The flag lives on the per-step
    /// context, so it resets naturally at the next step.
    killed: bool,
}

impl<'a> SysCtx<'a> {
    /// Time charged so far in this step.
    pub fn elapsed(&self) -> SimTime {
        self.elapsed
    }

    /// Marks the process as killed mid-step (sub-step crash hook): the
    /// rest of this step's syscalls become unobservable no-ops. The caller
    /// is responsible for scheduling the actual [`Simulator::kill_at`] so
    /// the scheduler delivers [`Wake::Killed`].
    pub fn mark_killed(&mut self) {
        self.killed = true;
    }

    /// True if a sub-step crash hook fired during this step.
    pub fn step_killed(&self) -> bool {
        self.killed
    }

    /// Marks the next recorded non-deterministic event as logged (rendered
    /// deterministic by the recovery runtime).
    pub fn set_log_next(&mut self, log: bool) {
        self.log_next = log;
    }

    /// Attaches recovery metadata (dependency snapshot, taint) to the next
    /// send.
    pub fn set_send_meta(&mut self, deps: BTreeSet<u32>, tainted: bool) {
        self.send_meta = Some((deps, tainted));
    }

    /// Records a local commit event (recovery runtime only) and charges its
    /// cost.
    pub fn record_commit(&mut self, cost_ns: SimTime) {
        self.sim.tracer.commit(self.pid);
        self.sim.count_commit(self.pid);
        self.elapsed += cost_ns;
    }

    /// Records a coordinated commit round across `participants` (which must
    /// include this process if it commits), charging this process
    /// `local_cost_ns` and each remote participant its own cost via
    /// scheduling delays. Control-message edges (prepare/ack) are recorded
    /// for the happens-before order, and the coordinator is charged two
    /// network round trips.
    pub fn record_coordinated_commit(&mut self, participants: &[ProcessId], costs_ns: &[SimTime]) {
        assert_eq!(participants.len(), costs_ns.len());
        let me = self.pid;
        let remote: Vec<ProcessId> = participants.iter().copied().filter(|&q| q != me).collect();
        // Prepare edges.
        for &q in &remote {
            let (_, m) = self.sim.tracer.send_control(me, q);
            self.sim.tracer.recv_control(q, me, m);
        }
        self.sim.tracer.coordinated_commit(participants);
        for (&q, &c) in participants.iter().zip(costs_ns) {
            self.sim.count_commit(q);
            if q == me {
                self.elapsed += c;
            } else {
                self.sim.delay_process(q, c);
            }
        }
        // Ack edges.
        for &q in &remote {
            let (_, m) = self.sim.tracer.send_control(q, me);
            self.sim.tracer.recv_control(me, q, m);
        }
        if !remote.is_empty() {
            // Two network round trips (prepare+ack), paid by the
            // coordinator, overlapped across participants; plus the slowest
            // remote commit is on the critical path.
            let rtt = 2 * self.sim.cfg.cost.net_latency_ns;
            let slowest_remote = participants
                .iter()
                .zip(costs_ns)
                .filter(|(q, _)| **q != me)
                .map(|(_, &c)| c)
                .max()
                .unwrap_or(0);
            self.elapsed += 2 * rtt + slowest_remote;
        }
    }

    /// Records a fault-activation journal marker (fault injector only).
    pub fn record_fault_activation(&mut self, fault: u32) {
        self.sim.tracer.fault_activation(self.pid, fault);
    }

    /// Charges extra time (recovery-runtime overheads: COW traps, log
    /// writes).
    pub fn charge(&mut self, ns: SimTime) {
        self.elapsed += ns;
    }

    /// Read-only reach into the simulator (recovery runtime).
    pub fn sim(&self) -> &Simulator {
        self.sim
    }

    /// Mutable reach into the simulator (recovery runtime).
    pub fn sim_mut(&mut self) -> &mut Simulator {
        self.sim
    }

    fn node_kernel(&mut self) -> &mut Kernel {
        self.sim.kernel_of_mut(self.pid)
    }

    fn count_syscall(&mut self) {
        self.sim.stats[self.pid.index()].syscalls += 1;
        self.elapsed += self.sim.cfg.cost.syscall_ns;
    }

    fn count_nd(&mut self) {
        self.sim.stats[self.pid.index()].nd_events += 1;
    }
}

impl<'a> Syscalls for SysCtx<'a> {
    fn pid(&self) -> ProcessId {
        self.pid
    }

    fn now(&self) -> SimTime {
        self.sim.now + self.elapsed
    }

    fn compute(&mut self, ns: SimTime) {
        self.elapsed += ns;
    }

    fn gettimeofday(&mut self) -> SimTime {
        if self.killed {
            return self.sim.now + self.elapsed;
        }
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.gettimeofday_ns;
        let mut v = self.sim.now + self.elapsed;
        let poll = self.now();
        if self.node_kernel().tick_corruption(poll) {
            v = self.node_kernel().corrupt_u64(v);
        }
        let logged = std::mem::take(&mut self.log_next);
        if logged {
            self.sim.tracer.nd_logged(self.pid, NdSource::TimeOfDay);
        } else {
            self.sim.tracer.nd(self.pid, NdSource::TimeOfDay);
        }
        self.count_nd();
        v
    }

    fn random(&mut self) -> u64 {
        if self.killed {
            return 0;
        }
        self.count_syscall();
        let mut v: u64 = self.sim.rng.next_u64();
        let poll = self.now();
        if self.node_kernel().tick_corruption(poll) {
            v = self.node_kernel().corrupt_u64(v);
        }
        let logged = std::mem::take(&mut self.log_next);
        if logged {
            self.sim.tracer.nd_logged(self.pid, NdSource::Random);
        } else {
            self.sim.tracer.nd(self.pid, NdSource::Random);
        }
        self.count_nd();
        v
    }

    fn read_input(&mut self) -> Option<Vec<u8>> {
        if self.killed {
            return None;
        }
        let now = self.now();
        let p = self.pid.index();
        let mut bytes = self.sim.scripts[p].take_due(now)?;
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.read_input_ns;
        let poll = self.now();
        if self.node_kernel().tick_corruption(poll) {
            self.node_kernel().corrupt_bytes(&mut bytes);
        }
        let logged = std::mem::take(&mut self.log_next);
        if logged {
            self.sim.tracer.nd_logged(self.pid, NdSource::UserInput);
        } else {
            self.sim.tracer.nd(self.pid, NdSource::UserInput);
        }
        self.count_nd();
        Some(bytes)
    }

    fn input_exhausted(&self) -> bool {
        self.sim.scripts[self.pid.index()].exhausted()
    }

    fn send(&mut self, to: ProcessId, payload: Vec<u8>) -> SysResult<()> {
        if self.killed {
            return Ok(());
        }
        if to.index() >= self.sim.cfg.n_procs {
            return Err(SysError::BadFd);
        }
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.send_ns;
        let row = &mut self.sim.send_seqs[self.pid.index()];
        let seq = match row.binary_search_by_key(&to.0, |e| e.0) {
            Ok(i) => {
                let s = row[i].1;
                row[i].1 += 1;
                s
            }
            Err(i) => {
                row.insert(i, (to.0, 1));
                0
            }
        };
        let (deps, tainted) = self.send_meta.take().unwrap_or_default();
        let sent_at = self.now();
        let latency = self.sim.cfg.cost.net_delivery_ns(payload.len());
        let deliver_at = sent_at + latency;
        let (_, trace_msg) = self.sim.tracer.send(self.pid, to);
        let outcome = self.sim.net.send(
            self.pid, to, seq, payload, deps, tainted, deliver_at, trace_msg,
        );
        self.sim.stats[self.pid.index()].sends += 1;
        if self.sim.net.fault_plan().is_some() {
            match outcome {
                SendOutcome::Enqueued(_) => {
                    // Fresh enqueue: run the first transmission attempt
                    // through the transport.
                    let (arrival, retry) =
                        self.sim.net.dispatch(self.pid, to, seq, sent_at, latency);
                    if let Some(at) = arrival {
                        self.sim.push(at, QEv::Deliver { pid: to.0 });
                    }
                    if let Some(rt) = retry {
                        let (from, to) = (self.pid.0, to.0);
                        self.sim.push(rt, QEv::Retransmit { from, to, seq });
                    }
                }
                SendOutcome::Duplicate(at) if at != UNDELIVERED => {
                    // Replay dedup of an already-arrived message: wake the
                    // receiver at the original arrival, as the plain
                    // network would.
                    self.sim.push(at, QEv::Deliver { pid: to.0 });
                }
                SendOutcome::Duplicate(_) => {
                    // Replay dedup of a message the transport still owes:
                    // its retransmission timer owns the next wake.
                }
            }
        } else {
            self.sim.push(deliver_at, QEv::Deliver { pid: to.0 });
        }
        Ok(())
    }

    fn try_recv(&mut self) -> Option<Message> {
        if self.killed {
            return None;
        }
        let now = self.now();
        let (mut msg, trace_msg) = self.sim.net.try_recv(self.pid, now)?;
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.recv_ns;
        let poll = self.now();
        if self.node_kernel().tick_corruption(poll) {
            self.node_kernel().corrupt_bytes(msg.payload.make_mut());
        }
        let logged = std::mem::take(&mut self.log_next);
        if logged {
            self.sim.tracer.recv_logged(self.pid, msg.from, trace_msg);
        } else {
            self.sim.tracer.recv(self.pid, msg.from, trace_msg);
        }
        self.sim.stats[self.pid.index()].recvs += 1;
        self.count_nd();
        Some(msg)
    }

    fn visible(&mut self, token: u64) {
        if self.killed {
            return;
        }
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.visible_ns;
        let t = self.now();
        self.sim.tracer.visible(self.pid, token);
        self.sim.visible_log.push((t, self.pid, token));
        self.sim.stats[self.pid.index()].visibles += 1;
    }

    fn take_signal(&mut self) -> Option<u32> {
        if self.killed {
            return None;
        }
        let now = self.now();
        let p = self.pid.index();
        let signo = self.sim.signals[p].take_due(now)?;
        let logged = std::mem::take(&mut self.log_next);
        if logged {
            self.sim.tracer.nd_logged(self.pid, NdSource::Signal);
        } else {
            self.sim.tracer.nd(self.pid, NdSource::Signal);
        }
        self.count_nd();
        Some(signo)
    }

    fn open(&mut self, name: &str) -> SysResult<u32> {
        if self.killed {
            return Ok(0);
        }
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.open_ns;
        let corrupted = {
            let now = self.now();
            self.node_kernel().tick_corruption(now)
        };
        let logged = std::mem::take(&mut self.log_next);
        if logged {
            self.sim.tracer.nd_logged(self.pid, NdSource::ResourceProbe);
        } else {
            self.sim.tracer.nd(self.pid, NdSource::ResourceProbe);
        }
        self.count_nd();
        let fd = self.node_kernel().open(name)?;
        // A corrupted open returns a garbage descriptor.
        if corrupted {
            return Ok(fd ^ 0x40);
        }
        Ok(fd)
    }

    fn write_file(&mut self, fd: u32, bytes: &[u8]) -> SysResult<()> {
        if self.killed {
            return Ok(());
        }
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.file_ns_per_byte * bytes.len() as SimTime;
        let _ = {
            let now = self.now();
            self.node_kernel().tick_corruption(now)
        };
        let logged = std::mem::take(&mut self.log_next);
        if logged {
            self.sim.tracer.nd_logged(self.pid, NdSource::ResourceProbe);
        } else {
            self.sim.tracer.nd(self.pid, NdSource::ResourceProbe);
        }
        self.count_nd();
        self.node_kernel().write(fd, bytes)
    }

    fn read_file(&mut self, fd: u32, len: usize) -> SysResult<Vec<u8>> {
        if self.killed {
            return Ok(vec![0; len]);
        }
        self.count_syscall();
        self.elapsed += self.sim.cfg.cost.file_ns_per_byte * len as SimTime;
        let corrupted = {
            let now = self.now();
            self.node_kernel().tick_corruption(now)
        };
        let mut data = self.node_kernel().read(fd, len)?;
        if corrupted {
            self.node_kernel().corrupt_bytes(&mut data);
        }
        self.sim.tracer.internal(self.pid);
        Ok(data)
    }

    fn close(&mut self, fd: u32) -> SysResult<()> {
        if self.killed {
            return Ok(());
        }
        self.count_syscall();
        let _ = {
            let now = self.now();
            self.node_kernel().tick_corruption(now)
        };
        self.sim.tracer.internal(self.pid);
        self.node_kernel().close(fd)
    }

    fn note_fault_activation(&mut self, fault: u32) {
        if self.killed {
            return;
        }
        self.sim.tracer.fault_activation(self.pid, fault);
    }

    fn shm_op(&mut self, op: ShmOp) {
        if self.killed {
            return;
        }
        self.sim.record_shm(self.pid, op);
    }
}
