//! Golden fixture pinning the on-disk redo-log format byte-exactly.
//!
//! Two directions, so a format drift cannot hide:
//!
//! * **writer → fixture**: replaying the pinned op script must produce
//!   a log bitwise-equal to the committed fixture — header layout,
//!   record framing, CRC polynomial, field order, endianness.
//! * **fixture → state**: recovering the committed fixture must land on
//!   the pinned sequence number, cell values, and state digest — a
//!   reader that silently reinterprets old bytes fails here.
//!
//! If a format change is *deliberate*, bump `FORMAT_VERSION` and rerun
//! the ignored `regenerate_golden_fixture` test to rewrite the fixture
//! (then update `GOLDEN_DIGEST` from its output).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ft_mem::arena::{Layout, PAGE_SIZE};
use ft_mem::durable::{DurableOptions, DurableStore, FsyncPolicy, FORMAT_VERSION, LOG_FILE};

const GOLDEN: &[u8] = include_bytes!("fixtures/golden_redo.log");

/// `state_digest()` of the recovered fixture (printed by
/// `regenerate_golden_fixture`).
const GOLDEN_DIGEST: u64 = 0x84b2_54db_e70e_5535;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ft-mem-golden-{}-{tag}-{n}", std::process::id()))
}

fn tiny() -> Layout {
    Layout {
        globals_pages: 1,
        stack_pages: 1,
        heap_pages: 1,
    }
}

fn opts() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        journal_watermark: false,
        ..DurableOptions::default()
    }
}

/// The pinned op script: two commits, the second dirtying two pages
/// (one of them a re-write of page 0, so the fixture also pins the
/// full-page-image semantics of redo records).
fn build_golden(dir: &Path) -> DurableStore {
    let mut s = DurableStore::create(dir, tiny(), opts()).expect("create golden store");
    s.arena_mut()
        .write_pod::<u64>(0, 0x1122_3344_5566_7788)
        .unwrap();
    s.commit().unwrap();
    s.arena_mut()
        .write_pod::<u64>(16, 0x0102_0304_0506_0708)
        .unwrap();
    s.arena_mut()
        .write_pod::<u64>(PAGE_SIZE + 8, 0x99AA_BBCC_DDEE_FF00)
        .unwrap();
    s.commit().unwrap();
    s
}

#[test]
fn writer_reproduces_the_fixture_byte_for_byte() {
    let dir = scratch("writer");
    let store = build_golden(&dir);
    drop(store);
    let bytes = std::fs::read(dir.join(LOG_FILE)).unwrap();
    assert_eq!(
        bytes, GOLDEN,
        "the redo-log writer no longer produces the pinned v{FORMAT_VERSION} bytes — \
         if the format change is deliberate, bump FORMAT_VERSION and regenerate the fixture \
         (cargo test -p ft-mem --test durable_golden -- --ignored)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fixture_recovers_the_pinned_state() {
    let dir = scratch("reader");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(LOG_FILE), GOLDEN).unwrap();
    let (store, info) = DurableStore::open(&dir, opts()).expect("fixture recovers");
    assert_eq!(info.seq, 2);
    assert_eq!(info.replayed, 2);
    assert_eq!(info.truncated_bytes, 0);
    assert!(!info.used_checkpoint);
    let a = store.arena();
    assert_eq!(a.read_pod::<u64>(0).unwrap(), 0x1122_3344_5566_7788);
    assert_eq!(a.read_pod::<u64>(16).unwrap(), 0x0102_0304_0506_0708);
    assert_eq!(
        a.read_pod::<u64>(PAGE_SIZE + 8).unwrap(),
        0x99AA_BBCC_DDEE_FF00
    );
    assert_eq!(
        store.state_digest(),
        GOLDEN_DIGEST,
        "recovered state digest drifted from the pinned fixture"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deliberate-format-bump path: rewrites `tests/fixtures/golden_redo.log`
/// from the pinned op script and prints the digest to pin.
#[test]
#[ignore = "regenerates the committed fixture; run only for a deliberate format bump"]
fn regenerate_golden_fixture() {
    let dir = scratch("regen");
    let store = build_golden(&dir);
    let digest = store.state_digest();
    drop(store);
    let bytes = std::fs::read(dir.join(LOG_FILE)).unwrap();
    let dest = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_redo.log");
    std::fs::create_dir_all(dest.parent().unwrap()).unwrap();
    std::fs::write(&dest, &bytes).unwrap();
    println!(
        "wrote {} ({} bytes); set GOLDEN_DIGEST = {digest:#018x}",
        dest.display(),
        bytes.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
