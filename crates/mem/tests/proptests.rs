//! Randomized model tests for the memory substrate: rollback is exact, the
//! arena vector behaves like `Vec`, and the allocator never hands out
//! overlapping or unguarded blocks. Seeded and deterministic (ft-mem sits
//! below the simulator crate, so it carries its own tiny generator).

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use ft_mem::alloc::Allocator;
use ft_mem::arena::{Arena, Layout, PAGE_SIZE};
use ft_mem::vec::ArenaVec;

/// SplitMix64, the same generator the simulator uses.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[derive(Debug, Clone)]
enum VecOp {
    Push(u32),
    Pop,
    Set(usize, u32),
    Insert(usize, u32),
    Remove(usize),
    Truncate(usize),
}

fn random_vec_op(rng: &mut Rng) -> VecOp {
    match rng.below(6) {
        0 => VecOp::Push(rng.next_u64() as u32),
        1 => VecOp::Pop,
        2 => VecOp::Set(rng.below(64) as usize, rng.next_u64() as u32),
        3 => VecOp::Insert(rng.below(64) as usize, rng.next_u64() as u32),
        4 => VecOp::Remove(rng.below(64) as usize),
        _ => VecOp::Truncate(rng.below(64) as usize),
    }
}

/// ArenaVec agrees with a model Vec under arbitrary operation
/// sequences; out-of-bounds operations fail on both sides.
#[test]
fn arena_vec_matches_model() {
    let mut seeds = Rng(0xA12E_A5EC);
    for _ in 0..128 {
        let mut rng = Rng(seeds.next_u64());
        let n_ops = rng.below(200) as usize;
        let mut arena = Arena::new(Layout {
            globals_pages: 1,
            stack_pages: 1,
            heap_pages: 64,
        });
        let mut alloc = Allocator::new(&arena);
        let mut v = ArenaVec::<u32>::with_capacity(&mut arena, &mut alloc, 4).unwrap();
        let mut model: Vec<u32> = Vec::new();
        for _ in 0..n_ops {
            match random_vec_op(&mut rng) {
                VecOp::Push(x) => {
                    v.push(&mut arena, &mut alloc, x).unwrap();
                    model.push(x);
                }
                VecOp::Pop => {
                    assert_eq!(v.pop(&arena).unwrap(), model.pop());
                }
                VecOp::Set(i, x) => {
                    let ok = v.set(&mut arena, i, x).is_ok();
                    assert_eq!(ok, i < model.len());
                    if ok {
                        model[i] = x;
                    }
                }
                VecOp::Insert(i, x) => {
                    let ok = v.insert(&mut arena, &mut alloc, i, x).is_ok();
                    assert_eq!(ok, i <= model.len());
                    if ok {
                        model.insert(i, x);
                    }
                }
                VecOp::Remove(i) => {
                    let r = v.remove(&mut arena, i);
                    if i < model.len() {
                        assert_eq!(r.unwrap(), model.remove(i));
                    } else {
                        assert!(r.is_err());
                    }
                }
                VecOp::Truncate(n) => {
                    v.truncate(n);
                    model.truncate(n);
                }
            }
            assert_eq!(v.len(), model.len());
        }
        assert_eq!(v.to_vec(&arena).unwrap(), model);
        assert!(alloc.check_integrity(&arena).is_ok());
    }
}

/// Rollback exactly restores the last committed image, no matter what
/// writes happened since.
#[test]
fn rollback_is_exact() {
    let mut seeds = Rng(0x0B0E_11BA);
    for _ in 0..128 {
        let mut rng = Rng(seeds.next_u64());
        let writes = |rng: &mut Rng| -> Vec<(usize, u64)> {
            let n = rng.below(40) as usize;
            (0..n)
                .map(|_| (rng.below(8 * PAGE_SIZE as u64 - 9) as usize, rng.next_u64()))
                .collect()
        };
        let committed = writes(&mut rng);
        let scratch = writes(&mut rng);
        let mut arena = Arena::new(Layout {
            globals_pages: 2,
            stack_pages: 2,
            heap_pages: 4,
        });
        for &(off, val) in &committed {
            arena.write_pod(off, val).unwrap();
        }
        let snapshot: Vec<u8> = arena.read(0, arena.size()).unwrap().to_vec();
        arena.commit();
        for &(off, val) in &scratch {
            arena.write_pod(off, val).unwrap();
        }
        arena.rollback();
        assert_eq!(arena.read(0, arena.size()).unwrap(), &snapshot[..]);
        // Idempotent: rolling back again changes nothing.
        arena.rollback();
        assert_eq!(arena.read(0, arena.size()).unwrap(), &snapshot[..]);
    }
}

/// Live allocations never overlap each other (or their guard words).
#[test]
fn allocations_never_overlap() {
    let mut seeds = Rng(0x00A1_10C8);
    for _ in 0..192 {
        let mut rng = Rng(seeds.next_u64());
        let n = 1 + rng.below(59) as usize;
        let sizes: Vec<usize> = (0..n).map(|_| 1 + rng.below(511) as usize).collect();
        let mut arena = Arena::new(Layout {
            globals_pages: 1,
            stack_pages: 1,
            heap_pages: 64,
        });
        let mut alloc = Allocator::new(&arena);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let off = alloc.alloc(&mut arena, sz).unwrap();
            // Include guards in the span: [off-16, off+sz+8).
            spans.push((off - 16, off + sz + 8));
            // Free every third allocation to exercise the free list.
            if i % 3 == 2 {
                let (s, _) = spans.pop().unwrap();
                alloc.free(&arena, s + 16).unwrap();
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
        assert!(alloc.check_integrity(&arena).is_ok());
    }
}

/// Commit counts dirty pages exactly: the number of distinct pages
/// touched since the last commit.
#[test]
fn commit_counts_distinct_pages() {
    let mut seeds = Rng(0xC0017);
    for _ in 0..192 {
        let mut rng = Rng(seeds.next_u64());
        let n = 1 + rng.below(99) as usize;
        let offs: Vec<usize> = (0..n)
            .map(|_| rng.below(16 * PAGE_SIZE as u64 - 1) as usize)
            .collect();
        let mut arena = Arena::new(Layout {
            globals_pages: 8,
            stack_pages: 4,
            heap_pages: 4,
        });
        let mut pages = std::collections::HashSet::new();
        for &off in &offs {
            arena.write(off, &[1]).unwrap();
            pages.insert(off / PAGE_SIZE);
        }
        let rec = arena.commit();
        assert_eq!(rec.dirty_pages, pages.len());
    }
}

/// The allocator's checkpoint byte image round-trips exactly (the blob the
/// recovery runtime stores in its committed control block).
#[test]
fn allocator_bytes_roundtrip() {
    let mut seeds = Rng(0xB10B);
    for _ in 0..64 {
        let mut rng = Rng(seeds.next_u64());
        let mut arena = Arena::new(Layout {
            globals_pages: 1,
            stack_pages: 1,
            heap_pages: 64,
        });
        let mut alloc = Allocator::new(&arena);
        let mut live = Vec::new();
        for _ in 0..rng.below(40) {
            let off = alloc
                .alloc(&mut arena, 1 + rng.below(256) as usize)
                .unwrap();
            live.push(off);
            if !live.is_empty() && rng.below(3) == 0 {
                let i = rng.below(live.len() as u64) as usize;
                alloc.free(&arena, live.swap_remove(i)).unwrap();
            }
        }
        let blob = alloc.to_bytes();
        let back = Allocator::from_bytes(&blob).unwrap();
        assert_eq!(back.live(), alloc.live());
        assert_eq!(back.high_water(), alloc.high_water());
        assert_eq!(back.to_bytes(), blob);
        // Truncated images are rejected, not misread.
        assert!(Allocator::from_bytes(&blob[..blob.len() - 1]).is_none());
    }
}

// ---------------------------------------------------------------------
// The optimized arena vs. its naive executable specification.

/// FNV-1a constants (shared with the arena's checksum).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The pre-optimization arena, kept as an executable spec: per-page
/// `Vec<bool>` dirty flags cleared wholesale at every commit/rollback, a
/// fresh heap `to_vec()` before-image on every trap, and no buffer reuse
/// anywhere. The epoch/pool arena must be observationally identical to
/// this — contents, statistics, commit records, and checksums.
struct NaiveArena {
    data: Vec<u8>,
    dirty: Vec<bool>,
    undo: Vec<(usize, Vec<u8>)>,
    stats: ft_mem::arena::ArenaStats,
}

impl NaiveArena {
    fn new(layout: Layout) -> Self {
        let pages = layout.total_pages();
        NaiveArena {
            data: vec![0; pages * PAGE_SIZE],
            dirty: vec![false; pages],
            undo: Vec::new(),
            stats: ft_mem::arena::ArenaStats::default(),
        }
    }

    fn in_bounds(&self, offset: usize, len: usize) -> bool {
        offset
            .checked_add(len)
            .is_some_and(|end| end <= self.data.len())
    }

    fn trap_range(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            if !self.dirty[page] {
                self.dirty[page] = true;
                self.stats.traps += 1;
                let start = page * PAGE_SIZE;
                self.undo
                    .push((page, self.data[start..start + PAGE_SIZE].to_vec()));
            }
        }
    }

    fn write(&mut self, offset: usize, bytes: &[u8]) -> bool {
        if !self.in_bounds(offset, bytes.len()) {
            return false;
        }
        self.trap_range(offset, bytes.len());
        self.stats.writes += 1;
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        true
    }

    fn fill(&mut self, offset: usize, len: usize, byte: u8) -> bool {
        if !self.in_bounds(offset, len) {
            return false;
        }
        self.trap_range(offset, len);
        self.stats.writes += 1;
        self.data[offset..offset + len].fill(byte);
        true
    }

    fn copy_within(&mut self, src: usize, dst: usize, len: usize) -> bool {
        if !self.in_bounds(src, len) || !self.in_bounds(dst, len) {
            return false;
        }
        self.trap_range(dst, len);
        self.stats.writes += 1;
        self.data.copy_within(src..src + len, dst);
        true
    }

    fn commit(&mut self) -> (usize, usize, usize) {
        let dirty_pages = self.undo.len();
        self.undo.clear();
        self.dirty.fill(false);
        self.stats.commits += 1;
        self.stats.committed_pages += dirty_pages as u64;
        self.stats.committed_bytes += (dirty_pages * PAGE_SIZE) as u64;
        (dirty_pages, dirty_pages * PAGE_SIZE, 0)
    }

    fn rollback(&mut self) -> usize {
        let n = self.undo.len();
        while let Some((page, image)) = self.undo.pop() {
            let start = page * PAGE_SIZE;
            self.data[start..start + PAGE_SIZE].copy_from_slice(&image);
        }
        self.dirty.fill(false);
        self.stats.rollbacks += 1;
        n
    }

    /// The checksum spec, written as a plain indexed loop: eight
    /// little-endian bytes per multiply, then the byte tail.
    fn checksum(&self, offset: usize, len: usize) -> Option<u64> {
        if !self.in_bounds(offset, len) {
            return None;
        }
        let bytes = &self.data[offset..offset + len];
        let mut h = FNV_OFFSET;
        let mut i = 0;
        while i + 8 <= len {
            let mut w = 0u64;
            for (shift, &b) in bytes[i..i + 8].iter().enumerate() {
                w |= (b as u64) << (8 * shift);
            }
            h = (h ^ w).wrapping_mul(FNV_PRIME);
            i += 8;
        }
        for &b in &bytes[i..] {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        Some(h)
    }
}

/// The epoch/pool arena is observationally identical to the naive
/// reference under long random schedules of writes, fills, overlapping
/// copies, commits, rollbacks, and checksums — same contents, same
/// statistics, same commit records, same checksums, including on
/// out-of-bounds operations (both sides reject).
#[test]
fn optimized_arena_matches_naive_reference() {
    let layout = Layout {
        globals_pages: 3,
        stack_pages: 2,
        heap_pages: 7,
    };
    let size = layout.total_pages() * PAGE_SIZE;
    let mut seeds = Rng(0x0EF0_CACE);
    for _ in 0..8 {
        let mut rng = Rng(seeds.next_u64());
        let mut fast = Arena::new(layout);
        let mut naive = NaiveArena::new(layout);
        for _ in 0..1024 {
            // Offsets occasionally run past the end so the bounds checks
            // are part of the equivalence.
            let off = rng.below(size as u64 + 64) as usize;
            match rng.below(10) {
                0..=2 => {
                    let len = rng.below(3 * PAGE_SIZE as u64) as usize;
                    let bytes: Vec<u8> = (0..len).map(|i| (i as u8) ^ rng.0 as u8).collect();
                    assert_eq!(fast.write(off, &bytes).is_ok(), naive.write(off, &bytes));
                }
                3 => {
                    let len = rng.below(2 * PAGE_SIZE as u64) as usize;
                    let b = rng.next_u64() as u8;
                    assert_eq!(fast.fill(off, len, b).is_ok(), naive.fill(off, len, b));
                }
                4 => {
                    let v = rng.next_u64();
                    assert_eq!(
                        fast.write_pod(off, v).is_ok(),
                        naive.write(off, &v.to_le_bytes())
                    );
                }
                5 => {
                    let dst = rng.below(size as u64 + 64) as usize;
                    let len = rng.below(2 * PAGE_SIZE as u64) as usize;
                    assert_eq!(
                        fast.copy_within(off, dst, len).is_ok(),
                        naive.copy_within(off, dst, len)
                    );
                }
                6 => {
                    let len = rng.below(600) as usize;
                    assert_eq!(fast.checksum(off, len).ok(), naive.checksum(off, len));
                }
                7 => {
                    let rec = fast.commit();
                    assert_eq!(
                        (rec.dirty_pages, rec.dirty_bytes, rec.register_bytes),
                        naive.commit()
                    );
                }
                8 => {
                    assert_eq!(fast.rollback(), naive.rollback());
                }
                _ => {
                    assert_eq!(fast.dirty_page_count(), naive.undo.len());
                }
            }
            assert_eq!(fast.stats(), naive.stats);
        }
        assert_eq!(fast.read(0, size).unwrap(), &naive.data[..]);
        assert_eq!(
            fast.checksum(0, size).unwrap(),
            naive.checksum(0, size).unwrap()
        );
    }
}
