//! Property tests for the memory substrate: rollback is exact, the arena
//! vector behaves like `Vec`, and the allocator never hands out overlapping
//! or unguarded blocks.

use proptest::prelude::*;

use ft_mem::alloc::Allocator;
use ft_mem::arena::{Arena, Layout, PAGE_SIZE};
use ft_mem::vec::ArenaVec;

#[derive(Debug, Clone)]
enum VecOp {
    Push(u32),
    Pop,
    Set(usize, u32),
    Insert(usize, u32),
    Remove(usize),
    Truncate(usize),
}

fn vec_op() -> impl Strategy<Value = VecOp> {
    prop_oneof![
        any::<u32>().prop_map(VecOp::Push),
        Just(VecOp::Pop),
        (0usize..64, any::<u32>()).prop_map(|(i, v)| VecOp::Set(i, v)),
        (0usize..64, any::<u32>()).prop_map(|(i, v)| VecOp::Insert(i, v)),
        (0usize..64).prop_map(VecOp::Remove),
        (0usize..64).prop_map(VecOp::Truncate),
    ]
}

proptest! {
    /// ArenaVec agrees with a model Vec under arbitrary operation
    /// sequences; out-of-bounds operations fail on both sides.
    #[test]
    fn arena_vec_matches_model(ops in proptest::collection::vec(vec_op(), 0..200)) {
        let mut arena = Arena::new(Layout {
            globals_pages: 1,
            stack_pages: 1,
            heap_pages: 64,
        });
        let mut alloc = Allocator::new(&arena);
        let mut v = ArenaVec::<u32>::with_capacity(&mut arena, &mut alloc, 4).unwrap();
        let mut model: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                VecOp::Push(x) => {
                    v.push(&mut arena, &mut alloc, x).unwrap();
                    model.push(x);
                }
                VecOp::Pop => {
                    prop_assert_eq!(v.pop(&arena).unwrap(), model.pop());
                }
                VecOp::Set(i, x) => {
                    let ok = v.set(&mut arena, i, x).is_ok();
                    prop_assert_eq!(ok, i < model.len());
                    if ok {
                        model[i] = x;
                    }
                }
                VecOp::Insert(i, x) => {
                    let ok = v.insert(&mut arena, &mut alloc, i, x).is_ok();
                    prop_assert_eq!(ok, i <= model.len());
                    if ok {
                        model.insert(i, x);
                    }
                }
                VecOp::Remove(i) => {
                    let r = v.remove(&mut arena, i);
                    if i < model.len() {
                        prop_assert_eq!(r.unwrap(), model.remove(i));
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                VecOp::Truncate(n) => {
                    v.truncate(n);
                    model.truncate(n);
                }
            }
            prop_assert_eq!(v.len(), model.len());
        }
        prop_assert_eq!(v.to_vec(&arena).unwrap(), model);
        prop_assert!(alloc.check_integrity(&arena).is_ok());
    }

    /// Rollback exactly restores the last committed image, no matter what
    /// writes happened since.
    #[test]
    fn rollback_is_exact(
        committed in proptest::collection::vec((0usize..8 * PAGE_SIZE - 9, any::<u64>()), 0..40),
        scratch in proptest::collection::vec((0usize..8 * PAGE_SIZE - 9, any::<u64>()), 0..40),
    ) {
        let mut arena = Arena::new(Layout {
            globals_pages: 2,
            stack_pages: 2,
            heap_pages: 4,
        });
        for &(off, val) in &committed {
            arena.write_pod(off, val).unwrap();
        }
        let snapshot: Vec<u8> = arena.read(0, arena.size()).unwrap().to_vec();
        arena.commit();
        for &(off, val) in &scratch {
            arena.write_pod(off, val).unwrap();
        }
        arena.rollback();
        prop_assert_eq!(arena.read(0, arena.size()).unwrap(), &snapshot[..]);
        // Idempotent: rolling back again changes nothing.
        arena.rollback();
        prop_assert_eq!(arena.read(0, arena.size()).unwrap(), &snapshot[..]);
    }

    /// Live allocations never overlap each other (or their guard words).
    #[test]
    fn allocations_never_overlap(sizes in proptest::collection::vec(1usize..512, 1..60)) {
        let mut arena = Arena::new(Layout {
            globals_pages: 1,
            stack_pages: 1,
            heap_pages: 64,
        });
        let mut alloc = Allocator::new(&arena);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let off = alloc.alloc(&mut arena, sz).unwrap();
            // Include guards in the span: [off-16, off+sz+8).
            spans.push((off - 16, off + sz + 8));
            // Free every third allocation to exercise the free list.
            if i % 3 == 2 {
                let (s, _) = spans.pop().unwrap();
                alloc.free(&arena, s + 16).unwrap();
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
        prop_assert!(alloc.check_integrity(&arena).is_ok());
    }

    /// Commit counts dirty pages exactly: the number of distinct pages
    /// touched since the last commit.
    #[test]
    fn commit_counts_distinct_pages(offs in proptest::collection::vec(0usize..16 * PAGE_SIZE - 1, 1..100)) {
        let mut arena = Arena::new(Layout {
            globals_pages: 8,
            stack_pages: 4,
            heap_pages: 4,
        });
        let mut pages = std::collections::HashSet::new();
        for &off in &offs {
            arena.write(off, &[1]).unwrap();
            pages.insert(off / PAGE_SIZE);
        }
        let rec = arena.commit();
        prop_assert_eq!(rec.dirty_pages, pages.len());
    }
}
