//! Recovery-path integration tests for the durable log backend.
//!
//! The torn-write sweep is the exhaustive version of the harness's
//! sampled torn-append kills: truncate the redo log at *every* byte
//! offset inside the final record and demand that recovery always lands
//! on the last durable prefix — never a partial record applied, never a
//! committed one lost. The directed tests pin each recovery entry path
//! (empty log, log-only, checkpoint-only) and the fail-stop contract
//! for committed-region damage.

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ft_mem::arena::{Layout, PAGE_SIZE};
use ft_mem::durable::{
    crc32, DurableError, DurableOptions, DurableStore, FsyncPolicy, CHECKPOINT_FILE, LOG_FILE,
    LOG_HEADER_LEN,
};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    // Prefer tmpfs: the per-byte sweep performs one recovery (with its
    // tail-truncation fsync) per offset, and page-cache-backed storage
    // keeps 30k+ of those under a second.
    let shm = Path::new("/dev/shm");
    let root = if shm.is_dir() {
        shm.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    root.join(format!("ft-mem-recovery-{}-{tag}-{n}", std::process::id()))
}

/// 3-page layout: keeps each redo record (≈ 4 KiB per dirty page) small
/// enough that the per-byte sweep stays fast.
fn tiny() -> Layout {
    Layout {
        globals_pages: 1,
        stack_pages: 1,
        heap_pages: 1,
    }
}

fn opts() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        journal_watermark: false,
        ..DurableOptions::default()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn torn_write_sweep_every_byte_offset() {
    for seed in 0..8u64 {
        // Three commits; the durable prefix under test is the first two.
        let dir = scratch("torn-src");
        let mut store = DurableStore::create(&dir, tiny(), opts()).unwrap();
        let commit_op = |store: &mut DurableStore, i: u64| {
            let page = ((seed + i) % 3) as usize;
            let off = page * PAGE_SIZE + ((seed as usize + i as usize * 8) % (PAGE_SIZE - 8));
            store
                .arena_mut()
                .write_pod::<u64>(off, splitmix(seed ^ i))
                .unwrap();
            store.commit().unwrap();
        };
        commit_op(&mut store, 1);
        commit_op(&mut store, 2);
        let prefix_digest = store.state_digest();
        let log_path = dir.join(LOG_FILE);
        let prefix_len = std::fs::read(&log_path).unwrap().len();
        commit_op(&mut store, 3);
        let full_digest = store.state_digest();
        let full = std::fs::read(&log_path).unwrap();
        drop(store);
        assert!(prefix_len > LOG_HEADER_LEN as usize && full.len() > prefix_len);

        let torn_dir = scratch("torn-cut");
        std::fs::create_dir_all(&torn_dir).unwrap();
        let torn_log = torn_dir.join(LOG_FILE);
        for cut in prefix_len..=full.len() {
            std::fs::write(&torn_log, &full[..cut]).unwrap();
            let (recovered, info) = DurableStore::open(&torn_dir, opts())
                .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: recovery failed: {e}"));
            if cut == full.len() {
                // Untouched final record: the whole log is durable.
                assert_eq!(info.seq, 3, "seed {seed}");
                assert_eq!(recovered.state_digest(), full_digest, "seed {seed}");
            } else {
                // Any strictly partial final record rolls back to the
                // durable prefix: exactly seq 2, the torn bytes
                // truncated, never a partial application.
                assert_eq!(info.seq, 2, "seed {seed} cut {cut}");
                assert_eq!(info.replayed, 2, "seed {seed} cut {cut}");
                assert_eq!(
                    info.truncated_bytes,
                    (cut - prefix_len) as u64,
                    "seed {seed} cut {cut}"
                );
                assert_eq!(
                    recovered.state_digest(),
                    prefix_digest,
                    "seed {seed} cut {cut}"
                );
            }
        }
        cleanup(&dir);
        cleanup(&torn_dir);
    }
}

#[test]
fn crc_corruption_is_fail_stop_with_a_diagnostic() {
    let dir = scratch("crc");
    let mut store = DurableStore::create(&dir, tiny(), opts()).unwrap();
    for i in 0..3u64 {
        store
            .arena_mut()
            .write_pod::<u64>(((i % 3) as usize) * PAGE_SIZE, i + 1)
            .unwrap();
        store.commit().unwrap();
    }
    drop(store);
    let log_path = dir.join(LOG_FILE);
    let mut bytes = std::fs::read(&log_path).unwrap();
    // Flip a byte inside the *first* record's page image: committed-
    // region damage (records follow it), not a legally-torn tail.
    let target = LOG_HEADER_LEN as usize + 8 + 13 + 4 + 100;
    bytes[target] ^= 0xFF;
    std::fs::write(&log_path, &bytes).unwrap();
    match DurableStore::open(&dir, opts()) {
        Err(DurableError::Corrupt { offset, detail }) => {
            assert_eq!(
                offset, LOG_HEADER_LEN,
                "diagnostic should name the corrupt record's frame offset"
            );
            assert!(
                detail.contains("CRC"),
                "diagnostic should say what failed to validate: {detail}"
            );
        }
        Err(e) => panic!("expected fail-stop corruption, got: {e}"),
        Ok(_) => panic!("corrupted committed record was silently accepted"),
    }
    cleanup(&dir);
}

#[test]
fn empty_log_round_trips() {
    let dir = scratch("empty");
    let store = DurableStore::create(&dir, tiny(), opts()).unwrap();
    let digest = store.state_digest();
    drop(store);
    let (store, info) = DurableStore::open(&dir, opts()).unwrap();
    assert_eq!(info.seq, 0);
    assert_eq!(info.replayed, 0);
    assert!(!info.used_checkpoint);
    assert_eq!(info.truncated_bytes, 0);
    assert_eq!(store.state_digest(), digest);
    cleanup(&dir);
}

#[test]
fn log_only_recovery_round_trips() {
    let dir = scratch("logonly");
    let mut store = DurableStore::create(&dir, tiny(), opts()).unwrap();
    for i in 0..5u64 {
        store
            .arena_mut()
            .write_pod::<u64>(((i % 3) as usize) * PAGE_SIZE + 64, splitmix(i))
            .unwrap();
        store.commit().unwrap();
    }
    let digest = store.state_digest();
    drop(store);
    let (store, info) = DurableStore::open(&dir, opts()).unwrap();
    assert_eq!(info.seq, 5);
    assert_eq!(info.replayed, 5);
    assert!(!info.used_checkpoint);
    assert_eq!(store.state_digest(), digest);
    cleanup(&dir);
}

#[test]
fn checkpoint_only_recovery_round_trips() {
    let dir = scratch("ckptonly");
    let mut store = DurableStore::create(&dir, tiny(), opts()).unwrap();
    for i in 0..4u64 {
        store
            .arena_mut()
            .write_pod::<u64>(((i % 3) as usize) * PAGE_SIZE + 32, splitmix(i ^ 0xC0))
            .unwrap();
        store.commit().unwrap();
    }
    store.compact().unwrap();
    let digest = store.state_digest();
    drop(store);
    let (store, info) = DurableStore::open(&dir, opts()).unwrap();
    assert_eq!(info.seq, 4);
    assert_eq!(info.replayed, 0, "post-compaction log holds no records");
    assert!(info.used_checkpoint);
    assert_eq!(store.state_digest(), digest);
    cleanup(&dir);
}

/// Regression for the fail-stop conversion of `decode_layout` /
/// `read_checkpoint`: a checkpoint whose layout fields are absurdly
/// large used to overflow `40 + total_pages * PAGE_SIZE + 4` (a
/// debug-build panic) before the length check could reject it. It must
/// be reported as corruption, not a crash.
#[test]
fn checkpoint_with_unrepresentable_layout_is_fail_stop() {
    let dir = scratch("hugelayout");
    std::fs::create_dir_all(&dir).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"FTDC");
    bytes.extend_from_slice(&1u32.to_le_bytes()); // FORMAT_VERSION
    for _ in 0..3 {
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // layout pages
    }
    bytes.extend_from_slice(&0u64.to_le_bytes()); // seq
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    std::fs::write(dir.join(CHECKPOINT_FILE), &bytes).unwrap();
    match DurableStore::open(&dir, opts()) {
        Err(DurableError::Corrupt { offset, detail }) => {
            assert_eq!(offset, 8, "diagnostic should point at the layout field");
            assert!(detail.contains("layout"), "unexpected diagnostic: {detail}");
        }
        Err(e) => panic!("expected fail-stop corruption, got: {e}"),
        Ok(_) => panic!("unrepresentable checkpoint layout was accepted"),
    }
    cleanup(&dir);
}

/// Regression for the fail-stop conversion of `parse_commit_payload`:
/// a record claiming ~4 billion pages used to overflow
/// `npages * (4 + PAGE_SIZE)` in the length cross-check (a debug-build
/// panic). The claim must be rejected as corruption instead.
#[test]
fn commit_record_with_absurd_page_count_is_fail_stop() {
    let dir = scratch("hugepages");
    let store = DurableStore::create(&dir, tiny(), opts()).unwrap();
    drop(store);
    let log_path = dir.join(LOG_FILE);
    let mut bytes = std::fs::read(&log_path).unwrap();
    // Frame: len(u32) + crc(u32) + payload[tag, seq u64, npages u32].
    let mut payload = vec![1u8]; // TAG_COMMIT
    payload.extend_from_slice(&1u64.to_le_bytes()); // seq 1 (expected next)
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // npages
    let len = payload.len() as u32;
    let mut crc_input = len.to_le_bytes().to_vec();
    crc_input.extend_from_slice(&payload);
    let crc = crc32(&crc_input);
    bytes.extend_from_slice(&len.to_le_bytes());
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes.extend_from_slice(&payload);
    // The frame's CRC is valid, so this is not a torn tail: the payload
    // itself makes the impossible claim.
    std::fs::write(&log_path, &bytes).unwrap();
    match DurableStore::open(&dir, opts()) {
        Err(DurableError::Corrupt { offset, detail }) => {
            assert_eq!(offset, LOG_HEADER_LEN);
            assert!(
                detail.contains("inconsistent"),
                "unexpected diagnostic: {detail}"
            );
        }
        Err(e) => panic!("expected fail-stop corruption, got: {e}"),
        Ok(_) => panic!("absurd page count was accepted"),
    }
    cleanup(&dir);
}
