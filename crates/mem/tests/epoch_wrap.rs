//! Epoch-wraparound regression: the write barrier's u32 epoch counter
//! wraps after 2^32 - 1 commit/rollback intervals, and the wrap must be
//! invisible — dirty tracking, undo-page pooling, commit records, and
//! memory contents all bitwise-identical to (a) a naive reference arena
//! that snapshots the whole memory on every commit and (b) an identical
//! arena whose epoch is nowhere near the wrap.
//!
//! The stamp-aliasing hazard under test: after `page_epoch.fill(0)` at
//! the wrap, a page stamped in the *final* pre-wrap interval must not be
//! mistaken for dirty in the *first* post-wrap interval (or vice versa).
//! `Arena::force_epoch` fast-forwards one arena to `u32::MAX - 2` so the
//! wrap happens inside a short scripted run.

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use ft_mem::arena::{Arena, Layout, PAGE_SIZE};

/// SplitMix64 (ft-mem sits below the simulator, so it carries its own
/// tiny deterministic generator, mirroring `tests/proptests.rs`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The reference: recoverable memory done the obvious O(size) way — a
/// full snapshot per commit, full restore per rollback, and an explicit
/// touched-page set for dirty tracking. No epochs anywhere, so it cannot
/// have wrap bugs by construction.
struct NaiveArena {
    data: Vec<u8>,
    committed: Vec<u8>,
    touched: std::collections::BTreeSet<usize>,
}

impl NaiveArena {
    fn new(size: usize) -> Self {
        NaiveArena {
            data: vec![0; size],
            committed: vec![0; size],
            touched: std::collections::BTreeSet::new(),
        }
    }

    fn write(&mut self, offset: usize, bytes: &[u8]) {
        for page in offset / PAGE_SIZE..=(offset + bytes.len() - 1) / PAGE_SIZE {
            self.touched.insert(page);
        }
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    fn commit(&mut self) -> usize {
        let dirty = self.touched.len();
        self.committed.clone_from(&self.data);
        self.touched.clear();
        dirty
    }

    fn rollback(&mut self) -> usize {
        let restored = self.touched.len();
        self.data.clone_from(&self.committed);
        self.touched.clear();
        restored
    }
}

#[derive(Debug, Clone)]
enum Op {
    Write { offset: usize, len: usize },
    Commit,
    Rollback,
}

fn random_ops(rng: &mut Rng, n: usize, size: usize) -> Vec<Op> {
    (0..n)
        .map(|_| match rng.below(10) {
            0..=6 => {
                let len = 1 + rng.below(3 * PAGE_SIZE as u64) as usize;
                let offset = rng.below((size - len) as u64) as usize;
                Op::Write { offset, len }
            }
            7..=8 => Op::Commit,
            _ => Op::Rollback,
        })
        .collect()
}

/// Drives `arena` through `ops`, checking it against the naive reference
/// and a far-from-wrap control arena after every operation.
fn drive(ops: &[Op], arena: &mut Arena, control: &mut Arena, naive: &mut NaiveArena, seed: u64) {
    let size = naive.data.len();
    let mut rng = Rng(seed);
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Write { offset, len } => {
                let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                arena.write(offset, &bytes).unwrap();
                control.write(offset, &bytes).unwrap();
                naive.write(offset, &bytes);
            }
            Op::Commit => {
                let rec = arena.commit();
                let ctl = control.commit();
                let dirty = naive.commit();
                assert_eq!(rec, ctl, "op {i}: commit records diverged");
                assert_eq!(rec.dirty_pages, dirty, "op {i}: dirty tracking diverged");
            }
            Op::Rollback => {
                let restored = arena.rollback();
                let ctl = control.rollback();
                let expected = naive.rollback();
                assert_eq!(restored, ctl, "op {i}: rollback page counts diverged");
                assert_eq!(restored, expected, "op {i}: rollback vs touched set");
            }
        }
        assert_eq!(
            arena.dirty_page_count(),
            naive.touched.len(),
            "op {i}: dirty page count"
        );
        assert_eq!(
            arena.dirty_page_count(),
            control.dirty_page_count(),
            "op {i}: dirty count vs control"
        );
        assert_eq!(
            arena.pooled_pages(),
            control.pooled_pages(),
            "op {i}: undo pooling diverged"
        );
        assert_eq!(
            arena.checksum(0, size).unwrap(),
            control.checksum(0, size).unwrap(),
            "op {i}: checksum vs control"
        );
        assert_eq!(
            arena.read(0, size).unwrap(),
            &naive.data[..],
            "op {i}: contents diverged from the reference"
        );
    }
}

#[test]
fn epoch_wrap_is_bitwise_invisible() {
    let layout = Layout {
        globals_pages: 2,
        stack_pages: 2,
        heap_pages: 12,
    };
    let size = layout.total_pages() * PAGE_SIZE;
    let mut seeds = Rng(0xEC0C_4A11);
    for trial in 0..32 {
        let seed = seeds.next_u64();
        let mut ops = random_ops(&mut Rng(seed), 120, size);
        // Guarantee the wrap actually happens inside the run: starting at
        // u32::MAX - 2, three intervals cross it.
        ops.extend([Op::Commit, Op::Commit, Op::Commit, Op::Commit]);
        ops.extend(random_ops(&mut Rng(seed ^ 0xFF), 60, size));
        let mut arena = Arena::new(layout);
        arena.force_epoch(u32::MAX - 2);
        let mut control = Arena::new(layout);
        let mut naive = NaiveArena::new(size);
        drive(&ops, &mut arena, &mut control, &mut naive, seed ^ trial);
    }
}

#[test]
fn stamps_from_the_final_pre_wrap_interval_do_not_alias() {
    // Directed version of the hazard: touch a page in the last interval
    // before the wrap, commit across the wrap, and verify the page is
    // clean (its old stamp must not read as "dirty in the new epoch"),
    // then that re-touching it dirties exactly one page again.
    let layout = Layout {
        globals_pages: 1,
        stack_pages: 1,
        heap_pages: 4,
    };
    let mut a = Arena::new(layout);
    a.force_epoch(u32::MAX);
    a.write(0, &[7; 64]).unwrap();
    assert_eq!(a.dirty_page_count(), 1);
    a.commit(); // wraps: epoch u32::MAX -> 1, stamps cleared
    assert_eq!(a.dirty_page_count(), 0);
    a.write(0, &[9; 64]).unwrap();
    assert_eq!(a.dirty_page_count(), 1, "page not re-tracked after wrap");
    assert_eq!(a.rollback(), 1);
    let post = a.read(0, 64).unwrap();
    assert_eq!(
        post,
        &[7u8; 64][..],
        "rollback across wrap lost the before-image"
    );
}
