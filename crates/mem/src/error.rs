//! Memory-fault errors.
//!
//! Errors from the memory substrate are how *crash events* (§2.5) manifest
//! in the workload applications: an out-of-bounds access is a segfault, a
//! corrupted guard band is a failed consistency check — in either case the
//! process "simply terminates execution, effectively crashing" (§2.6).

/// A memory fault: the simulation-level analogue of a segfault or a failed
/// consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Access outside the arena (or outside an allocation's bounds when
    /// checked access is used): a segfault.
    OutOfBounds {
        /// The faulting byte offset.
        offset: usize,
        /// The access length.
        len: usize,
    },
    /// The heap (or an explicit allocation request) is exhausted.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
    },
    /// A guard band around an allocation was overwritten: detected
    /// corruption (a §2.6-style consistency check firing).
    GuardCorrupted {
        /// Offset of the corrupted guard word.
        offset: usize,
    },
    /// A checksum maintained over a data structure no longer matches:
    /// detected corruption.
    ChecksumMismatch {
        /// Offset of the checksummed region.
        offset: usize,
    },
    /// An application-level invariant check failed (e.g. a B-tree node with
    /// an impossible fanout). Carries a small code identifying the check.
    InvariantViolated {
        /// Identifier of the failed check.
        check: u32,
    },
}

impl std::fmt::Display for MemFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemFault::OutOfBounds { offset, len } => {
                write!(f, "segfault: access of {len} bytes at offset {offset}")
            }
            MemFault::OutOfMemory { requested } => {
                write!(f, "out of memory: {requested} bytes requested")
            }
            MemFault::GuardCorrupted { offset } => {
                write!(f, "guard band corrupted at offset {offset}")
            }
            MemFault::ChecksumMismatch { offset } => {
                write!(f, "checksum mismatch at offset {offset}")
            }
            MemFault::InvariantViolated { check } => {
                write!(f, "invariant check {check} failed")
            }
        }
    }
}

impl std::error::Error for MemFault {}

/// Result alias for memory operations.
pub type MemResult<T> = Result<T, MemFault>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MemFault::OutOfBounds { offset: 4, len: 8 }
            .to_string()
            .contains("segfault"));
        assert!(MemFault::OutOfMemory { requested: 100 }
            .to_string()
            .contains("out of memory"));
        assert!(MemFault::GuardCorrupted { offset: 12 }
            .to_string()
            .contains("guard"));
        assert!(MemFault::ChecksumMismatch { offset: 0 }
            .to_string()
            .contains("checksum"));
        assert!(MemFault::InvariantViolated { check: 7 }
            .to_string()
            .contains("check 7"));
    }
}
