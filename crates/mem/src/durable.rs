//! A durable log-structured file backend behind the arena API.
//!
//! The paper's DC-disk medium is *calibrated* but simulated; this module
//! is the real thing: an append-only redo log plus a checkpoint file on
//! an actual filesystem, with the recovery rules the simulator's oracle
//! can then judge against real `kill -9`ed processes (see
//! `crates/crashtest`).
//!
//! # On-disk format (version 1)
//!
//! A store is a directory holding:
//!
//! * `redo.log` — a 44-byte header followed by CRC32-framed,
//!   length-prefixed commit records;
//! * `checkpoint.img` — an optional full arena image produced by
//!   [`DurableStore::compact`], installed with an atomic rename;
//! * `watermark` — an optional side journal of the durable log length
//!   (see [`DurableOptions::journal_watermark`]).
//!
//! ```text
//! log header   : "FTDL" ver:u32 globals:u64 stack:u64 heap:u64 base_seq:u64 crc:u32
//! record frame : len:u32 crc:u32 payload[len]       (crc over len‖payload)
//! payload      : tag:u8=1 seq:u64 npages:u32 npages×(page:u32 image[4096])
//! checkpoint   : "FTDC" ver:u32 globals:u64 stack:u64 heap:u64 seq:u64
//!                image[pages×4096] crc:u32          (crc over all prior bytes)
//! ```
//!
//! All integers are little-endian. `seq` numbers commits from 1 and each
//! log record's seq must be exactly one past its predecessor's (the log
//! header's `base_seq` seeds the chain after a compaction).
//!
//! # Recovery invariants
//!
//! [`DurableStore::open`] replays the longest valid log prefix on top of
//! the checkpoint (if any), distinguishing two very different kinds of
//! damage:
//!
//! * **Torn tail** — the *final* frame is incomplete (extends past
//!   end-of-file, or is followed by nothing and fails its CRC): the
//!   crash interrupted an append that was never acknowledged. The tail
//!   is truncated and recovery succeeds at the last durable commit.
//! * **Committed-region corruption** — a frame fails its CRC (or parses
//!   inconsistently) while *later* bytes exist: a later write implies
//!   the earlier one completed, so this is silent media/software
//!   corruption of acknowledged state. Recovery is **fail-stop** with a
//!   diagnostic ([`DurableError::Corrupt`]) — never silent acceptance.
//!
//! # Seeded mutations
//!
//! [`DurableMutation`] plants the three classic durability bugs
//! (acknowledge-before-fsync, skip CRC verification, skip tail
//! truncation) so the crashtest harness can prove the oracle actually
//! catches them; `None` is the honest backend.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::arena::{Arena, CommitRecord, Layout, PAGE_SIZE};

/// Log file name inside a store directory.
pub const LOG_FILE: &str = "redo.log";
/// Checkpoint file name inside a store directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.img";
/// Transient checkpoint being built (renamed over [`CHECKPOINT_FILE`]).
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Durability-watermark journal file name.
pub const WATERMARK_FILE: &str = "watermark";

/// On-disk format version written and accepted by this build.
pub const FORMAT_VERSION: u32 = 1;

const LOG_MAGIC: &[u8; 4] = b"FTDL";
const CKPT_MAGIC: &[u8; 4] = b"FTDC";
/// Log header: magic(4) ver(4) layout(24) base_seq(8) crc(4).
const LOG_HEADER_BYTES: usize = 44;
/// Log header length as a file offset (u64 twin of [`LOG_HEADER_BYTES`]).
pub const LOG_HEADER_LEN: u64 = LOG_HEADER_BYTES as u64;

/// Byte offset of the log-header CRC within the header.
const LOG_HEADER_CRC_AT: usize = LOG_HEADER_BYTES - 4;
/// Record frame prefix: len(4) crc(4).
const FRAME_PREFIX: usize = 8;
const TAG_COMMIT: u8 = 1;
/// Payload prefix: tag(1) seq(8) npages(4).
const PAYLOAD_PREFIX: usize = 13;

/// Bytes per page entry in a commit payload: u32 page index + image.
const PAGE_ENTRY_LEN: usize = 4 + PAGE_SIZE;

// CRC32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. In-repo
// because the workspace builds without external crates.
#[expect(
    clippy::cast_possible_truncation,
    reason = "i < 256; u32::try_from is not callable in const fn"
)]
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the integrity check framing every log
/// record, the log header, and the checkpoint image.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        // ft-lint: allow(panic-in-recovery): index is masked to 8 bits, provably inside the 256-entry table
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// When the redo log is fsynced relative to commit acknowledgments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync on every commit (the durable default: an acknowledged
    /// commit survives power loss).
    Always,
    /// Group commit: fsync once per `n` commits. Acknowledged-but-
    /// unsynced commits can be lost to power failure — callers opting in
    /// accept the window in exchange for amortized fsync cost.
    EveryN(u32),
    /// Never fsync (test/benchmark mode; durability only against process
    /// loss, where the page cache survives).
    Never,
}

/// Seeded durability bugs for the oracle self-tests. `None` is the
/// honest backend; each mutant is a real-world failure pattern the
/// crashtest harness must catch — or its verdicts mean nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableMutation {
    /// Honest backend.
    None,
    /// Acknowledge commits without fsyncing: power loss silently drops
    /// acknowledged commits.
    SkipFsync,
    /// Skip CRC verification during recovery: corrupted committed
    /// records are silently applied instead of fail-stopping.
    SkipCrcCheck,
    /// Detect a torn tail but leave it in place: subsequent appends land
    /// after garbage, corrupting the log for the *next* recovery.
    SkipTailTruncate,
}

impl DurableMutation {
    /// Stable lowercase name for reports and harness flags.
    pub fn name(&self) -> &'static str {
        match self {
            DurableMutation::None => "none",
            DurableMutation::SkipFsync => "skip-fsync",
            DurableMutation::SkipCrcCheck => "skip-crc",
            DurableMutation::SkipTailTruncate => "skip-tail-truncate",
        }
    }

    /// Parses a [`DurableMutation::name`] back (harness CLI).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(DurableMutation::None),
            "skip-fsync" => Some(DurableMutation::SkipFsync),
            "skip-crc" => Some(DurableMutation::SkipCrcCheck),
            "skip-tail-truncate" => Some(DurableMutation::SkipTailTruncate),
            _ => None,
        }
    }
}

/// Configuration for a [`DurableStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Commit fsync policy.
    pub fsync: FsyncPolicy,
    /// Seeded durability bug (`None` for the honest backend).
    pub mutation: DurableMutation,
    /// Journal the durable log length to [`WATERMARK_FILE`] after every
    /// real fsync. `kill -9` does not lose the page cache, so a harness
    /// emulating *power* loss truncates the log back to this watermark —
    /// everything past it was written but never acknowledged durable.
    pub journal_watermark: bool,
    /// Compact into a checkpoint once the log grows past this many
    /// bytes (checked at commit boundaries). `None` disables automatic
    /// compaction; [`DurableStore::compact`] remains available.
    pub compact_threshold: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Always,
            mutation: DurableMutation::None,
            journal_watermark: false,
            compact_threshold: None,
        }
    }
}

/// A recovery's account of what it found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Sequence number of the last durable commit (0 = none).
    pub seq: u64,
    /// Whether a checkpoint image seeded the state.
    pub used_checkpoint: bool,
    /// Log records replayed on top of the base image.
    pub replayed: u64,
    /// Log records skipped as already covered by the checkpoint.
    pub skipped: u64,
    /// Torn-tail bytes truncated from the log (0 = clean tail).
    pub truncated_bytes: u64,
}

/// Errors from the durable backend.
#[derive(Debug)]
pub enum DurableError {
    /// Operating-system I/O failure.
    Io(std::io::Error),
    /// The committed region of the store is damaged — recovery is
    /// fail-stop with this diagnostic rather than guessing.
    Corrupt {
        /// Byte offset of the damage within the named file.
        offset: u64,
        /// Human-readable diagnostic (what failed to validate and how).
        detail: String,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable store I/O error: {e}"),
            DurableError::Corrupt { offset, detail } => {
                write!(f, "durable store corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// Shorthand result type for durable-store operations.
pub type DurableResult<T> = Result<T, DurableError>;

/// A commit frame staged but not yet applied — the unit the crashtest
/// harness tears: the full encoded bytes of the *next* commit's record.
#[derive(Debug, Clone)]
pub struct StagedCommit {
    frame: Vec<u8>,
    dirty_pages: usize,
}

impl StagedCommit {
    /// The encoded frame length in bytes.
    pub fn frame_len(&self) -> usize {
        self.frame.len()
    }

    /// Pages the staged commit persists.
    pub fn dirty_pages(&self) -> usize {
        self.dirty_pages
    }
}

/// An arena persisted to a log-structured file store.
///
/// The in-memory [`Arena`] keeps its Vista-style undo log for rollback;
/// this wrapper adds the *redo* side: each commit appends the dirty
/// pages' after-images to `redo.log` before the arena's commit point,
/// so a fresh process can [`DurableStore::open`] the directory and
/// resume from the last durable commit.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    log: File,
    log_len: u64,
    arena: Arena,
    seq: u64,
    base_seq: u64,
    pending_sync: u32,
    opts: DurableOptions,
}

impl DurableStore {
    /// Creates a fresh store in `dir` (created if missing; any previous
    /// store files are replaced). The log header is written and fsynced
    /// unconditionally — creation is not subject to the fsync policy or
    /// mutation, which model *commit-path* bugs.
    pub fn create(dir: &Path, layout: Layout, opts: DurableOptions) -> DurableResult<Self> {
        fs::create_dir_all(dir)?;
        for stale in [CHECKPOINT_FILE, CHECKPOINT_TMP, WATERMARK_FILE] {
            let p = dir.join(stale);
            if p.exists() {
                fs::remove_file(&p)?;
            }
        }
        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join(LOG_FILE))?;
        let header = encode_log_header(layout, 0);
        log.write_all(&header)?;
        log.sync_data()?;
        let mut store = DurableStore {
            dir: dir.to_path_buf(),
            log,
            log_len: LOG_HEADER_LEN,
            arena: Arena::new(layout),
            seq: 0,
            base_seq: 0,
            pending_sync: 0,
            opts,
        };
        if opts.journal_watermark {
            store.write_watermark()?;
        }
        Ok(store)
    }

    /// Opens an existing store, running recovery: the checkpoint (if
    /// any) seeds the arena image and the longest valid log prefix is
    /// replayed on top. Torn tails are truncated; committed-region
    /// damage fail-stops (see the module docs for the exact rules).
    pub fn open(dir: &Path, opts: DurableOptions) -> DurableResult<(Self, RecoveryInfo)> {
        let check_crc = opts.mutation != DurableMutation::SkipCrcCheck;

        // A torn compaction leaves checkpoint.tmp; it was never
        // installed, so it is dead weight.
        let tmp = dir.join(CHECKPOINT_TMP);
        if tmp.exists() {
            fs::remove_file(&tmp)?;
        }

        let ckpt = read_checkpoint(&dir.join(CHECKPOINT_FILE), check_crc)?;

        let log_path = dir.join(LOG_FILE);
        if !log_path.exists() && ckpt.is_none() {
            return Err(DurableError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no store at {}", dir.display()),
            )));
        }

        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let mut raw = Vec::new();
        log.read_to_end(&mut raw)?;

        let (layout, base_seq, mut valid_end, torn_header) = match parse_log_header(&raw, check_crc)
        {
            HeaderScan::Valid { layout, base_seq } => (layout, base_seq, LOG_HEADER_LEN, false),
            HeaderScan::Torn => {
                // Creation itself was interrupted: there can be no
                // durable commits in this log generation.
                let layout = match &ckpt {
                    Some(c) => c.layout,
                    None => {
                        return Err(DurableError::Corrupt {
                            offset: 0,
                            detail: "log header torn and no checkpoint to recover the layout"
                                .to_string(),
                        })
                    }
                };
                (layout, ckpt.as_ref().map_or(0, |c| c.seq), 0, true)
            }
            HeaderScan::Corrupt { offset, detail } => {
                return Err(DurableError::Corrupt { offset, detail })
            }
        };

        if let Some(c) = &ckpt {
            if c.layout != layout {
                return Err(DurableError::Corrupt {
                    offset: 8,
                    detail: format!(
                        "checkpoint layout {:?} disagrees with log header layout {layout:?}",
                        c.layout
                    ),
                });
            }
        } else if base_seq != 0 {
            return Err(DurableError::Corrupt {
                offset: 36,
                detail: format!("log claims a checkpoint at seq {base_seq} but none exists"),
            });
        }

        // Seed the arena image.
        let mut arena = Arena::new(layout);
        let ckpt_seq = ckpt.as_ref().map_or(0, |c| c.seq);
        if let Some(c) = &ckpt {
            arena
                .write(0, &c.image)
                .map_err(|_| DurableError::Corrupt {
                    offset: 40,
                    detail: "checkpoint image does not fit the arena layout".to_string(),
                })?;
        }

        // Replay the longest valid record prefix.
        let mut seq = ckpt_seq.max(base_seq);
        let mut expected = base_seq;
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        if !torn_header {
            let mut off = LOG_HEADER_BYTES;
            loop {
                match scan_frame(&raw, off, check_crc) {
                    FrameScan::End | FrameScan::Torn => break,
                    FrameScan::Corrupt { offset, detail } => {
                        return Err(DurableError::Corrupt { offset, detail });
                    }
                    FrameScan::Record { payload, next } => {
                        expected = expected.saturating_add(1);
                        let rec = parse_commit_payload(payload, off as u64, expected, layout)?;
                        if rec.seq > ckpt_seq {
                            for (page, image) in &rec.pages {
                                let dst = page.checked_mul(PAGE_SIZE).ok_or_else(|| {
                                    DurableError::Corrupt {
                                        offset: off as u64,
                                        detail: format!("page index {page} overflows the arena"),
                                    }
                                })?;
                                arena.write(dst, image).map_err(|_| DurableError::Corrupt {
                                    offset: off as u64,
                                    detail: format!(
                                        "replay write of page {page} rejected by the arena"
                                    ),
                                })?;
                            }
                            replayed = replayed.saturating_add(1);
                        } else {
                            skipped = skipped.saturating_add(1);
                        }
                        seq = seq.max(rec.seq);
                        valid_end = next as u64;
                        off = next;
                    }
                }
            }
        }

        let file_len = raw.len() as u64;
        let truncated_bytes = file_len.saturating_sub(valid_end);
        let append_at = if truncated_bytes > 0 && opts.mutation != DurableMutation::SkipTailTruncate
        {
            log.set_len(valid_end)?;
            log.sync_data()?;
            valid_end
        } else if truncated_bytes > 0 {
            // BUG seeded (skip-tail-truncate): the torn bytes stay and
            // future appends land after garbage.
            file_len
        } else {
            valid_end
        };
        log.seek(SeekFrom::Start(append_at))?;

        if torn_header {
            // Rewrite the creation-torn header so the generation is
            // usable again (there were no durable commits to lose).
            log.set_len(0)?;
            log.seek(SeekFrom::Start(0))?;
            let header = encode_log_header(layout, ckpt_seq);
            log.write_all(&header)?;
            log.sync_data()?;
        }
        let log_len = if torn_header {
            LOG_HEADER_LEN
        } else {
            append_at
        };

        // The recovered image is the committed state: commit once so the
        // arena's recovery point matches the on-disk recovery point.
        arena.commit();

        let mut store = DurableStore {
            dir: dir.to_path_buf(),
            log,
            log_len,
            arena,
            seq,
            base_seq: if torn_header { ckpt_seq } else { base_seq },
            pending_sync: 0,
            opts,
        };
        if opts.journal_watermark {
            store.write_watermark()?;
        }
        Ok((
            store,
            RecoveryInfo {
                seq,
                used_checkpoint: ckpt.is_some(),
                replayed,
                skipped,
                truncated_bytes,
            },
        ))
    }

    /// The recoverable address space.
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// Mutable access to the recoverable address space.
    pub fn arena_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    /// Sequence number of the last commit (durable or pending fsync).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Current log length in bytes (header included).
    pub fn log_len(&self) -> u64 {
        self.log_len
    }

    /// Commits acknowledged since the last fsync (group-commit window).
    pub fn pending_sync(&self) -> u32 {
        self.pending_sync
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Options this store was opened with.
    pub fn options(&self) -> DurableOptions {
        self.opts
    }

    /// Encodes the next commit's record frame from the arena's current
    /// dirty set, without touching the log or the arena. Pages are
    /// encoded in ascending index order, so equal states produce equal
    /// bytes regardless of write order.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "page counts and indices are bounded by the arena size (< 2^32 pages); the format stores them as u32"
    )]
    pub fn stage_commit(&self) -> StagedCommit {
        let pages = self.arena.dirty_page_indices();
        let mut payload = Vec::with_capacity(PAYLOAD_PREFIX + pages.len() * (4 + PAGE_SIZE));
        payload.push(TAG_COMMIT);
        payload.extend_from_slice(&(self.seq + 1).to_le_bytes());
        payload.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for &p in &pages {
            payload.extend_from_slice(&(p as u32).to_le_bytes());
            payload.extend_from_slice(
                self.arena
                    .read(p * PAGE_SIZE, PAGE_SIZE)
                    .expect("dirty page is in bounds"),
            );
        }
        StagedCommit {
            frame: encode_frame(&payload),
            dirty_pages: pages.len(),
        }
    }

    /// Appends a staged frame to the log (no fsync, no arena commit).
    /// Separated from [`DurableStore::commit`] so a crash harness can
    /// place kills between the append, the fsync, and the in-memory
    /// commit point.
    pub fn append_staged(&mut self, staged: &StagedCommit) -> DurableResult<()> {
        self.log.write_all(&staged.frame)?;
        self.log_len += staged.frame.len() as u64;
        Ok(())
    }

    /// Writes only the first `prefix_len` bytes of a staged frame — a
    /// deliberately torn append, simulating a crash mid-`write`. The
    /// store must not be used for further commits afterwards (the
    /// process is about to die; recovery truncates this tail).
    pub fn torn_append(&mut self, staged: &StagedCommit, prefix_len: usize) -> DurableResult<()> {
        let k = prefix_len.min(staged.frame.len());
        self.log.write_all(&staged.frame[..k])?;
        self.log_len += k as u64;
        Ok(())
    }

    /// Forces the log durable: fsync, then journal the watermark. The
    /// skip-fsync mutation turns this into a no-op that still *claims*
    /// success — the bug under test.
    pub fn sync(&mut self) -> DurableResult<()> {
        self.pending_sync = 0;
        if self.opts.mutation == DurableMutation::SkipFsync {
            return Ok(());
        }
        self.log.sync_data()?;
        if self.opts.journal_watermark {
            self.write_watermark()?;
        }
        Ok(())
    }

    /// Completes a staged commit: the arena commit (undo log discarded,
    /// this state becomes the rollback point) and the sequence bump.
    pub fn finish_staged(&mut self, staged: &StagedCommit) -> CommitRecord {
        debug_assert_eq!(staged.dirty_pages, self.arena.dirty_page_count());
        self.seq += 1;
        self.arena.commit()
    }

    /// Commits: stages and appends the redo record, fsyncs per policy,
    /// then commits the arena. Returns what was persisted. Runs an
    /// automatic compaction afterwards if the log crossed the
    /// configured threshold.
    pub fn commit(&mut self) -> DurableResult<CommitRecord> {
        let staged = self.stage_commit();
        self.append_staged(&staged)?;
        self.pending_sync += 1;
        match self.opts.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.pending_sync >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        let rec = self.finish_staged(&staged);
        if let Some(threshold) = self.opts.compact_threshold {
            if self.log_len >= threshold {
                self.compact()?;
            }
        }
        Ok(rec)
    }

    /// Rolls back the arena to the last commit (pure in-memory undo —
    /// the log already ends at that commit). Returns pages restored.
    pub fn rollback(&mut self) -> usize {
        self.arena.rollback()
    }

    /// Compacts: writes the full arena image to a checkpoint installed
    /// by atomic rename, then resets the log to a fresh header with
    /// `base_seq` = current seq. Must be called at a commit boundary
    /// (no uncommitted writes), because the checkpoint snapshots the
    /// arena contents as the committed image.
    ///
    /// Crash-safe at every step: until the rename the old checkpoint +
    /// full log recover; after it, the (now stale) log records are
    /// skipped during replay; after the log reset, the fresh header's
    /// `base_seq` chains recovery to the checkpoint.
    pub fn compact(&mut self) -> DurableResult<()> {
        assert_eq!(
            self.arena.dirty_page_count(),
            0,
            "compact must run at a commit boundary"
        );
        let tmp = self.dir.join(CHECKPOINT_TMP);
        let image = self
            .arena
            .read(0, self.arena.size())
            .expect("full-arena read");
        let mut bytes = Vec::with_capacity(40 + image.len() + 4);
        bytes.extend_from_slice(CKPT_MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        encode_layout(&mut bytes, self.arena.layout());
        bytes.extend_from_slice(&self.seq.to_le_bytes());
        bytes.extend_from_slice(image);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        // Make the rename itself durable before truncating the log that
        // still covers the pre-checkpoint state.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        let header = encode_log_header(self.arena.layout(), self.seq);
        self.log.write_all(&header)?;
        self.log.sync_data()?;
        self.log_len = LOG_HEADER_LEN;
        self.base_seq = self.seq;
        if self.opts.journal_watermark {
            self.write_watermark()?;
        }
        Ok(())
    }

    /// FNV fingerprint of the recoverable state: full arena contents
    /// mixed with the commit sequence number. Two stores with equal
    /// digests hold bitwise-equal committed images at the same commit.
    pub fn state_digest(&self) -> u64 {
        let h = self
            .arena
            .checksum(0, self.arena.size())
            .expect("full-arena checksum");
        // One more FNV round folds the sequence number in.
        let mut d = h ^ self.seq;
        d = d.wrapping_mul(0x100_0000_01b3);
        d ^ (self.seq.rotate_left(32))
    }

    fn write_watermark(&mut self) -> DurableResult<()> {
        // Plain `write` is enough: the watermark protects against
        // *power* loss emulation by a parent that reads it post-kill
        // from the page cache, which SIGKILL does not lose.
        fs::write(self.dir.join(WATERMARK_FILE), format!("{}\n", self.log_len))?;
        Ok(())
    }
}

/// Reads a store's durability watermark: the log length, in bytes, at
/// the last real fsync. Returns `None` if no watermark was journaled.
pub fn read_watermark(dir: &Path) -> DurableResult<Option<u64>> {
    let p = dir.join(WATERMARK_FILE);
    if !p.exists() {
        return Ok(None);
    }
    let text = fs::read_to_string(&p)?;
    let v = text
        .trim()
        .parse::<u64>()
        .map_err(|e| DurableError::Corrupt {
            offset: 0,
            detail: format!("watermark journal unparsable: {e}"),
        })?;
    Ok(Some(v))
}

fn encode_layout(out: &mut Vec<u8>, layout: Layout) {
    out.extend_from_slice(&(layout.globals_pages as u64).to_le_bytes());
    out.extend_from_slice(&(layout.stack_pages as u64).to_le_bytes());
    out.extend_from_slice(&(layout.heap_pages as u64).to_le_bytes());
}

fn encode_log_header(layout: Layout, base_seq: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(LOG_HEADER_BYTES);
    h.extend_from_slice(LOG_MAGIC);
    h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    encode_layout(&mut h, layout);
    h.extend_from_slice(&base_seq.to_le_bytes());
    let crc = crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h
}

#[expect(
    clippy::cast_possible_truncation,
    reason = "payloads are a few pages at most; the frame format stores len as u32"
)]
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let len = payload.len() as u32;
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(&len.to_le_bytes());
    crc_input.extend_from_slice(payload);
    let crc = crc32(&crc_input);
    let mut frame = Vec::with_capacity(FRAME_PREFIX + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    Some(u32::from_le_bytes(bytes.get(at..end)?.try_into().ok()?))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let end = at.checked_add(8)?;
    Some(u64::from_le_bytes(bytes.get(at..end)?.try_into().ok()?))
}

/// Decodes a layout from untrusted bytes. `None` when the bytes run out
/// or the layout is unrepresentable: the total image size
/// (`total_pages * PAGE_SIZE`) must fit in `usize`, which also
/// guarantees later size arithmetic on an accepted layout cannot
/// overflow.
fn decode_layout(bytes: &[u8], at: usize) -> Option<Layout> {
    let globals_pages = usize::try_from(read_u64(bytes, at)?).ok()?;
    let stack_pages = usize::try_from(read_u64(bytes, at.checked_add(8)?)?).ok()?;
    let heap_pages = usize::try_from(read_u64(bytes, at.checked_add(16)?)?).ok()?;
    globals_pages
        .checked_add(stack_pages)?
        .checked_add(heap_pages)?
        .checked_mul(PAGE_SIZE)?;
    Some(Layout {
        globals_pages,
        stack_pages,
        heap_pages,
    })
}

enum HeaderScan {
    Valid { layout: Layout, base_seq: u64 },
    Torn,
    Corrupt { offset: u64, detail: String },
}

fn parse_log_header(raw: &[u8], check_crc: bool) -> HeaderScan {
    let hl = LOG_HEADER_BYTES;
    if raw.len() < hl {
        return HeaderScan::Torn;
    }
    let magic = raw.get(0..4).unwrap_or_default();
    if magic != LOG_MAGIC {
        return HeaderScan::Corrupt {
            offset: 0,
            detail: format!("bad log magic {magic:02x?} (want {LOG_MAGIC:02x?})"),
        };
    }
    let Some(version) = read_u32(raw, 4) else {
        return HeaderScan::Torn;
    };
    if version != FORMAT_VERSION {
        return HeaderScan::Corrupt {
            offset: 4,
            detail: format!("log format version {version} (this build reads {FORMAT_VERSION})"),
        };
    }
    let (Some(crc), Some(crc_body)) = (
        read_u32(raw, LOG_HEADER_CRC_AT),
        raw.get(..LOG_HEADER_CRC_AT),
    ) else {
        return HeaderScan::Torn;
    };
    if check_crc && crc != crc32(crc_body) {
        // A damaged header with records after it is committed-region
        // corruption; a bare damaged header is a creation tear.
        if raw.len() > hl {
            return HeaderScan::Corrupt {
                offset: 0,
                detail: format!(
                    "log header CRC mismatch (stored {crc:#010x}, computed {:#010x})",
                    crc32(crc_body)
                ),
            };
        }
        return HeaderScan::Torn;
    }
    let Some(layout) = decode_layout(raw, 8) else {
        return HeaderScan::Corrupt {
            offset: 8,
            detail: "log header layout does not fit the addressable arena".to_string(),
        };
    };
    let Some(base_seq) = read_u64(raw, 32) else {
        return HeaderScan::Torn;
    };
    HeaderScan::Valid { layout, base_seq }
}

enum FrameScan<'a> {
    /// Clean end of log.
    End,
    /// The final frame is incomplete or fails its CRC with nothing
    /// after it: a torn append, truncate here.
    Torn,
    /// Damage in the committed region: fail-stop.
    Corrupt { offset: u64, detail: String },
    /// A valid frame.
    Record { payload: &'a [u8], next: usize },
}

fn scan_frame(raw: &[u8], off: usize, check_crc: bool) -> FrameScan<'_> {
    let frame = raw.get(off..).unwrap_or_default();
    if frame.is_empty() {
        return FrameScan::End;
    }
    if frame.len() < FRAME_PREFIX {
        return FrameScan::Torn;
    }
    let Some(len) = read_u32(frame, 0) else {
        return FrameScan::Torn;
    };
    let len = len as usize;
    let Some(end) = FRAME_PREFIX.checked_add(len) else {
        return FrameScan::Torn;
    };
    if end > frame.len() {
        // The frame claims bytes past end-of-file: the append never
        // finished.
        return FrameScan::Torn;
    }
    let (Some(stored), Some(len_prefix), Some(payload)) = (
        read_u32(frame, 4),
        frame.get(..4),
        frame.get(FRAME_PREFIX..end),
    ) else {
        return FrameScan::Torn;
    };
    let mut crc_input = Vec::with_capacity(4usize.saturating_add(len));
    crc_input.extend_from_slice(len_prefix);
    crc_input.extend_from_slice(payload);
    let computed = crc32(&crc_input);
    let Some(next) = off.checked_add(end) else {
        return FrameScan::Torn;
    };
    if check_crc && stored != computed {
        if next == raw.len() {
            // Bad CRC on the very last frame: the classic torn write —
            // the length prefix landed but the payload did not (or only
            // partially). Nothing was built on top of it.
            return FrameScan::Torn;
        }
        // Bytes exist beyond this frame: a later append implies this
        // write completed, so the mismatch is committed-region
        // corruption.
        return FrameScan::Corrupt {
            offset: off as u64,
            detail: format!(
                "record CRC mismatch in committed region (stored {stored:#010x}, \
                 computed {computed:#010x}, frame len {len})"
            ),
        };
    }
    FrameScan::Record { payload, next }
}

struct CommitPayload {
    seq: u64,
    pages: Vec<(usize, Vec<u8>)>,
}

fn parse_commit_payload(
    payload: &[u8],
    offset: u64,
    expected_seq: u64,
    layout: Layout,
) -> DurableResult<CommitPayload> {
    if payload.len() < PAYLOAD_PREFIX {
        return Err(DurableError::Corrupt {
            offset,
            detail: format!("record payload too short ({} bytes)", payload.len()),
        });
    }
    let tag = payload.first().copied().unwrap_or_default();
    if tag != TAG_COMMIT {
        return Err(DurableError::Corrupt {
            offset,
            detail: format!("unknown record tag {tag}"),
        });
    }
    let truncated = || DurableError::Corrupt {
        offset,
        detail: format!("record payload truncated ({} bytes)", payload.len()),
    };
    let seq = read_u64(payload, 1).ok_or_else(truncated)?;
    if seq != expected_seq {
        return Err(DurableError::Corrupt {
            offset,
            detail: format!("sequence break: record claims seq {seq}, expected {expected_seq}"),
        });
    }
    let npages = read_u32(payload, 9).ok_or_else(truncated)? as usize;
    let expected_len = npages
        .checked_mul(PAGE_ENTRY_LEN)
        .and_then(|b| b.checked_add(PAYLOAD_PREFIX));
    if expected_len != Some(payload.len()) {
        return Err(DurableError::Corrupt {
            offset,
            detail: format!(
                "record length {} inconsistent with {npages} pages",
                payload.len()
            ),
        });
    }
    let total_pages = layout.total_pages();
    let mut pages = Vec::with_capacity(npages);
    let mut at = PAYLOAD_PREFIX;
    for _ in 0..npages {
        let page = read_u32(payload, at).ok_or_else(truncated)? as usize;
        if page >= total_pages {
            return Err(DurableError::Corrupt {
                offset,
                detail: format!("page index {page} outside the {total_pages}-page arena"),
            });
        }
        let image = at
            .checked_add(4)
            .and_then(|lo| lo.checked_add(PAGE_SIZE).map(|hi| (lo, hi)))
            .and_then(|(lo, hi)| payload.get(lo..hi))
            .ok_or_else(truncated)?;
        pages.push((page, image.to_vec()));
        at = at.checked_add(PAGE_ENTRY_LEN).ok_or_else(truncated)?;
    }
    Ok(CommitPayload { seq, pages })
}

struct CheckpointImage {
    layout: Layout,
    seq: u64,
    image: Vec<u8>,
}

fn read_checkpoint(path: &Path, check_crc: bool) -> DurableResult<Option<CheckpointImage>> {
    if !path.exists() {
        return Ok(None);
    }
    let raw = fs::read(path)?;
    // The checkpoint is installed by atomic rename, so it is always in
    // the committed region: any damage is fail-stop.
    if raw.len() < 44 {
        return Err(DurableError::Corrupt {
            offset: 0,
            detail: format!("checkpoint too short ({} bytes)", raw.len()),
        });
    }
    let magic = raw.get(0..4).unwrap_or_default();
    if magic != CKPT_MAGIC {
        return Err(DurableError::Corrupt {
            offset: 0,
            detail: format!("bad checkpoint magic {magic:02x?} (want {CKPT_MAGIC:02x?})"),
        });
    }
    let truncated = || DurableError::Corrupt {
        offset: 0,
        detail: format!("checkpoint truncated ({} bytes)", raw.len()),
    };
    let version = read_u32(raw.as_slice(), 4).ok_or_else(truncated)?;
    if version != FORMAT_VERSION {
        return Err(DurableError::Corrupt {
            offset: 4,
            detail: format!(
                "checkpoint format version {version} (this build reads {FORMAT_VERSION})"
            ),
        });
    }
    let layout = decode_layout(&raw, 8).ok_or(DurableError::Corrupt {
        offset: 8,
        detail: "checkpoint layout does not fit the addressable arena".to_string(),
    })?;
    // 40-byte header + image + 4-byte CRC. `decode_layout` proved the
    // image size representable, so only the additions need checking.
    let expect = layout
        .total_pages()
        .checked_mul(PAGE_SIZE)
        .and_then(|image| image.checked_add(44));
    if expect != Some(raw.len()) {
        let expect = expect.map_or_else(|| "unrepresentable size".to_string(), |e| e.to_string());
        return Err(DurableError::Corrupt {
            offset: 8,
            detail: format!(
                "checkpoint length {} inconsistent with layout ({expect} expected)",
                raw.len()
            ),
        });
    }
    let crc_at = raw.len().checked_sub(4).ok_or_else(truncated)?;
    let stored = read_u32(raw.as_slice(), crc_at).ok_or_else(truncated)?;
    let crc_body = raw.get(..crc_at).ok_or_else(truncated)?;
    let computed = crc32(crc_body);
    if check_crc && stored != computed {
        return Err(DurableError::Corrupt {
            offset: crc_at as u64,
            detail: format!(
                "checkpoint CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
        });
    }
    Ok(Some(CheckpointImage {
        layout,
        seq: read_u64(raw.as_slice(), 32).ok_or_else(truncated)?,
        image: raw.get(40..crc_at).ok_or_else(truncated)?.to_vec(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("ft-durable-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_opts() -> DurableOptions {
        DurableOptions::default()
    }

    #[test]
    fn crc32_check_value() {
        // The canonical CRC32 (IEEE) check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn create_commit_open_round_trips() {
        let dir = scratch_dir("roundtrip");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            s.arena_mut().write(100, b"alpha").unwrap();
            s.commit().unwrap();
            s.arena_mut().write(5000, b"beta").unwrap();
            s.commit().unwrap();
            assert_eq!(s.seq(), 2);
        }
        let (s, info) = DurableStore::open(&dir, small_opts()).unwrap();
        assert_eq!(info.seq, 2);
        assert_eq!(info.replayed, 2);
        assert_eq!(info.truncated_bytes, 0);
        assert!(!info.used_checkpoint);
        assert_eq!(s.arena().read(100, 5).unwrap(), b"alpha");
        assert_eq!(s.arena().read(5000, 4).unwrap(), b"beta");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_writes_do_not_survive() {
        let dir = scratch_dir("uncommitted");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            s.arena_mut().write(0, b"durable").unwrap();
            s.commit().unwrap();
            s.arena_mut().write(0, b"scratch").unwrap();
            // No commit: the process "dies" here.
        }
        let (s, info) = DurableStore::open(&dir, small_opts()).unwrap();
        assert_eq!(info.seq, 1);
        assert_eq!(s.arena().read(0, 7).unwrap(), b"durable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_store_continues_the_sequence() {
        let dir = scratch_dir("continue");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            s.arena_mut().write(0, &[1]).unwrap();
            s.commit().unwrap();
        }
        {
            let (mut s, _) = DurableStore::open(&dir, small_opts()).unwrap();
            s.arena_mut().write(0, &[2]).unwrap();
            s.commit().unwrap();
            assert_eq!(s.seq(), 2);
        }
        let (s, info) = DurableStore::open(&dir, small_opts()).unwrap();
        assert_eq!(info.seq, 2);
        assert_eq!(s.arena().read(0, 1).unwrap(), &[2]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn later_records_overwrite_earlier_pages() {
        let dir = scratch_dir("overwrite");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            for v in 1..=5u8 {
                s.arena_mut().write(64, &[v]).unwrap();
                s.commit().unwrap();
            }
        }
        let (s, info) = DurableStore::open(&dir, small_opts()).unwrap();
        assert_eq!(info.replayed, 5);
        assert_eq!(s.arena().read(64, 1).unwrap(), &[5]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_counts_pending_syncs() {
        let dir = scratch_dir("group");
        let opts = DurableOptions {
            fsync: FsyncPolicy::EveryN(3),
            ..small_opts()
        };
        let mut s = DurableStore::create(&dir, Layout::small(), opts).unwrap();
        for v in 0..2u8 {
            s.arena_mut().write(0, &[v]).unwrap();
            s.commit().unwrap();
        }
        assert_eq!(s.pending_sync(), 2);
        s.arena_mut().write(0, &[9]).unwrap();
        s.commit().unwrap();
        assert_eq!(s.pending_sync(), 0, "third commit triggers the group fsync");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_round_trips_and_resets_the_log() {
        let dir = scratch_dir("compact");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            s.arena_mut().write(0, b"pre-compact").unwrap();
            s.commit().unwrap();
            s.arena_mut().write(8192, b"also").unwrap();
            s.commit().unwrap();
            let pre_len = s.log_len();
            s.compact().unwrap();
            assert_eq!(s.log_len(), LOG_HEADER_LEN);
            assert!(pre_len > LOG_HEADER_LEN);
            // Post-compaction commits chain onto the checkpoint.
            s.arena_mut().write(0, b"post-compact").unwrap();
            s.commit().unwrap();
            assert_eq!(s.seq(), 3);
        }
        let (s, info) = DurableStore::open(&dir, small_opts()).unwrap();
        assert!(info.used_checkpoint);
        assert_eq!(info.seq, 3);
        assert_eq!(info.replayed, 1, "only the post-compaction record");
        assert_eq!(s.arena().read(0, 12).unwrap(), b"post-compact");
        assert_eq!(s.arena().read(8192, 4).unwrap(), b"also");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_log_after_checkpoint_rename_is_skipped() {
        // The crash window between compaction's rename and its log
        // reset: new checkpoint, old log. The old records are all
        // covered by the checkpoint and must be skipped, not re-applied.
        let dir = scratch_dir("stale-log");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            s.arena_mut().write(0, b"one").unwrap();
            s.commit().unwrap();
            s.arena_mut().write(0, b"two").unwrap();
            s.commit().unwrap();
        }
        // Build the checkpoint a compaction would have written, without
        // resetting the log: replay the same state into a second store.
        let scratch = scratch_dir("stale-log-builder");
        {
            let mut b = DurableStore::create(&scratch, Layout::small(), small_opts()).unwrap();
            b.arena_mut().write(0, b"one").unwrap();
            b.commit().unwrap();
            b.arena_mut().write(0, b"two").unwrap();
            b.commit().unwrap();
            b.compact().unwrap();
            fs::copy(scratch.join(CHECKPOINT_FILE), dir.join(CHECKPOINT_FILE)).unwrap();
        }
        let (s, info) = DurableStore::open(&dir, small_opts()).unwrap();
        assert!(info.used_checkpoint);
        assert_eq!(info.skipped, 2, "log records covered by the checkpoint");
        assert_eq!(info.replayed, 0);
        assert_eq!(info.seq, 2);
        assert_eq!(s.arena().read(0, 3).unwrap(), b"two");
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&scratch).unwrap();
    }

    #[test]
    fn auto_compaction_fires_past_the_threshold() {
        let dir = scratch_dir("auto-compact");
        let opts = DurableOptions {
            compact_threshold: Some(3 * PAGE_SIZE as u64),
            ..small_opts()
        };
        let mut s = DurableStore::create(&dir, Layout::small(), opts).unwrap();
        for v in 0..4u8 {
            s.arena_mut().write(0, &[v]).unwrap();
            s.commit().unwrap();
        }
        assert!(
            s.dir().join(CHECKPOINT_FILE).exists(),
            "threshold crossings must have compacted"
        );
        assert!(s.log_len() < 2 * PAGE_SIZE as u64);
        let (r, info) = DurableStore::open(&dir, opts).unwrap();
        assert_eq!(info.seq, 4);
        assert_eq!(r.arena().read(0, 1).unwrap(), &[3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_durable_prefix() {
        let dir = scratch_dir("torn");
        let full_len;
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            s.arena_mut().write(0, b"durable").unwrap();
            s.commit().unwrap();
            full_len = s.log_len();
            // A torn append of the next commit: half the frame.
            s.arena_mut().write(0, b"torn!!!").unwrap();
            let staged = s.stage_commit();
            s.torn_append(&staged, staged.frame_len() / 2).unwrap();
        }
        let (s, info) = DurableStore::open(&dir, small_opts()).unwrap();
        assert_eq!(info.seq, 1);
        assert!(info.truncated_bytes > 0);
        assert_eq!(s.arena().read(0, 7).unwrap(), b"durable");
        assert_eq!(
            fs::metadata(dir.join(LOG_FILE)).unwrap().len(),
            full_len,
            "the torn tail must be physically truncated"
        );
        // And the store keeps working after the repair.
        let (mut s2, _) = DurableStore::open(&dir, small_opts()).unwrap();
        s2.arena_mut().write(0, b"resumed").unwrap();
        s2.commit().unwrap();
        drop(s2);
        let (s3, info3) = DurableStore::open(&dir, small_opts()).unwrap();
        assert_eq!(info3.seq, 2);
        assert_eq!(s3.arena().read(0, 7).unwrap(), b"resumed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_committed_record_is_fail_stop() {
        let dir = scratch_dir("corrupt");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            for v in [b"one", b"two"] {
                s.arena_mut().write(0, v).unwrap();
                s.commit().unwrap();
            }
        }
        // Flip a byte inside the FIRST record's page image: committed
        // region (a valid record follows it).
        let path = dir.join(LOG_FILE);
        let mut raw = fs::read(&path).unwrap();
        let target = LOG_HEADER_BYTES + FRAME_PREFIX + PAYLOAD_PREFIX + 4 + 100;
        raw[target] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        let err = DurableStore::open(&dir, small_opts()).unwrap_err();
        match err {
            DurableError::Corrupt { detail, .. } => {
                assert!(detail.contains("CRC mismatch"), "diagnostic: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skip_crc_mutant_accepts_the_corruption_silently() {
        let dir = scratch_dir("skip-crc");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            // Two records touching DIFFERENT pages, so the second's
            // replay cannot mask the first's corruption.
            s.arena_mut().write(0, b"one").unwrap();
            s.commit().unwrap();
            s.arena_mut().write(8192, b"two").unwrap();
            s.commit().unwrap();
        }
        let path = dir.join(LOG_FILE);
        let mut raw = fs::read(&path).unwrap();
        let target = LOG_HEADER_BYTES + FRAME_PREFIX + PAYLOAD_PREFIX + 4 + 100;
        raw[target] ^= 0xFF;
        fs::write(&path, &raw).unwrap();
        let mutant = DurableOptions {
            mutation: DurableMutation::SkipCrcCheck,
            ..small_opts()
        };
        let (s, info) = DurableStore::open(&dir, mutant).unwrap();
        assert_eq!(info.seq, 2, "the mutant sails past the damage");
        assert_eq!(
            s.arena().read(100, 1).unwrap(),
            &[0xFF],
            "…and installs the corrupted byte"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skip_tail_truncate_mutant_leaves_garbage_for_the_next_recovery() {
        let dir = scratch_dir("skip-tail");
        {
            let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
            s.arena_mut().write(0, b"base").unwrap();
            s.commit().unwrap();
            s.arena_mut().write(0, b"torn").unwrap();
            let staged = s.stage_commit();
            s.torn_append(&staged, staged.frame_len() / 2).unwrap();
        }
        let mutant = DurableOptions {
            mutation: DurableMutation::SkipTailTruncate,
            ..small_opts()
        };
        let (mut s, info) = DurableStore::open(&dir, mutant).unwrap();
        assert_eq!(info.seq, 1, "recovery itself still lands correctly");
        assert!(info.truncated_bytes > 0, "the tear was noticed…");
        // …but the file was not repaired, and the resumed appends land
        // after the garbage:
        s.arena_mut().write(0, b"more").unwrap();
        s.commit().unwrap();
        // The NEXT honest recovery now faces a half-frame followed by
        // valid bytes — committed-region corruption, fail-stop.
        let err = DurableStore::open(&dir, small_opts()).unwrap_err();
        assert!(matches!(err, DurableError::Corrupt { .. }), "{err:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watermark_journal_tracks_fsyncs() {
        let dir = scratch_dir("watermark");
        let opts = DurableOptions {
            journal_watermark: true,
            ..small_opts()
        };
        let mut s = DurableStore::create(&dir, Layout::small(), opts).unwrap();
        assert_eq!(read_watermark(&dir).unwrap(), Some(LOG_HEADER_LEN));
        s.arena_mut().write(0, &[1]).unwrap();
        s.commit().unwrap();
        assert_eq!(read_watermark(&dir).unwrap(), Some(s.log_len()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skip_fsync_mutant_freezes_the_watermark() {
        let dir = scratch_dir("skip-fsync");
        let opts = DurableOptions {
            journal_watermark: true,
            mutation: DurableMutation::SkipFsync,
            ..DurableOptions::default()
        };
        let mut s = DurableStore::create(&dir, Layout::small(), opts).unwrap();
        s.arena_mut().write(0, &[1]).unwrap();
        s.commit().unwrap();
        // The commit was acknowledged but the watermark never moved: a
        // power loss (emulated by truncating to the watermark) loses it.
        assert_eq!(read_watermark(&dir).unwrap(), Some(LOG_HEADER_LEN));
        assert!(s.log_len() > LOG_HEADER_LEN);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn powercut_to_watermark_recovers_the_acknowledged_prefix() {
        let dir = scratch_dir("powercut");
        let opts = DurableOptions {
            journal_watermark: true,
            ..small_opts()
        };
        {
            let mut s = DurableStore::create(&dir, Layout::small(), opts).unwrap();
            s.arena_mut().write(0, b"durable").unwrap();
            s.commit().unwrap();
        }
        // Power loss: truncate to the watermark (a no-op for the honest
        // always-fsync store) and recover.
        let wm = read_watermark(&dir).unwrap().unwrap();
        let f = OpenOptions::new()
            .write(true)
            .open(dir.join(LOG_FILE))
            .unwrap();
        f.set_len(wm).unwrap();
        drop(f);
        let (s, info) = DurableStore::open(&dir, opts).unwrap();
        assert_eq!(info.seq, 1);
        assert_eq!(s.arena().read(0, 7).unwrap(), b"durable");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn staged_commit_bytes_are_order_independent() {
        let dir_a = scratch_dir("stage-a");
        let dir_b = scratch_dir("stage-b");
        let mut a = DurableStore::create(&dir_a, Layout::small(), small_opts()).unwrap();
        let mut b = DurableStore::create(&dir_b, Layout::small(), small_opts()).unwrap();
        a.arena_mut().write(0, &[7]).unwrap();
        a.arena_mut().write(5000, &[9]).unwrap();
        b.arena_mut().write(5000, &[9]).unwrap();
        b.arena_mut().write(0, &[7]).unwrap();
        assert_eq!(a.stage_commit().frame, b.stage_commit().frame);
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn state_digest_tracks_content_and_seq() {
        let dir = scratch_dir("digest");
        let mut s = DurableStore::create(&dir, Layout::small(), small_opts()).unwrap();
        let d0 = s.state_digest();
        s.arena_mut().write(0, &[1]).unwrap();
        s.commit().unwrap();
        let d1 = s.state_digest();
        assert_ne!(d0, d1);
        s.commit().unwrap(); // Empty commit: content equal, seq differs.
        assert_ne!(s.state_digest(), d1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_store_is_not_found() {
        let dir = scratch_dir("missing");
        let err = DurableStore::open(&dir, small_opts()).unwrap_err();
        assert!(matches!(err, DurableError::Io(_)), "{err:?}");
    }

    #[test]
    fn mutation_names_round_trip() {
        for m in [
            DurableMutation::None,
            DurableMutation::SkipFsync,
            DurableMutation::SkipCrcCheck,
            DurableMutation::SkipTailTruncate,
        ] {
            assert_eq!(DurableMutation::parse(m.name()), Some(m));
        }
        assert_eq!(DurableMutation::parse("bogus"), None);
    }
}
