//! The `Mem` bundle: a process's full recoverable memory image.
//!
//! Discount Checking "maps the process' entire address space into a segment
//! of reliable memory" (§3) — for our applications that means *everything
//! that must survive a rollback lives here*: the arena pages, and the heap
//! allocator's bookkeeping (the analogue of the register file / control
//! block Discount Checking copies into a persistent buffer at commit time).
//!
//! Applications keep **no recoverable state in their own structs**; they
//! read and write cells and vectors in the arena each step. [`ArenaCell`]
//! and the handle-persistence helpers on [`crate::vec::ArenaVec`] make this
//! cheap.

use crate::alloc::Allocator;
use crate::arena::{Arena, Layout};
use crate::error::MemResult;
use crate::pod::Pod;
use crate::vec::ArenaVec;

/// A process's recoverable memory: arena plus allocator.
#[derive(Debug, Clone)]
pub struct Mem {
    /// The address space.
    pub arena: Arena,
    /// The heap allocator (checkpointed as the "register file").
    pub alloc: Allocator,
}

impl Mem {
    /// Creates a zeroed memory image with the given layout.
    pub fn new(layout: Layout) -> Self {
        let arena = Arena::new(layout);
        let alloc = Allocator::new(&arena);
        Mem { arena, alloc }
    }

    /// Allocates and returns a fresh vector.
    pub fn new_vec<T: Pod>(&mut self, cap: usize) -> MemResult<ArenaVec<T>> {
        ArenaVec::with_capacity(&mut self.arena, &mut self.alloc, cap)
    }

    /// Walks every live allocation verifying guard bands (§2.6).
    pub fn check_integrity(&self) -> MemResult<()> {
        self.alloc.check_integrity(&self.arena)
    }
}

/// A typed cell at a fixed arena offset — the idiom for application
/// "globals" (state-machine phase, counters, persisted container handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaCell<T> {
    offset: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Pod> ArenaCell<T> {
    /// A cell at `offset`.
    pub const fn at(offset: usize) -> Self {
        ArenaCell {
            offset,
            _marker: std::marker::PhantomData,
        }
    }

    /// The byte offset.
    pub const fn offset(&self) -> usize {
        self.offset
    }

    /// Reads the cell.
    pub fn get(&self, arena: &Arena) -> MemResult<T> {
        arena.read_pod(self.offset)
    }

    /// Writes the cell.
    pub fn set(&self, arena: &mut Arena, value: T) -> MemResult<()> {
        arena.write_pod(self.offset, value)
    }

    /// The cell immediately after this one (for laying out globals).
    pub fn next<U: Pod>(&self) -> ArenaCell<U> {
        ArenaCell::at(self.offset + T::SIZE)
    }
}

/// Size of a persisted [`ArenaVec`] handle.
pub const VEC_HANDLE_SIZE: usize = 24;

impl<T: Pod> ArenaVec<T> {
    /// Persists this handle (offset/len/cap) at a fixed arena offset, so it
    /// rolls back with the arena.
    pub fn store_handle(&self, arena: &mut Arena, at: usize) -> MemResult<()> {
        arena.write_pod(at, self.handle_triple().0)?;
        arena.write_pod(at + 8, self.handle_triple().1)?;
        arena.write_pod(at + 16, self.handle_triple().2)
    }

    /// Loads a handle previously stored with
    /// [`ArenaVec::store_handle`].
    pub fn load_handle(arena: &Arena, at: usize) -> MemResult<Self> {
        let data_off: u64 = arena.read_pod(at)?;
        let len: u64 = arena.read_pod(at + 8)?;
        let cap: u64 = arena.read_pod(at + 16)?;
        Ok(Self::from_handle_triple(data_off, len, cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_bundles_arena_and_alloc() {
        let mut m = Mem::new(Layout::small());
        let mut v = m.new_vec::<u32>(4).unwrap();
        v.push(&mut m.arena, &mut m.alloc, 5).unwrap();
        assert_eq!(v.get(&m.arena, 0).unwrap(), 5);
        assert!(m.alloc.check_integrity(&m.arena).is_ok());
    }

    #[test]
    fn arena_cell_roundtrip_and_layout() {
        let mut m = Mem::new(Layout::small());
        let a: ArenaCell<u64> = ArenaCell::at(0);
        let b: ArenaCell<u32> = a.next();
        assert_eq!(b.offset(), 8);
        a.set(&mut m.arena, 0xAABB).unwrap();
        b.set(&mut m.arena, 7).unwrap();
        assert_eq!(a.get(&m.arena).unwrap(), 0xAABB);
        assert_eq!(b.get(&m.arena).unwrap(), 7);
    }

    #[test]
    fn vec_handle_survives_rollback_via_arena() {
        let mut m = Mem::new(Layout::small());
        let mut v = m.new_vec::<u32>(4).unwrap();
        v.push(&mut m.arena, &mut m.alloc, 1).unwrap();
        v.store_handle(&mut m.arena, 0).unwrap();
        let alloc_snapshot = m.alloc.clone();
        m.arena.commit();

        // Post-commit work: grow the vec (handle changes), store it.
        for i in 0..100 {
            v.push(&mut m.arena, &mut m.alloc, i).unwrap();
        }
        v.store_handle(&mut m.arena, 0).unwrap();

        // Failure: arena rolls back; allocator restored from its snapshot.
        m.arena.rollback();
        m.alloc = alloc_snapshot;
        let v = ArenaVec::<u32>::load_handle(&m.arena, 0).unwrap();
        assert_eq!(v.to_vec(&m.arena).unwrap(), vec![1]);
        assert!(m.alloc.check_integrity(&m.arena).is_ok());
    }

    #[test]
    fn cell_bounds_errors_propagate() {
        let m = Mem::new(Layout::small());
        let huge: ArenaCell<u64> = ArenaCell::at(usize::MAX - 4);
        assert!(huge.get(&m.arena).is_err());
    }
}
