//! Plain-old-data types that can live in an [`crate::arena::Arena`].
//!
//! `Pod` values have a fixed size and a defined little-endian byte
//! representation, so they can be stored in raw arena pages and survive
//! checkpoint, rollback, and bit-level fault injection. Everything is safe
//! code: values are explicitly encoded/decoded rather than transmuted.

/// A fixed-size value with a defined byte encoding.
pub trait Pod: Copy + std::fmt::Debug {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Writes the little-endian encoding of `self` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::SIZE`.
    fn store(&self, out: &mut [u8]);

    /// Reads a value from its little-endian encoding.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != Self::SIZE`.
    fn load(bytes: &[u8]) -> Self;
}

macro_rules! impl_pod_int {
    ($($t:ty),*) => {
        $(
            impl Pod for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                fn store(&self, out: &mut [u8]) {
                    assert_eq!(out.len(), Self::SIZE);
                    out.copy_from_slice(&self.to_le_bytes());
                }

                fn load(bytes: &[u8]) -> Self {
                    assert_eq!(bytes.len(), Self::SIZE);
                    let mut buf = [0u8; std::mem::size_of::<$t>()];
                    buf.copy_from_slice(bytes);
                    <$t>::from_le_bytes(buf)
                }
            }
        )*
    };
}

impl_pod_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl<const N: usize> Pod for [u8; N] {
    const SIZE: usize = N;

    fn store(&self, out: &mut [u8]) {
        assert_eq!(out.len(), N);
        out.copy_from_slice(self);
    }

    fn load(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), N);
        let mut buf = [0u8; N];
        buf.copy_from_slice(bytes);
        buf
    }
}

/// A pair of pods, stored back to back.
impl<A: Pod, B: Pod> Pod for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    fn store(&self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::SIZE);
        self.0.store(&mut out[..A::SIZE]);
        self.1.store(&mut out[A::SIZE..]);
    }

    fn load(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), Self::SIZE);
        (A::load(&bytes[..A::SIZE]), B::load(&bytes[A::SIZE..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Pod + PartialEq>(v: T) {
        let mut buf = vec![0u8; T::SIZE];
        v.store(&mut buf);
        assert_eq!(T::load(&buf), v);
    }

    #[test]
    fn integer_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xDEADu16);
        roundtrip(0xDEADBEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-1i8);
        roundtrip(i16::MIN);
        roundtrip(-123456789i32);
        roundtrip(i64::MIN);
    }

    #[test]
    fn float_roundtrips() {
        roundtrip(1.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip(-0.0f64);
    }

    #[test]
    fn array_and_tuple_roundtrips() {
        roundtrip([1u8, 2, 3, 4]);
        roundtrip((42u32, 7u64));
        assert_eq!(<(u32, u64)>::SIZE, 12);
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.store(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }

    #[test]
    #[should_panic]
    fn store_wrong_size_panics() {
        let mut buf = [0u8; 3];
        1u32.store(&mut buf);
    }
}
