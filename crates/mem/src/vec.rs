//! A growable typed vector stored in an [`Arena`].
//!
//! `ArenaVec<T>` is the workhorse container for the workload applications:
//! its elements live in arena pages (so they are checkpointed, rolled back,
//! and fault-injectable), while the small handle (offset/len/cap) lives in
//! the application's control block, which the checkpointing runtime saves
//! at commit time.

use std::marker::PhantomData;

use crate::alloc::Allocator;
use crate::arena::Arena;
use crate::error::{MemFault, MemResult};
use crate::pod::Pod;

/// A typed, growable vector whose storage lives in the arena heap.
#[derive(Debug, Clone)]
pub struct ArenaVec<T> {
    data_off: usize,
    len: usize,
    cap: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Pod> ArenaVec<T> {
    /// Creates a vector with capacity for `cap` elements.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    pub fn with_capacity(arena: &mut Arena, alloc: &mut Allocator, cap: usize) -> MemResult<Self> {
        let cap = cap.max(4);
        let data_off = alloc.alloc(arena, cap * T::SIZE)?;
        Ok(ArenaVec {
            data_off,
            len: 0,
            cap,
            _marker: PhantomData,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Byte offset of element `i` (for fault targeting and raw access).
    ///
    /// Wrapping: fault-injection studies hand this corrupted (huge)
    /// indices on purpose; the resulting garbage offset must be the same
    /// in debug and release builds so an injected trial's outcome does
    /// not depend on overflow checks. Callers bounds-check against `len`
    /// before trusting the offset.
    pub fn element_offset(&self, i: usize) -> usize {
        self.data_off.wrapping_add(i.wrapping_mul(T::SIZE))
    }

    /// Reads element `i`.
    ///
    /// # Errors
    ///
    /// [`MemFault::OutOfBounds`] if `i >= len` (an application-level
    /// segfault).
    pub fn get(&self, arena: &Arena, i: usize) -> MemResult<T> {
        if i >= self.len {
            return Err(MemFault::OutOfBounds {
                offset: self.element_offset(i),
                len: T::SIZE,
            });
        }
        arena.read_pod(self.element_offset(i))
    }

    /// Writes element `i`.
    ///
    /// # Errors
    ///
    /// [`MemFault::OutOfBounds`] if `i >= len`.
    pub fn set(&self, arena: &mut Arena, i: usize, value: T) -> MemResult<()> {
        if i >= self.len {
            return Err(MemFault::OutOfBounds {
                offset: self.element_offset(i),
                len: T::SIZE,
            });
        }
        arena.write_pod(self.element_offset(i), value)
    }

    /// Appends an element, growing (doubling) if needed.
    pub fn push(&mut self, arena: &mut Arena, alloc: &mut Allocator, value: T) -> MemResult<()> {
        if self.len == self.cap {
            self.grow(arena, alloc, self.cap * 2)?;
        }
        self.len += 1;
        self.set(arena, self.len - 1, value)
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self, arena: &Arena) -> MemResult<Option<T>> {
        if self.len == 0 {
            return Ok(None);
        }
        let v = self.get(arena, self.len - 1)?;
        self.len -= 1;
        Ok(Some(v))
    }

    /// Inserts at `i`, shifting the tail right.
    ///
    /// # Errors
    ///
    /// [`MemFault::OutOfBounds`] if `i > len`.
    pub fn insert(
        &mut self,
        arena: &mut Arena,
        alloc: &mut Allocator,
        i: usize,
        value: T,
    ) -> MemResult<()> {
        if i > self.len {
            return Err(MemFault::OutOfBounds {
                offset: self.element_offset(i),
                len: T::SIZE,
            });
        }
        if self.len == self.cap {
            self.grow(arena, alloc, self.cap * 2)?;
        }
        // Shift [i, len) right by one element — a single in-arena memmove,
        // no intermediate buffer.
        let src = self.element_offset(i);
        let count = (self.len - i) * T::SIZE;
        if count > 0 {
            arena.copy_within(src, src + T::SIZE, count)?;
        }
        self.len += 1;
        self.set(arena, i, value)
    }

    /// Removes the element at `i`, shifting the tail left, and returns it.
    ///
    /// # Errors
    ///
    /// [`MemFault::OutOfBounds`] if `i >= len`.
    pub fn remove(&mut self, arena: &mut Arena, i: usize) -> MemResult<T> {
        let v = self.get(arena, i)?;
        let src = self.element_offset(i + 1);
        let count = (self.len - i - 1) * T::SIZE;
        if count > 0 {
            arena.copy_within(src, self.element_offset(i), count)?;
        }
        self.len -= 1;
        Ok(v)
    }

    /// Truncates to `new_len` (no-op if already shorter).
    pub fn truncate(&mut self, new_len: usize) {
        self.len = self.len.min(new_len);
    }

    /// Clears all elements.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Copies all elements out into a `Vec`.
    pub fn to_vec(&self, arena: &Arena) -> MemResult<Vec<T>> {
        (0..self.len).map(|i| self.get(arena, i)).collect()
    }

    /// The raw (data offset, len, cap) triple, for handle persistence.
    pub fn handle_triple(&self) -> (u64, u64, u64) {
        (self.data_off as u64, self.len as u64, self.cap as u64)
    }

    /// Rebuilds a vector from a persisted handle triple.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "handle triples were usize when persisted and the arena stays far below 4 GiB"
    )]
    pub fn from_handle_triple(data_off: u64, len: u64, cap: u64) -> Self {
        ArenaVec {
            data_off: data_off as usize,
            len: len as usize,
            cap: cap as usize,
            _marker: PhantomData,
        }
    }

    fn grow(&mut self, arena: &mut Arena, alloc: &mut Allocator, new_cap: usize) -> MemResult<()> {
        let new_off = alloc.alloc(arena, new_cap * T::SIZE)?;
        arena.copy_within(self.data_off, new_off, self.len * T::SIZE)?;
        alloc.free(arena, self.data_off)?;
        self.data_off = new_off;
        self.cap = new_cap;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Layout;

    fn setup() -> (Arena, Allocator) {
        let arena = Arena::new(Layout::small());
        let alloc = Allocator::new(&arena);
        (arena, alloc)
    }

    #[test]
    fn push_get_pop() {
        let (mut arena, mut alloc) = setup();
        let mut v = ArenaVec::<u32>::with_capacity(&mut arena, &mut alloc, 2).unwrap();
        for i in 0..10 {
            v.push(&mut arena, &mut alloc, i * 3).unwrap();
        }
        assert_eq!(v.len(), 10);
        assert_eq!(v.get(&arena, 7).unwrap(), 21);
        assert_eq!(v.pop(&arena).unwrap(), Some(27));
        assert_eq!(v.len(), 9);
        assert!(alloc.check_integrity(&arena).is_ok());
    }

    #[test]
    fn growth_preserves_elements() {
        let (mut arena, mut alloc) = setup();
        let mut v = ArenaVec::<u64>::with_capacity(&mut arena, &mut alloc, 4).unwrap();
        for i in 0..100u64 {
            v.push(&mut arena, &mut alloc, i * i).unwrap();
        }
        assert_eq!(
            v.to_vec(&arena).unwrap(),
            (0..100u64).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn out_of_bounds_get_and_set() {
        let (mut arena, mut alloc) = setup();
        let mut v = ArenaVec::<u8>::with_capacity(&mut arena, &mut alloc, 4).unwrap();
        v.push(&mut arena, &mut alloc, 1).unwrap();
        assert!(matches!(
            v.get(&arena, 1),
            Err(MemFault::OutOfBounds { .. })
        ));
        assert!(v.set(&mut arena, 5, 0).is_err());
    }

    #[test]
    fn insert_and_remove_shift() {
        let (mut arena, mut alloc) = setup();
        let mut v = ArenaVec::<u16>::with_capacity(&mut arena, &mut alloc, 4).unwrap();
        for i in 0..5 {
            v.push(&mut arena, &mut alloc, i).unwrap();
        }
        v.insert(&mut arena, &mut alloc, 2, 99).unwrap();
        assert_eq!(v.to_vec(&arena).unwrap(), vec![0, 1, 99, 2, 3, 4]);
        assert_eq!(v.remove(&mut arena, 2).unwrap(), 99);
        assert_eq!(v.to_vec(&arena).unwrap(), vec![0, 1, 2, 3, 4]);
        assert!(v.insert(&mut arena, &mut alloc, 99, 0).is_err());
        assert!(v.remove(&mut arena, 99).is_err());
    }

    #[test]
    fn contents_roll_back_with_the_arena() {
        let (mut arena, mut alloc) = setup();
        let mut v = ArenaVec::<u32>::with_capacity(&mut arena, &mut alloc, 8).unwrap();
        v.push(&mut arena, &mut alloc, 111).unwrap();
        arena.commit();
        let saved = (v.clone(), alloc.clone());
        v.push(&mut arena, &mut alloc, 222).unwrap();
        v.set(&mut arena, 0, 333).unwrap();
        arena.rollback();
        // The handle is restored from the control block; the data from the
        // arena.
        let (v, _alloc) = saved;
        assert_eq!(v.to_vec(&arena).unwrap(), vec![111]);
    }

    #[test]
    fn truncate_and_clear() {
        let (mut arena, mut alloc) = setup();
        let mut v = ArenaVec::<u8>::with_capacity(&mut arena, &mut alloc, 4).unwrap();
        for i in 0..4 {
            v.push(&mut arena, &mut alloc, i).unwrap();
        }
        v.truncate(2);
        assert_eq!(v.len(), 2);
        v.truncate(99);
        assert_eq!(v.len(), 2);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.pop(&arena).unwrap(), None);
    }

    #[test]
    fn element_offset_enables_fault_targeting() {
        let (mut arena, mut alloc) = setup();
        let mut v = ArenaVec::<u64>::with_capacity(&mut arena, &mut alloc, 4).unwrap();
        v.push(&mut arena, &mut alloc, 0).unwrap();
        arena.flip_bit(v.element_offset(0), 0).unwrap();
        assert_eq!(v.get(&arena, 0).unwrap(), 1);
    }
}
