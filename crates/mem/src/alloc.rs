//! A heap allocator over an arena, with guard bands for crash-early
//! consistency checks.
//!
//! §2.6: "a process can try to catch erroneous state by performing
//! consistency checks. For example, … it could inspect guard bands at the
//! ends of its buffers and malloc'ed data. When a process fails one of these
//! checks, it simply terminates execution, effectively crashing." Every
//! allocation is bracketed by guard words stored *inside the arena*, so
//! stray writes and injected bit flips can corrupt them and
//! [`Allocator::check_integrity`] will catch it.
//!
//! The allocator's bookkeeping lives outside the arena and is serializable:
//! the checkpointing runtime saves it in the register/control block at
//! commit time, exactly as Discount Checking copies the register file to a
//! persistent buffer (§3).

use crate::arena::{Arena, Region};
use crate::error::{MemFault, MemResult};

/// Leading guard word.
pub const GUARD_HEAD: u64 = 0xFEED_FACE_CAFE_BEEF;
/// Trailing guard word.
pub const GUARD_TAIL: u64 = 0xDEAD_C0DE_DEAD_C0DE;

const WORD: usize = 8;
/// Per-allocation overhead: head guard, size word, tail guard.
pub const ALLOC_OVERHEAD: usize = 3 * WORD;

/// One live allocation: `data_off` points at usable bytes of length `size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Offset of the usable data.
    pub data_off: usize,
    /// Usable size in bytes.
    pub size: usize,
}

/// A first-fit free-list allocator over the arena's heap region.
#[derive(Debug, Clone)]
pub struct Allocator {
    heap_start: usize,
    heap_end: usize,
    bump: usize,
    /// Freed blocks available for reuse: (block offset, block size incl.
    /// overhead).
    free: Vec<(usize, usize)>,
    /// Live allocations, ordered by data offset.
    live: Vec<Allocation>,
}

impl Allocator {
    /// Creates an allocator over `arena`'s heap region.
    pub fn new(arena: &Arena) -> Self {
        let range = arena.region_range(Region::Heap);
        Allocator {
            heap_start: range.start,
            heap_end: range.end,
            bump: range.start,
            free: Vec::new(),
            live: Vec::new(),
        }
    }

    /// The high-water mark: one past the last byte ever allocated. The
    /// live heap (for fault targeting) is `heap_start..high_water`.
    pub fn high_water(&self) -> usize {
        self.bump
    }

    /// Start of the heap region this allocator manages.
    pub fn heap_start(&self) -> usize {
        self.heap_start
    }

    /// Bytes of heap currently reachable through live allocations.
    pub fn live_bytes(&self) -> usize {
        self.live.iter().map(|a| a.size).sum()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Allocates `size` usable bytes, zero-initialized, writing guard words.
    ///
    /// # Errors
    ///
    /// [`MemFault::OutOfMemory`] when neither the free list nor the bump
    /// region can satisfy the request.
    pub fn alloc(&mut self, arena: &mut Arena, size: usize) -> MemResult<usize> {
        self.alloc_inner(arena, size, true)
    }

    /// Allocates without zeroing the data bytes — the *initialization
    /// fault* of §4.1 ("neglecting to initialize a variable"): whatever
    /// stale bytes occupy the block leak through.
    pub fn alloc_uninit(&mut self, arena: &mut Arena, size: usize) -> MemResult<usize> {
        self.alloc_inner(arena, size, false)
    }

    fn alloc_inner(&mut self, arena: &mut Arena, size: usize, zero: bool) -> MemResult<usize> {
        let total = size + ALLOC_OVERHEAD;
        // First fit from the free list.
        let mut block: Option<usize> = None;
        if let Some(i) = self.free.iter().position(|&(_, s)| s >= total) {
            let (off, s) = self.free[i];
            // Split if the remainder can hold another allocation.
            if s - total > ALLOC_OVERHEAD + WORD {
                self.free[i] = (off + total, s - total);
            } else {
                self.free.swap_remove(i);
            }
            block = Some(off);
        }
        let off = match block {
            Some(off) => off,
            None => {
                if self.bump + total > self.heap_end {
                    return Err(MemFault::OutOfMemory { requested: size });
                }
                let off = self.bump;
                self.bump += total;
                off
            }
        };
        arena.write_pod(off, GUARD_HEAD)?;
        arena.write_pod(off + WORD, size as u64)?;
        let data_off = off + 2 * WORD;
        if zero {
            arena.fill(data_off, size, 0)?;
        }
        arena.write_pod(data_off + size, GUARD_TAIL)?;
        let pos = self.live.partition_point(|a| a.data_off < data_off);
        self.live.insert(pos, Allocation { data_off, size });
        Ok(data_off)
    }

    /// Frees the allocation at `data_off`, verifying its guards first.
    ///
    /// # Errors
    ///
    /// [`MemFault::OutOfBounds`] if `data_off` is not a live allocation;
    /// [`MemFault::GuardCorrupted`] if a guard word was overwritten.
    pub fn free(&mut self, arena: &Arena, data_off: usize) -> MemResult<()> {
        let i = self
            .live
            .binary_search_by_key(&data_off, |a| a.data_off)
            .map_err(|_| MemFault::OutOfBounds {
                offset: data_off,
                len: 0,
            })?;
        let a = self.live[i];
        Self::check_one(arena, a)?;
        self.live.remove(i);
        self.free
            .push((data_off - 2 * WORD, a.size + ALLOC_OVERHEAD));
        Ok(())
    }

    fn check_one(arena: &Arena, a: Allocation) -> MemResult<()> {
        let head_off = a.data_off - 2 * WORD;
        if arena.read_pod::<u64>(head_off)? != GUARD_HEAD {
            return Err(MemFault::GuardCorrupted { offset: head_off });
        }
        if arena.read_pod::<u64>(head_off + WORD)? != a.size as u64 {
            return Err(MemFault::GuardCorrupted {
                offset: head_off + WORD,
            });
        }
        let tail_off = a.data_off + a.size;
        if arena.read_pod::<u64>(tail_off)? != GUARD_TAIL {
            return Err(MemFault::GuardCorrupted { offset: tail_off });
        }
        Ok(())
    }

    /// Walks every live allocation verifying its guard bands — the §2.6
    /// crash-early consistency check. Cheap enough to run before every
    /// commit.
    pub fn check_integrity(&self, arena: &Arena) -> MemResult<()> {
        for &a in &self.live {
            Self::check_one(arena, a)?;
        }
        Ok(())
    }

    /// The live allocations, for inspection and fault targeting.
    pub fn live(&self) -> &[Allocation] {
        &self.live
    }

    /// Serializes the bookkeeping to a flat little-endian byte image, the
    /// form the checkpointing runtime stores in its register/control block
    /// at commit time.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_bytes_into(&mut out);
        out
    }

    /// As [`Allocator::to_bytes`], but appends into a caller-provided
    /// buffer so the per-commit hot path can recycle one allocation
    /// instead of making a fresh one per checkpoint.
    pub fn to_bytes_into(&self, out: &mut Vec<u8>) {
        out.reserve(40 + 16 * (self.free.len() + self.live.len()));
        let word = |v: usize| (v as u64).to_le_bytes();
        out.extend_from_slice(&word(self.heap_start));
        out.extend_from_slice(&word(self.heap_end));
        out.extend_from_slice(&word(self.bump));
        out.extend_from_slice(&word(self.free.len()));
        for &(off, size) in &self.free {
            out.extend_from_slice(&word(off));
            out.extend_from_slice(&word(size));
        }
        out.extend_from_slice(&word(self.live.len()));
        for a in &self.live {
            out.extend_from_slice(&word(a.data_off));
            out.extend_from_slice(&word(a.size));
        }
    }

    /// Reconstructs an allocator from [`Allocator::to_bytes`] output.
    /// Returns `None` on a malformed image.
    pub fn from_bytes(blob: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let mut word = |blob: &[u8]| -> Option<usize> {
            let b = blob.get(pos..pos + 8)?;
            pos += 8;
            usize::try_from(u64::from_le_bytes(b.try_into().ok()?)).ok()
        };
        let heap_start = word(blob)?;
        let heap_end = word(blob)?;
        let bump = word(blob)?;
        let n_free = word(blob)?;
        let mut free = Vec::with_capacity(n_free.min(1 << 20));
        for _ in 0..n_free {
            let off = word(blob)?;
            let size = word(blob)?;
            free.push((off, size));
        }
        let n_live = word(blob)?;
        let mut live = Vec::with_capacity(n_live.min(1 << 20));
        for _ in 0..n_live {
            let data_off = word(blob)?;
            let size = word(blob)?;
            live.push(Allocation { data_off, size });
        }
        if pos != blob.len() {
            return None;
        }
        Some(Allocator {
            heap_start,
            heap_end,
            bump,
            free,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Layout;

    fn setup() -> (Arena, Allocator) {
        let arena = Arena::new(Layout::small());
        let alloc = Allocator::new(&arena);
        (arena, alloc)
    }

    #[test]
    fn alloc_zeroes_and_guards() {
        let (mut arena, mut alloc) = setup();
        let off = alloc.alloc(&mut arena, 64).unwrap();
        assert!(arena.read(off, 64).unwrap().iter().all(|&b| b == 0));
        assert_eq!(arena.read_pod::<u64>(off - 16).unwrap(), GUARD_HEAD);
        assert_eq!(arena.read_pod::<u64>(off + 64).unwrap(), GUARD_TAIL);
        assert!(alloc.check_integrity(&arena).is_ok());
        assert_eq!(alloc.live_count(), 1);
        assert_eq!(alloc.live_bytes(), 64);
    }

    #[test]
    fn alloc_uninit_leaks_stale_bytes() {
        let (mut arena, mut alloc) = setup();
        let a = alloc.alloc(&mut arena, 32).unwrap();
        arena.write(a, &[0xAA; 32]).unwrap();
        alloc.free(&arena, a).unwrap();
        let b = alloc.alloc_uninit(&mut arena, 32).unwrap();
        assert_eq!(b, a, "free list reuses the block");
        assert_eq!(arena.read(b, 32).unwrap(), &[0xAA; 32]);
    }

    #[test]
    fn overflow_corrupts_tail_guard_and_is_detected() {
        let (mut arena, mut alloc) = setup();
        let off = alloc.alloc(&mut arena, 16).unwrap();
        // Buffer overflow by one word, as in the Figure 5 timeline.
        arena.write(off + 16, &[0u8; 8]).unwrap();
        let err = alloc.check_integrity(&arena).unwrap_err();
        assert!(matches!(err, MemFault::GuardCorrupted { .. }));
    }

    #[test]
    fn free_detects_corruption_too() {
        let (mut arena, mut alloc) = setup();
        let off = alloc.alloc(&mut arena, 16).unwrap();
        arena.write_pod(off - 16, 0u64).unwrap(); // Smash head guard.
        assert!(matches!(
            alloc.free(&arena, off),
            Err(MemFault::GuardCorrupted { .. })
        ));
    }

    #[test]
    fn double_free_is_out_of_bounds() {
        let (mut arena, mut alloc) = setup();
        let off = alloc.alloc(&mut arena, 16).unwrap();
        alloc.free(&arena, off).unwrap();
        assert!(matches!(
            alloc.free(&arena, off),
            Err(MemFault::OutOfBounds { .. })
        ));
    }

    #[test]
    fn heap_exhaustion_reports_oom() {
        let (mut arena, mut alloc) = setup();
        let heap = arena.region_range(Region::Heap);
        let too_big = heap.end - heap.start;
        assert!(matches!(
            alloc.alloc(&mut arena, too_big),
            Err(MemFault::OutOfMemory { .. })
        ));
        // A reasonable allocation still works afterwards.
        assert!(alloc.alloc(&mut arena, 128).is_ok());
    }

    #[test]
    fn free_list_splits_large_blocks() {
        let (mut arena, mut alloc) = setup();
        let big = alloc.alloc(&mut arena, 1024).unwrap();
        alloc.free(&arena, big).unwrap();
        let small = alloc.alloc(&mut arena, 64).unwrap();
        let small2 = alloc.alloc(&mut arena, 64).unwrap();
        // Both fit inside the split block region.
        assert!(small < big + 1024);
        assert!(small2 < big + 1024 + ALLOC_OVERHEAD);
        assert!(alloc.check_integrity(&arena).is_ok());
    }

    #[test]
    fn many_allocations_stay_consistent() {
        let (mut arena, mut alloc) = setup();
        let mut offs = Vec::new();
        for i in 0..40 {
            offs.push(alloc.alloc(&mut arena, 8 + (i % 5) * 16).unwrap());
        }
        for off in offs.iter().step_by(2) {
            alloc.free(&arena, *off).unwrap();
        }
        for _ in 0..10 {
            alloc.alloc(&mut arena, 24).unwrap();
        }
        assert!(alloc.check_integrity(&arena).is_ok());
    }

    #[test]
    fn to_bytes_into_appends_and_matches_to_bytes() {
        let (mut arena, mut alloc) = setup();
        let a = alloc.alloc(&mut arena, 48).unwrap();
        alloc.alloc(&mut arena, 16).unwrap();
        alloc.free(&arena, a).unwrap();
        let fresh = alloc.to_bytes();
        let mut reused = vec![0xEE; 7];
        reused.clear();
        alloc.to_bytes_into(&mut reused);
        assert_eq!(reused, fresh);
        assert_eq!(
            Allocator::from_bytes(&reused).unwrap().live_count(),
            alloc.live_count()
        );
    }

    #[test]
    fn allocator_state_is_cloneable_for_checkpointing() {
        let (mut arena, mut alloc) = setup();
        let off = alloc.alloc(&mut arena, 16).unwrap();
        let saved = alloc.clone();
        alloc.free(&arena, off).unwrap();
        // Restore: the saved allocator still sees the allocation live.
        assert_eq!(saved.live_count(), 1);
        assert_eq!(alloc.live_count(), 0);
    }
}
