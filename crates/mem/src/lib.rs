//! # ft-mem — reliable memory, undo-log transactions, and storage cost
//! models
//!
//! The Rio / Vista substrate of the paper's testbed (§3), rebuilt as a
//! simulation library:
//!
//! * [`arena`] — a process address space in reliable memory: page-grained
//!   copy-on-write undo logging (Vista), atomic commit, rollback, and the
//!   three-region layout (globals / stack / heap) the §4 fault taxonomy
//!   targets;
//! * [`alloc`] — a heap allocator with in-arena guard bands powering the
//!   §2.6 crash-early consistency checks;
//! * [`mod@vec`] — typed growable vectors stored in arena pages, the container
//!   the workload applications build on;
//! * [`pod`] — fixed-layout value encoding (safe, explicit, little-endian);
//! * [`cost`] — calibrated commit cost models for Rio (Discount Checking),
//!   synchronous disk (DC-disk), and the log-structured file backend
//!   (DC-durable);
//! * [`durable`] — the real thing behind DC-durable: an append-only
//!   CRC32-framed redo log plus checkpoint file on an actual filesystem,
//!   with torn-tail-truncating / corruption-fail-stop recovery (the
//!   engine `crates/crashtest` kills with real `SIGKILL`s);
//! * [`error`] — memory faults, which the applications surface as crash
//!   events.
//!
//! ## Example
//!
//! ```
//! use ft_mem::arena::{Arena, Layout};
//! use ft_mem::alloc::Allocator;
//!
//! let mut arena = Arena::new(Layout::small());
//! let mut alloc = Allocator::new(&arena);
//! let buf = alloc.alloc(&mut arena, 64).unwrap();
//! arena.write(buf, b"recoverable state").unwrap();
//! arena.commit();
//! arena.write(buf, b"work since commit").unwrap();
//! arena.rollback(); // A failure: back to the committed state.
//! assert_eq!(arena.read(buf, 17).unwrap(), b"recoverable state");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod arena;
pub mod cost;
pub mod durable;
pub mod error;
pub mod mem;
pub mod pod;
pub mod vec;

pub use alloc::Allocator;
pub use arena::{Arena, ArenaStats, CommitCrashPoint, CommitRecord, Layout, Region, PAGE_SIZE};
pub use cost::{DiskModel, DurableModel, Medium, Nanos, RioModel};
pub use durable::{
    DurableError, DurableMutation, DurableOptions, DurableResult, DurableStore, FsyncPolicy,
    RecoveryInfo,
};
pub use error::{MemFault, MemResult};
pub use mem::{ArenaCell, Mem};
pub use pod::Pod;
pub use vec::ArenaVec;
