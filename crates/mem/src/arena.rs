//! Page-grained process memory arenas with Vista-style undo logging.
//!
//! Discount Checking "maps the process' entire address space into a segment
//! of reliable memory managed by Vista. Vista traps updates to the process'
//! address space using copy-on-write, and logs the before-images of updated
//! regions to its persistent undo log" (§3). An [`Arena`] is that address
//! space: applications keep all recoverable state in it, every write is
//! trapped at page granularity, and a *commit* atomically discards the undo
//! log while a *rollback* applies it.
//!
//! The arena is laid out in three named regions — globals, stack, heap —
//! matching the fault-injection taxonomy of §4.1 (stack bit flips vs. heap
//! bit flips).
//!
//! # The hot path: epochs and pooled undo pages
//!
//! Every simulated instruction of every fault-injection trial funnels
//! through this write barrier, so its host cost — not its *simulated* cost,
//! which [`crate::cost`] models separately — dominates campaign wall-clock.
//! Two structures keep it allocation-free and commit O(dirty):
//!
//! * **Epoch-stamped dirty tracking.** Instead of a `Vec<bool>` of dirty
//!   flags cleared with an O(total-pages) `fill(false)` on every commit,
//!   each page carries a `u32` epoch stamp and the arena a current epoch;
//!   a page is dirty iff its stamp equals the current epoch. Commit and
//!   rollback just bump the epoch, so their cost is O(dirty pages), not
//!   O(address-space size). (On the astronomically rare epoch wrap the
//!   stamps are rewound once, preserving correctness.)
//! * **A pooled undo log.** Page before-images draw 4 KiB buffers from a
//!   free list recycled on commit/rollback, so after warm-up a trap is a
//!   single `memcpy` with no heap allocation — the Vista argument
//!   ("eliminate the OS from reliable-memory access") applied to the
//!   simulator's own substrate.

use crate::error::{MemFault, MemResult};
use crate::pod::Pod;

/// Page size in bytes, matching the i386 pages Discount Checking protected.
pub const PAGE_SIZE: usize = 4096;

/// Largest `Pod` encoded through the stack buffer in
/// [`Arena::write_pod`]; larger values (none exist today) take a heap
/// fallback.
const POD_STACK_BYTES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// A named region of the arena (§4.1's fault taxonomy distinguishes them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Global/static data.
    Globals,
    /// The (simulated) stack.
    Stack,
    /// The heap, managed by [`crate::alloc::Allocator`].
    Heap,
}

/// Arena layout: number of pages per region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Pages of global data.
    pub globals_pages: usize,
    /// Pages of stack.
    pub stack_pages: usize,
    /// Pages of heap.
    pub heap_pages: usize,
}

impl Layout {
    /// A small default layout (4 KiB globals, 16 KiB stack, 64 KiB heap).
    pub fn small() -> Self {
        Layout {
            globals_pages: 1,
            stack_pages: 4,
            heap_pages: 16,
        }
    }

    /// Total pages.
    pub fn total_pages(&self) -> usize {
        self.globals_pages + self.stack_pages + self.heap_pages
    }
}

/// Running statistics for an arena, feeding the Figure 8 cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Write-barrier "traps": first writes to a clean page since the last
    /// commit (each costs a page-protection fault in the real system).
    pub traps: u64,
    /// Total write operations.
    pub writes: u64,
    /// Total commits executed.
    pub commits: u64,
    /// Total rollbacks executed.
    pub rollbacks: u64,
    /// Cumulative dirty pages across all commits.
    pub committed_pages: u64,
    /// Cumulative dirty bytes across all commits.
    pub committed_bytes: u64,
}

impl ArenaStats {
    /// Accumulates another arena's statistics into this one (used to
    /// aggregate per-process arenas into a run-level report).
    pub fn absorb(&mut self, other: &ArenaStats) {
        self.traps += other.traps;
        self.writes += other.writes;
        self.commits += other.commits;
        self.rollbacks += other.rollbacks;
        self.committed_pages += other.committed_pages;
        self.committed_bytes += other.committed_bytes;
    }
}

/// A sub-step of the arena's commit sequence at which a crash can be
/// injected (for the `ft-check` model checker's mid-commit kill points).
///
/// Vista's commit is "write the commit record, then truncate the undo
/// log": the commit record hitting reliable memory is the atomicity
/// point, and log truncation after it is idempotent. The three points
/// model a crash on either side of that line plus one torn in the middle
/// of the truncation walk:
///
/// * [`PreLog`](CommitCrashPoint::PreLog) — before the commit record is
///   persisted. The commit *did not happen*: the undo log survives and a
///   recovery rolls back to the previous commit.
/// * [`MidUndoWalk`](CommitCrashPoint::MidUndoWalk) — after the record,
///   halfway through retiring the undo log. The commit *did happen*;
///   recovery merely completes the idempotent truncation, so the
///   observable outcome is bitwise-identical to a clean commit.
/// * [`PostBump`](CommitCrashPoint::PostBump) — after the epoch bump, a
///   crash immediately after a complete commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CommitCrashPoint {
    /// Crash before the commit record is persisted (commit lost).
    PreLog,
    /// Crash mid-way through the undo-log truncation (commit durable;
    /// truncation completed idempotently on recovery).
    MidUndoWalk,
    /// Crash right after the commit completes.
    PostBump,
}

impl CommitCrashPoint {
    /// All sub-step crash points, in commit-sequence order.
    pub const ALL: [CommitCrashPoint; 3] = [
        CommitCrashPoint::PreLog,
        CommitCrashPoint::MidUndoWalk,
        CommitCrashPoint::PostBump,
    ];

    /// Stable lowercase name for reports and counterexample scripts.
    pub fn name(&self) -> &'static str {
        match self {
            CommitCrashPoint::PreLog => "pre-log",
            CommitCrashPoint::MidUndoWalk => "mid-undo-walk",
            CommitCrashPoint::PostBump => "post-bump",
        }
    }
}

impl std::fmt::Display for CommitCrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one commit had to persist (drives the time-cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitRecord {
    /// Pages dirtied since the previous commit.
    pub dirty_pages: usize,
    /// Bytes those pages amount to.
    pub dirty_bytes: usize,
    /// Register-file / control-block bytes saved alongside (set by the
    /// checkpointing runtime; zero at the arena level).
    pub register_bytes: usize,
}

/// A process address space in reliable memory.
#[derive(Debug)]
pub struct Arena {
    layout: Layout,
    data: Vec<u8>,
    /// Per-page epoch stamps: page `p` is dirty iff `page_epoch[p] ==
    /// epoch`. Commit/rollback advance `epoch` instead of clearing flags.
    page_epoch: Vec<u32>,
    /// The current commit-interval epoch (starts above every stamp).
    epoch: u32,
    /// Before-images of dirtied pages, in first-touch order: (page index,
    /// pooled 4 KiB buffer).
    undo: Vec<(usize, Box<[u8]>)>,
    /// Recycled before-image buffers awaiting reuse.
    pool: Vec<Box<[u8]>>,
    stats: ArenaStats,
}

impl Clone for Arena {
    fn clone(&self) -> Self {
        // The free pool is warm-up state, not semantics: a clone starts
        // with an empty pool and refills it on its own commits.
        Arena {
            layout: self.layout,
            data: self.data.clone(),
            page_epoch: self.page_epoch.clone(),
            epoch: self.epoch,
            undo: self.undo.clone(),
            pool: Vec::new(),
            stats: self.stats,
        }
    }
}

impl Arena {
    /// Creates a zeroed arena with the given layout.
    pub fn new(layout: Layout) -> Self {
        let pages = layout.total_pages();
        Arena {
            layout,
            data: vec![0; pages * PAGE_SIZE],
            page_epoch: vec![0; pages],
            epoch: 1,
            undo: Vec::new(),
            pool: Vec::new(),
            stats: ArenaStats::default(),
        }
    }

    /// The arena's layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Total size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// The byte range of a region.
    pub fn region_range(&self, region: Region) -> std::ops::Range<usize> {
        let g = self.layout.globals_pages * PAGE_SIZE;
        let s = self.layout.stack_pages * PAGE_SIZE;
        match region {
            Region::Globals => 0..g,
            Region::Stack => g..g + s,
            Region::Heap => g + s..self.data.len(),
        }
    }

    fn check(&self, offset: usize, len: usize) -> MemResult<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.data.len())
        {
            return Err(MemFault::OutOfBounds { offset, len });
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> MemResult<&[u8]> {
        self.check(offset, len)?;
        Ok(&self.data[offset..offset + len])
    }

    /// Writes `bytes` at `offset`, trapping first-touched pages into the
    /// undo log (copy-on-write).
    pub fn write(&mut self, offset: usize, bytes: &[u8]) -> MemResult<()> {
        self.check(offset, bytes.len())?;
        self.trap_range(offset, bytes.len());
        self.stats.writes += 1;
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Fills `len` bytes at `offset` with `byte`.
    pub fn fill(&mut self, offset: usize, len: usize, byte: u8) -> MemResult<()> {
        self.check(offset, len)?;
        self.trap_range(offset, len);
        self.stats.writes += 1;
        self.data[offset..offset + len].fill(byte);
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` within the arena (the ranges
    /// may overlap), trapping the destination pages. One write barrier and
    /// one `memmove` — no intermediate buffer, unlike a read-then-write
    /// pair.
    pub fn copy_within(&mut self, src: usize, dst: usize, len: usize) -> MemResult<()> {
        self.check(src, len)?;
        self.check(dst, len)?;
        self.trap_range(dst, len);
        self.stats.writes += 1;
        self.data.copy_within(src..src + len, dst);
        Ok(())
    }

    fn trap_range(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset / PAGE_SIZE;
        let last = (offset + len - 1) / PAGE_SIZE;
        for page in first..=last {
            if self.page_epoch[page] != self.epoch {
                self.page_epoch[page] = self.epoch;
                self.stats.traps += 1;
                let start = page * PAGE_SIZE;
                let mut image = self
                    .pool
                    .pop()
                    .unwrap_or_else(|| vec![0u8; PAGE_SIZE].into_boxed_slice());
                image.copy_from_slice(&self.data[start..start + PAGE_SIZE]);
                self.undo.push((page, image));
            }
        }
    }

    /// Advances the commit-interval epoch, rewinding the stamps on the
    /// (astronomically rare) wrap so no stale stamp can alias the new
    /// epoch.
    fn bump_epoch(&mut self) {
        if self.epoch == u32::MAX {
            self.page_epoch.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Reads a [`Pod`] value at `offset`.
    pub fn read_pod<T: Pod>(&self, offset: usize) -> MemResult<T> {
        Ok(T::load(self.read(offset, T::SIZE)?))
    }

    /// Writes a [`Pod`] value at `offset`. Encodes through a fixed stack
    /// buffer — no heap allocation on this per-field hot path.
    pub fn write_pod<T: Pod>(&mut self, offset: usize, value: T) -> MemResult<()> {
        if T::SIZE <= POD_STACK_BYTES {
            let mut buf = [0u8; POD_STACK_BYTES];
            value.store(&mut buf[..T::SIZE]);
            self.write(offset, &buf[..T::SIZE])
        } else {
            let mut buf = vec![0u8; T::SIZE];
            value.store(&mut buf);
            self.write(offset, &buf)
        }
    }

    /// Flips one bit (fault injection). Goes through the normal write path:
    /// a corruption caused by buggy code is ordinary process state and is
    /// rolled back like any other write.
    pub fn flip_bit(&mut self, offset: usize, bit: u8) -> MemResult<()> {
        let b = *self.read(offset, 1)?.first().expect("read checked");
        self.write(offset, &[b ^ (1 << (bit % 8))])
    }

    /// Word-wise FNV checksum over a byte range, for application
    /// consistency checks (§2.6): folds eight little-endian bytes per
    /// multiply with a byte-wise tail, ~8× fewer multiplies than byte-wise
    /// FNV-1a at the same diffusion.
    pub fn checksum(&self, offset: usize, len: usize) -> MemResult<u64> {
        let bytes = self.read(offset, len)?;
        let mut h = FNV_OFFSET;
        let mut words = bytes.chunks_exact(8);
        for w in &mut words {
            h ^= u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            h = h.wrapping_mul(FNV_PRIME);
        }
        for &b in words.remainder() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        Ok(h)
    }

    /// Number of pages dirtied since the last commit.
    pub fn dirty_page_count(&self) -> usize {
        self.undo.len()
    }

    /// Indices of the pages dirtied since the last commit, ascending.
    /// The durable backend reads these pages' *after*-images when
    /// encoding a redo record; sorting makes the encoding canonical
    /// (equal states produce equal log bytes regardless of write order).
    pub fn dirty_page_indices(&self) -> Vec<usize> {
        let mut pages: Vec<usize> = self.undo.iter().map(|(p, _)| *p).collect();
        pages.sort_unstable();
        pages
    }

    /// Buffers currently parked in the undo-page pool (observability for
    /// tests and bench reports).
    pub fn pooled_pages(&self) -> usize {
        self.pool.len()
    }

    /// Commits: atomically discards the undo log, making the current state
    /// the recovery point. O(dirty pages): the epoch bump retires every
    /// dirty stamp at once, and the before-image buffers are recycled into
    /// the pool. Returns what had to be persisted.
    pub fn commit(&mut self) -> CommitRecord {
        let dirty_pages = self.undo.len();
        let record = CommitRecord {
            dirty_pages,
            dirty_bytes: dirty_pages * PAGE_SIZE,
            register_bytes: 0,
        };
        self.pool
            .extend(self.undo.drain(..).map(|(_, image)| image));
        self.bump_epoch();
        self.stats.commits += 1;
        self.stats.committed_pages += dirty_pages as u64;
        self.stats.committed_bytes += record.dirty_bytes as u64;
        record
    }

    /// Executes a commit that is interrupted by a crash at `point`,
    /// resolving the arena to the state a recovery would observe.
    ///
    /// Returns `None` for [`CommitCrashPoint::PreLog`] (the commit never
    /// happened; the arena — contents, undo log, stats — is untouched) and
    /// `Some(record)` otherwise, where the resulting state, commit record
    /// and statistics are bitwise-identical to a clean [`Arena::commit`]:
    /// the commit record was durable before the crash and the undo-log
    /// truncation is idempotent, so recovery completes it.
    pub fn commit_crashed(&mut self, point: CommitCrashPoint) -> Option<CommitRecord> {
        match point {
            CommitCrashPoint::PreLog => None,
            CommitCrashPoint::MidUndoWalk => {
                // The crash tears the truncation walk in half; recovery
                // replays the remainder. Both halves retire buffers into
                // the pool exactly as `commit` does, so the end state is
                // indistinguishable from an uninterrupted commit.
                let dirty_pages = self.undo.len();
                let record = CommitRecord {
                    dirty_pages,
                    dirty_bytes: dirty_pages * PAGE_SIZE,
                    register_bytes: 0,
                };
                let torn_at = dirty_pages / 2;
                self.pool
                    .extend(self.undo.drain(torn_at..).map(|(_, image)| image));
                // -- simulated crash here; recovery resumes the walk --
                self.pool
                    .extend(self.undo.drain(..).map(|(_, image)| image));
                self.bump_epoch();
                self.stats.commits += 1;
                self.stats.committed_pages += dirty_pages as u64;
                self.stats.committed_bytes += record.dirty_bytes as u64;
                Some(record)
            }
            CommitCrashPoint::PostBump => Some(self.commit()),
        }
    }

    /// Test-only hook: forces the commit-interval epoch so integration
    /// tests can drive the u32 counter across wraparound without millions
    /// of commits. Stamps above the new epoch are rewound to zero so the
    /// arena stays in a state reachable by real execution.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        assert!(epoch > 0, "epoch 0 would mark every page clean-forever");
        for stamp in &mut self.page_epoch {
            if *stamp >= epoch {
                *stamp = 0;
            }
        }
        self.epoch = epoch;
    }

    /// Rolls back to the last committed state by applying the undo log's
    /// before-images (most recent first). Returns the number of pages
    /// restored.
    pub fn rollback(&mut self) -> usize {
        self.rollback_skipping(0)
    }

    /// As [`Arena::rollback`], but *skips re-installing* the `skip` most
    /// recently captured before-images, leaving those pages at their
    /// crashed contents. This models an unsound partial restore — a
    /// component restart that neglects to re-install part of the
    /// committed state — and exists solely as the seeded mutation behind
    /// the availability campaign's oracle self-test: recovery proceeds
    /// with memory ahead of (or inconsistent with) the rewound cursors,
    /// which `ft_core::oracle::check_recovery` must flag. The skipped
    /// buffers are still returned to the pool and the epoch still bumps,
    /// so only the page *contents* are wrong. `rollback()` is
    /// `rollback_skipping(0)`. Returns the number of pages restored.
    pub fn rollback_skipping(&mut self, skip: usize) -> usize {
        let mut restored = 0;
        for (i, (page, image)) in self.undo.drain(..).rev().enumerate() {
            if i >= skip {
                let start = page * PAGE_SIZE;
                self.data[start..start + PAGE_SIZE].copy_from_slice(&image);
                restored += 1;
            }
            self.pool.push(image);
        }
        self.bump_epoch();
        self.stats.rollbacks += 1;
        restored
    }

    /// Running statistics.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_the_arena() {
        let a = Arena::new(Layout {
            globals_pages: 1,
            stack_pages: 2,
            heap_pages: 3,
        });
        assert_eq!(a.region_range(Region::Globals), 0..4096);
        assert_eq!(a.region_range(Region::Stack), 4096..3 * 4096);
        assert_eq!(a.region_range(Region::Heap), 3 * 4096..6 * 4096);
        assert_eq!(a.size(), 6 * 4096);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut a = Arena::new(Layout::small());
        a.write(100, b"hello").unwrap();
        assert_eq!(a.read(100, 5).unwrap(), b"hello");
        a.write_pod(200, 0xDEADBEEFu32).unwrap();
        assert_eq!(a.read_pod::<u32>(200).unwrap(), 0xDEADBEEF);
    }

    #[test]
    fn out_of_bounds_is_a_segfault() {
        let mut a = Arena::new(Layout::small());
        let sz = a.size();
        assert!(matches!(a.read(sz, 1), Err(MemFault::OutOfBounds { .. })));
        assert!(a.write(sz - 2, b"abc").is_err());
        // Overflowing offset must not panic.
        assert!(a.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn rollback_restores_last_commit() {
        let mut a = Arena::new(Layout::small());
        a.write(0, b"committed").unwrap();
        a.commit();
        a.write(0, b"scratched").unwrap();
        a.write(5000, b"more").unwrap();
        assert_eq!(a.dirty_page_count(), 2); // Page 0 and page 1.
        let restored = a.rollback();
        assert_eq!(restored, 2);
        assert_eq!(a.read(0, 9).unwrap(), b"committed");
        assert_eq!(a.read(5000, 4).unwrap(), &[0, 0, 0, 0]);
    }

    #[test]
    fn rollback_skipping_leaves_crashed_pages() {
        let mut a = Arena::new(Layout::small());
        a.write(0, b"committed").unwrap();
        a.commit();
        a.write(0, b"scratched").unwrap(); // Page 0 dirtied first.
        a.write(5000, b"more").unwrap(); // Page 1 dirtied second.
                                         // Skip the most recent before-image (page 1): it keeps its
                                         // crashed contents while page 0 is restored.
        let restored = a.rollback_skipping(1);
        assert_eq!(restored, 1);
        assert_eq!(a.read(0, 9).unwrap(), b"committed");
        assert_eq!(a.read(5000, 4).unwrap(), b"more");
        // The undo log is fully drained either way: a subsequent write
        // starts a fresh interval with a fresh before-image.
        assert_eq!(a.dirty_page_count(), 0);
    }

    #[test]
    fn commit_then_rollback_is_noop() {
        let mut a = Arena::new(Layout::small());
        a.write(10, &[1, 2, 3]).unwrap();
        a.commit();
        assert_eq!(a.rollback(), 0);
        assert_eq!(a.read(10, 3).unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn traps_fire_once_per_page_per_interval() {
        let mut a = Arena::new(Layout::small());
        a.write(0, &[1]).unwrap();
        a.write(1, &[2]).unwrap();
        a.write(2, &[3]).unwrap();
        assert_eq!(a.stats().traps, 1);
        a.write(PAGE_SIZE, &[4]).unwrap();
        assert_eq!(a.stats().traps, 2);
        a.commit();
        // A new interval: the same page traps again.
        a.write(0, &[5]).unwrap();
        assert_eq!(a.stats().traps, 3);
    }

    #[test]
    fn commit_record_counts_dirty_pages() {
        let mut a = Arena::new(Layout::small());
        a.write(0, &[1]).unwrap();
        a.write(2 * PAGE_SIZE, &[1]).unwrap();
        let rec = a.commit();
        assert_eq!(rec.dirty_pages, 2);
        assert_eq!(rec.dirty_bytes, 2 * PAGE_SIZE);
        let rec2 = a.commit();
        assert_eq!(rec2.dirty_pages, 0);
    }

    #[test]
    fn cross_page_write_traps_both_pages() {
        let mut a = Arena::new(Layout::small());
        a.write(PAGE_SIZE - 2, &[1, 2, 3, 4]).unwrap();
        assert_eq!(a.stats().traps, 2);
        assert_eq!(a.dirty_page_count(), 2);
    }

    #[test]
    fn flip_bit_is_undoable() {
        let mut a = Arena::new(Layout::small());
        a.write_pod(64, 0u64).unwrap();
        a.commit();
        a.flip_bit(64, 3).unwrap();
        assert_eq!(a.read_pod::<u64>(64).unwrap(), 8);
        a.rollback();
        assert_eq!(a.read_pod::<u64>(64).unwrap(), 0);
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut a = Arena::new(Layout::small());
        let c0 = a.checksum(0, 128).unwrap();
        a.write(64, &[0xFF]).unwrap();
        let c1 = a.checksum(0, 128).unwrap();
        assert_ne!(c0, c1);
        assert_eq!(a.checksum(0, 128).unwrap(), c1);
    }

    #[test]
    fn checksum_tail_bytes_matter() {
        let mut a = Arena::new(Layout::small());
        // A 13-byte range exercises the word loop and the byte tail.
        let c0 = a.checksum(0, 13).unwrap();
        a.write(12, &[1]).unwrap();
        assert_ne!(a.checksum(0, 13).unwrap(), c0, "tail byte must count");
        // Sub-word ranges are byte-wise FNV-1a exactly.
        a.write(0, b"a").unwrap();
        assert_eq!(a.checksum(0, 1).unwrap(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fill_works_and_traps() {
        let mut a = Arena::new(Layout::small());
        a.fill(100, 300, 0xAB).unwrap();
        assert!(a.read(100, 300).unwrap().iter().all(|&b| b == 0xAB));
        assert_eq!(a.stats().traps, 1);
        assert!(a.fill(a.size() - 10, 20, 0).is_err());
    }

    #[test]
    fn copy_within_moves_and_traps_like_a_write() {
        let mut a = Arena::new(Layout::small());
        a.write(0, b"abcdef").unwrap();
        a.commit();
        // Overlapping shift right by two, as ArenaVec::insert does.
        a.copy_within(0, 2, 6).unwrap();
        assert_eq!(a.read(2, 6).unwrap(), b"abcdef");
        let s = a.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.traps, 2, "one trap per interval per touched page");
        a.rollback();
        assert_eq!(a.read(0, 6).unwrap(), b"abcdef");
        assert!(a.copy_within(0, a.size() - 2, 4).is_err());
        assert!(a.copy_within(a.size() - 2, 0, 4).is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut a = Arena::new(Layout::small());
        a.write(0, &[1]).unwrap();
        a.commit();
        a.write(0, &[2]).unwrap();
        a.rollback();
        let s = a.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.rollbacks, 1);
        assert_eq!(s.writes, 2);
        assert_eq!(s.committed_pages, 1);
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let mut a = ArenaStats {
            traps: 1,
            writes: 2,
            commits: 3,
            rollbacks: 4,
            committed_pages: 5,
            committed_bytes: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(a.traps, 2);
        assert_eq!(a.committed_bytes, 12);
    }

    #[test]
    fn undo_buffers_recycle_through_the_pool() {
        let mut a = Arena::new(Layout::small());
        a.write(0, &[1]).unwrap();
        a.write(PAGE_SIZE, &[2]).unwrap();
        assert_eq!(a.pooled_pages(), 0);
        a.commit();
        assert_eq!(a.pooled_pages(), 2, "commit parks both before-images");
        a.write(0, &[3]).unwrap();
        assert_eq!(a.pooled_pages(), 1, "a trap draws from the pool");
        a.rollback();
        assert_eq!(a.pooled_pages(), 2, "rollback returns the buffer");
        assert_eq!(a.read(0, 1).unwrap(), &[1]);
    }

    #[test]
    fn epoch_wrap_rewinds_stamps() {
        let mut a = Arena::new(Layout::small());
        a.epoch = u32::MAX - 1;
        a.write(0, &[1]).unwrap();
        a.commit(); // epoch -> u32::MAX
        a.write(0, &[2]).unwrap();
        assert_eq!(a.dirty_page_count(), 1);
        a.commit(); // wraps: stamps rewound, epoch -> 1
        assert_eq!(a.epoch, 1);
        assert_eq!(a.dirty_page_count(), 0);
        // A fresh write still traps exactly once.
        let traps = a.stats().traps;
        a.write(0, &[3]).unwrap();
        a.write(1, &[4]).unwrap();
        assert_eq!(a.stats().traps, traps + 1);
        a.rollback();
        assert_eq!(a.read(0, 1).unwrap(), &[2]);
    }

    #[test]
    fn commit_crashed_pre_log_loses_the_commit() {
        let mut a = Arena::new(Layout::small());
        a.write(0, b"base").unwrap();
        a.commit();
        a.write(0, b"next").unwrap();
        let stats_before = a.stats();
        assert_eq!(a.commit_crashed(CommitCrashPoint::PreLog), None);
        assert_eq!(a.stats(), stats_before, "a lost commit records nothing");
        assert_eq!(a.dirty_page_count(), 1, "undo log survives");
        a.rollback();
        assert_eq!(a.read(0, 4).unwrap(), b"base");
    }

    #[test]
    fn commit_crashed_mid_and_post_match_a_clean_commit() {
        for point in [CommitCrashPoint::MidUndoWalk, CommitCrashPoint::PostBump] {
            let mut clean = Arena::new(Layout::small());
            let mut torn = Arena::new(Layout::small());
            for a in [&mut clean, &mut torn] {
                a.write(0, b"one").unwrap();
                a.write(PAGE_SIZE, b"two").unwrap();
                a.write(3 * PAGE_SIZE, b"three").unwrap();
            }
            let want = clean.commit();
            let got = torn.commit_crashed(point);
            assert_eq!(got, Some(want), "{point}");
            assert_eq!(torn.stats(), clean.stats(), "{point}");
            assert_eq!(torn.dirty_page_count(), 0, "{point}");
            assert_eq!(torn.pooled_pages(), clean.pooled_pages(), "{point}");
            assert_eq!(
                torn.checksum(0, torn.size()).unwrap(),
                clean.checksum(0, clean.size()).unwrap(),
                "{point}"
            );
            // The next interval behaves identically too.
            for a in [&mut clean, &mut torn] {
                a.write(0, b"later").unwrap();
            }
            assert_eq!(torn.rollback(), clean.rollback(), "{point}");
            assert_eq!(torn.read(0, 3).unwrap(), b"one", "{point}");
        }
    }

    #[test]
    fn commit_crash_point_names_are_stable() {
        let names: Vec<&str> = CommitCrashPoint::ALL
            .iter()
            .map(super::CommitCrashPoint::name)
            .collect();
        assert_eq!(names, ["pre-log", "mid-undo-walk", "post-bump"]);
        assert_eq!(CommitCrashPoint::MidUndoWalk.to_string(), "mid-undo-walk");
    }

    #[test]
    fn force_epoch_rewinds_aliasing_stamps() {
        let mut a = Arena::new(Layout::small());
        a.write(0, &[1]).unwrap();
        a.commit();
        a.force_epoch(u32::MAX - 1);
        // The stamp from epoch 1 is below the forced epoch: page 0 must
        // still trap as dirty in the new interval.
        let traps = a.stats().traps;
        a.write(0, &[2]).unwrap();
        assert_eq!(a.stats().traps, traps + 1);
        a.rollback();
        assert_eq!(a.read(0, 1).unwrap(), &[1]);
    }

    #[test]
    fn clone_preserves_contents_and_undo() {
        let mut a = Arena::new(Layout::small());
        a.write(0, b"persist me").unwrap();
        a.commit();
        a.write(0, b"scratch!!!").unwrap();
        let mut b = a.clone();
        assert_eq!(b.read(0, 10).unwrap(), b"scratch!!!");
        b.rollback();
        assert_eq!(b.read(0, 10).unwrap(), b"persist me");
        // The original is unaffected by the clone's rollback.
        assert_eq!(a.read(0, 10).unwrap(), b"scratch!!!");
    }
}
