//! Storage cost models for commits: Rio reliable memory vs. a synchronous
//! disk (§3's Discount Checking vs. DC-disk).
//!
//! "Taking a checkpoint amounts to copying the register file, atomically
//! discarding the undo log, and resetting page protections" — memory-speed
//! on Rio. DC-disk instead "wrote out a redo log synchronously to disk at
//! checkpoint time", paying seek/rotation latency plus transfer. Constants
//! are calibrated to the paper's 1998-era testbed (IBM Ultrastar SCSI disk,
//! 100 MHz SDRAM) so that Figure 8's overhead *shape* is reproduced.
//!
//! **Invariant:** every cost here is a pure function of the
//! [`CommitRecord`] (and the constants below) — never of how the host
//! implements the write barrier. The epoch/pool arena rewrite made traps
//! and commits cheaper in *wall-clock* while the `CommitRecord`s it emits,
//! and therefore every simulated time in every trace and table, are
//! bitwise identical to the naive implementation's.

use crate::arena::CommitRecord;

/// Nanoseconds, the simulation time unit.
pub type Nanos = u64;

/// Cost model for Rio reliable-memory commits (Discount Checking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RioModel {
    /// Fixed cost per commit: copy the register file, discard the undo log,
    /// reset page protections.
    pub base_ns: Nanos,
    /// Cost per dirty page: resetting its protection.
    pub per_page_ns: Nanos,
    /// Cost per register/control byte copied to the persistent buffer.
    pub per_reg_byte_ns: Nanos,
}

impl Default for RioModel {
    fn default() -> Self {
        // ~35 µs fixed (mprotect sweep + register copy on a 400 MHz PII),
        // ~1.5 µs per dirty page.
        RioModel {
            base_ns: 35_000,
            per_page_ns: 1_500,
            per_reg_byte_ns: 3,
        }
    }
}

impl RioModel {
    /// Time to execute a commit that persisted `rec`.
    pub fn commit_cost(&self, rec: &CommitRecord) -> Nanos {
        self.base_ns
            + self.per_page_ns * rec.dirty_pages as Nanos
            + self.per_reg_byte_ns * rec.register_bytes as Nanos
    }
}

/// Cost model for synchronous-disk commits (DC-disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskModel {
    /// Seek + rotational latency per synchronous write.
    pub latency_ns: Nanos,
    /// Sustained transfer bandwidth, bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl Default for DiskModel {
    fn default() -> Self {
        // IBM Ultrastar DCAS-34330W-class synchronous write through the
        // FreeBSD 2.2.7 filesystem: positioning plus metadata/sync
        // overhead ≈ 40 ms per synchronous redo-log write, ~10 MB/s
        // sustained transfer. Calibrated so nvi's per-keystroke commit
        // reproduces Figure 8(a)'s ~43% DC-disk overhead and xpilot's
        // per-frame commits saturate the 66.7 ms frame budget as in
        // Figure 8(c).
        DiskModel {
            latency_ns: 40_000_000,
            bandwidth_bytes_per_sec: 10_000_000,
        }
    }
}

impl DiskModel {
    /// Time to synchronously write `bytes` to the redo log.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "bytes * 1e9 / bandwidth fits u64 for any realistic transfer (< ~584 years of ns)"
    )]
    pub fn write_cost(&self, bytes: usize) -> Nanos {
        self.latency_ns
            + (bytes as u128 * 1_000_000_000 / self.bandwidth_bytes_per_sec as u128) as Nanos
    }

    /// Time to append a small log record: sequential, so most positioning
    /// is avoided.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "bytes * 1e9 / bandwidth fits u64 for any realistic transfer (< ~584 years of ns)"
    )]
    pub fn append_cost(&self, bytes: usize) -> Nanos {
        self.latency_ns / 4
            + (bytes as u128 * 1_000_000_000 / self.bandwidth_bytes_per_sec as u128) as Nanos
    }

    /// Time to execute a commit that persisted `rec` (registers + dirty
    /// pages to the redo log in one synchronous write).
    pub fn commit_cost(&self, rec: &CommitRecord) -> Nanos {
        self.write_cost(rec.dirty_bytes + rec.register_bytes)
    }
}

/// Cost model for the log-structured durable file backend (DC-durable,
/// [`crate::durable`]). Commits are strictly sequential appends to an
/// already-open redo log, so positioning is amortized away and the
/// per-commit floor is one fsync through the filesystem — two orders of
/// magnitude under DC-disk's seek-dominated synchronous write, two over
/// Rio's memory-speed commit. Calibrated against the same Ultrastar-class
/// testbed disk with its write cache enabled for sequential log appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableModel {
    /// fsync of an appended log region: track-buffer flush plus metadata.
    pub fsync_ns: Nanos,
    /// Sustained sequential-append bandwidth, bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Per-record CPU/syscall cost: frame encoding plus the `write`.
    pub per_record_ns: Nanos,
}

impl Default for DurableModel {
    fn default() -> Self {
        // ~0.5 ms per group-commit fsync (sequential append hits the
        // track buffer, no positioning), the disk's 10 MB/s sustained
        // transfer, ~10 µs of encoding + syscall per record.
        DurableModel {
            fsync_ns: 500_000,
            bandwidth_bytes_per_sec: 10_000_000,
            per_record_ns: 10_000,
        }
    }
}

impl DurableModel {
    /// Time to transfer `bytes` into the log.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "bytes * 1e9 / bandwidth fits u64 for any realistic transfer (< ~584 years of ns)"
    )]
    fn transfer_cost(&self, bytes: usize) -> Nanos {
        (bytes as u128 * 1_000_000_000 / self.bandwidth_bytes_per_sec as u128) as Nanos
    }

    /// Time to execute a commit that persisted `rec`: encode + append
    /// the framed record (length/CRC prefix plus a 4-byte index per
    /// page), then fsync.
    pub fn commit_cost(&self, rec: &CommitRecord) -> Nanos {
        let framed = rec.dirty_bytes + rec.register_bytes + 21 + 4 * rec.dirty_pages;
        self.per_record_ns + self.transfer_cost(framed) + self.fsync_ns
    }

    /// Time to append a small log record riding the group commit (no
    /// fsync of its own).
    pub fn append_cost(&self, bytes: usize) -> Nanos {
        self.per_record_ns + self.transfer_cost(bytes)
    }
}

/// The checkpoint medium: Discount Checking on Rio, DC-disk, or the
/// log-structured durable file backend (DC-durable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Medium {
    /// Reliable main memory (Rio + Vista): Discount Checking.
    Rio(RioModel),
    /// Synchronous redo log on disk: DC-disk.
    Disk(DiskModel),
    /// Log-structured durable file backend: DC-durable.
    DurableLog(DurableModel),
}

impl Medium {
    /// Discount Checking with default constants.
    pub fn discount_checking() -> Self {
        Medium::Rio(RioModel::default())
    }

    /// DC-disk with default constants.
    pub fn dc_disk() -> Self {
        Medium::Disk(DiskModel::default())
    }

    /// DC-durable (the log-structured file backend) with default
    /// constants.
    pub fn durable_log() -> Self {
        Medium::DurableLog(DurableModel::default())
    }

    /// Display name matching the paper (DC-durable is this repo's third
    /// medium; the paper's two are named as in §3).
    pub fn name(&self) -> &'static str {
        match self {
            Medium::Rio(_) => "Discount Checking",
            Medium::Disk(_) => "DC-disk",
            Medium::DurableLog(_) => "DC-durable",
        }
    }

    /// Time to execute a commit that persisted `rec`.
    pub fn commit_cost(&self, rec: &CommitRecord) -> Nanos {
        match self {
            Medium::Rio(m) => m.commit_cost(rec),
            Medium::Disk(m) => m.commit_cost(rec),
            Medium::DurableLog(m) => m.commit_cost(rec),
        }
    }

    /// Time to persist one non-determinism log record: memory-speed on Rio,
    /// a sequential append on either disk medium.
    pub fn log_record_cost(&self, bytes: usize) -> Nanos {
        match self {
            Medium::Rio(_) => ND_LOG_RECORD_NS,
            Medium::Disk(m) => m.append_cost(bytes),
            Medium::DurableLog(m) => m.append_cost(bytes),
        }
    }
}

/// Cost of one copy-on-write page-protection trap (first write to a clean
/// page in a commit interval).
pub const COW_TRAP_NS: Nanos = 6_000;

/// Cost of writing one non-determinism log record (Rio-resident, cheap).
pub const ND_LOG_RECORD_NS: Nanos = 2_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pages: usize, regs: usize) -> CommitRecord {
        CommitRecord {
            dirty_pages: pages,
            dirty_bytes: pages * crate::arena::PAGE_SIZE,
            register_bytes: regs,
        }
    }

    #[test]
    fn rio_commit_is_microseconds() {
        let m = RioModel::default();
        let c = m.commit_cost(&rec(10, 256));
        assert!(c > 35_000);
        assert!(c < 200_000, "Rio commits stay well under a millisecond");
    }

    #[test]
    fn disk_commit_is_milliseconds() {
        let m = DiskModel::default();
        let c = m.commit_cost(&rec(10, 256));
        assert!(c > 30_000_000, "positioning dominates");
        // 10 pages ≈ 41 KB ≈ 4 ms transfer on top of ~40 ms.
        assert!(c < 60_000_000);
        assert!(m.append_cost(64) < m.write_cost(64) / 2);
    }

    #[test]
    fn disk_cost_grows_with_bytes() {
        let m = DiskModel::default();
        assert!(m.commit_cost(&rec(100, 0)) > m.commit_cost(&rec(1, 0)));
        assert_eq!(m.write_cost(0), m.latency_ns);
    }

    #[test]
    fn rio_is_orders_of_magnitude_cheaper_than_disk() {
        let r = Medium::discount_checking();
        let d = Medium::dc_disk();
        let rc = rec(5, 128);
        assert!(d.commit_cost(&rc) / r.commit_cost(&rc).max(1) > 50);
    }

    #[test]
    fn durable_log_sits_between_rio_and_disk() {
        let r = Medium::discount_checking();
        let l = Medium::durable_log();
        let d = Medium::dc_disk();
        let rc = rec(5, 128);
        let (rio, log, disk) = (r.commit_cost(&rc), l.commit_cost(&rc), d.commit_cost(&rc));
        assert!(rio < log, "{rio} !< {log}");
        assert!(log < disk, "{log} !< {disk}");
        // An order of magnitude each way: the fsync floor dominates Rio's
        // mprotect sweep; DC-disk's positioning dominates the fsync.
        assert!(log / rio > 10, "log {log} vs rio {rio}");
        assert!(disk / log > 10, "disk {disk} vs log {log}");
    }

    #[test]
    fn durable_log_costs_grow_with_payload() {
        let m = DurableModel::default();
        assert!(m.commit_cost(&rec(100, 0)) > m.commit_cost(&rec(1, 0)));
        assert!(m.append_cost(4096) > m.append_cost(64));
        assert!(
            m.append_cost(64) < m.commit_cost(&rec(0, 64)),
            "records riding the group commit skip the fsync"
        );
    }

    #[test]
    fn costs_are_pure_in_the_commit_record() {
        // The simulated cost model must not observe anything beyond the
        // record — equal records (however the arena produced them) price
        // identically on both media, pinning that host-side optimizations
        // cannot shift simulated time.
        let a = rec(7, 96);
        let b = CommitRecord { ..a };
        for m in [
            Medium::discount_checking(),
            Medium::dc_disk(),
            Medium::durable_log(),
        ] {
            assert_eq!(m.commit_cost(&a), m.commit_cost(&b));
        }
    }

    #[test]
    fn medium_names() {
        assert_eq!(Medium::discount_checking().name(), "Discount Checking");
        assert_eq!(Medium::dc_disk().name(), "DC-disk");
        assert_eq!(Medium::durable_log().name(), "DC-durable");
    }
}
