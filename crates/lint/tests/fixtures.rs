//! Fixture-driven rule verification: every rule flags its planted
//! violation (golden `(rule, file, line)` snapshot), and every clean
//! twin passes. Line numbers are load-bearing — editing a fixture means
//! updating the golden list, which is the point: the snapshot notices
//! when a rule's aim drifts.

use std::path::PathBuf;

use ft_lint::scope::Config;

fn fixture_config(dir: &str) -> Config {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir);
    let mut config = Config::bare(root);
    // Both fixture sets share the scope shape: `open` roots a decode
    // closure in the panic and arith files.
    config
        .recovery_roots
        .push(("panic_in_recovery.rs".to_string(), vec!["open".to_string()]));
    config
        .recovery_roots
        .push(("unchecked_arith.rs".to_string(), vec!["open".to_string()]));
    config
}

#[test]
fn every_planted_violation_is_found_exactly_where_planted() {
    let report = ft_lint::analyze(&fixture_config("violations")).expect("analyze fixtures");

    let got: Vec<(&str, &str, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect();
    let want: Vec<(&str, &str, usize)> = vec![
        ("bad-suppression", "bad_suppression.rs", 3),
        ("bad-suppression", "bad_suppression.rs", 6),
        ("float-in-fingerprint", "float_in_fingerprint.rs", 4),
        ("float-in-fingerprint", "float_in_fingerprint.rs", 5),
        ("panic-in-recovery", "panic_in_recovery.rs", 10),
        ("unchecked-arith-in-decode", "unchecked_arith.rs", 8),
        ("unordered-iteration", "unordered_iteration.rs", 7),
        ("unused-suppression", "unused_suppression.rs", 3),
        ("wall-clock", "wall_clock.rs", 6),
    ];
    assert_eq!(
        got, want,
        "golden findings drifted:\n{:#?}",
        report.findings
    );
    assert!(report.suppressed.is_empty());
}

#[test]
fn planted_closure_reaches_the_callee_not_just_the_root() {
    // The panic and arith violations live in *callees* of `open`; the
    // scope stats prove the closure actually walked the edge.
    let report = ft_lint::analyze(&fixture_config("violations")).expect("analyze fixtures");
    let scopes: Vec<(&str, usize)> = report
        .scopes
        .iter()
        .map(|s| (s.file.as_str(), s.fns_in_scope))
        .collect();
    assert_eq!(
        scopes,
        vec![("panic_in_recovery.rs", 2), ("unchecked_arith.rs", 2)]
    );
}

#[test]
fn every_clean_twin_passes() {
    let mut config = fixture_config("clean");
    // The timing twin reads the wall clock legitimately: it is a
    // configured campaign driver, exactly like perf.rs in the real tree.
    config.driver_files.push("driver_timing.rs".to_string());

    let report = ft_lint::analyze(&config).expect("analyze clean fixtures");
    assert_eq!(
        report.findings,
        vec![],
        "clean twins must produce zero findings"
    );
    // The one suppression in used_suppression.rs matched its finding —
    // used, therefore not an unused-suppression meta finding.
    assert_eq!(report.suppressed.len(), 1);
    let s = &report.suppressed[0];
    assert_eq!(s.rule, "unordered-iteration");
    assert_eq!(s.file, "used_suppression.rs");
    assert!(s.reason.contains("XOR"));
}
