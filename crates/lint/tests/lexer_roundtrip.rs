//! Lexer round-trip property: concatenating the text of every token
//! reproduces the input byte-for-byte, for (a) every `.rs` file in the
//! workspace — fixtures and all — and (b) seeded synthetic sources
//! assembled from a fragment pool that leans on the constructs that
//! break naive lexers (raw strings, nested block comments, lifetimes
//! vs. char literals).

use std::fs;
use std::path::{Path, PathBuf};

use ft_lint::lexer::{lex, TokenKind};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for ent in entries {
        let path = ent.path();
        let name = ent.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn reassemble(src: &str) -> (String, usize) {
    let tokens = lex(src);
    let mut s = String::with_capacity(src.len());
    let mut unknown = 0;
    for t in &tokens {
        if t.kind == TokenKind::Unknown {
            unknown += 1;
        }
        s.push_str(t.text(src));
    }
    (s, unknown)
}

#[test]
fn every_workspace_file_round_trips_byte_exact() {
    let mut paths = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        walk(&workspace_root().join(dir), &mut paths);
    }
    assert!(
        paths.len() > 100,
        "workspace walk found only {} files — wrong root?",
        paths.len()
    );
    for p in paths {
        let src = fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
        let (back, unknown) = reassemble(&src);
        assert_eq!(back, src, "round-trip mismatch in {}", p.display());
        assert_eq!(unknown, 0, "unknown tokens in {}", p.display());
    }
}

/// splitmix64 — the same tiny deterministic generator the simulator's
/// own RNG derives from.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn seeded_fragment_soup_round_trips() {
    // Fragments chosen adversarially: every pair-wise concatenation must
    // still lex to the original bytes.
    const FRAGMENTS: &[&str] = &[
        "fn f() {}",
        "let s = \"a \\\" } // not a comment\";",
        "let r = r#\"raw \" quote\"#;",
        "let c = 'x';",
        "let nl = '\\n';",
        "fn g<'a>(x: &'a str) -> &'a str { x }",
        "/* outer /* nested */ still comment */",
        "// line comment with \"quote\" and 'tick\n",
        "let f = 1.5e-3_f64;",
        "let h = 0xdead_beef_u64;",
        "let b = b\"bytes \\\" here\";",
        "let t = (a, b);",
        "x += y * z - w[0];",
        "'label: loop { break 'label; }",
        "#[derive(Debug)]",
        "//! doc\n",
        "let u = 7usize;",
        "m.values().map(|v| v + 1);",
    ];
    let mut state = 0x5eed_f00d_u64;
    for _ in 0..500 {
        let n = 1 + (splitmix(&mut state) % 12) as usize;
        let mut src = String::new();
        for _ in 0..n {
            let pick = usize::try_from(splitmix(&mut state) % FRAGMENTS.len() as u64).unwrap();
            src.push_str(FRAGMENTS[pick]);
            src.push('\n');
        }
        let (back, _) = reassemble(&src);
        assert_eq!(back, src, "round-trip mismatch for soup:\n{src}");
    }
}

#[test]
fn even_garbage_bytes_round_trip() {
    // The lexer must consume *anything* without panicking or dropping
    // bytes — broken source degrades analysis, never crashes it.
    let mut state = 0xbad_c0de_u64;
    for _ in 0..200 {
        let n = (splitmix(&mut state) % 160) as usize;
        let mut src = String::new();
        for _ in 0..n {
            // Mixed printable ASCII, quotes, backslashes, and multibyte.
            let c = match splitmix(&mut state) % 8 {
                0 => '"',
                1 => '\'',
                2 => '\\',
                3 => '\n',
                4 => '€',
                _ => char::from(0x20 + u8::try_from(splitmix(&mut state) % 0x5f).unwrap()),
            };
            src.push(c);
        }
        let (back, _) = reassemble(&src);
        assert_eq!(back, src, "round-trip mismatch for garbage:\n{src:?}");
    }
}
