//! Planted: a suppression whose excuse matches nothing.

// ft-lint: allow(wall-clock): stale excuse kept after the fix
pub fn quiet() -> u64 {
    7
}
