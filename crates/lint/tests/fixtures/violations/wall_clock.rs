//! Planted: deterministic code reading the wall clock.

use std::time::Instant;

pub fn step_duration() -> u128 {
    Instant::now().elapsed().as_nanos()
}
