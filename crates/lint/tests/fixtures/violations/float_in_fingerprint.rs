//! Planted: float arithmetic folded into a fingerprint.

pub fn fingerprint_load(samples: &[u64]) -> u64 {
    let mean = samples.iter().copied().sum::<u64>() as f64;
    (mean * 0.5) as u64
}
