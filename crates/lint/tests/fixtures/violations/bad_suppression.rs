//! Planted: malformed suppression markers.

// ft-lint: allow(wall-clock)
pub fn no_reason() {}

// ft-lint: allow(no-such-rule): not a rule
pub fn unknown_rule() {}
