//! Planted: panicking decode reached from a recovery root. The panic
//! sits in a *callee* of the root — finding it proves the call-graph
//! closure, not just root matching.

pub fn open(bytes: &[u8]) -> u32 {
    header(bytes)
}

fn header(bytes: &[u8]) -> u32 {
    let tag = bytes[0];
    u32::from(tag)
}
