//! Planted: hash-order-dependent fold in deterministic scope.

use std::collections::HashMap;

pub fn merge_counts(counts: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in counts {
        total = total.wrapping_add(*v);
    }
    total
}
