//! Planted: bare offset arithmetic in a callee of a decode root.

pub fn open(buf: &[u8], off: usize, len: usize) -> usize {
    span_end(buf, off, len)
}

fn span_end(_buf: &[u8], off: usize, len: usize) -> usize {
    off + len
}
