//! Clean twin: an ordered map makes iteration deterministic.

use std::collections::BTreeMap;

pub fn merge_counts(counts: &BTreeMap<String, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in counts {
        total = total.wrapping_add(*v);
    }
    total
}
