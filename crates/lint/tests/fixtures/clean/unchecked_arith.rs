//! Clean twin: offset arithmetic goes through checked ops.

pub fn open(buf: &[u8], off: usize, len: usize) -> Option<usize> {
    span_end(buf, off, len)
}

fn span_end(_buf: &[u8], off: usize, len: usize) -> Option<usize> {
    off.checked_add(len)
}
