//! Clean twin: decode fail-stops with an error instead of panicking.

pub fn open(bytes: &[u8]) -> Result<u32, ()> {
    header(bytes)
}

fn header(bytes: &[u8]) -> Result<u32, ()> {
    let tag = bytes.first().copied().ok_or(())?;
    Ok(u32::from(tag))
}
