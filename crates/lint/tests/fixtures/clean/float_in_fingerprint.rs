//! Clean twin: the fingerprint folds integers (FNV-1a), no floats.

pub fn fingerprint_load(samples: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in samples {
        h ^= *s;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
