//! Clean twin: a violation with an honest, *used* excuse.

use std::collections::HashMap;

pub fn total(m: &HashMap<u32, u64>) -> u64 {
    let mut acc = 0;
    // ft-lint: allow(unordered-iteration): XOR-commutative fold, order cannot affect the result
    for v in m.values() {
        acc ^= *v;
    }
    acc
}
