//! Clean twin: a campaign driver may read the wall clock — its report
//! carries real timings by design, and no simulated result derives
//! from it. The fixture config lists this file as a driver.

use std::time::Instant;

pub fn wall_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}
