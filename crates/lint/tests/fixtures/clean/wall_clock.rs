//! Clean twin: time comes from the simulated clock, not the OS.

pub fn step_duration(virtual_now_ns: u128, prev_ns: u128) -> u128 {
    virtual_now_ns.saturating_sub(prev_ns)
}
