//! The gate itself, as a test: the workspace configuration must come
//! back clean (zero findings, every suppression used, both recovery
//! scopes resolved), the report must be byte-identical across runs, and
//! every seeded mutant must trip its own rule — a gate that cannot fail
//! guards nothing.

use std::path::PathBuf;

use ft_lint::scope::Config;
use ft_lint::{analyze, apply_mutant, MUTANTS};

fn workspace_config() -> Config {
    Config::workspace(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

#[test]
fn workspace_is_clean_and_scopes_are_alive() {
    let report = analyze(&workspace_config()).expect("analyze workspace");
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings in the workspace:\n{:#?}",
        report.findings
    );
    // A scope with zero fns means the configured entry points no longer
    // exist — the rules would silently stop applying anywhere.
    let scopes: Vec<(&str, usize)> = report
        .scopes
        .iter()
        .map(|s| (s.file.as_str(), s.fns_in_scope))
        .collect();
    assert_eq!(
        scopes.len(),
        2,
        "expected durable.rs + wire.rs scopes: {scopes:?}"
    );
    for (file, fns) in &scopes {
        assert!(*fns > 0, "recovery scope in {file} marked no functions");
    }
    // Every suppression in the tree carries a reason and was consumed
    // (unused ones would have shown up as findings above).
    for s in &report.suppressed {
        assert!(!s.reason.trim().is_empty());
    }
}

#[test]
fn report_is_byte_identical_across_runs() {
    let a = analyze(&workspace_config()).expect("first run").to_json();
    let b = analyze(&workspace_config()).expect("second run").to_json();
    assert_eq!(a, b);
}

#[test]
fn every_seeded_mutant_trips_its_own_rule() {
    for m in MUTANTS {
        let mut config = workspace_config();
        apply_mutant(&mut config, m);
        let report = analyze(&config).expect("analyze mutated workspace");
        let hits = report
            .findings
            .iter()
            .filter(|f| f.rule == m.rule && f.file == m.path)
            .count();
        assert!(
            hits > 0,
            "mutant for `{}` produced no finding of its rule; findings:\n{:#?}",
            m.rule,
            report.findings
        );
        // The mutation must be the *only* new noise: everything else in
        // the tree stays clean even with the synthetic file present.
        let strays: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.file != m.path)
            .collect();
        assert!(
            strays.is_empty(),
            "mutant leaked findings elsewhere: {strays:#?}"
        );
    }
}
