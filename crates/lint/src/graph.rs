//! Name-based call-approximation graph and recovery-scope closure.
//!
//! The parser records, for every fn, the bare names its body calls.
//! Within one file those names resolve to fn items by exact match (all
//! items sharing the name are linked — overload-by-impl is common and
//! the conservative direction is to mark them all). The recovery scope
//! of a file is the closure of its configured entry points over these
//! edges: `DurableStore::open` reaches `parse_log_header`, which
//! reaches `read_u32`, so a panicking index added to `read_u32` next
//! year is flagged without anyone re-listing it.
//!
//! The closure is deliberately bounded to the file that owns the roots:
//! common names (`write`, `new`, `len`) would otherwise leak the scope
//! across the whole workspace through accidental matches. Cross-file
//! recovery code is brought in by listing its own roots in
//! [`crate::scope::Config::recovery_roots`]. This trade-off is part of
//! the rule contract and documented in DESIGN.md §15.

use std::collections::BTreeMap;

use crate::parse::FileIndex;

/// Marks, for each fn in `index` (parallel to `index.fns`), whether it
/// is reachable from `roots` via same-file name-matched calls, without
/// entering any fn named in `stops` (the configured edge of the scope —
/// e.g. recovery ends where the write path begins). Also returns how
/// many fns were marked (0 means the roots no longer match anything — a
/// config-drift signal the report surfaces).
pub fn recovery_closure(
    index: &FileIndex,
    roots: &[String],
    stops: &[String],
) -> (Vec<bool>, usize) {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in index.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }
    let stopped = |name: &str| stops.iter().any(|s| s == name);
    let mut marked = vec![false; index.fns.len()];
    let mut queue: Vec<usize> = Vec::new();
    for r in roots {
        if let Some(ids) = by_name.get(r.as_str()) {
            for &i in ids {
                if !marked[i] {
                    marked[i] = true;
                    queue.push(i);
                }
            }
        }
    }
    while let Some(i) = queue.pop() {
        for call in &index.fns[i].calls {
            if stopped(call) {
                continue;
            }
            if let Some(ids) = by_name.get(call.as_str()) {
                for &j in ids {
                    if !marked[j] {
                        marked[j] = true;
                        queue.push(j);
                    }
                }
            }
        }
    }
    let count = marked.iter().filter(|&&m| m).count();
    (marked, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, LineIndex};
    use crate::parse::parse;

    #[test]
    fn closure_follows_call_chains_not_names_alone() {
        let src = r#"
            pub fn open() { step_one(); }
            fn step_one() { leaf(); }
            fn leaf() {}
            fn unrelated() { also_unreached(); }
            fn also_unreached() {}
        "#;
        let tokens = lex(src);
        let idx = parse(src, &tokens, &LineIndex::new(src));
        let (marks, n) = recovery_closure(&idx, &["open".to_string()], &[]);
        let marked: Vec<&str> = idx
            .fns
            .iter()
            .zip(&marks)
            .filter(|(_, &m)| m)
            .map(|(f, _)| f.name.as_str())
            .collect();
        assert_eq!(marked, vec!["open", "step_one", "leaf"]);
        assert_eq!(n, 3);
    }

    #[test]
    fn missing_roots_mark_nothing() {
        let src = "fn a() {}";
        let tokens = lex(src);
        let idx = parse(src, &tokens, &LineIndex::new(src));
        let (_, n) = recovery_closure(&idx, &["gone".to_string()], &[]);
        assert_eq!(n, 0);
    }

    #[test]
    fn stops_cut_the_closure() {
        let src = r#"
            pub fn open() { replay(); commit(); }
            fn replay() {}
            fn commit() { stage() }
            fn stage() {}
        "#;
        let tokens = lex(src);
        let idx = parse(src, &tokens, &LineIndex::new(src));
        let (marks, n) = recovery_closure(&idx, &["open".to_string()], &["commit".to_string()]);
        let marked: Vec<&str> = idx
            .fns
            .iter()
            .zip(&marks)
            .filter(|(_, &m)| m)
            .map(|(f, _)| f.name.as_str())
            .collect();
        assert_eq!(marked, vec!["open", "replay"]);
        assert_eq!(n, 2);
    }
}
