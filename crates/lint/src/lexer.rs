//! A hand-rolled Rust lexer, exact enough to be trusted.
//!
//! The analyzer's verdicts are only as good as its token stream: the old
//! `grep`-based determinism lint could be fooled by a banned name inside
//! a string literal or a commented-out line, and could never see that
//! `'a` is a lifetime while `'a'` is a `char`. This lexer handles the
//! parts of Rust's lexical grammar that matter for those judgments —
//! nested block comments, raw strings with arbitrary `#` fences, byte
//! and C string prefixes, char-vs-lifetime disambiguation, numeric
//! literals with suffixes — and is pinned by a property the whole crate
//! leans on: **the concatenation of token slices reproduces the source
//! byte-for-byte** (`tests/lexer_roundtrip.rs` proves it over every
//! `.rs` file in the workspace and over seeded adversarial inputs).
//!
//! Classification mistakes can make a rule misfire; a *coverage* mistake
//! would make the analyzer silently skip source text. The round-trip
//! property rules out the second kind entirely.

/// Lexical class of a token. `text` is always the exact source slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments), newline excluded.
    LineComment,
    /// `/* … */`, nested arbitrarily deep. Unterminated comments extend
    /// to end of input.
    BlockComment,
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// `'lifetime` or a loop label (no closing quote).
    Lifetime,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, or a byte char `b'x'`.
    CharLit,
    /// Any string form: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`.
    StrLit,
    /// Integer or float literal, suffix included (`1_000u64`, `2.5e-3`).
    Num,
    /// One operator or delimiter, multi-character forms joined
    /// (`::`, `->`, `+=`, `..=`, `<<`, …).
    Punct,
    /// A byte the lexer does not understand (kept so round-trip holds).
    Unknown,
}

/// One token: a classification plus its exact byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The exact source slice this token covers.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Whether a token is whitespace or a comment (invisible to parsing).
pub fn is_trivia(kind: TokenKind) -> bool {
    matches!(
        kind,
        TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
    )
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes a full source file into a gapless token stream.
///
/// Every byte of `src` lands in exactly one token, in order; see the
/// module docs for why that property is load-bearing.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while let Some(c) = self.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    self.pos += 1;
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    match (self.peek(0), self.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            self.pos += 2;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            self.pos += 2;
                        }
                        (Some(_), _) => self.pos += 1,
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'\'' => self.char_or_lifetime(),
            b'"' => self.string(),
            b'0'..=b'9' => self.number(),
            _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
            _ => self.punct_or_unknown(),
        }
    }

    /// `'` starts a char literal or a lifetime/label. A char literal has
    /// a closing quote after one (possibly escaped) character; a
    /// lifetime never closes.
    fn char_or_lifetime(&mut self) -> TokenKind {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        match self.peek(1) {
            // `'\…'` — escapes only occur in char literals.
            Some(b'\\') => {
                self.pos += 2; // consume `'\`
                self.consume_escape_body();
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                TokenKind::CharLit
            }
            // `''` is not valid Rust; treat as an empty char so the two
            // quotes stay together and round-trip holds.
            Some(b'\'') => {
                self.pos += 2;
                TokenKind::CharLit
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char, `'a` / `'abc` is a lifetime; only the
                // quote after the ident run tells them apart.
                let mut j = self.pos + 1;
                while j < self.bytes.len() && is_ident_continue(self.bytes[j]) {
                    j += 1;
                }
                if self.bytes.get(j) == Some(&b'\'') && j == self.pos + 2 {
                    self.pos = j + 1;
                    TokenKind::CharLit
                } else {
                    self.pos = j;
                    TokenKind::Lifetime
                }
            }
            // `'#'`-style: any other single char followed by `'`.
            Some(_) => {
                // Step over one full UTF-8 scalar, then the close quote.
                let mut it = self.src[self.pos + 1..].chars();
                let c = it.next().map_or(0, char::len_utf8);
                self.pos += 1 + c;
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                    TokenKind::CharLit
                } else {
                    TokenKind::Lifetime
                }
            }
            None => {
                self.pos += 1;
                TokenKind::Unknown
            }
        }
    }

    /// After `\`, consume the escape payload (single char, `x41`,
    /// `u{…}`) without consuming the closing quote.
    fn consume_escape_body(&mut self) {
        match self.peek(0) {
            Some(b'u') if self.peek(1) == Some(b'{') => {
                self.pos += 2;
                while let Some(c) = self.peek(0) {
                    self.pos += 1;
                    if c == b'}' {
                        break;
                    }
                }
            }
            Some(b'x') => {
                self.pos += 1;
                for _ in 0..2 {
                    if matches!(self.peek(0), Some(c) if c.is_ascii_hexdigit()) {
                        self.pos += 1;
                    }
                }
            }
            Some(_) => {
                // The escape payload may be any scalar (`'\€` in broken
                // input); stepping one *byte* would strand the cursor
                // mid-character and poison every later slice.
                let n = self.src[self.pos..]
                    .chars()
                    .next()
                    .map_or(1, char::len_utf8);
                self.pos += n;
            }
            None => {}
        }
    }

    /// A plain (cooked) string starting at `"`.
    fn string(&mut self) -> TokenKind {
        debug_assert_eq!(self.peek(0), Some(b'"'));
        self.pos += 1;
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.pos += if self.peek(1).is_some() { 2 } else { 1 },
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::StrLit
    }

    /// A raw string body starting at the first `#`-or-`"` after the `r`.
    /// Returns false (without consuming) if this is not a raw string.
    fn raw_string(&mut self) -> bool {
        let mut j = self.pos;
        let mut fence = 0usize;
        while self.bytes.get(j) == Some(&b'#') {
            fence += 1;
            j += 1;
        }
        if self.bytes.get(j) != Some(&b'"') {
            return false;
        }
        j += 1;
        // Scan for `"` followed by `fence` hashes.
        'scan: while j < self.bytes.len() {
            if self.bytes[j] == b'"' {
                let mut k = 0;
                while k < fence {
                    if self.bytes.get(j + 1 + k) != Some(&b'#') {
                        j += 1;
                        continue 'scan;
                    }
                    k += 1;
                }
                j += 1 + fence;
                self.pos = j;
                return true;
            }
            j += 1;
        }
        self.pos = j; // unterminated: to end of input
        true
    }

    /// An identifier, or one of the literal prefixes (`r"`, `r#"`, `b"`,
    /// `br#"`, `b'`, `c"`, `cr#"`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let start = self.pos;
        // Longest literal-prefix check first (maximal munch, as rustc).
        let rest = &self.bytes[self.pos..];
        let prefix_len = match rest {
            [b'b', b'r', b'"' | b'#', ..] => 2,
            [b'c', b'r', b'"' | b'#', ..] => 2,
            [b'r', b'"' | b'#', ..] | [b'b', b'"' | b'\'', ..] | [b'c', b'"', ..] => 1,
            _ => 0,
        };
        if prefix_len > 0 {
            let after = self.bytes[self.pos + prefix_len];
            if after == b'\'' {
                // b'x' — a byte char: reuse the char path.
                self.pos += prefix_len;
                return self.char_or_lifetime();
            }
            let raw = rest[prefix_len - 1] == b'r';
            self.pos += prefix_len;
            if raw {
                if self.raw_string() {
                    return TokenKind::StrLit;
                }
                // `r#ident` (raw identifier) or bare `r` ident: fall
                // through to the identifier run below.
                self.pos = start;
            } else {
                return self.string();
            }
        }
        // Raw identifier `r#name`.
        if rest.first() == Some(&b'r')
            && rest.get(1) == Some(&b'#')
            && rest.get(2).copied().is_some_and(is_ident_start)
        {
            self.pos += 2;
        }
        while self
            .peek(0)
            .is_some_and(|c| is_ident_continue(c) || c >= 0x80)
        {
            self.pos += 1;
        }
        TokenKind::Ident
    }

    /// Integer or float literal, including prefix, underscores,
    /// exponent, and type suffix.
    fn number(&mut self) -> TokenKind {
        let radix_prefix = matches!(
            (self.peek(0), self.peek(1)),
            (Some(b'0'), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        );
        if radix_prefix {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            return TokenKind::Num;
        }
        self.digits();
        // Fraction: `.` followed by a digit, or a trailing `1.` that is
        // not `1..` (range) and not `1.ident` (field/method access).
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    self.pos += 1;
                    self.digits();
                }
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => self.pos += 1, // `1.` at end or before an operator
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1 + sign;
                self.digits();
            }
        }
        // Type suffix (`u32`, `f64`, `usize`, …): an ident run glued on.
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        TokenKind::Num
    }

    fn digits(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
        {
            self.pos += 1;
        }
    }

    fn punct_or_unknown(&mut self) -> TokenKind {
        let rest = &self.src[self.pos..];
        for m in MULTI_PUNCT {
            if rest.starts_with(m) {
                self.pos += m.len();
                return TokenKind::Punct;
            }
        }
        let b = self.bytes[self.pos];
        if b.is_ascii_punctuation() {
            self.pos += 1;
            return TokenKind::Punct;
        }
        // Any other byte (stray UTF-8 outside strings/comments, which
        // rustc would reject anyway): consume one full scalar so the
        // stream stays gapless.
        let c = self.src[self.pos..]
            .chars()
            .next()
            .map_or(1, char::len_utf8);
        self.pos += c;
        TokenKind::Unknown
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Precomputed byte-offset → 1-based line/column lookup.
#[derive(Debug)]
pub struct LineIndex {
    /// Byte offset of the start of each line.
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for one source file.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// `(line, column)`, both 1-based, for a byte offset.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, offset - self.starts[line] + 1)
    }

    /// 1-based line number for a byte offset.
    pub fn line(&self, offset: usize) -> usize {
        self.line_col(offset).0
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let mut rebuilt = String::new();
        let mut at = 0;
        for t in &toks {
            assert_eq!(t.start, at, "gap before token at byte {at} in {src:?}");
            rebuilt.push_str(t.text(src));
            at = t.end;
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn char_vs_lifetime() {
        let v = kinds("'a' 'a 'static '\\n' '\\u{1F600}' 'label: loop {}");
        assert_eq!(v[0], (TokenKind::CharLit, "'a'"));
        assert_eq!(v[2], (TokenKind::Lifetime, "'a"));
        assert_eq!(v[4], (TokenKind::Lifetime, "'static"));
        assert_eq!(v[6], (TokenKind::CharLit, "'\\n'"));
        assert_eq!(v[8], (TokenKind::CharLit, "'\\u{1F600}'"));
        assert_eq!(v[10], (TokenKind::Lifetime, "'label"));
    }

    #[test]
    fn raw_and_prefixed_strings() {
        let v = kinds(r####"r"a" r#"b"# br##"c"## b"d" b'e' c"f" r#type"####);
        assert_eq!(v[0], (TokenKind::StrLit, r#"r"a""#));
        assert_eq!(v[2], (TokenKind::StrLit, r##"r#"b"#"##));
        assert_eq!(v[4], (TokenKind::StrLit, r###"br##"c"##"###));
        assert_eq!(v[6], (TokenKind::StrLit, r#"b"d""#));
        assert_eq!(v[8], (TokenKind::CharLit, "b'e'"));
        assert_eq!(v[10], (TokenKind::StrLit, r#"c"f""#));
        assert_eq!(v[12], (TokenKind::Ident, "r#type"));
    }

    #[test]
    fn raw_string_with_quote_and_hash_inside() {
        let src = r###"r##"she said "#hi"# loudly"## tail"###;
        let v = kinds(src);
        assert_eq!(v[0].0, TokenKind::StrLit);
        assert_eq!(v[0].1, r###"r##"she said "#hi"# loudly"##"###);
        roundtrip(src);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still */ b";
        let v = kinds(src);
        assert_eq!(v[2], (TokenKind::BlockComment, "/* one /* two */ still */"));
        roundtrip(src);
    }

    #[test]
    fn numbers() {
        let v = kinds("1 1.5 1. 1..2 1.0e-3 0xFF_u64 0b1010 1_000usize 2f64 9.max(1)");
        assert_eq!(v[0], (TokenKind::Num, "1"));
        assert_eq!(v[2], (TokenKind::Num, "1.5"));
        assert_eq!(v[4], (TokenKind::Num, "1."));
        assert_eq!(v[6], (TokenKind::Num, "1"));
        assert_eq!(v[7], (TokenKind::Punct, ".."));
        assert_eq!(v[8], (TokenKind::Num, "2"));
        assert_eq!(v[10], (TokenKind::Num, "1.0e-3"));
        assert_eq!(v[12], (TokenKind::Num, "0xFF_u64"));
        assert_eq!(v[14], (TokenKind::Num, "0b1010"));
        assert_eq!(v[16], (TokenKind::Num, "1_000usize"));
        assert_eq!(v[18], (TokenKind::Num, "2f64"));
        // `9.max(1)`: the dot is method access, not a fraction.
        assert_eq!(v[20], (TokenKind::Num, "9"));
        assert_eq!(v[21], (TokenKind::Punct, "."));
        assert_eq!(v[22], (TokenKind::Ident, "max"));
    }

    #[test]
    fn multibyte_punct_joins() {
        let v = kinds("a..=b a::<T>() x <<= 2 y -> z");
        let puncts: Vec<&str> = v
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| *t)
            .collect();
        assert!(puncts.contains(&"..="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"<<="));
        assert!(puncts.contains(&"->"));
    }

    #[test]
    fn banned_names_inside_strings_are_strings() {
        let v = kinds(r#"let s = "Instant::now() inside a string"; // SystemTime in comment"#);
        assert!(v
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || !t.contains("Instant")));
        assert_eq!(v.last().unwrap().0, TokenKind::LineComment);
    }

    #[test]
    fn tricky_sources_round_trip() {
        for src in [
            "",
            "'",
            "\"unterminated",
            "/* unterminated /* nest",
            "r###\"unterminated",
            "let x = '\\'';",
            "émoji 🚀 in idents",
            "b'\\xFF' '\\x7f'",
            "x.0.1 + t.1",
            "''",
            "1.",
            "macro_rules! m { ($($t:tt)*) => {} }",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn line_index() {
        let idx = LineIndex::new("ab\ncd\n\nx");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(4), (2, 2));
        assert_eq!(idx.line_col(6), (3, 1));
        assert_eq!(idx.line_col(7), (4, 1));
        assert_eq!(idx.line_count(), 4);
    }
}
