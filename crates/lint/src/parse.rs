//! Coarse item parser: `mod` / `impl` / `trait` / `fn` / `struct`
//! boundaries over the token stream.
//!
//! This is deliberately not a Rust parser. The rules need four things:
//! which function body a token belongs to (so findings can be scoped),
//! each function's module path and `#[test]`-ness (so test code is
//! exempt from production-only rules), which names in a file are
//! `HashMap`/`HashSet`-typed (struct fields, locals, params — the
//! `unordered-iteration` rule's receivers), and the called names inside
//! each body (the edges of the name-based call graph). Everything else —
//! expressions, types, generics — is skipped by delimiter matching.
//!
//! Known approximations are documented in DESIGN.md §15; the important
//! ones: nesting is tracked purely by delimiter matching (a `fn` inside
//! a `match` arm or macro body is attributed to the nearest enclosing
//! recognized item rather than parsed separately), and hash-typed field
//! names are pooled per file rather than resolved per struct.

use crate::lexer::{is_trivia, LineIndex, Token, TokenKind};

/// One function item (including methods, nested fns, trait defaults).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare name (`open`, `scan_frame`, …).
    pub name: String,
    /// `module::Type::name`-style display path within the file.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range `[lo, hi)` of the body contents (braces
    /// excluded), into the full token vec; `None` for bodyless trait
    /// method declarations.
    pub body: Option<(usize, usize)>,
    /// Token index of the `fn` keyword.
    pub fn_token: usize,
    /// Inside `#[cfg(test)]`, or `#[test]` itself.
    pub is_test: bool,
    /// Bare names this body calls (free calls, method calls, macro
    /// names) — outgoing edges of the call-approximation graph. Sorted,
    /// deduplicated.
    pub calls: Vec<String>,
    /// Names that are `HashMap`/`HashSet`-typed inside this fn: `let`
    /// bindings whose statement mentions either type, and parameters.
    pub hash_locals: Vec<String>,
}

/// Per-file parse result.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Every function item found, in source order.
    pub fns: Vec<FnInfo>,
    /// Struct field names whose declared type mentions `HashMap` or
    /// `HashSet` anywhere in the file (pooled across structs).
    pub hash_fields: Vec<String>,
}

impl FileIndex {
    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        // Innermost = the latest-starting body that covers `i`.
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(lo, hi)| lo <= i && i < hi))
            .max_by_key(|f| f.body.map_or(0, |(lo, _)| lo))
    }
}

/// Words that look like calls (`if (…)`) but are control flow or syntax.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "mut", "let",
    "else", "fn", "impl", "pub", "use", "mod", "struct", "enum", "union", "trait", "where",
    "unsafe", "async", "await", "dyn", "break", "continue", "const", "static", "type", "crate",
];

/// Item qualifiers that may sit between an attribute and its item.
const QUALIFIERS: &[&str] = &["pub", "unsafe", "async", "const", "extern", "default"];

/// Advances past trivia starting at `i`; returns `tokens.len()` at end.
pub fn next_code(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() && is_trivia(tokens[i].kind) {
        i += 1;
    }
    i
}

/// The nearest non-trivia token index strictly before `i`, if any.
pub fn prev_code(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !is_trivia(tokens[j].kind) {
            return Some(j);
        }
    }
    None
}

/// For every opening `(`/`[`/`{` token index, the index of its matching
/// closer. Unmatched openers map to `usize::MAX`.
pub fn close_map(src: &str, tokens: &[Token]) -> Vec<usize> {
    let mut out = vec![usize::MAX; tokens.len()];
    let mut stacks: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct || t.end - t.start != 1 {
            continue;
        }
        match src.as_bytes()[t.start] {
            b'(' => stacks[0].push(i),
            b'[' => stacks[1].push(i),
            b'{' => stacks[2].push(i),
            b')' => {
                if let Some(o) = stacks[0].pop() {
                    out[o] = i;
                }
            }
            b']' => {
                if let Some(o) = stacks[1].pop() {
                    out[o] = i;
                }
            }
            b'}' => {
                if let Some(o) = stacks[2].pop() {
                    out[o] = i;
                }
            }
            _ => {}
        }
    }
    out
}

/// Parses one file's token stream into its item index.
pub fn parse(src: &str, tokens: &[Token], lines: &LineIndex) -> FileIndex {
    let close = close_map(src, tokens);
    let mut out = FileIndex::default();
    let file_test = has_inner_test_cfg(src, tokens, &close);
    let p = Parser {
        src,
        tokens,
        lines,
        close,
    };
    p.scan_items(0, tokens.len(), &mut Vec::new(), file_test, &mut out);
    out.hash_fields.sort_unstable();
    out.hash_fields.dedup();
    out
}

/// `#![cfg(test)]` as a file-level inner attribute.
fn has_inner_test_cfg(src: &str, tokens: &[Token], close: &[usize]) -> bool {
    let mut i = next_code(tokens, 0);
    while i < tokens.len() && tokens[i].text(src) == "#" {
        let mut j = next_code(tokens, i + 1);
        if j < tokens.len() && tokens[j].text(src) == "!" {
            j = next_code(tokens, j + 1);
        }
        if j >= tokens.len() || tokens[j].text(src) != "[" || close[j] == usize::MAX {
            return false;
        }
        if attr_mentions_test(src, tokens, j + 1, close[j]) {
            return true;
        }
        i = next_code(tokens, close[j] + 1);
    }
    false
}

/// Whether an attribute's content marks test code: a bare `test`, or
/// `cfg(… test …)` not inside `not(…)`.
fn attr_mentions_test(src: &str, tokens: &[Token], lo: usize, hi: usize) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    for t in &tokens[lo..hi] {
        if t.kind == TokenKind::Ident {
            match t.text(src) {
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
        }
    }
    has_test && !has_not
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    lines: &'a LineIndex,
    close: Vec<usize>,
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.tokens[i].text(self.src)
    }

    /// Jumps past a matched delimiter starting at opener `i`; if the
    /// opener is unmatched, steps one token (progress is guaranteed).
    fn skip_matched(&self, i: usize) -> usize {
        match self.close.get(i) {
            Some(&c) if c != usize::MAX => c + 1,
            _ => i + 1,
        }
    }

    /// Skips a `<…>` generic-argument run starting at the `<` at `i`,
    /// treating `<<`/`>>` as two angles each (`Vec<Vec<u8>>`).
    fn skip_angles(&self, mut i: usize) -> usize {
        let mut depth = 0i64;
        while i < self.tokens.len() {
            match self.text(i) {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "(" | "[" | "{" => {
                    i = self.skip_matched(i);
                    continue;
                }
                ";" => return i, // runaway: bail at statement end
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                return i;
            }
        }
        i
    }

    /// Item scan over `[lo, hi)` at one nesting level. `path` is the
    /// enclosing module/impl name stack; `in_test` marks an enclosing
    /// `#[cfg(test)]`.
    fn scan_items(
        &self,
        lo: usize,
        hi: usize,
        path: &mut Vec<String>,
        in_test: bool,
        out: &mut FileIndex,
    ) {
        let mut i = next_code(self.tokens, lo);
        // Whether any attribute attached to the upcoming item mentions
        // test-ness; reset when an item or unrelated token is consumed.
        let mut attr_test = false;
        while i < hi {
            let txt = self.text(i);
            match txt {
                "#" => {
                    let mut j = next_code(self.tokens, i + 1);
                    if j < hi && self.text(j) == "!" {
                        j = next_code(self.tokens, j + 1);
                    }
                    if j < hi && self.text(j) == "[" && self.close[j] != usize::MAX {
                        if attr_mentions_test(self.src, self.tokens, j + 1, self.close[j]) {
                            attr_test = true;
                        }
                        i = next_code(self.tokens, self.close[j] + 1);
                    } else {
                        i = next_code(self.tokens, i + 1);
                    }
                    continue;
                }
                "mod" => {
                    let n = next_code(self.tokens, i + 1);
                    if n < hi && self.tokens[n].kind == TokenKind::Ident {
                        let name = self.text(n).to_string();
                        let b = next_code(self.tokens, n + 1);
                        if b < hi && self.text(b) == "{" && self.close[b] != usize::MAX {
                            path.push(name);
                            self.scan_items(b + 1, self.close[b], path, in_test || attr_test, out);
                            path.pop();
                            i = next_code(self.tokens, self.close[b] + 1);
                        } else {
                            i = next_code(self.tokens, b + 1);
                        }
                    } else {
                        i = next_code(self.tokens, n);
                    }
                    attr_test = false;
                }
                "struct" => {
                    i = self.scan_struct(i, hi, out);
                    attr_test = false;
                }
                "impl" | "trait" => {
                    i = self.scan_impl_or_trait(i, hi, path, in_test || attr_test, out);
                    attr_test = false;
                }
                "fn" => {
                    i = self.scan_fn(i, hi, path, in_test, attr_test, out);
                    attr_test = false;
                }
                "{" | "(" | "[" => {
                    i = next_code(self.tokens, self.skip_matched(i));
                    // A block ends whatever item the attrs belonged to.
                    attr_test = false;
                }
                _ => {
                    if !QUALIFIERS.contains(&txt) {
                        // Plain tokens between items (use paths, enum
                        // names, expression statements in fn bodies…)
                        // break the attr → item association only at
                        // statement boundaries; keeping it alive through
                        // arbitrary tokens is harmless because only the
                        // next recognized item consumes it.
                        if txt == ";" {
                            attr_test = false;
                        }
                    }
                    i = next_code(self.tokens, i + 1);
                }
            }
        }
    }

    /// `struct Name { fields }` — records hash-typed field names.
    /// Returns the next scan position.
    fn scan_struct(&self, at: usize, hi: usize, out: &mut FileIndex) -> usize {
        let mut i = next_code(self.tokens, at + 1); // name
        i = next_code(self.tokens, i + 1);
        if i < hi && self.text(i) == "<" {
            i = next_code(self.tokens, self.skip_angles(i));
        }
        // `where` clauses may precede the brace; tuple structs use `(`.
        while i < hi {
            match self.text(i) {
                "{" => {
                    if self.close[i] != usize::MAX {
                        self.scan_fields(i + 1, self.close[i], out);
                        return next_code(self.tokens, self.close[i] + 1);
                    }
                    return i + 1;
                }
                ";" => return next_code(self.tokens, i + 1),
                "(" => {
                    i = next_code(self.tokens, self.skip_matched(i));
                }
                "<" => i = next_code(self.tokens, self.skip_angles(i)),
                _ => i = next_code(self.tokens, i + 1),
            }
        }
        i
    }

    /// Field list of a braced struct: `name: Type,` repeated.
    fn scan_fields(&self, lo: usize, hi: usize, out: &mut FileIndex) {
        let mut i = next_code(self.tokens, lo);
        while i < hi {
            // Skip attributes and visibility.
            match self.text(i) {
                "#" => {
                    let j = next_code(self.tokens, i + 1);
                    if j < hi && self.text(j) == "[" && self.close[j] != usize::MAX {
                        i = next_code(self.tokens, self.close[j] + 1);
                    } else {
                        i = next_code(self.tokens, i + 1);
                    }
                    continue;
                }
                "pub" => {
                    i = next_code(self.tokens, i + 1);
                    if i < hi && self.text(i) == "(" {
                        i = next_code(self.tokens, self.skip_matched(i));
                    }
                    continue;
                }
                _ => {}
            }
            if self.tokens[i].kind != TokenKind::Ident {
                i = next_code(self.tokens, i + 1);
                continue;
            }
            let name = self.text(i).to_string();
            let colon = next_code(self.tokens, i + 1);
            if colon >= hi || self.text(colon) != ":" {
                i = next_code(self.tokens, i + 1);
                continue;
            }
            // Type runs to the next `,` at this level (or the end).
            let mut j = next_code(self.tokens, colon + 1);
            let mut is_hash = false;
            while j < hi {
                match self.text(j) {
                    "," => break,
                    "(" | "[" | "{" => j = self.skip_matched(j),
                    "<" => {
                        // Angle contents count: `Vec<HashMap<…>>` is a
                        // hash-bearing type too.
                        j += 1;
                    }
                    "HashMap" | "HashSet" => {
                        is_hash = true;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            if is_hash {
                out.hash_fields.push(name);
            }
            i = next_code(self.tokens, j + 1);
        }
    }

    /// `impl … Type {}`, `impl Trait for Type {}`, `trait Name {}` —
    /// names the scope and recurses into the body for methods.
    fn scan_impl_or_trait(
        &self,
        at: usize,
        hi: usize,
        path: &mut Vec<String>,
        in_test: bool,
        out: &mut FileIndex,
    ) -> usize {
        let mut i = next_code(self.tokens, at + 1);
        if i < hi && self.text(i) == "<" {
            i = next_code(self.tokens, self.skip_angles(i));
        }
        let mut first_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while i < hi {
            match self.text(i) {
                "{" => {
                    let name = after_for.or(first_ident).unwrap_or_default();
                    if self.close[i] != usize::MAX {
                        path.push(name);
                        self.scan_items(i + 1, self.close[i], path, in_test, out);
                        path.pop();
                        return next_code(self.tokens, self.close[i] + 1);
                    }
                    return i + 1;
                }
                ";" => return next_code(self.tokens, i + 1),
                "for" => {
                    saw_for = true;
                    i = next_code(self.tokens, i + 1);
                }
                "<" => i = next_code(self.tokens, self.skip_angles(i)),
                "(" | "[" => i = next_code(self.tokens, self.skip_matched(i)),
                _ => {
                    if self.tokens[i].kind == TokenKind::Ident {
                        let t = self.text(i).to_string();
                        if saw_for && after_for.is_none() {
                            after_for = Some(t);
                        } else if first_ident.is_none() {
                            first_ident = Some(t);
                        }
                    }
                    i = next_code(self.tokens, i + 1);
                }
            }
        }
        i
    }

    /// One `fn` item: records it and recurses into the body (nested
    /// fns become their own entries).
    fn scan_fn(
        &self,
        at: usize,
        hi: usize,
        path: &mut Vec<String>,
        in_test: bool,
        attr_test: bool,
        out: &mut FileIndex,
    ) -> usize {
        let name_at = next_code(self.tokens, at + 1);
        if name_at >= hi || self.tokens[name_at].kind != TokenKind::Ident {
            // `fn(…)` pointer type in a signature — not an item.
            return next_code(self.tokens, at + 1);
        }
        let name = self.text(name_at).to_string();
        let mut i = next_code(self.tokens, name_at + 1);
        if i < hi && self.text(i) == "<" {
            i = next_code(self.tokens, self.skip_angles(i));
        }
        // Argument list.
        let args = (i < hi && self.text(i) == "(").then(|| (i, self.close[i]));
        if let Some((open, close)) = args {
            if close != usize::MAX {
                i = next_code(self.tokens, close + 1);
            } else {
                i = next_code(self.tokens, open + 1);
            }
        }
        // Return type and where clause: run to the body `{` or a `;`.
        let mut body = None;
        while i < hi {
            match self.text(i) {
                "{" => {
                    if self.close[i] != usize::MAX {
                        body = Some((i + 1, self.close[i]));
                    }
                    break;
                }
                ";" => break,
                "<" => i = next_code(self.tokens, self.skip_angles(i)),
                "(" | "[" => i = next_code(self.tokens, self.skip_matched(i)),
                _ => i = next_code(self.tokens, i + 1),
            }
        }
        let mut qual = path.join("::");
        if !qual.is_empty() {
            qual.push_str("::");
        }
        qual.push_str(&name);
        let is_test = in_test || attr_test;
        let calls = body.map_or_else(Vec::new, |(lo, hi)| self.collect_calls(lo, hi));
        let hash_locals = self.collect_hash_locals(args, body);
        out.fns.push(FnInfo {
            name,
            qual,
            line: self.lines.line(self.tokens[at].start),
            body,
            fn_token: at,
            is_test,
            calls,
            hash_locals,
        });
        match body {
            Some((_, body_close)) => {
                self.scan_items(body.map_or(0, |(lo, _)| lo), body_close, path, is_test, out);
                next_code(self.tokens, body_close + 1)
            }
            None => next_code(self.tokens, i + 1),
        }
    }

    /// Called names inside a body: `name(`, `.name(`, `name!(`.
    fn collect_calls(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = next_code(self.tokens, lo);
        while i < hi {
            if self.tokens[i].kind == TokenKind::Ident && !NOT_CALLS.contains(&self.text(i)) {
                let mut n = next_code(self.tokens, i + 1);
                if n < hi && self.text(n) == "!" {
                    n = next_code(self.tokens, n + 1);
                }
                if n < hi && matches!(self.text(n), "(" | "{" | "[")
                    // `name![…]` / `name!{…}` count; plain `name[…]` and
                    // `name{…}` (indexing, struct literals) do not.
                    && (self.text(n) == "("
                        || self.text(next_code(self.tokens, i + 1)) == "!")
                {
                    out.push(self.text(i).to_string());
                }
            }
            i = next_code(self.tokens, i + 1);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Hash-typed names in scope of one fn: parameters whose type
    /// mentions `HashMap`/`HashSet`, and `let` bindings whose statement
    /// does.
    fn collect_hash_locals(
        &self,
        args: Option<(usize, usize)>,
        body: Option<(usize, usize)>,
    ) -> Vec<String> {
        let mut out = Vec::new();
        if let Some((open, close)) = args {
            if close != usize::MAX {
                let mut i = next_code(self.tokens, open + 1);
                while i < close {
                    if self.tokens[i].kind == TokenKind::Ident
                        && next_code(self.tokens, i + 1) < close
                        && self.text(next_code(self.tokens, i + 1)) == ":"
                    {
                        let name = self.text(i).to_string();
                        let mut j = next_code(self.tokens, i + 1);
                        let mut is_hash = false;
                        while j < close {
                            match self.text(j) {
                                "," => break,
                                "(" | "[" | "{" => j = self.skip_matched(j),
                                "HashMap" | "HashSet" => {
                                    is_hash = true;
                                    j += 1;
                                }
                                _ => j += 1,
                            }
                        }
                        if is_hash {
                            out.push(name);
                        }
                        i = next_code(self.tokens, j + 1);
                    } else {
                        i = next_code(self.tokens, i + 1);
                    }
                }
            }
        }
        if let Some((lo, hi)) = body {
            let mut i = next_code(self.tokens, lo);
            while i < hi {
                if self.text(i) == "let" {
                    let mut n = next_code(self.tokens, i + 1);
                    if n < hi && self.text(n) == "mut" {
                        n = next_code(self.tokens, n + 1);
                    }
                    if n < hi && self.tokens[n].kind == TokenKind::Ident {
                        let name = self.text(n).to_string();
                        // Scan the whole statement for a hash type.
                        let mut j = next_code(self.tokens, n + 1);
                        let mut is_hash = false;
                        while j < hi {
                            match self.text(j) {
                                ";" => break,
                                "(" | "[" | "{" => j = self.skip_matched(j),
                                "HashMap" | "HashSet" => {
                                    is_hash = true;
                                    j += 1;
                                }
                                _ => j += 1,
                            }
                        }
                        if is_hash {
                            out.push(name);
                        }
                        i = next_code(self.tokens, j + 1);
                        continue;
                    }
                }
                i = next_code(self.tokens, i + 1);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> FileIndex {
        let tokens = lex(src);
        let lines = LineIndex::new(src);
        parse(src, &tokens, &lines)
    }

    #[test]
    fn finds_fns_with_paths_and_tests() {
        let idx = parsed(
            r#"
            pub fn top() { helper(1); }
            mod inner {
                impl Widget {
                    fn method(&self) -> Result<(), E> { self.draw(); }
                }
                impl Display for Widget {
                    fn fmt(&self) {}
                }
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() { top(); }
            }
            trait T { fn decl(&self); fn defaulted(&self) { self.decl(); } }
            "#,
        );
        let names: Vec<(&str, bool)> = idx
            .fns
            .iter()
            .map(|f| (f.qual.as_str(), f.is_test))
            .collect();
        assert_eq!(
            names,
            vec![
                ("top", false),
                ("inner::Widget::method", false),
                ("inner::Widget::fmt", false),
                ("tests::check", true),
                ("T::decl", false),
                ("T::defaulted", false),
            ]
        );
        assert_eq!(idx.fns[0].calls, vec!["helper"]);
        assert_eq!(idx.fns[1].calls, vec!["draw"]);
        assert!(idx.fns[4].body.is_none(), "trait decl has no body");
        assert_eq!(idx.fns[5].calls, vec!["decl"]);
    }

    #[test]
    fn nested_fn_is_its_own_item() {
        let idx = parsed("fn outer() { fn inner() { leaf(); } inner(); }");
        let names: Vec<&str> = idx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // The outer body range covers the inner body, so outer's calls
        // include inner's (a documented conservative approximation).
        assert!(idx.fns[0].calls.contains(&"inner".to_string()));
        assert!(idx.fns[0].calls.contains(&"leaf".to_string()));
    }

    #[test]
    fn hash_fields_and_locals() {
        let idx = parsed(
            r#"
            struct S {
                files: HashMap<String, Vec<u8>>,
                table: Vec<Option<u32>>,
                names: std::collections::HashSet<u64>,
            }
            fn f(seen: &HashSet<u64>, v: &[u8]) {
                let mut m: HashMap<u32, u32> = HashMap::new();
                let also = std::collections::HashMap::new();
                let plain = Vec::new();
            }
            "#,
        );
        assert_eq!(idx.hash_fields, vec!["files", "names"]);
        let f = &idx.fns[0];
        assert_eq!(f.hash_locals, vec!["also", "m", "seen"]);
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let idx = parsed("fn real(cb: fn(u32) -> u32) { cb(1); }");
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "real");
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() { fn inner() { leaf(); } }";
        let tokens = lex(src);
        let lines = LineIndex::new(src);
        let idx = parse(src, &tokens, &lines);
        let leaf_at = tokens
            .iter()
            .position(|t| t.text(src) == "leaf")
            .expect("leaf token");
        assert_eq!(
            idx.enclosing_fn(leaf_at).map(|f| f.name.as_str()),
            Some("inner")
        );
    }

    #[test]
    fn cfg_not_test_is_not_test() {
        let idx = parsed("#[cfg(not(test))] fn prod() {}");
        assert!(!idx.fns[0].is_test);
    }
}
