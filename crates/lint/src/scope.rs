//! Scope configuration: which files are campaign drivers, which are the
//! fingerprint-exempt emitters, and where the recovery/decode scopes
//! are rooted.
//!
//! This file **is** the successor of `ci/determinism_allowlist.txt`: the
//! old grep allowlist named files permitted to read wall-clock time, and
//! those exact files are now [`Config::workspace`]'s `driver_files`.
//! Everything else an allowlist entry used to excuse is handled by
//! structured inline suppressions (`// ft-lint: allow(<rule>): <reason>`)
//! at the offending line, where reviewers can actually see the excuse.

use std::path::PathBuf;

/// All rule identifiers, sorted, as used in reports and suppressions.
pub const RULES: &[&str] = &[
    "float-in-fingerprint",
    "panic-in-recovery",
    "unchecked-arith-in-decode",
    "unordered-iteration",
    "wall-clock",
];

/// Meta-findings the analyzer itself can emit (not suppressible).
pub const META_RULES: &[&str] = &["bad-suppression", "unused-suppression"];

/// Whether `rule` is a real (suppressible) rule identifier.
pub fn is_rule(rule: &str) -> bool {
    RULES.contains(&rule)
}

/// Analyzer configuration. Paths are workspace-relative with `/`
/// separators; file matching is by suffix so configs stay stable when
/// the workspace root moves.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Top-level directories (relative to `root`) holding Rust source.
    pub scan_dirs: Vec<String>,
    /// Path substrings that exclude a file from scanning entirely.
    pub exclude: Vec<String>,
    /// Campaign-driver files: wall-clock reads and unordered iteration
    /// are allowed here, because their *reports* carry timings by design
    /// and no simulated result derives from them.
    pub driver_files: Vec<String>,
    /// Files exempt from `float-in-fingerprint`: the shortest-round-trip
    /// JSON emitter, whose whole job is rendering floats exactly.
    pub emitter_files: Vec<String>,
    /// Recovery/decode scope roots: `(file suffix, entry-point fn
    /// names)`. The name-based call graph closes over same-file callees
    /// of each root; the closure is where `panic-in-recovery` and
    /// `unchecked-arith-in-decode` apply.
    pub recovery_roots: Vec<(String, Vec<String>)>,
    /// Scope stops: `(file suffix, fn names)` the closure must not
    /// enter. This is where the scope *ends* — e.g. `DurableStore::open`
    /// calls `arena.commit()` after replay, and recovery ends where the
    /// write path begins.
    pub scope_stops: Vec<(String, Vec<String>)>,
    /// In-memory sources appended to the scanned set — the `--mutate`
    /// self-test plants seeded violations here, proving the gate can
    /// fail. `(relative path, source text)`.
    pub synthetic: Vec<(String, String)>,
}

impl Config {
    /// The workspace-wide configuration used by CI.
    pub fn workspace(root: PathBuf) -> Self {
        Config {
            root,
            scan_dirs: ["crates", "src", "tests", "examples"]
                .map(String::from)
                .to_vec(),
            exclude: [
                "/target/",
                // The seeded-violation fixtures *must* contain banned
                // patterns; they are scanned only by their own tests.
                "crates/lint/tests/fixtures/",
            ]
            .map(String::from)
            .to_vec(),
            driver_files: [
                // Migrated verbatim from ci/determinism_allowlist.txt:
                // top-level campaign drivers whose reports carry
                // wall-clock numbers by design. The `analyze` binary is
                // deliberately absent — its report is asserted
                // byte-identical across runs.
                "crates/bench/benches/micro.rs",
                "crates/bench/src/bin/perf.rs",
                "crates/bench/src/bin/campaign.rs",
                "crates/check/src/bin/check.rs",
            ]
            .map(String::from)
            .to_vec(),
            emitter_files: ["crates/bench/src/json.rs"].map(String::from).to_vec(),
            recovery_roots: vec![
                (
                    // Durable-store recovery: everything `open` reaches
                    // (header/frame/payload/checkpoint parsing) faces
                    // fault-corrupted bytes and must fail-stop with
                    // `Corrupt{offset, detail}`.
                    "crates/mem/src/durable.rs".to_string(),
                    vec!["open".to_string(), "read_watermark".to_string()],
                ),
                (
                    // DSM wire decode: campaigns corrupt payloads on
                    // purpose; decoding must reject with a memory fault,
                    // never panic.
                    "crates/dsm/src/wire.rs".to_string(),
                    vec!["visit_diffs".to_string(), "visit_diff_msg".to_string()],
                ),
            ],
            scope_stops: vec![(
                // `open` ends recovery by committing the replayed image
                // and journaling the watermark; everything past those
                // two names is the write path, which operates on trusted
                // in-memory state and keeps its internal-invariant
                // panics.
                "crates/mem/src/durable.rs".to_string(),
                vec!["commit".to_string(), "write_watermark".to_string()],
            )],
            synthetic: Vec::new(),
        }
    }

    /// A minimal config rooted at a fixture directory (tests).
    pub fn bare(root: PathBuf) -> Self {
        Config {
            root,
            scan_dirs: vec![String::new()],
            exclude: Vec::new(),
            driver_files: Vec::new(),
            emitter_files: Vec::new(),
            recovery_roots: Vec::new(),
            scope_stops: Vec::new(),
            synthetic: Vec::new(),
        }
    }

    /// Whether a relative path is a campaign driver.
    pub fn is_driver(&self, rel: &str) -> bool {
        self.driver_files.iter().any(|d| rel.ends_with(d.as_str()))
    }

    /// Whether a relative path is a float-emitter exemption.
    pub fn is_emitter(&self, rel: &str) -> bool {
        self.emitter_files.iter().any(|d| rel.ends_with(d.as_str()))
    }

    /// Recovery-scope entry-point names for a relative path, if any.
    pub fn recovery_roots_for(&self, rel: &str) -> Option<&[String]> {
        self.recovery_roots
            .iter()
            .find(|(f, _)| rel.ends_with(f.as_str()))
            .map(|(_, roots)| roots.as_slice())
    }

    /// Scope-stop names for a relative path (empty if none configured).
    pub fn scope_stops_for(&self, rel: &str) -> &[String] {
        self.scope_stops
            .iter()
            .find(|(f, _)| rel.ends_with(f.as_str()))
            .map_or(&[], |(_, stops)| stops.as_slice())
    }

    /// Whether a path sits in test/bench/example territory, where the
    /// deterministic-scope rules do not apply (tests assert determinism
    /// from outside; they may unwrap and iterate freely).
    pub fn is_test_path(rel: &str) -> bool {
        let marks = ["tests/", "benches/", "examples/"];
        marks
            .iter()
            .any(|m| rel.starts_with(m) || rel.contains(&format!("/{m}")))
    }
}
