//! Deterministic findings report.
//!
//! The report is hand-rolled JSON with a fixed key order, findings
//! sorted by `(file, line, col, rule)`, and **no wall-clock anywhere**
//! — two runs over the same tree must produce byte-identical output
//! (ci.sh `cmp`s them). Paths are workspace-relative so the bytes do
//! not depend on where the checkout lives.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Finding;
use crate::scope::{META_RULES, RULES};

/// One suppressed finding (still reported, for auditability).
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// Rule that was suppressed.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: usize,
    /// The suppression's stated reason.
    pub reason: String,
}

/// Per-file recovery-scope resolution (config-drift telemetry).
#[derive(Debug, Clone)]
pub struct ScopeStat {
    /// Recovery-root file (workspace-relative suffix from the config).
    pub file: String,
    /// How many fns the closure marked. Zero means the configured entry
    /// points no longer exist — the scope silently vanished.
    pub fns_in_scope: usize,
}

/// Full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of fn items indexed across them.
    pub fns_indexed: usize,
    /// Recovery-scope resolution stats, one per configured root file.
    pub scopes: Vec<ScopeStat>,
    /// Unsuppressed findings (gate fails if non-empty).
    pub findings: Vec<Finding>,
    /// Suppressed findings with their reasons.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Canonical sort before rendering.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
        });
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.scopes.sort_by(|a, b| a.file.cmp(&b.file));
    }

    /// Renders the deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for r in RULES.iter().chain(META_RULES) {
            counts.insert(r, 0);
        }
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"ft-lint/1\",\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"fns_indexed\": {},", self.fns_indexed);
        s.push_str("  \"finding_counts\": {");
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{rule}\": {n}");
        }
        s.push_str("},\n");
        s.push_str("  \"recovery_scopes\": [");
        for (i, sc) in self.scopes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"file\": {}, \"fns_in_scope\": {}}}",
                esc(&sc.file),
                sc.fns_in_scope
            );
        }
        s.push_str(if self.scopes.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"snippet\": {}}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                f.col,
                esc(&f.message),
                esc(&f.snippet)
            );
        }
        s.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        s.push_str("  \"suppressed\": [");
        for (i, f) in self.suppressed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                esc(f.rule),
                esc(&f.file),
                f.line,
                esc(&f.reason)
            );
        }
        s.push_str(if self.suppressed.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push_str("}\n");
        s
    }
}

/// JSON string escaping (quotes, backslashes, control chars).
fn esc(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_stable_and_parses_visually() {
        let mut r = Report::default();
        r.finalize();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"ft-lint/1\""));
        assert!(json.contains("\"findings\": []"));
        assert_eq!(json, {
            let mut r2 = Report::default();
            r2.finalize();
            r2.to_json()
        });
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(esc("\u{1}"), "\"\\u0001\"");
    }
}
