//! `ft-lint` CLI: the CI gate.
//!
//! ```text
//! ft-lint [--root DIR] [--out FILE] [--mutate RULE] [--list-rules]
//! ```
//!
//! Exit 0 when the tree is clean (zero unsuppressed findings), 1 when
//! findings exist, 2 on usage/I/O errors. `--mutate <rule>` plants a
//! seeded violation in a synthetic in-memory file; CI asserts the run
//! fails, proving the gate has teeth (mirror of the perf gate's
//! `--mutate spin`).

use std::path::PathBuf;
use std::process::ExitCode;

use ft_lint::scope::{Config, META_RULES, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out: Option<PathBuf> = None;
    let mut mutate: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage("--out needs a value"),
            },
            "--mutate" => match args.next() {
                Some(v) => mutate = Some(v),
                None => return usage("--mutate needs a rule name"),
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{r}");
                }
                for r in META_RULES {
                    println!("{r} (meta)");
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let mut config = Config::workspace(root);
    if let Some(rule) = &mutate {
        match ft_lint::mutant(rule) {
            Some(m) => ft_lint::apply_mutant(&mut config, m),
            None => return usage(&format!("no seeded mutant for rule `{rule}`")),
        }
    }

    let report = match ft_lint::analyze(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ft-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("ft-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    for f in &report.findings {
        println!(
            "{}:{}:{}: {}: {}\n    {}",
            f.file, f.line, f.col, f.rule, f.message, f.snippet
        );
    }
    println!(
        "ft-lint: {} files, {} fns, {} finding(s), {} suppressed",
        report.files_scanned,
        report.fns_indexed,
        report.findings.len(),
        report.suppressed.len()
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ft-lint: {msg}");
    eprintln!("usage: ft-lint [--root DIR] [--out FILE] [--mutate RULE] [--list-rules]");
    ExitCode::from(2)
}
