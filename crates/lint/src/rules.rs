//! The rule engine: five rules, each grounded in a bug this repo
//! actually shipped (or nearly shipped) before the tooling existed.
//!
//! * `wall-clock` — `SystemTime` / `Instant::now` / `thread_rng` outside
//!   the allowlisted campaign drivers. Successor of the `grep` lint in
//!   `ci.sh`, now lexer-accurate: names inside strings and comments no
//!   longer count, names split across lines cannot hide.
//! * `unordered-iteration` — iterating a `HashMap`/`HashSet` in
//!   deterministic scope. Hash order is seeded per process; anything it
//!   feeds diverges between serial and sharded runs. This mechanizes the
//!   PR 5 audit comments.
//! * `panic-in-recovery` — `unwrap`/`expect`/`panic!`-family/indexing in
//!   the recovery and wire-decode closures. Those paths read
//!   fault-corrupted bytes by design and must fail-stop with
//!   `Corrupt{offset, detail}`-style errors: the Save-work/Lose-work
//!   oracles only judge runs that terminate cleanly.
//! * `unchecked-arith-in-decode` — bare `+`/`-`/`*` in the same
//!   closures. Attacker-shaped lengths and offsets must go through
//!   `checked_`/`saturating_`/`wrapping_` ops (the PR 2/PR 8
//!   debug-overflow bugs were exactly this class).
//! * `float-in-fingerprint` — float types or literals inside
//!   fingerprint/digest/checksum functions. Float arithmetic is not
//!   associative; folding it into a fingerprint breaks serial↔sharded
//!   bitwise equivalence. The shortest-round-trip JSON emitter is the
//!   one exempted place floats may be rendered.

use crate::lexer::{LineIndex, Token, TokenKind};
use crate::parse::{next_code, prev_code, FileIndex, FnInfo};

/// One rule hit, pre-suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (see [`crate::scope::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable diagnosis.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Everything the rules need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Full source.
    pub src: &'a str,
    /// Full token stream.
    pub tokens: &'a [Token],
    /// Line lookup.
    pub lines: &'a LineIndex,
    /// Parsed items.
    pub index: &'a FileIndex,
    /// Campaign driver (wall-clock et al. permitted).
    pub is_driver: bool,
    /// JSON-emitter exemption for `float-in-fingerprint`.
    pub is_emitter: bool,
    /// Lives under `tests/`, `benches/`, or `examples/`.
    pub is_test_path: bool,
    /// Per-fn recovery-scope marks, parallel to `index.fns`.
    pub recovery: &'a [bool],
}

/// Methods whose call on a hash container observes its order.
const ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "retain",
    "values",
    "values_mut",
];

/// Panicking macros (with or without the `debug_` prefix: debug and
/// release builds must behave identically in this workspace).
const PANIC_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
];

/// Panicking methods.
const PANIC_METHODS: &[&str] = &["expect", "expect_err", "unwrap", "unwrap_err"];

/// Identifier-kind tokens that sit before a genuinely *unary* `-`/`*`
/// even though they lex as idents.
const UNARY_CONTEXT_WORDS: &[&str] = &[
    "as", "break", "dyn", "else", "if", "impl", "in", "match", "move", "mut", "ref", "return",
    "where",
];

/// Function-name markers that place a fn in fingerprint scope.
const FINGERPRINT_MARKERS: &[&str] = &["checksum", "digest", "fingerprint", "fnv", "hash"];

/// Runs every rule over one file.
pub fn run(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    wall_clock(ctx, &mut out);
    unordered_iteration(ctx, &mut out);
    recovery_rules(ctx, &mut out);
    float_in_fingerprint(ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn snippet(ctx: &FileCtx<'_>, offset: usize) -> String {
    let start = ctx.src[..offset].rfind('\n').map_or(0, |i| i + 1);
    let end = ctx.src[offset..]
        .find('\n')
        .map_or(ctx.src.len(), |i| offset + i);
    let line = ctx.src[start..end].trim();
    let mut s: String = line.chars().take(96).collect();
    if s.len() < line.len() {
        s.push('…');
    }
    s
}

fn finding(ctx: &FileCtx<'_>, rule: &'static str, at: usize, message: String) -> Finding {
    let (line, col) = ctx.lines.line_col(at);
    Finding {
        rule,
        file: ctx.rel.to_string(),
        line,
        col,
        message,
        snippet: snippet(ctx, at),
    }
}

/// `SystemTime`, `Instant::now`, `thread_rng` anywhere outside driver
/// files (test code included: a wall-clock read in a test makes its
/// assertions time-dependent).
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_driver {
        return;
    }
    for (i, t) in ctx.tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text(ctx.src) {
            "SystemTime" | "thread_rng" => {
                let name = t.text(ctx.src);
                out.push(finding(
                    ctx,
                    "wall-clock",
                    t.start,
                    format!(
                        "`{name}` outside driver scope: simulated results must be a pure \
                         function of the seed"
                    ),
                ));
            }
            "Instant" => {
                let colons = next_code(ctx.tokens, i + 1);
                let now = next_code(ctx.tokens, colons.saturating_add(1));
                if colons < ctx.tokens.len()
                    && ctx.tokens[colons].text(ctx.src) == "::"
                    && now < ctx.tokens.len()
                    && ctx.tokens[now].text(ctx.src) == "now"
                {
                    out.push(finding(
                        ctx,
                        "wall-clock",
                        t.start,
                        "`Instant::now` outside driver scope: simulated results must be a \
                         pure function of the seed"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Iteration over `HashMap`/`HashSet` receivers in deterministic scope.
fn unordered_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_driver || ctx.is_test_path {
        return;
    }
    for f in &ctx.index.fns {
        if f.is_test {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let in_names = |name: &str| {
            ctx.index.hash_fields.iter().any(|n| n == name)
                || f.hash_locals.iter().any(|n| n == name)
        };
        let mut i = next_code(ctx.tokens, lo);
        while i < hi {
            let txt = ctx.tokens[i].text(ctx.src);
            // `recv.iter()` — walk back over the dot to the receiver.
            if ctx.tokens[i].kind == TokenKind::Ident && ITER_METHODS.contains(&txt) {
                if let Some(dot) = prev_code(ctx.tokens, i) {
                    let open = next_code(ctx.tokens, i + 1);
                    if ctx.tokens[dot].text(ctx.src) == "."
                        && open < ctx.tokens.len()
                        && ctx.tokens[open].text(ctx.src) == "("
                    {
                        if let Some(recv) = prev_code(ctx.tokens, dot) {
                            let rt = ctx.tokens[recv].text(ctx.src);
                            if ctx.tokens[recv].kind == TokenKind::Ident && in_names(rt) {
                                out.push(finding(
                                    ctx,
                                    "unordered-iteration",
                                    ctx.tokens[i].start,
                                    format!(
                                        "`.{txt}()` on unordered `{rt}` in deterministic scope: \
                                         hash order is per-process; sort, or use BTreeMap/BTreeSet"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            // `for pat in expr {` — hash names used bare in the expr.
            if txt == "for" && ctx.tokens[i].kind == TokenKind::Ident {
                let nxt = next_code(ctx.tokens, i + 1);
                if nxt < hi && ctx.tokens[nxt].text(ctx.src) == "<" {
                    i = next_code(ctx.tokens, i + 1);
                    continue; // HRTB `for<'a>`
                }
                // Find `in`, then scan to the loop body `{`.
                let mut j = nxt;
                let mut in_at = None;
                while j < hi {
                    match ctx.tokens[j].text(ctx.src) {
                        "in" => {
                            in_at = Some(j);
                            break;
                        }
                        "{" | ";" => break,
                        "(" | "[" => j = skip(ctx, j),
                        _ => j = next_code(ctx.tokens, j + 1),
                    }
                }
                if let Some(in_at) = in_at {
                    let mut j = next_code(ctx.tokens, in_at + 1);
                    while j < hi {
                        let jt = ctx.tokens[j].text(ctx.src);
                        match jt {
                            "{" | ";" => break,
                            "(" | "[" => {
                                j = skip(ctx, j);
                                continue;
                            }
                            _ => {}
                        }
                        if ctx.tokens[j].kind == TokenKind::Ident && in_names(jt) {
                            let after = next_code(ctx.tokens, j + 1);
                            let a = ctx.tokens.get(after).map_or("", |t| t.text(ctx.src));
                            // `m[..]` indexes a value out; `m.keys()` is
                            // handled by the method arm above.
                            if a != "[" && a != "." {
                                out.push(finding(
                                    ctx,
                                    "unordered-iteration",
                                    ctx.tokens[j].start,
                                    format!(
                                        "`for … in` over unordered `{jt}` in deterministic \
                                         scope: hash order is per-process; sort, or use \
                                         BTreeMap/BTreeSet"
                                    ),
                                ));
                            }
                        }
                        j = next_code(ctx.tokens, j + 1);
                    }
                }
            }
            i = next_code(ctx.tokens, i + 1);
        }
    }
}

/// `panic-in-recovery` + `unchecked-arith-in-decode`, both scoped to the
/// recovery closure.
fn recovery_rules(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (fi, f) in ctx.index.fns.iter().enumerate() {
        if f.is_test || !ctx.recovery.get(fi).copied().unwrap_or(false) {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let mut i = next_code(ctx.tokens, lo);
        while i < hi {
            let t = &ctx.tokens[i];
            let txt = t.text(ctx.src);
            if t.kind == TokenKind::Ident {
                // `.unwrap()` / `.expect(…)`.
                if PANIC_METHODS.contains(&txt) {
                    let dot_ok = prev_code(ctx.tokens, i)
                        .is_some_and(|p| ctx.tokens[p].text(ctx.src) == ".");
                    let open = next_code(ctx.tokens, i + 1);
                    if dot_ok && open < ctx.tokens.len() && ctx.tokens[open].text(ctx.src) == "(" {
                        out.push(finding(
                            ctx,
                            "panic-in-recovery",
                            t.start,
                            format!(
                                "`.{txt}()` in recovery scope `{}`: corrupted input must \
                                 fail-stop with a Corrupt-style error, not panic",
                                f.qual
                            ),
                        ));
                    }
                }
                // `panic!(…)`-family macros.
                if PANIC_MACROS.contains(&txt) {
                    let bang = next_code(ctx.tokens, i + 1);
                    if bang < ctx.tokens.len() && ctx.tokens[bang].text(ctx.src) == "!" {
                        out.push(finding(
                            ctx,
                            "panic-in-recovery",
                            t.start,
                            format!(
                                "`{txt}!` in recovery scope `{}`: corrupted input must \
                                 fail-stop with a Corrupt-style error, not panic",
                                f.qual
                            ),
                        ));
                    }
                }
            }
            // Indexing without `get`: `expr[…]` panics on out-of-range.
            if txt == "[" {
                if let Some(p) = prev_code(ctx.tokens, i) {
                    let pt = ctx.tokens[p].text(ctx.src);
                    if (ctx.tokens[p].kind == TokenKind::Ident
                        && !UNARY_CONTEXT_WORDS.contains(&pt)
                        && !PANIC_MACROS.contains(&pt))
                        || pt == ")"
                        || pt == "]"
                    {
                        // Macro square-bracket args (`vec![…]`) have a
                        // `!` before the bracket and are excluded by the
                        // ident check above (prev is `!`).
                        out.push(finding(
                            ctx,
                            "panic-in-recovery",
                            t.start,
                            format!(
                                "indexing without `get` in recovery scope `{}`: out-of-range \
                                 must fail-stop, not panic",
                                f.qual
                            ),
                        ));
                    }
                }
            }
            // Bare arithmetic on untrusted offsets/lengths.
            if matches!(txt, "+" | "-" | "*" | "+=" | "-=" | "*=") {
                if let Some(p) = prev_code(ctx.tokens, i) {
                    let pt = ctx.tokens[p].text(ctx.src);
                    let binary = matches!(ctx.tokens[p].kind, TokenKind::Ident | TokenKind::Num)
                        && !UNARY_CONTEXT_WORDS.contains(&pt)
                        || pt == ")"
                        || pt == "]";
                    if binary {
                        out.push(finding(
                            ctx,
                            "unchecked-arith-in-decode",
                            t.start,
                            format!(
                                "bare `{txt}` in decode scope `{}`: offsets and lengths from \
                                 fault-corrupted bytes need checked_/saturating_/wrapping_ ops",
                                f.qual
                            ),
                        ));
                    }
                }
            }
            i = next_code(ctx.tokens, i + 1);
        }
    }
}

/// Float types or literals inside fingerprint-scope functions.
fn float_in_fingerprint(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_driver || ctx.is_emitter || ctx.is_test_path {
        return;
    }
    for f in &ctx.index.fns {
        if f.is_test || !is_fingerprint_fn(f) {
            continue;
        }
        // Signature included: an `-> f64` fingerprint is just as wrong.
        let hi = f.body.map_or(f.fn_token + 1, |(_, h)| h);
        let mut i = f.fn_token;
        while i < hi {
            let t = &ctx.tokens[i];
            let txt = t.text(ctx.src);
            let is_float_ident = t.kind == TokenKind::Ident && (txt == "f64" || txt == "f32");
            let is_float_num = t.kind == TokenKind::Num && num_is_float(txt);
            if is_float_ident || is_float_num {
                out.push(finding(
                    ctx,
                    "float-in-fingerprint",
                    t.start,
                    format!(
                        "float `{txt}` in fingerprint scope `{}`: float arithmetic is not \
                         associative and breaks serial↔sharded bitwise equivalence; hash \
                         integer encodings (or to_bits) instead",
                        f.qual
                    ),
                ));
            }
            i = next_code(ctx.tokens, i + 1);
        }
    }
}

fn is_fingerprint_fn(f: &FnInfo) -> bool {
    FINGERPRINT_MARKERS.iter().any(|m| f.name.contains(m))
}

/// Whether a numeric literal is a float (`1.5`, `1.`, `1e3`, `2f64`).
fn num_is_float(text: &str) -> bool {
    let lower = text.as_bytes();
    if text.len() >= 2
        && lower[0] == b'0'
        && matches!(lower[1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
    {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    // Exponent: `e`/`E` followed by a digit or sign (`usize` suffixes
    // contain an `e` but never a digit after it).
    text.bytes()
        .zip(text.bytes().skip(1))
        .any(|(a, b)| matches!(a, b'e' | b'E') && (b.is_ascii_digit() || b == b'+' || b == b'-'))
}

/// Jumps over a matched delimiter (re-deriving the close map locally
/// would be wasteful; a linear forward scan with depth works because
/// rule bodies are small).
fn skip(ctx: &FileCtx<'_>, open: usize) -> usize {
    let open_txt = ctx.tokens[open].text(ctx.src);
    let close_txt = match open_txt {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < ctx.tokens.len() {
        let t = ctx.tokens[i].text(ctx.src);
        if t == open_txt {
            depth += 1;
        } else if t == close_txt {
            depth -= 1;
            if depth == 0 {
                return next_code(ctx.tokens, i + 1);
            }
        }
        i += 1;
    }
    i
}
