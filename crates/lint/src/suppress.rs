//! Structured per-line suppressions.
//!
//! Grammar (one per comment):
//!
//! ```text
//! // ft-lint: allow(<rule>): <non-empty reason>
//! ```
//!
//! A trailing comment suppresses findings of `<rule>` on its own line; a
//! comment alone on a line suppresses the line below it. Unknown rules,
//! missing reasons, and stray `ft-lint:` markers are reported as
//! `bad-suppression`; a suppression that matched nothing is reported as
//! `unused-suppression` — dead excuses rot into cover for real bugs,
//! which is exactly how the old allowlist file failed.

use crate::lexer::{LineIndex, Token, TokenKind};

/// One parsed suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule identifier being allowed.
    pub rule: String,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// 1-based line whose findings it suppresses.
    pub applies_line: usize,
    /// The stated justification (guaranteed non-empty).
    pub reason: String,
}

/// A malformed suppression marker.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// 1-based line of the comment.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts suppressions (and malformed markers) from a file's comments.
pub fn collect(
    src: &str,
    tokens: &[Token],
    lines: &LineIndex,
) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut ok = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let text = t.text(src);
        // Doc comments (`///`, `//!`) are documentation, not directives —
        // they may *describe* the suppression grammar without enacting it.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(marker_at) = text.find("ft-lint:") else {
            continue;
        };
        let (line, _col) = lines.line_col(t.start);
        let body = text[marker_at + "ft-lint:".len()..].trim();
        match parse_allow(body) {
            Ok((rule, reason)) => {
                if !crate::scope::is_rule(&rule) {
                    bad.push(BadSuppression {
                        line,
                        message: format!("unknown rule `{rule}` in suppression"),
                    });
                    continue;
                }
                // A comment with only whitespace before it on its line
                // applies to the next line; a trailing comment applies
                // to its own.
                let standalone = src[..t.start]
                    .rfind('\n')
                    .map_or(&src[..t.start], |nl| &src[nl + 1..t.start])
                    .trim()
                    .is_empty();
                ok.push(Suppression {
                    rule,
                    comment_line: line,
                    applies_line: if standalone { line + 1 } else { line },
                    reason,
                });
            }
            Err(msg) => bad.push(BadSuppression { line, message: msg }),
        }
    }
    (ok, bad)
}

/// Parses `allow(<rule>): <reason>`.
fn parse_allow(body: &str) -> Result<(String, String), String> {
    let rest = body
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `ft-lint: allow(<rule>): <reason>`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `(` in suppression".to_string())?;
    let rule = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix(':')
        .ok_or_else(|| "missing `: <reason>` after allow(…)".to_string())?
        .trim();
    if reason.is_empty() {
        return Err("suppression reason must be non-empty".to_string());
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Suppression>, Vec<BadSuppression>) {
        let tokens = lex(src);
        collect(src, &tokens, &LineIndex::new(src))
    }

    #[test]
    fn trailing_and_standalone_lines() {
        let src = "\
let a = m.iter(); // ft-lint: allow(unordered-iteration): sorted below
// ft-lint: allow(wall-clock): driver-only timing
let t = now();
";
        let (ok, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0].rule, "unordered-iteration");
        assert_eq!(ok[0].applies_line, 1);
        assert_eq!(ok[1].rule, "wall-clock");
        assert_eq!(ok[1].applies_line, 3);
        assert_eq!(ok[1].reason, "driver-only timing");
    }

    #[test]
    fn malformed_markers_are_reported() {
        let cases = [
            "// ft-lint: allow(wall-clock)",            // missing reason
            "// ft-lint: allow(wall-clock):   ",        // empty reason
            "// ft-lint: allow(no-such-rule): because", // unknown rule
            "// ft-lint: disable(wall-clock): x",       // wrong verb
        ];
        for src in cases {
            let (ok, bad) = run(src);
            assert!(ok.is_empty(), "{src}");
            assert_eq!(bad.len(), 1, "{src}");
        }
    }

    #[test]
    fn markers_in_strings_do_not_count() {
        let (ok, bad) = run(r#"let s = "ft-lint: allow(wall-clock): nope";"#);
        assert!(ok.is_empty() && bad.is_empty());
    }
}
