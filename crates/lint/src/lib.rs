//! `ft-lint`: a workspace-wide static analyzer for determinism and
//! recovery-safety invariants.
//!
//! Replaces the `grep -rn` determinism lint that used to live in
//! `ci.sh`: a hand-rolled lexer (strings/comments no longer fool the
//! scan), a coarse item parser (findings are scoped to functions), a
//! name-based call-approximation graph (recovery-scope rules follow the
//! actual `open → scan_frame → read_u32` chain instead of a hard-coded
//! file list), structured per-line suppressions with mandatory reasons,
//! and a deterministic JSON report (`BENCH_lint.json`, byte-identical
//! across runs).
//!
//! Std-only on purpose — the linter judges the workspace even when the
//! workspace does not compile. See DESIGN.md §15 for the architecture
//! and the documented approximations.

pub mod graph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;

use std::fs;
use std::path::Path;

use lexer::LineIndex;
use report::{Report, ScopeStat, Suppressed};
use rules::{FileCtx, Finding};
use scope::Config;

/// Runs the full analysis over a configuration.
///
/// Errors only on I/O problems (unreadable file, missing root); analysis
/// itself cannot fail — unparseable code degrades to fewer recognized
/// items, never to a crash (the lexer consumes arbitrary bytes).
pub fn analyze(config: &Config) -> Result<Report, String> {
    let mut files: Vec<(String, String)> = Vec::new();
    for dir in &config.scan_dirs {
        let base = if dir.is_empty() {
            config.root.clone()
        } else {
            config.root.join(dir)
        };
        if !base.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        walk(&base, &mut paths)?;
        for p in paths {
            let rel = rel_path(&config.root, &p);
            if config.exclude.iter().any(|e| rel.contains(e.as_str())) {
                continue;
            }
            let src = fs::read_to_string(&p).map_err(|e| format!("read {rel}: {e}"))?;
            files.push((rel, src));
        }
    }
    for (rel, src) in &config.synthetic {
        files.push((rel.clone(), src.clone()));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = Report::default();
    for (rel, src) in &files {
        analyze_file(config, rel, src, &mut out);
    }
    out.finalize();
    Ok(out)
}

fn analyze_file(config: &Config, rel: &str, src: &str, out: &mut Report) {
    let tokens = lexer::lex(src);
    let lines = LineIndex::new(src);
    let index = parse::parse(src, &tokens, &lines);
    out.files_scanned += 1;
    out.fns_indexed += index.fns.len();

    let roots = config.recovery_roots_for(rel);
    let (recovery, marked) = match roots {
        Some(roots) => graph::recovery_closure(&index, roots, config.scope_stops_for(rel)),
        None => (vec![false; index.fns.len()], 0),
    };
    if roots.is_some() {
        out.scopes.push(ScopeStat {
            file: rel.to_string(),
            fns_in_scope: marked,
        });
    }

    let ctx = FileCtx {
        rel,
        src,
        tokens: &tokens,
        lines: &lines,
        index: &index,
        is_driver: config.is_driver(rel),
        is_emitter: config.is_emitter(rel),
        is_test_path: Config::is_test_path(rel),
        recovery: &recovery,
    };
    let found = rules::run(&ctx);

    let (sups, bads) = suppress::collect(src, &tokens, &lines);
    for b in bads {
        out.findings
            .push(meta_finding("bad-suppression", rel, src, b.line, b.message));
    }
    let mut used = vec![false; sups.len()];
    for f in found {
        match sups
            .iter()
            .position(|s| s.rule == f.rule && s.applies_line == f.line)
        {
            Some(si) => {
                used[si] = true;
                out.suppressed.push(Suppressed {
                    rule: f.rule,
                    file: f.file,
                    line: f.line,
                    reason: sups[si].reason.clone(),
                });
            }
            None => out.findings.push(f),
        }
    }
    for (s, u) in sups.iter().zip(&used) {
        if !u {
            out.findings.push(meta_finding(
                "unused-suppression",
                rel,
                src,
                s.comment_line,
                format!(
                    "suppression of `{}` matched no finding on line {}: dead excuses rot — \
                     delete it (or fix the drifted line number)",
                    s.rule, s.applies_line
                ),
            ));
        }
    }
}

fn meta_finding(rule: &'static str, rel: &str, src: &str, line: usize, message: String) -> Finding {
    let snippet = src
        .lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .chars()
        .take(96)
        .collect();
    Finding {
        rule,
        file: rel.to_string(),
        line,
        col: 1,
        message,
        snippet,
    }
}

/// Recursive deterministic walk: entries sorted by name, `.rs` files
/// only, hidden directories skipped.
fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> Result<(), String> {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .collect::<Result<_, _>>()
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for ent in entries {
        let path = ent.path();
        let name = ent.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators (report stability across
/// checkout locations and platforms).
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// A seeded violation for the CI self-test: `--mutate <rule>` plants
/// this source as an in-memory synthetic file; the run must then exit
/// nonzero, proving the gate can actually fail (same pattern as the
/// perf gate's `--mutate spin`).
#[derive(Debug)]
pub struct Mutant {
    /// Rule (or meta-rule) this mutant must trigger.
    pub rule: &'static str,
    /// Synthetic workspace-relative path (non-driver, non-test scope).
    pub path: &'static str,
    /// Planted source text.
    pub source: &'static str,
    /// Extra recovery roots the config needs for this mutant.
    pub recovery_roots: &'static [&'static str],
}

/// One seeded violation per rule, plus one for unused-suppression
/// detection.
pub const MUTANTS: &[Mutant] = &[
    Mutant {
        rule: "wall-clock",
        path: "crates/sim/src/zz_ft_lint_mutant.rs",
        source: "use std::time::Instant;\n\
                 pub fn seeded_wall_clock() -> u128 {\n    \
                 Instant::now().elapsed().as_nanos()\n}\n",
        recovery_roots: &[],
    },
    Mutant {
        rule: "unordered-iteration",
        path: "crates/sim/src/zz_ft_lint_mutant.rs",
        source: "use std::collections::HashMap;\n\
                 pub fn seeded_unordered(m: &HashMap<u64, u64>) -> u64 {\n    \
                 let mut acc = 0;\n    \
                 for v in m.values() {\n        acc ^= v;\n    }\n    \
                 acc\n}\n",
        recovery_roots: &[],
    },
    Mutant {
        rule: "panic-in-recovery",
        path: "crates/sim/src/zz_ft_lint_mutant.rs",
        source: "pub fn open(bytes: &[u8]) -> u32 {\n    decode_header(bytes)\n}\n\
                 fn decode_header(bytes: &[u8]) -> u32 {\n    \
                 u32::from(bytes.first().copied().unwrap())\n}\n",
        recovery_roots: &["open"],
    },
    Mutant {
        rule: "unchecked-arith-in-decode",
        path: "crates/sim/src/zz_ft_lint_mutant.rs",
        source: "pub fn open(len: usize, off: usize) -> usize {\n    frame_end(len, off)\n}\n\
                 fn frame_end(len: usize, off: usize) -> usize {\n    off + len\n}\n",
        recovery_roots: &["open"],
    },
    Mutant {
        rule: "float-in-fingerprint",
        path: "crates/sim/src/zz_ft_lint_mutant.rs",
        source: "pub fn fingerprint_seeded(x: u64) -> u64 {\n    \
                 let weight = 0.5;\n    ((x as f64) * weight) as u64\n}\n",
        recovery_roots: &[],
    },
    Mutant {
        rule: "unused-suppression",
        path: "crates/sim/src/zz_ft_lint_mutant.rs",
        source: "// ft-lint: allow(wall-clock): seeded self-test, matches nothing\n\
                 pub fn seeded_unused() {}\n",
        recovery_roots: &[],
    },
];

/// Looks up the seeded mutant for a rule.
pub fn mutant(rule: &str) -> Option<&'static Mutant> {
    MUTANTS.iter().find(|m| m.rule == rule)
}

/// Applies a mutant to a config (synthetic file + any recovery roots).
pub fn apply_mutant(config: &mut Config, m: &Mutant) {
    config
        .synthetic
        .push((m.path.to_string(), m.source.to_string()));
    if !m.recovery_roots.is_empty() {
        config.recovery_roots.push((
            m.path.to_string(),
            m.recovery_roots.iter().map(|s| (*s).to_string()).collect(),
        ));
    }
}
