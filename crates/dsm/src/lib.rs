//! # ft-dsm — page-based distributed shared memory
//!
//! A TreadMarks-style software DSM (§3's substrate for the Barnes-Hut
//! workload), rebuilt over the simulated network:
//!
//! * a shared region of DSM pages replicated on every node, with **twins**
//!   and **diffs**: each node tracks the pages it wrote, and at a barrier
//!   broadcasts byte-granular diffs of those pages against its twin —
//!   TreadMarks' multiple-writer protocol, which lets distinct nodes write
//!   disjoint parts of the same page concurrently and merge;
//! * an all-to-all **dissemination barrier** doubling as the release
//!   point: a node leaves the barrier when it has received every peer's
//!   diffs for the round, so shared data is coherent at barrier exit
//!   (release consistency for barrier-race-free programs);
//! * everything — region, twins, dirty bits, barrier state — lives in the
//!   process arena, so the DSM checkpoints, rolls back, and replays under
//!   the recovery runtime exactly like any other application state.
//!
//! The barrier is *pumped*: [`Dsm::barrier_pump`] performs at most one
//! event-generating syscall per call, honoring the `ft-sim` step
//! discipline; the application keeps calling it until it reports
//! [`BarrierStatus::Done`].
//!
//! TreadMarks' second synchronization primitive — **locks**, with
//! entry-consistency diff propagation along the grant chain — lives in
//! [`lock`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lock;
mod wire;

use ft_core::access::ShmOp;
use ft_mem::error::{MemFault, MemResult};
use ft_mem::mem::{ArenaCell, Mem};
use ft_mem::pod::Pod;
use ft_sim::cost::US;
use ft_sim::syscalls::SysMem;

/// DSM page size in bytes (TreadMarks used the VM page; we use a finer
/// granularity so diffs stay interesting at simulation scale).
pub const DSM_PAGE: usize = 1024;

/// A diff message: the sender's byte-level changes for one barrier round.
#[derive(Debug, Clone)]
struct DiffMsg {
    round: u64,
    from: u32,
    diffs: Vec<PageDiff>,
}

/// Byte runs that changed within one page.
#[derive(Debug, Clone)]
struct PageDiff {
    page: u32,
    runs: Vec<(u32, Vec<u8>)>,
}

/// Result of pumping the barrier state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierStatus {
    /// The barrier completed; shared data is coherent.
    Done,
    /// Progress was made (or more sends remain); call again.
    Working,
    /// Waiting for peer diffs; block on a message wait condition.
    Blocked,
}

/// A DSM endpoint: immutable configuration plus arena offsets. All mutable
/// state lives in the arena.
#[derive(Debug, Clone, Copy)]
pub struct Dsm {
    my: u32,
    n_nodes: u32,
    n_pages: usize,
    region_off: usize,
    twin_off: usize,
    /// Control block: phase, round, send index, parity masks.
    ctrl_off: usize,
    /// One dirty flag byte per page.
    dirty_off: usize,
    /// Stash for next-round diffs that arrive early (a fast peer racing
    /// ahead): `n_nodes - 1` slots of `[len u64][payload]`.
    stash_off: usize,
}

// Control cell layout (u64 each).
const C_PHASE: usize = 0; // 0 = idle, 1 = sending, 2 = receiving.
const C_ROUND: usize = 8;
const C_SEND_IDX: usize = 16;
const C_MASK_EVEN: usize = 24;
const C_MASK_ODD: usize = 32;
const C_LOCK_PHASE: usize = 40;
/// Bytes of control state.
pub const CTRL_SIZE: usize = 48;

impl Dsm {
    /// Initializes a DSM endpoint for node `my` of `n_nodes`, allocating
    /// the shared region, its twin, the dirty map, and the control block in
    /// the arena heap.
    ///
    /// Every node must initialize with the same `n_pages`; the shared
    /// region starts zeroed and coherent.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes > 64` (the parity masks are single words).
    pub fn init(mem: &mut Mem, my: u32, n_nodes: u32, n_pages: usize) -> MemResult<Self> {
        assert!(n_nodes <= 64, "parity masks hold at most 64 nodes");
        let region_off = mem.alloc.alloc(&mut mem.arena, n_pages * DSM_PAGE)?;
        let twin_off = mem.alloc.alloc(&mut mem.arena, n_pages * DSM_PAGE)?;
        let dirty_off = mem.alloc.alloc(&mut mem.arena, n_pages)?;
        let ctrl_off = mem.alloc.alloc(&mut mem.arena, CTRL_SIZE)?;
        let stash_off = mem.alloc.alloc(
            &mut mem.arena,
            (n_nodes as usize - 1) * Self::stash_slot_bytes(n_pages),
        )?;
        Ok(Dsm {
            my,
            n_nodes,
            n_pages,
            region_off,
            twin_off,
            ctrl_off,
            dirty_off,
            stash_off,
        })
    }

    /// Bytes per stash slot: header + a worst-case whole-region diff with
    /// run overhead.
    fn stash_slot_bytes(n_pages: usize) -> usize {
        8 + n_pages * (DSM_PAGE + 64) + 256
    }

    /// This node's id.
    pub fn node(&self) -> u32 {
        self.my
    }

    /// Number of nodes sharing the region.
    pub fn nodes(&self) -> u32 {
        self.n_nodes
    }

    /// Size of the shared region in bytes.
    pub fn size(&self) -> usize {
        self.n_pages * DSM_PAGE
    }

    /// The current barrier round.
    pub fn round(&self, mem: &Mem) -> MemResult<u64> {
        self.ctrl(C_ROUND).get(&mem.arena)
    }

    fn ctrl(&self, field: usize) -> ArenaCell<u64> {
        ArenaCell::at(self.ctrl_off + field)
    }

    fn check(&self, off: usize, len: usize) -> MemResult<()> {
        if off.checked_add(len).is_none_or(|end| end > self.size()) {
            return Err(MemFault::OutOfBounds {
                offset: self.region_off.wrapping_add(off),
                len,
            });
        }
        Ok(())
    }

    /// Reads bytes at a region-relative offset, reporting the access to
    /// the shared-memory stream (the `ft-analyze` race passes consume it).
    #[expect(
        clippy::cast_possible_truncation,
        reason = "region offsets/lengths are arena-bounded, far below u32::MAX; the shm-op stream keeps them compact"
    )]
    pub fn read(&self, sys: &mut dyn SysMem, off: usize, len: usize) -> MemResult<Vec<u8>> {
        let out = self.read_raw(sys.mem(), off, len)?;
        sys.shm_op(ShmOp::Read {
            off: off as u32,
            len: len as u32,
        });
        Ok(out)
    }

    /// Reads a [`Pod`] value at a region-relative offset, reporting the
    /// access to the shared-memory stream.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "region offsets/lengths are arena-bounded, far below u32::MAX; the shm-op stream keeps them compact"
    )]
    pub fn read_pod<T: Pod>(&self, sys: &mut dyn SysMem, off: usize) -> MemResult<T> {
        let v = self.read_pod_raw(sys.mem(), off)?;
        sys.shm_op(ShmOp::Read {
            off: off as u32,
            len: T::SIZE as u32,
        });
        Ok(v)
    }

    /// Writes bytes at a region-relative offset, marking the touched DSM
    /// pages dirty and reporting the access to the shared-memory stream.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "region offsets/lengths are arena-bounded, far below u32::MAX; the shm-op stream keeps them compact"
    )]
    pub fn write(&self, sys: &mut dyn SysMem, off: usize, bytes: &[u8]) -> MemResult<()> {
        let len = bytes.len();
        self.write_raw(sys.mem(), off, bytes)?;
        sys.shm_op(ShmOp::Write {
            off: off as u32,
            len: len as u32,
        });
        Ok(())
    }

    /// Writes a [`Pod`] value at a region-relative offset, reporting the
    /// access to the shared-memory stream.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "region offsets/lengths are arena-bounded, far below u32::MAX; the shm-op stream keeps them compact"
    )]
    pub fn write_pod<T: Pod>(&self, sys: &mut dyn SysMem, off: usize, value: T) -> MemResult<()> {
        self.write_pod_raw(sys.mem(), off, value)?;
        sys.shm_op(ShmOp::Write {
            off: off as u32,
            len: T::SIZE as u32,
        });
        Ok(())
    }

    /// Reads raw bytes at a region-relative offset without reporting an
    /// access record. For protocol internals (diff computation, twin
    /// maintenance) and replica-local initialization — application reads
    /// of live shared data should go through [`Dsm::read`].
    pub fn read_raw(&self, mem: &Mem, off: usize, len: usize) -> MemResult<Vec<u8>> {
        self.check(off, len)?;
        Ok(mem.arena.read(self.region_off + off, len)?.to_vec())
    }

    /// Reads a [`Pod`] value without reporting an access record.
    pub fn read_pod_raw<T: Pod>(&self, mem: &Mem, off: usize) -> MemResult<T> {
        self.check(off, T::SIZE)?;
        mem.arena.read_pod(self.region_off + off)
    }

    /// Writes bytes at a region-relative offset, marking the touched DSM
    /// pages dirty (they will be diffed at the next barrier), without
    /// reporting an access record. For protocol internals and for
    /// replica-local initialization before [`Dsm::commit_baseline`] —
    /// application writes of live shared data should go through
    /// [`Dsm::write`].
    pub fn write_raw(&self, mem: &mut Mem, off: usize, bytes: &[u8]) -> MemResult<()> {
        self.check(off, bytes.len())?;
        mem.arena.write(self.region_off + off, bytes)?;
        self.mark_dirty(mem, off, bytes.len())
    }

    /// Writes a [`Pod`] value without reporting an access record.
    pub fn write_pod_raw<T: Pod>(&self, mem: &mut Mem, off: usize, value: T) -> MemResult<()> {
        self.check(off, T::SIZE)?;
        mem.arena.write_pod(self.region_off + off, value)?;
        self.mark_dirty(mem, off, T::SIZE)
    }

    fn mark_dirty(&self, mem: &mut Mem, off: usize, len: usize) -> MemResult<()> {
        if len == 0 {
            return Ok(());
        }
        let first = off / DSM_PAGE;
        let last = (off + len - 1) / DSM_PAGE;
        for p in first..=last {
            mem.arena.write(self.dirty_off + p, &[1])?;
        }
        Ok(())
    }

    /// Computes this node's diffs (dirty pages vs. twin).
    #[expect(
        clippy::cast_possible_truncation,
        reason = "run starts are < DSM_PAGE and page numbers < n_pages, both far below u32::MAX"
    )]
    fn compute_diffs(&self, mem: &Mem) -> MemResult<Vec<PageDiff>> {
        let mut out = Vec::new();
        for p in 0..self.n_pages {
            if mem.arena.read(self.dirty_off + p, 1)?[0] == 0 {
                continue;
            }
            let cur = mem.arena.read(self.region_off + p * DSM_PAGE, DSM_PAGE)?;
            let twin = mem.arena.read(self.twin_off + p * DSM_PAGE, DSM_PAGE)?;
            let mut runs: Vec<(u32, Vec<u8>)> = Vec::new();
            let mut i = 0;
            while i < DSM_PAGE {
                if cur[i] != twin[i] {
                    let start = i;
                    while i < DSM_PAGE && cur[i] != twin[i] {
                        i += 1;
                    }
                    runs.push((start as u32, cur[start..i].to_vec()));
                } else {
                    i += 1;
                }
            }
            if !runs.is_empty() {
                out.push(PageDiff {
                    page: p as u32,
                    runs,
                });
            }
        }
        Ok(out)
    }

    #[cfg(test)]
    fn apply_diffs(&self, mem: &mut Mem, diffs: &[PageDiff]) -> MemResult<()> {
        for d in diffs {
            if d.page as usize >= self.n_pages {
                return Err(MemFault::InvariantViolated { check: 0xD5 });
            }
            let base = self.region_off + d.page as usize * DSM_PAGE;
            for (off, bytes) in &d.runs {
                if *off as usize + bytes.len() > DSM_PAGE {
                    return Err(MemFault::InvariantViolated { check: 0xD5 });
                }
                mem.arena.write(base + *off as usize, bytes)?;
            }
        }
        Ok(())
    }

    fn stash_slot(&self, idx: usize) -> usize {
        self.stash_off + idx * Self::stash_slot_bytes(self.n_pages)
    }

    /// Stores an early diff payload in a free stash slot.
    fn stash_put(&self, mem: &mut Mem, _from: u32, payload: &[u8]) -> MemResult<()> {
        for i in 0..self.n_nodes as usize - 1 {
            let slot = self.stash_slot(i);
            let len: u64 = mem.arena.read_pod(slot)?;
            if len == 0 {
                if 8 + payload.len() > Self::stash_slot_bytes(self.n_pages) {
                    return Err(MemFault::InvariantViolated { check: 0xD7 });
                }
                mem.arena.write_pod(slot, payload.len() as u64)?;
                mem.arena.write(slot + 8, payload)?;
                return Ok(());
            }
        }
        Err(MemFault::InvariantViolated { check: 0xD8 })
    }

    /// Applies and clears all stashed diffs (now belonging to the current
    /// round).
    #[expect(
        clippy::cast_possible_truncation,
        reason = "stash lengths are bounded by the region size; peer counts fit u32 by construction"
    )]
    fn stash_drain(&self, mem: &mut Mem) -> MemResult<()> {
        for i in 0..self.n_nodes as usize - 1 {
            let slot = self.stash_slot(i);
            let len: u64 = mem.arena.read_pod(slot)?;
            if len == 0 {
                continue;
            }
            let payload = mem.arena.read(slot + 8, len as usize)?.to_vec();
            self.apply_diff_msg_in_place(mem, &payload)?;
            mem.arena.write_pod(slot, 0u64)?;
        }
        Ok(())
    }

    /// Declares the current region contents the shared baseline: refreshes
    /// the twin and clears the dirty map so nothing seeded so far is
    /// diffed. Call after deterministic initialization that every node
    /// performs identically — without this, round-one diffs would cover
    /// every seeded byte on every node, a write-write race.
    pub fn commit_baseline(&self, mem: &mut Mem) -> MemResult<()> {
        self.refresh_twin(mem)
    }

    /// Finishes a round: refresh the twin from the (merged) region and
    /// clear the dirty map.
    fn refresh_twin(&self, mem: &mut Mem) -> MemResult<()> {
        let region = mem
            .arena
            .read(self.region_off, self.n_pages * DSM_PAGE)?
            .to_vec();
        mem.arena.write(self.twin_off, &region)?;
        mem.arena.fill(self.dirty_off, self.n_pages, 0)?;
        Ok(())
    }

    /// Arena offset of the lock-client phase cell (used by [`lock`]).
    fn lock_ctrl_off(&self) -> usize {
        self.ctrl_off + C_LOCK_PHASE
    }

    /// Serializes this node's current diffs (dirty pages vs. twin) for a
    /// lock release. For lock-race-free programs the dirty set at release
    /// is exactly the critical-section writes.
    fn serialize_my_diffs(&self, mem: &Mem) -> MemResult<Vec<u8>> {
        let diffs = self.compute_diffs(mem)?;
        Ok(wire::encode_diffs(&diffs))
    }

    /// Applies a serialized diff payload to the region *and* the twin —
    /// grant-carried diffs are received state, not this node's writes, so
    /// they must not be re-published at the next release or barrier.
    /// Returns the number of bytes applied.
    fn apply_serialized_diffs(&self, mem: &mut Mem, payload: &[u8]) -> MemResult<usize> {
        // Region pass, streamed in place (same checks, same order as
        // [`Dsm::apply_diffs`], no materialized `PageDiff`s).
        let mut base = 0usize;
        wire::visit_diffs(payload, &mut |ev| match ev {
            wire::DiffEvent::Page(page) => {
                if page as usize >= self.n_pages {
                    return Err(MemFault::InvariantViolated { check: 0xD5 });
                }
                base = self.region_off + page as usize * DSM_PAGE;
                Ok(())
            }
            wire::DiffEvent::Run(off, bytes) => {
                if off as usize + bytes.len() > DSM_PAGE {
                    return Err(MemFault::InvariantViolated { check: 0xD5 });
                }
                mem.arena.write(base + off as usize, bytes)
            }
        })?;
        // Twin pass (bounds already proven by the region pass).
        let mut applied = 0;
        let mut base = 0usize;
        wire::visit_diffs(payload, &mut |ev| match ev {
            wire::DiffEvent::Page(page) => {
                base = self.twin_off + page as usize * DSM_PAGE;
                Ok(())
            }
            wire::DiffEvent::Run(off, bytes) => {
                mem.arena.write(base + off as usize, bytes)?;
                applied += bytes.len();
                Ok(())
            }
        })?;
        Ok(applied)
    }

    /// Streaming equivalent of `decode_diff_msg` + [`Dsm::apply_diffs`]:
    /// validates the payload up front, then applies runs borrowed in
    /// place — the receive hot path materializes no `PageDiff`s.
    fn apply_diff_msg_in_place(&self, mem: &mut Mem, payload: &[u8]) -> MemResult<()> {
        let mut base = 0usize;
        wire::visit_diff_msg(payload, &mut |ev| match ev {
            wire::DiffEvent::Page(page) => {
                if page as usize >= self.n_pages {
                    return Err(MemFault::InvariantViolated { check: 0xD5 });
                }
                base = self.region_off + page as usize * DSM_PAGE;
                Ok(())
            }
            wire::DiffEvent::Run(off, bytes) => {
                if off as usize + bytes.len() > DSM_PAGE {
                    return Err(MemFault::InvariantViolated { check: 0xD5 });
                }
                mem.arena.write(base + off as usize, bytes)
            }
        })?;
        Ok(())
    }

    /// Folds this node's dirty pages into the twin and clears their dirty
    /// bits — called at lock release, after the diffs have been published,
    /// so the same writes are not published twice.
    fn fold_my_diffs_into_twin(&self, mem: &mut Mem) -> MemResult<()> {
        for p in 0..self.n_pages {
            if mem.arena.read(self.dirty_off + p, 1)?[0] == 0 {
                continue;
            }
            let cur = mem
                .arena
                .read(self.region_off + p * DSM_PAGE, DSM_PAGE)?
                .to_vec();
            mem.arena.write(self.twin_off + p * DSM_PAGE, &cur)?;
            mem.arena.write(self.dirty_off + p, &[0])?;
        }
        Ok(())
    }

    /// Merges two serialized diff payloads byte-wise, later-wins, and
    /// re-encodes compactly. The lock manager accumulates release diffs
    /// with this: an acquirer needs every write notice it hasn't seen,
    /// not just the immediately preceding release's.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "run offsets and lengths are < DSM_PAGE, far below u32::MAX"
    )]
    pub(crate) fn merge_diff_payloads(older: &[u8], newer: &[u8]) -> MemResult<Vec<u8>> {
        let mut bytes: std::collections::BTreeMap<(u32, u32), u8> = Default::default();
        for payload in [older, newer] {
            if payload.is_empty() {
                continue;
            }
            let mut page = 0u32;
            wire::visit_diffs(payload, &mut |ev| {
                match ev {
                    wire::DiffEvent::Page(p) => page = p,
                    wire::DiffEvent::Run(off, run) => {
                        for (i, &b) in run.iter().enumerate() {
                            bytes.insert((page, off + i as u32), b);
                        }
                    }
                }
                Ok(())
            })?;
        }
        let mut out: Vec<PageDiff> = Vec::new();
        for ((page, off), b) in bytes {
            let extend = match out.last_mut() {
                Some(d) if d.page == page => {
                    let (roff, run) = d.runs.last_mut().expect("runs never empty");
                    if *roff + run.len() as u32 == off {
                        run.push(b);
                        true
                    } else {
                        d.runs.push((off, vec![b]));
                        true
                    }
                }
                _ => false,
            };
            if !extend {
                out.push(PageDiff {
                    page,
                    runs: vec![(off, vec![b])],
                });
            }
        }
        Ok(wire::encode_diffs(&out))
    }

    /// Pumps the barrier/diff-exchange state machine. Performs at most one
    /// event syscall per call; keep pumping until `Done`. On `Blocked`,
    /// block the step on a message wait condition.
    #[expect(
        clippy::cast_possible_truncation,
        reason = "send_idx counts peers (< n_nodes <= 64) and the presence mask is built from n_nodes bits, so both narrowings are exact"
    )]
    pub fn barrier_pump(&self, sys: &mut dyn SysMem) -> MemResult<BarrierStatus> {
        let phase = self.ctrl(C_PHASE);
        let round_c = self.ctrl(C_ROUND);
        let send_idx = self.ctrl(C_SEND_IDX);
        match phase.get(&sys.mem().arena)? {
            // Idle: apply any early-arrived diffs for this round (they
            // were stashed so inter-barrier reads stayed consistent), then
            // enter the sending phase.
            0 => {
                let m = sys.mem();
                self.stash_drain(m)?;
                send_idx.set(&mut m.arena, 0)?;
                phase.set(&mut m.arena, 1)?;
                Ok(BarrierStatus::Working)
            }
            // Sending: one diff message per pump.
            1 => {
                let idx = send_idx.get(&sys.mem().arena)? as u32;
                if idx >= self.n_nodes - 1 {
                    // All sent: move to receiving.
                    phase.set(&mut sys.mem().arena, 2)?;
                    return Ok(BarrierStatus::Working);
                }
                let peer = if idx >= self.my { idx + 1 } else { idx };
                let round = round_c.get(&sys.mem().arena)?;
                let diffs = self.compute_diffs(sys.mem())?;
                let pages_scanned = diffs.len().max(1);
                let msg = DiffMsg {
                    round,
                    from: self.my,
                    diffs,
                };
                let payload = wire::encode_diff_msg(&msg);
                // Diff creation cost: ~1 µs per scanned page.
                sys.compute(pages_scanned as u64 * US);
                sys.send(ft_core::event::ProcessId(peer), payload)
                    .expect("peer exists");
                send_idx.set(&mut sys.mem().arena, idx as u64 + 1)?;
                Ok(BarrierStatus::Working)
            }
            // Receiving: consume peer diffs until the round's mask fills.
            _ => {
                let round = round_c.get(&sys.mem().arena)?;
                let mask_field = if round % 2 == 0 {
                    C_MASK_EVEN
                } else {
                    C_MASK_ODD
                };
                let mask_c = self.ctrl(mask_field);
                let full: u64 = (((1u128 << self.n_nodes) - 1) as u64) & !(1 << self.my);
                if mask_c.get(&sys.mem().arena)? == full {
                    // Round complete: the merge is in, refresh the twin,
                    // clear this parity's mask, advance, then apply any
                    // stashed diffs that belong to the new round.
                    let m = sys.mem();
                    self.refresh_twin(m)?;
                    mask_c.set(&mut m.arena, 0)?;
                    round_c.set(&mut m.arena, round + 1)?;
                    phase.set(&mut m.arena, 0)?;
                    // Barrier exit: everything before this node's entry
                    // happens-before everything after any node's exit of
                    // the same round (all-to-all diff exchange).
                    sys.shm_op(ShmOp::Barrier { round: round + 1 });
                    return Ok(BarrierStatus::Done);
                }
                match sys.try_recv() {
                    None => Ok(BarrierStatus::Blocked),
                    Some(msg) => {
                        self.absorb_barrier_payload(sys, &msg.payload)?;
                        Ok(BarrierStatus::Working)
                    }
                }
            }
        }
    }

    /// Absorbs one received barrier diff payload: current-round diffs are
    /// applied, future-round diffs are stashed (applying them now would
    /// leak next-round state into this round's reads), and the arrival is
    /// marked in the matching parity mask. Called from the barrier's
    /// receive phase — and from [`lock`]'s acquire pump, because a fast
    /// peer can enter the barrier and ship its diffs while this node is
    /// still waiting for a lock grant.
    pub(crate) fn absorb_barrier_payload(
        &self,
        sys: &mut dyn SysMem,
        payload: &[u8],
    ) -> MemResult<()> {
        let round = self.ctrl(C_ROUND).get(&sys.mem().arena)?;
        // Validate and read the header without materializing the diffs;
        // a malformed payload errors out here, before any state changes,
        // exactly as the materializing decoder did.
        let mut applied = 0usize;
        let (msg_round, msg_from) = wire::visit_diff_msg(payload, &mut |ev| {
            if let wire::DiffEvent::Run(_, bytes) = ev {
                applied += bytes.len();
            }
            Ok(())
        })?;
        if msg_round == round {
            self.apply_diff_msg_in_place(sys.mem(), payload)?;
            sys.compute((applied as u64 / 256 + 1) * US);
        } else {
            self.stash_put(sys.mem(), msg_from, payload)?;
        }
        // Mark arrival in the round's parity mask (early diffs land in the
        // other parity).
        let f = if msg_round % 2 == 0 {
            C_MASK_EVEN
        } else {
            C_MASK_ODD
        };
        let c = self.ctrl(f);
        let m = sys.mem();
        let v = c.get(&m.arena)? | (1 << msg_from);
        c.set(&mut m.arena, v)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_mem::arena::Layout;

    fn big_mem() -> Mem {
        Mem::new(Layout {
            globals_pages: 1,
            stack_pages: 2,
            heap_pages: 64,
        })
    }

    #[test]
    fn read_write_roundtrip_marks_dirty() {
        let mut mem = big_mem();
        let dsm = Dsm::init(&mut mem, 0, 2, 4).unwrap();
        dsm.write_pod_raw(&mut mem, 100, 0xABCDu64).unwrap();
        assert_eq!(dsm.read_pod_raw::<u64>(&mem, 100).unwrap(), 0xABCD);
        let diffs = dsm.compute_diffs(&mem).unwrap();
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].page, 0);
    }

    #[test]
    fn diffs_are_byte_granular() {
        let mut mem = big_mem();
        let dsm = Dsm::init(&mut mem, 0, 2, 4).unwrap();
        dsm.write_raw(&mut mem, 10, &[1, 2, 3]).unwrap();
        dsm.write_raw(&mut mem, 500, &[9]).unwrap();
        let diffs = dsm.compute_diffs(&mem).unwrap();
        assert_eq!(diffs[0].runs.len(), 2);
        assert_eq!(diffs[0].runs[0], (10, vec![1, 2, 3]));
        assert_eq!(diffs[0].runs[1], (500, vec![9]));
    }

    #[test]
    fn apply_merges_disjoint_writes() {
        let mut a = big_mem();
        let mut b = big_mem();
        let dsm_a = Dsm::init(&mut a, 0, 2, 4).unwrap();
        let dsm_b = Dsm::init(&mut b, 1, 2, 4).unwrap();
        // Same page, disjoint bytes — the multiple-writer case.
        dsm_a.write_raw(&mut a, 0, &[1; 8]).unwrap();
        dsm_b.write_raw(&mut b, 8, &[2; 8]).unwrap();
        let da = dsm_a.compute_diffs(&a).unwrap();
        let db = dsm_b.compute_diffs(&b).unwrap();
        dsm_a.apply_diffs(&mut a, &db).unwrap();
        dsm_b.apply_diffs(&mut b, &da).unwrap();
        assert_eq!(
            dsm_a.read_raw(&a, 0, 16).unwrap(),
            dsm_b.read_raw(&b, 0, 16).unwrap()
        );
    }

    #[test]
    fn out_of_region_access_fails() {
        let mut mem = big_mem();
        let dsm = Dsm::init(&mut mem, 0, 2, 2).unwrap();
        assert!(dsm.read_raw(&mem, 2 * DSM_PAGE - 4, 8).is_err());
        assert!(dsm.write_pod_raw(&mut mem, 2 * DSM_PAGE, 0u64).is_err());
        assert!(dsm.read_pod_raw::<u64>(&mem, usize::MAX - 100).is_err());
    }

    #[test]
    fn malformed_diff_is_an_invariant_violation() {
        let mut mem = big_mem();
        let dsm = Dsm::init(&mut mem, 0, 2, 2).unwrap();
        let bad = vec![PageDiff {
            page: 99,
            runs: vec![(0, vec![1])],
        }];
        assert!(matches!(
            dsm.apply_diffs(&mut mem, &bad),
            Err(MemFault::InvariantViolated { .. })
        ));
    }

    #[test]
    fn merge_diff_payloads_is_later_wins_and_compact() {
        let enc = |d: Vec<PageDiff>| wire::encode_diffs(&d);
        let dec = |p: &[u8]| -> Vec<PageDiff> { wire::decode_diffs(p).unwrap() };
        let older = enc(vec![PageDiff {
            page: 0,
            runs: vec![(0, vec![1, 1, 1]), (10, vec![5])],
        }]);
        let newer = enc(vec![PageDiff {
            page: 0,
            runs: vec![(1, vec![9]), (3, vec![7])],
        }]);
        let merged = dec(&Dsm::merge_diff_payloads(&older, &newer).unwrap());
        assert_eq!(merged.len(), 1);
        // Bytes 0..4 coalesce into one run (1,9,1,7); byte 10 stays apart.
        assert_eq!(merged[0].runs, vec![(0, vec![1, 9, 1, 7]), (10, vec![5])]);
    }

    #[test]
    fn merge_with_empty_sides_preserves_the_other() {
        let enc = |d: Vec<PageDiff>| wire::encode_diffs(&d);
        let one = enc(vec![PageDiff {
            page: 3,
            runs: vec![(100, vec![42])],
        }]);
        let a = Dsm::merge_diff_payloads(&[], &one).unwrap();
        let b = Dsm::merge_diff_payloads(&one, &[]).unwrap();
        assert_eq!(a, b);
        let decoded = wire::decode_diffs(&a).unwrap();
        assert_eq!(decoded[0].page, 3);
        assert_eq!(decoded[0].runs, vec![(100, vec![42])]);
    }

    #[test]
    fn merge_spans_pages_without_bleeding_runs() {
        let enc = |d: Vec<PageDiff>| wire::encode_diffs(&d);
        // Last byte of page 0, first byte of page 1: must stay two diffs.
        let older = enc(vec![PageDiff {
            page: 0,
            runs: vec![(u32::try_from(DSM_PAGE).unwrap() - 1, vec![1])],
        }]);
        let newer = enc(vec![PageDiff {
            page: 1,
            runs: vec![(0, vec![2])],
        }]);
        let merged = Dsm::merge_diff_payloads(&older, &newer).unwrap();
        let decoded = wire::decode_diffs(&merged).unwrap();
        assert_eq!(decoded.len(), 2);
    }

    #[test]
    fn apply_serialized_diffs_updates_region_and_twin() {
        let mut mem = big_mem();
        let dsm = Dsm::init(&mut mem, 0, 2, 4).unwrap();
        let diffs: &[PageDiff] = &[PageDiff {
            page: 1,
            runs: vec![(4, vec![7, 8, 9])],
        }];
        let payload = wire::encode_diffs(diffs);
        let n = dsm.apply_serialized_diffs(&mut mem, &payload).unwrap();
        assert_eq!(n, 3);
        assert_eq!(dsm.read_raw(&mem, DSM_PAGE + 4, 3).unwrap(), vec![7, 8, 9]);
        // Folded into the twin: these bytes are received state, so they
        // must not show up as this node's own diffs.
        assert!(dsm.compute_diffs(&mem).unwrap().is_empty());
    }

    #[test]
    fn refresh_twin_clears_dirty() {
        let mut mem = big_mem();
        let dsm = Dsm::init(&mut mem, 0, 2, 4).unwrap();
        dsm.write_raw(&mut mem, 0, &[5; 32]).unwrap();
        dsm.refresh_twin(&mut mem).unwrap();
        assert!(dsm.compute_diffs(&mem).unwrap().is_empty());
        // New writes diff against the refreshed twin; writing the same
        // bytes again produces no diff.
        dsm.write_raw(&mut mem, 0, &[5; 32]).unwrap();
        assert!(dsm.compute_diffs(&mem).unwrap().is_empty());
        dsm.write_raw(&mut mem, 0, &[6]).unwrap();
        assert_eq!(dsm.compute_diffs(&mem).unwrap().len(), 1);
    }
}

#[cfg(test)]
// Proptest diffs are built over 2 pages with in-page offsets; narrowing
// counts to u32 cannot truncate.
#[allow(clippy::cast_possible_truncation)]
mod merge_proptests {
    use super::*;
    use ft_sim::rng::SplitMix64;
    use std::collections::BTreeMap;

    /// A random diff list over 2 pages (offsets kept in-page).
    fn random_diffs(rng: &mut SplitMix64) -> Vec<PageDiff> {
        let n = rng.below(12) as usize;
        (0..n)
            .map(|_| {
                let page = rng.below(2) as u32;
                let off = rng.below(DSM_PAGE as u64 - 8) as u32;
                let len = 1 + rng.below(7) as usize;
                let bytes = (0..len).map(|_| rng.next_u64() as u8).collect();
                PageDiff {
                    page,
                    runs: vec![(off, bytes)],
                }
            })
            .collect()
    }

    fn enc(d: &[PageDiff]) -> Vec<u8> {
        wire::encode_diffs(d)
    }

    fn model_apply(map: &mut BTreeMap<(u32, u32), u8>, diffs: &[PageDiff]) {
        for d in diffs {
            for (off, run) in &d.runs {
                for (i, &b) in run.iter().enumerate() {
                    map.insert((d.page, off + i as u32), b);
                }
            }
        }
    }

    /// Merging payloads then applying equals applying them in order —
    /// the write-notice accumulation is semantics-preserving.
    #[test]
    fn merge_equals_sequential_application() {
        let mut rng = SplitMix64::new(0x5EED_D1FF);
        for _ in 0..256 {
            let older = random_diffs(&mut rng);
            let newer = random_diffs(&mut rng);
            let merged = Dsm::merge_diff_payloads(&enc(&older), &enc(&newer)).unwrap();
            let decoded = wire::decode_diffs(&merged).unwrap();
            let mut want = BTreeMap::new();
            model_apply(&mut want, &older);
            model_apply(&mut want, &newer);
            let mut got = BTreeMap::new();
            model_apply(&mut got, &decoded);
            assert_eq!(got, want);
            // And the encoding is canonical: runs are disjoint, sorted,
            // and maximally coalesced within each page.
            for d in &decoded {
                for w in d.runs.windows(2) {
                    let end = w[0].0 + w[0].1.len() as u32;
                    assert!(end < w[1].0, "adjacent runs must coalesce");
                }
            }
        }
    }

    /// Merge is idempotent on the right: folding the same newest
    /// payload twice changes nothing.
    #[test]
    fn merge_right_idempotent() {
        let mut rng = SplitMix64::new(0x1DE0_7E47);
        for _ in 0..256 {
            let a = random_diffs(&mut rng);
            let b = random_diffs(&mut rng);
            let once = Dsm::merge_diff_payloads(&enc(&a), &enc(&b)).unwrap();
            let twice = Dsm::merge_diff_payloads(&once, &enc(&b)).unwrap();
            assert_eq!(once, twice);
        }
    }
}
