//! Flat little-endian wire codec for DSM messages.
//!
//! The checkpointing runtime treats payloads as opaque bytes; all that
//! matters is that encoding is deterministic (identical inputs yield
//! identical bytes, so resent messages deduplicate) and that decoding
//! rejects malformed payloads with a memory fault rather than panicking —
//! fault-injection campaigns corrupt message buffers on purpose.
//!
//! Layout: integers are little-endian; vectors are a `u32` count followed
//! by the elements.

use ft_mem::error::{MemFault, MemResult};

use crate::{DiffMsg, PageDiff};

const BAD: MemFault = MemFault::InvariantViolated { check: 0xD6 };

/// Incremental little-endian reader over a payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> MemResult<u8> {
        let b = *self.buf.get(self.pos).ok_or(BAD)?;
        self.pos = self.pos.checked_add(1).ok_or(BAD)?;
        Ok(b)
    }

    pub(crate) fn u32(&mut self) -> MemResult<u32> {
        let end = self.pos.checked_add(4).ok_or(BAD)?;
        let b = self.buf.get(self.pos..end).ok_or(BAD)?;
        self.pos = end;
        Ok(u32::from_le_bytes(b.try_into().map_err(|_| BAD)?))
    }

    pub(crate) fn u64(&mut self) -> MemResult<u64> {
        let end = self.pos.checked_add(8).ok_or(BAD)?;
        let b = self.buf.get(self.pos..end).ok_or(BAD)?;
        self.pos = end;
        Ok(u64::from_le_bytes(b.try_into().map_err(|_| BAD)?))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> MemResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(BAD)?;
        let b = self.buf.get(self.pos..end).ok_or(BAD)?;
        self.pos = end;
        Ok(b)
    }

    /// A `u32` length prefix followed by that many bytes.
    pub(crate) fn blob(&mut self) -> MemResult<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.bytes(n)?.to_vec())
    }

    /// Fails unless the payload was consumed exactly.
    pub(crate) fn finish(self) -> MemResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(BAD)
        }
    }
}

#[expect(
    clippy::cast_possible_truncation,
    reason = "runs are < DSM_PAGE bytes; the wire format stores lengths as u32 on purpose"
)]
pub(crate) fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Exact encoded size of a diff vector, so the encode helpers allocate
/// their payload buffer once instead of doubling through `Vec` growth on
/// the per-message hot path (the arena write barrier's allocation-free
/// discipline, applied one layer up).
fn diffs_encoded_len(diffs: &[PageDiff]) -> usize {
    4 + diffs
        .iter()
        .map(|d| 8 + d.runs.iter().map(|(_, run)| 8 + run.len()).sum::<usize>())
        .sum::<usize>()
}

#[expect(
    clippy::cast_possible_truncation,
    reason = "diff and run counts are bounded by pages x DSM_PAGE, far below u32::MAX"
)]
fn encode_diffs_into(out: &mut Vec<u8>, diffs: &[PageDiff]) {
    out.extend_from_slice(&(diffs.len() as u32).to_le_bytes());
    for d in diffs {
        out.extend_from_slice(&d.page.to_le_bytes());
        out.extend_from_slice(&(d.runs.len() as u32).to_le_bytes());
        for (off, run) in &d.runs {
            out.extend_from_slice(&off.to_le_bytes());
            put_blob(out, run);
        }
    }
}

#[cfg(test)]
fn decode_diffs_from(r: &mut Reader) -> MemResult<Vec<PageDiff>> {
    let n = r.u32()? as usize;
    let mut diffs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let page = r.u32()?;
        let n_runs = r.u32()? as usize;
        let mut runs = Vec::with_capacity(n_runs.min(1 << 16));
        for _ in 0..n_runs {
            let off = r.u32()?;
            runs.push((off, r.blob()?));
        }
        diffs.push(PageDiff { page, runs });
    }
    Ok(diffs)
}

/// Validates the structure of a diffs section without allocating or
/// materializing anything: every count, offset, and run must lie inside
/// the payload.
fn validate_diffs_from(r: &mut Reader) -> MemResult<()> {
    let n = r.u32()? as usize;
    for _ in 0..n {
        let _page = r.u32()?;
        let n_runs = r.u32()? as usize;
        for _ in 0..n_runs {
            let _off = r.u32()?;
            let len = r.u32()? as usize;
            r.bytes(len)?;
        }
    }
    Ok(())
}

/// One step of a streamed diff decode: a new page diff beginning (emitted
/// even for a diff with no runs, so semantic page checks fire exactly as
/// they do on the materialized path), or one run within the current page.
pub(crate) enum DiffEvent<'a> {
    /// A page diff begins.
    Page(u32),
    /// One run of the current page: `(offset, bytes)`, the bytes borrowed
    /// straight from the payload.
    Run(u32, &'a [u8]),
}

/// Walks a (previously validated) diffs section, streaming
/// [`DiffEvent`]s borrowed from the payload.
fn visit_diffs_from(
    r: &mut Reader,
    f: &mut dyn FnMut(DiffEvent) -> MemResult<()>,
) -> MemResult<()> {
    let n = r.u32()? as usize;
    for _ in 0..n {
        f(DiffEvent::Page(r.u32()?))?;
        let n_runs = r.u32()? as usize;
        for _ in 0..n_runs {
            let off = r.u32()?;
            let len = r.u32()? as usize;
            f(DiffEvent::Run(off, r.bytes(len)?))?;
        }
    }
    Ok(())
}

/// In-place decode of a bare diff vector: validates the whole payload
/// first — malformed input is rejected *before* any callback mutates
/// state, exactly like the materializing [`decode_diffs`] — then streams
/// [`DiffEvent`]s borrowed from the payload. The per-run `Vec`
/// allocations of the materializing decoder never happen.
pub(crate) fn visit_diffs(
    payload: &[u8],
    f: &mut dyn FnMut(DiffEvent) -> MemResult<()>,
) -> MemResult<()> {
    let mut r = Reader::new(payload);
    validate_diffs_from(&mut r)?;
    r.finish()?;
    visit_diffs_from(&mut Reader::new(payload), f)
}

/// In-place decode of a barrier diff message: validates everything, then
/// streams the runs like [`visit_diffs`]. Returns the `(round, from)`
/// header.
pub(crate) fn visit_diff_msg(
    payload: &[u8],
    f: &mut dyn FnMut(DiffEvent) -> MemResult<()>,
) -> MemResult<(u64, u32)> {
    let mut r = Reader::new(payload);
    let round = r.u64()?;
    let from = r.u32()?;
    validate_diffs_from(&mut r)?;
    r.finish()?;
    let mut r = Reader::new(payload);
    r.u64()?;
    r.u32()?;
    visit_diffs_from(&mut r, f)?;
    Ok((round, from))
}

/// Encodes a bare diff vector (lock release / grant payloads).
pub(crate) fn encode_diffs(diffs: &[PageDiff]) -> Vec<u8> {
    let mut out = Vec::with_capacity(diffs_encoded_len(diffs));
    encode_diffs_into(&mut out, diffs);
    out
}

/// Decodes a bare diff vector (test reference for the streaming visitor).
#[cfg(test)]
pub(crate) fn decode_diffs(payload: &[u8]) -> MemResult<Vec<PageDiff>> {
    let mut r = Reader::new(payload);
    let diffs = decode_diffs_from(&mut r)?;
    r.finish()?;
    Ok(diffs)
}

/// Encodes a barrier diff message.
pub(crate) fn encode_diff_msg(msg: &DiffMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + diffs_encoded_len(&msg.diffs));
    out.extend_from_slice(&msg.round.to_le_bytes());
    out.extend_from_slice(&msg.from.to_le_bytes());
    encode_diffs_into(&mut out, &msg.diffs);
    out
}

/// Decodes a barrier diff message (test reference for the streaming visitor).
#[cfg(test)]
pub(crate) fn decode_diff_msg(payload: &[u8]) -> MemResult<DiffMsg> {
    let mut r = Reader::new(payload);
    let round = r.u64()?;
    let from = r.u32()?;
    let diffs = decode_diffs_from(&mut r)?;
    r.finish()?;
    Ok(DiffMsg { round, from, diffs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_msg_roundtrips() {
        let msg = DiffMsg {
            round: 7,
            from: 2,
            diffs: vec![
                PageDiff {
                    page: 0,
                    runs: vec![(0, vec![1, 2, 3]), (9, vec![])],
                },
                PageDiff {
                    page: 31,
                    runs: vec![],
                },
            ],
        };
        let bytes = encode_diff_msg(&msg);
        let back = decode_diff_msg(&bytes).unwrap();
        assert_eq!(format!("{msg:?}"), format!("{back:?}"));
    }

    #[test]
    fn encoded_len_prediction_is_exact() {
        let diffs = vec![
            PageDiff {
                page: 3,
                runs: vec![(0, vec![7; 5]), (100, vec![])],
            },
            PageDiff {
                page: 9,
                runs: vec![],
            },
        ];
        assert_eq!(diffs_encoded_len(&diffs), encode_diffs(&diffs).len());
        let msg = DiffMsg {
            round: 1,
            from: 0,
            diffs,
        };
        assert_eq!(
            12 + diffs_encoded_len(&msg.diffs),
            encode_diff_msg(&msg).len()
        );
    }

    #[test]
    fn visitor_matches_materializing_decoder() {
        let msg = DiffMsg {
            round: 42,
            from: 3,
            diffs: vec![
                PageDiff {
                    page: 5,
                    runs: vec![(0, vec![1, 2]), (60, vec![])],
                },
                PageDiff {
                    page: 0,
                    runs: vec![],
                },
            ],
        };
        let bytes = encode_diff_msg(&msg);
        let mut seen = Vec::new();
        let (round, from) = visit_diff_msg(&bytes, &mut |ev| {
            seen.push(match ev {
                DiffEvent::Page(p) => (true, p, Vec::new()),
                DiffEvent::Run(off, b) => (false, off, b.to_vec()),
            });
            Ok(())
        })
        .unwrap();
        assert_eq!((round, from), (msg.round, msg.from));
        let mut want = Vec::new();
        for d in &msg.diffs {
            want.push((true, d.page, Vec::new()));
            for (off, run) in &d.runs {
                want.push((false, *off, run.clone()));
            }
        }
        assert_eq!(seen, want);

        // Malformed payloads are rejected before the callback ever runs.
        let mut called = false;
        assert!(visit_diff_msg(&bytes[..bytes.len() - 1], &mut |_| {
            called = true;
            Ok(())
        })
        .is_err());
        assert!(!called);
    }

    #[test]
    fn truncated_and_oversized_payloads_fail() {
        let bytes = encode_diffs(&[PageDiff {
            page: 1,
            runs: vec![(4, vec![9; 16])],
        }]);
        assert!(decode_diffs(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_diffs(&longer).is_err());
        assert!(decode_diff_msg(&[0xFF; 3]).is_err());
    }

    /// Regression for the fail-stop conversion of `Reader`: short
    /// buffers and cursor-overflow requests must return `Err`, never
    /// panic — decode runs against deliberately corrupted campaign
    /// payloads. (The old primitives computed `self.pos + 4` bare and
    /// `expect`ed the slice-to-array conversion.)
    #[test]
    fn reader_primitives_fail_stop_on_short_or_overflowing_input() {
        assert!(Reader::new(&[]).u8().is_err());
        assert!(Reader::new(&[1, 2, 3]).u32().is_err());
        assert!(Reader::new(&[1, 2, 3, 4, 5, 6, 7]).u64().is_err());
        assert!(Reader::new(&[0; 4]).bytes(5).is_err());
        // `pos + n` would overflow: the checked cursor must reject it.
        let mut r = Reader::new(&[0; 8]);
        r.u32().unwrap();
        assert!(r.bytes(usize::MAX).is_err());
        // After any failure the cursor is unmoved, so decoding can
        // report a precise offset.
        let mut r = Reader::new(&[7, 0, 0, 0]);
        assert!(r.u64().is_err());
        assert_eq!(r.u32().unwrap(), 7);
    }

    /// Every strict prefix of a valid message decodes to `Err`, never a
    /// panic: the exhaustive version of the spot checks above.
    #[test]
    fn every_truncation_of_a_valid_message_fails_cleanly() {
        let bytes = encode_diff_msg(&DiffMsg {
            round: 3,
            from: 1,
            diffs: vec![PageDiff {
                page: 2,
                runs: vec![(0, vec![0xAB; 32]), (512, vec![0xCD; 8])],
            }],
        });
        for cut in 0..bytes.len() {
            assert!(
                decode_diff_msg(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail-stop"
            );
        }
        assert!(decode_diff_msg(&bytes).is_ok());
    }
}
