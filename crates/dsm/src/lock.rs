//! DSM locks with release-consistency diff propagation.
//!
//! TreadMarks synchronizes through locks as well as barriers; a lock
//! *release* publishes the holder's modifications and the next *acquire*
//! receives them — consistency travels with the synchronization, not with
//! every write. We implement a centralized manager: clients send acquire
//! requests; the manager queues them and forwards, with each grant, the
//! diffs the previous holder attached to its release.
//!
//! The memory model is **entry consistency** (Midway-style, a strictly
//! weaker cousin of TreadMarks' lazy release consistency): data protected
//! by a lock is guaranteed coherent only *while holding that lock* —
//! grants carry the accumulated write notices of every release the
//! acquirer hasn't seen. Barriers synchronize barrier-shared data; they
//! do **not** flush other nodes' lock-protected updates to you (full LRC
//! would need interval timestamps). Read lock-protected data inside a
//! critical section.
//!
//! All client lock state lives in the client's arena (it checkpoints and
//! rolls back like everything else); the manager's queues and stored
//! release-diffs live in the manager's arena. The whole primitive
//! therefore recovers under the runtime like any other state: the
//! protocols see lock traffic as ordinary messages, and the task-farm
//! kill sweep (`ft-bench/tests/taskfarm_recovery.rs`) kills workers
//! mid-critical-section *and the manager itself* under every Figure 8
//! protocol. The one structural requirement is [`LockServer::service`]'s
//! compute → send → mutate ordering (see its docs).
//!
//! ## Wire protocol (bincode, tagged)
//!
//! * `Req { lock }` — client → manager.
//! * `Grant { lock, diffs }` — manager → client, carrying the previous
//!   release's diffs.
//! * `Rel { lock, diffs }` — client → manager.

use ft_core::event::ProcessId;
use ft_mem::error::{MemFault, MemResult};
use ft_mem::mem::{ArenaCell, Mem};
use ft_mem::vec::ArenaVec;
use ft_sim::cost::US;
use ft_sim::syscalls::SysMem;

use crate::Dsm;

/// A lock-protocol message.
#[derive(Debug, Clone)]
pub enum LockMsg {
    /// Acquire request.
    Req {
        /// Lock id.
        lock: u32,
    },
    /// Grant, carrying the previous holder's release diffs (opaque
    /// serialized page diffs; empty on first acquisition).
    Grant {
        /// Lock id.
        lock: u32,
        /// The previous release's diff payload.
        diffs: Vec<u8>,
    },
    /// Release, publishing the holder's modifications.
    Rel {
        /// Lock id.
        lock: u32,
        /// Serialized page diffs of the protected-section writes.
        diffs: Vec<u8>,
    },
}

impl LockMsg {
    /// Serializes for the wire: a variant tag byte, the lock id, and (for
    /// Grant/Rel) a length-prefixed diff payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LockMsg::Req { lock } => {
                out.push(0);
                out.extend_from_slice(&lock.to_le_bytes());
            }
            LockMsg::Grant { lock, diffs } => {
                out.push(1);
                out.extend_from_slice(&lock.to_le_bytes());
                crate::wire::put_blob(&mut out, diffs);
            }
            LockMsg::Rel { lock, diffs } => {
                out.push(2);
                out.extend_from_slice(&lock.to_le_bytes());
                crate::wire::put_blob(&mut out, diffs);
            }
        }
        out
    }

    /// Deserializes from the wire.
    pub fn decode(bytes: &[u8]) -> MemResult<Self> {
        let bad = MemFault::InvariantViolated { check: 0xD9 };
        let mut r = crate::wire::Reader::new(bytes);
        let msg = match r.u8().map_err(|_| bad)? {
            0 => LockMsg::Req {
                lock: r.u32().map_err(|_| bad)?,
            },
            1 => LockMsg::Grant {
                lock: r.u32().map_err(|_| bad)?,
                diffs: r.blob().map_err(|_| bad)?,
            },
            2 => LockMsg::Rel {
                lock: r.u32().map_err(|_| bad)?,
                diffs: r.blob().map_err(|_| bad)?,
            },
            _ => return Err(bad),
        };
        r.finish().map_err(|_| bad)?;
        Ok(msg)
    }
}

/// Client-side lock phase values (stored in the Dsm control block).
const PHASE_IDLE: u64 = 0;
const PHASE_WAITING: u64 = 1;
const PHASE_HELD: u64 = 2;

/// Result of pumping a lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStatus {
    /// The lock is held; the critical section may proceed.
    Granted,
    /// Waiting for the grant; block on a message wait.
    Waiting,
}

impl Dsm {
    fn lock_phase_cell(&self) -> ArenaCell<u64> {
        ArenaCell::at(self.lock_ctrl_off())
    }

    /// Pumps a lock acquisition toward `manager`. Call repeatedly (one
    /// event syscall per call): sends the request once, then consumes the
    /// grant — applying the diffs it carries to the region *and* the twin
    /// (they are received state, not ours to re-publish).
    ///
    /// Demultiplexes by sender: messages from anyone other than the
    /// manager are barrier diffs from a fast peer that already entered
    /// the next barrier, and are absorbed (applied or stashed) so the
    /// barrier doesn't lose them while we wait for the grant.
    pub fn lock_pump(
        &self,
        sys: &mut dyn SysMem,
        manager: ProcessId,
        lock: u32,
    ) -> MemResult<LockStatus> {
        let phase = self.lock_phase_cell();
        match phase.get(&sys.mem().arena)? {
            PHASE_IDLE => {
                sys.send(manager, LockMsg::Req { lock }.encode())
                    .expect("manager exists");
                phase.set(&mut sys.mem().arena, PHASE_WAITING)?;
                Ok(LockStatus::Waiting)
            }
            PHASE_WAITING => match sys.try_recv() {
                None => Ok(LockStatus::Waiting),
                Some(msg) if msg.from != manager => {
                    self.absorb_barrier_payload(sys, &msg.payload)?;
                    Ok(LockStatus::Waiting)
                }
                Some(msg) => match LockMsg::decode(&msg.payload)? {
                    LockMsg::Grant { lock: l, diffs } if l == lock => {
                        if !diffs.is_empty() {
                            let applied = self.apply_serialized_diffs(sys.mem(), &diffs)?;
                            sys.compute((applied as u64 / 256 + 1) * US);
                        }
                        phase.set(&mut sys.mem().arena, PHASE_HELD)?;
                        // Acquire edge: the previous holder's release
                        // happens-before this critical section.
                        sys.shm_op(ft_core::access::ShmOp::LockAcq { lock });
                        Ok(LockStatus::Granted)
                    }
                    _ => Err(MemFault::InvariantViolated { check: 0xDA }),
                },
            },
            PHASE_HELD => Ok(LockStatus::Granted),
            _ => Err(MemFault::InvariantViolated { check: 0xDB }),
        }
    }

    /// Releases the lock, publishing this process's modifications (diffs
    /// vs. the twin) to the manager and folding them into the twin so they
    /// are not re-published at the next barrier.
    pub fn unlock(&self, sys: &mut dyn SysMem, manager: ProcessId, lock: u32) -> MemResult<()> {
        let phase = self.lock_phase_cell();
        if phase.get(&sys.mem().arena)? != PHASE_HELD {
            return Err(MemFault::InvariantViolated { check: 0xDC });
        }
        // Release edge: recorded before the publishing send, so the
        // critical section's accesses sit between acquire and release in
        // the stream.
        sys.shm_op(ft_core::access::ShmOp::LockRel { lock });
        let diffs = self.serialize_my_diffs(sys.mem())?;
        sys.send(manager, LockMsg::Rel { lock, diffs }.encode())
            .expect("manager exists");
        let m = sys.mem();
        self.fold_my_diffs_into_twin(m)?;
        phase.set(&mut m.arena, PHASE_IDLE)?;
        Ok(())
    }
}

// Manager-side state layout, all in the manager's arena:
// per lock: [held: u64][waiters handle: 24 bytes][diff handle: 24 bytes].
const SLOT_BYTES: usize = 8 + 24 + 24;
const NO_HOLDER: u64 = u64::MAX;

/// The centralized lock manager, embedded in a manager application's step
/// loop: construct once (allocating manager state), then call
/// [`LockServer::service`] for each received message.
#[derive(Debug, Clone, Copy)]
pub struct LockServer {
    base: usize,
    n_locks: u32,
}

impl LockServer {
    /// Allocates manager state for `n_locks` locks.
    pub fn init(mem: &mut Mem, n_locks: u32) -> MemResult<Self> {
        let base = mem
            .alloc
            .alloc(&mut mem.arena, n_locks as usize * SLOT_BYTES)?;
        for l in 0..n_locks {
            let slot = base + l as usize * SLOT_BYTES;
            mem.arena.write_pod(slot, NO_HOLDER)?;
            let waiters = ArenaVec::<u64>::with_capacity(&mut mem.arena, &mut mem.alloc, 4)?;
            waiters.store_handle(&mut mem.arena, slot + 8)?;
            let diffs = ArenaVec::<u8>::with_capacity(&mut mem.arena, &mut mem.alloc, 16)?;
            diffs.store_handle(&mut mem.arena, slot + 32)?;
        }
        Ok(LockServer { base, n_locks })
    }

    fn slot(&self, lock: u32) -> MemResult<usize> {
        if lock >= self.n_locks {
            return Err(MemFault::InvariantViolated { check: 0xDD });
        }
        Ok(self.base + lock as usize * SLOT_BYTES)
    }

    /// Handles one lock message from `from`. May send one grant (the
    /// caller's step should treat this as its event syscall).
    ///
    /// Structured compute → send → mutate: the recovery runtime may
    /// interpose a commit at the send, and re-execution after a rollback
    /// to that commit must find the pre-mutation queue state (the resent
    /// grant itself is deduplicated by the network). Mutating before the
    /// send would make re-execution see an already-transferred lock and
    /// crash-loop on the holder invariant.
    pub fn service(&self, sys: &mut dyn SysMem, from: ProcessId, msg: &LockMsg) -> MemResult<()> {
        match msg {
            LockMsg::Req { lock } => {
                let slot = self.slot(*lock)?;
                let holder: u64 = sys.mem().arena.read_pod(slot)?;
                if holder == NO_HOLDER {
                    let diffs = {
                        let m = sys.mem();
                        ArenaVec::<u8>::load_handle(&m.arena, slot + 32)?.to_vec(&m.arena)?
                    };
                    sys.send(from, LockMsg::Grant { lock: *lock, diffs }.encode())
                        .expect("client exists");
                    sys.mem().arena.write_pod(slot, from.0 as u64)?;
                } else {
                    let mut waiters = ArenaVec::<u64>::load_handle(&sys.mem().arena, slot + 8)?;
                    let m = sys.mem();
                    waiters.push(&mut m.arena, &mut m.alloc, from.0 as u64)?;
                    waiters.store_handle(&mut m.arena, slot + 8)?;
                }
                Ok(())
            }
            LockMsg::Rel { lock, diffs } => {
                let slot = self.slot(*lock)?;
                let holder: u64 = sys.mem().arena.read_pod(slot)?;
                if holder != from.0 as u64 {
                    return Err(MemFault::InvariantViolated { check: 0xDE });
                }
                // Compute: accumulate the release diffs into the stored
                // write notices (byte-wise, later-wins — a future acquirer
                // needs everything it hasn't seen, not just this release)
                // and pick the next holder.
                let merged = {
                    let m = sys.mem();
                    let stored = ArenaVec::<u8>::load_handle(&m.arena, slot + 32)?;
                    Dsm::merge_diff_payloads(&stored.to_vec(&m.arena)?, diffs)?
                };
                let waiters = ArenaVec::<u64>::load_handle(&sys.mem().arena, slot + 8)?;
                let next = if waiters.is_empty() {
                    None
                } else {
                    Some(waiters.get(&sys.mem().arena, 0)?)
                };
                // Send: hand the lock (with the accumulated notices) to
                // the next waiter, if any.
                if let Some(n) = next {
                    let waiter =
                        ProcessId(u32::try_from(n).expect("waiter ids were u32 at enqueue"));
                    sys.send(
                        waiter,
                        LockMsg::Grant {
                            lock: *lock,
                            diffs: merged.clone(),
                        }
                        .encode(),
                    )
                    .expect("client exists");
                }
                // Mutate.
                let m = sys.mem();
                let mut stored = ArenaVec::<u8>::load_handle(&m.arena, slot + 32)?;
                stored.clear();
                for b in merged {
                    stored.push(&mut m.arena, &mut m.alloc, b)?;
                }
                stored.store_handle(&mut m.arena, slot + 32)?;
                if next.is_some() {
                    let mut w = ArenaVec::<u64>::load_handle(&m.arena, slot + 8)?;
                    w.remove(&mut m.arena, 0)?;
                    w.store_handle(&mut m.arena, slot + 8)?;
                }
                m.arena.write_pod(slot, next.unwrap_or(NO_HOLDER))?;
                Ok(())
            }
            LockMsg::Grant { .. } => Err(MemFault::InvariantViolated { check: 0xDF }),
        }
    }
}

/// A ready-made lock-manager process: wraps [`LockServer`] in the two-step
/// receive/service loop the one-event-per-step discipline requires, and
/// terminates after a known number of releases.
///
/// Run it as the process every client addresses as `manager`. Like any
/// app, all its mutable state (queues, stored write notices, the pending
/// message) lives in the arena, so it checkpoints and recovers under the
/// runtime like the clients do.
#[derive(Debug, Clone, Copy)]
pub struct ManagerApp {
    n_locks: u32,
    expected_releases: u64,
}

// Manager globals: 0 = phase (0 init, 1 recv, 2 service), 8 = releases
// serviced. The pending-message buffer lives in the heap.
const MGR_BUF_BYTES: usize = 16 * 1024;

impl ManagerApp {
    /// A manager for `n_locks` locks that exits once it has serviced
    /// `expected_releases` release messages (each client acquire/release
    /// pair contributes one).
    pub fn new(n_locks: u32, expected_releases: u64) -> Self {
        ManagerApp {
            n_locks,
            expected_releases,
        }
    }

    /// The heap offsets of the server state and message buffer are a pure
    /// function of the deterministic allocation order.
    fn reconstruct(&self) -> (LockServer, usize) {
        let mut probe = Mem::new(self.layout());
        let server = LockServer::init(&mut probe, self.n_locks).expect("probe init");
        let buf = probe
            .alloc
            .alloc(&mut probe.arena, MGR_BUF_BYTES)
            .expect("probe alloc");
        (server, buf)
    }
}

impl ft_sim::syscalls::App for ManagerApp {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<ft_sim::syscalls::AppStatus> {
        use ft_sim::syscalls::{AppStatus, WaitCond};
        let phase: ArenaCell<u64> = ArenaCell::at(0);
        let rels: ArenaCell<u64> = ArenaCell::at(8);
        match phase.get(&sys.mem().arena)? {
            0 => {
                let m = sys.mem();
                LockServer::init(m, self.n_locks)?;
                m.alloc.alloc(&mut m.arena, MGR_BUF_BYTES)?;
                phase.set(&mut m.arena, 1)?;
                Ok(AppStatus::Running)
            }
            1 => match sys.try_recv() {
                None => {
                    if rels.get(&sys.mem().arena)? >= self.expected_releases {
                        Ok(AppStatus::Done)
                    } else {
                        Ok(AppStatus::Blocked(WaitCond::message()))
                    }
                }
                Some(msg) => {
                    // Stash the payload; servicing may send a grant, which
                    // must be its own step's event syscall.
                    if msg.payload.len() > MGR_BUF_BYTES - 8 {
                        return Err(MemFault::InvariantViolated { check: 0xE0 });
                    }
                    let (_, buf) = self.reconstruct();
                    let m = sys.mem();
                    let tag = (msg.from.0 as u64) << 32 | msg.payload.len() as u64;
                    m.arena.write_pod(buf, tag)?;
                    m.arena.write(buf + 8, &msg.payload)?;
                    phase.set(&mut m.arena, 2)?;
                    Ok(AppStatus::Running)
                }
            },
            _ => {
                let (server, buf) = self.reconstruct();
                let (from, len) = {
                    let m = sys.mem();
                    let tag: u64 = m.arena.read_pod(buf)?;
                    (ProcessId((tag >> 32) as u32), (tag & 0xFFFF_FFFF) as usize)
                };
                let payload = sys.mem().arena.read(buf + 8, len)?.to_vec();
                let msg = LockMsg::decode(&payload)?;
                server.service(sys, from, &msg)?;
                if matches!(msg, LockMsg::Rel { .. }) {
                    let m = sys.mem();
                    let n = rels.get(&m.arena)? + 1;
                    rels.set(&mut m.arena, n)?;
                }
                phase.set(&mut sys.mem().arena, 1)?;
                Ok(AppStatus::Running)
            }
        }
    }

    fn layout(&self) -> ft_mem::arena::Layout {
        ft_mem::arena::Layout {
            globals_pages: 1,
            stack_pages: 2,
            heap_pages: 16,
        }
    }
}

impl ManagerApp {
    fn layout(&self) -> ft_mem::arena::Layout {
        ft_mem::arena::Layout {
            globals_pages: 1,
            stack_pages: 2,
            heap_pages: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_mem::arena::Layout;

    fn mem() -> Mem {
        Mem::new(Layout {
            globals_pages: 1,
            stack_pages: 2,
            heap_pages: 16,
        })
    }

    #[test]
    fn lock_msg_roundtrips() {
        for msg in [
            LockMsg::Req { lock: 7 },
            LockMsg::Grant {
                lock: 0,
                diffs: vec![1, 2, 3],
            },
            LockMsg::Rel {
                lock: 99,
                diffs: vec![],
            },
        ] {
            let bytes = msg.encode();
            let back = LockMsg::decode(&bytes).unwrap();
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
        assert!(LockMsg::decode(&[0xFF, 0xFF, 0xFF]).is_err());
    }

    #[test]
    fn server_rejects_out_of_range_and_foreign_release() {
        let mut m = mem();
        let server = LockServer::init(&mut m, 2).unwrap();
        assert!(server.slot(2).is_err());
        assert!(server.slot(1).is_ok());
    }

    #[test]
    fn server_state_survives_arena_commit_rollback() {
        // The manager's queues live in the arena, so they checkpoint and
        // roll back like any application state.
        let mut m = mem();
        let server = LockServer::init(&mut m, 1).unwrap();
        let slot = server.slot(0).unwrap();
        m.arena.commit();
        m.arena.write_pod(slot, 5u64).unwrap();
        assert_eq!(m.arena.read_pod::<u64>(slot).unwrap(), 5);
        m.arena.rollback();
        assert_eq!(m.arena.read_pod::<u64>(slot).unwrap(), NO_HOLDER);
    }
}
