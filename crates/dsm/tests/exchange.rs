//! Multi-node DSM integration: convergence through barrier rounds, and
//! recovery under the checkpointing runtime with stop failures.

// Test inputs are tiny by construction (seed counts, page numbers,
// probe offsets), so index-type narrowing cannot truncate here; the
// production decode paths stay under the per-site cast audit.
#![allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]

use ft_core::consistency::check_consistent_recovery_multi;
use ft_core::event::ProcessId;
use ft_core::protocol::Protocol;
use ft_dc::harness::DcHarness;
use ft_dc::state::DcConfig;
use ft_dsm::{BarrierStatus, Dsm};
use ft_mem::arena::Layout;
use ft_mem::error::MemResult;
use ft_mem::mem::ArenaCell;
use ft_sim::harness::run_plain_on;
use ft_sim::sim::{SimConfig, Simulator};
use ft_sim::syscalls::{App, AppStatus, SysMem, WaitCond};
use ft_sim::{MS, US};

const ROUNDS: u64 = 6;
const NODES: u32 = 3;

/// Each node owns slot `my` (a u64 at offset my*8) and adds `my + 1` to it
/// every round; after the final barrier it renders the sum of all slots.
struct Worker {
    my: u32,
}

// Globals: 0 = app phase (0 compute, 1 barrier, 2 render, 3 done),
// 8 = dsm handle marker (dsm is re-initialized deterministically).
impl App for Worker {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        let phase: ArenaCell<u64> = ArenaCell::at(0);
        let inited: ArenaCell<u64> = ArenaCell::at(8);
        // Deterministic init: same allocation order every (re)start.
        if inited.get(&sys.mem().arena)? == 0 {
            let m = sys.mem();
            let d = Dsm::init(m, self.my, NODES, 2)?;
            assert_eq!(d.node(), self.my);
            inited.set(&mut m.arena, 1)?;
            return Ok(AppStatus::Running);
        }
        let dsm = reconstruct(self.my);
        match phase.get(&sys.mem().arena)? {
            0 => {
                // Compute: bump my slot.
                let off = self.my as usize * 8;
                let v = dsm.read_pod::<u64>(sys, off)?;
                dsm.write_pod(sys, off, v + self.my as u64 + 1)?;
                sys.compute(200 * US);
                phase.set(&mut sys.mem().arena, 1)?;
                Ok(AppStatus::Running)
            }
            1 => match dsm.barrier_pump(sys)? {
                BarrierStatus::Done => {
                    let m = sys.mem();
                    let next = if dsm.round(m)? >= ROUNDS { 2 } else { 0 };
                    phase.set(&mut m.arena, next)?;
                    Ok(AppStatus::Running)
                }
                BarrierStatus::Working => Ok(AppStatus::Running),
                BarrierStatus::Blocked => Ok(AppStatus::Blocked(WaitCond::message())),
            },
            2 => {
                let mut sum = 0u64;
                for i in 0..NODES {
                    sum += dsm.read_pod::<u64>(sys, i as usize * 8).unwrap_or(0);
                }
                sys.visible(10_000 * (self.my as u64 + 1) + sum);
                phase.set(&mut sys.mem().arena, 3)?;
                Ok(AppStatus::Running)
            }
            _ => Ok(AppStatus::Done),
        }
    }

    fn layout(&self) -> Layout {
        Layout {
            globals_pages: 1,
            stack_pages: 2,
            heap_pages: 16,
        }
    }
}

/// The DSM handle is a pure function of the deterministic allocation
/// order, so it can be reconstructed instead of persisted.
fn reconstruct(my: u32) -> Dsm {
    let mut probe = ft_mem::mem::Mem::new(Layout {
        globals_pages: 1,
        stack_pages: 2,
        heap_pages: 16,
    });
    Dsm::init(&mut probe, my, NODES, 2).expect("probe init")
}

fn apps() -> Vec<Box<dyn App>> {
    (0..NODES)
        .map(|i| Box::new(Worker { my: i }) as Box<dyn App>)
        .collect()
}

/// The expected final sum: every node adds (my+1) per round.
fn expected_sum() -> u64 {
    (0..NODES).map(|i| (i as u64 + 1) * ROUNDS).sum()
}

#[test]
fn all_nodes_converge_to_the_same_sum() {
    let sim = Simulator::new(SimConfig::one_node_each(NODES as usize, 21));
    let mut a = apps();
    let report = run_plain_on(sim, &mut a);
    assert!(report.all_done);
    let tokens: Vec<u64> = report.visibles.iter().map(|&(_, _, t)| t).collect();
    assert_eq!(tokens.len(), NODES as usize);
    for (i, t) in tokens.iter().enumerate() {
        let _ = i;
        assert_eq!(t % 10_000, expected_sum(), "token {t}");
    }
}

#[test]
fn dsm_under_2pc_with_failures_recovers_consistently() {
    let reference: Vec<(u32, u64)> = {
        let sim = Simulator::new(SimConfig::one_node_each(NODES as usize, 21));
        let mut a = apps();
        let r = run_plain_on(sim, &mut a);
        assert!(r.all_done);
        r.visibles.iter().map(|&(_, p, t)| (p.0, t)).collect()
    };
    for k in 1..20u64 {
        let mut sim = Simulator::new(SimConfig::one_node_each(NODES as usize, 21));
        sim.kill_at(ProcessId((k % NODES as u64) as u32), k * 530 * US);
        let report =
            DcHarness::new(sim, DcConfig::discount_checking(Protocol::Cpv2pc), apps()).run();
        assert!(report.all_done, "kill #{k} did not complete");
        let recovered: Vec<(u32, u64)> =
            report.visibles.iter().map(|&(_, p, t)| (p.0, t)).collect();
        let verdict = check_consistent_recovery_multi(&recovered, &reference);
        assert!(verdict.consistent, "kill #{k}: {:?}", verdict.error);
    }
}

#[test]
fn dsm_under_cpvs_with_failure_recovers() {
    let reference: Vec<(u32, u64)> = {
        let sim = Simulator::new(SimConfig::one_node_each(NODES as usize, 21));
        let mut a = apps();
        let r = run_plain_on(sim, &mut a);
        assert!(r.all_done);
        r.visibles.iter().map(|&(_, p, t)| (p.0, t)).collect()
    };
    let mut sim = Simulator::new(SimConfig::one_node_each(NODES as usize, 21));
    sim.kill_at(ProcessId(1), 3 * MS);
    let report = DcHarness::new(sim, DcConfig::discount_checking(Protocol::Cpvs), apps()).run();
    assert!(report.all_done);
    let recovered: Vec<(u32, u64)> = report.visibles.iter().map(|&(_, p, t)| (p.0, t)).collect();
    let verdict = check_consistent_recovery_multi(&recovered, &reference);
    assert!(verdict.consistent, "{:?}", verdict.error);
    // CPVS commits before every send: many commits, no cascades.
    assert!(report.total_commits() > ROUNDS * (NODES as u64 - 1));
    assert_eq!(report.totals.cascade_rollbacks, 0);
}

#[test]
fn uneven_node_speeds_exercise_the_early_diff_stash() {
    // Node 0 computes 10× faster than node 2, so it races a full barrier
    // round ahead and its diffs arrive early at slow peers — the stash
    // must hold them without leaking next-round state into this round's
    // reads (all nodes still agree on every render).
    struct Uneven {
        my: u32,
    }
    impl App for Uneven {
        fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
            let phase: ArenaCell<u64> = ArenaCell::at(0);
            let inited: ArenaCell<u64> = ArenaCell::at(8);
            if inited.get(&sys.mem().arena)? == 0 {
                let m = sys.mem();
                Dsm::init(m, self.my, NODES, 2)?;
                inited.set(&mut m.arena, 1)?;
                return Ok(AppStatus::Running);
            }
            let dsm = reconstruct(self.my);
            match phase.get(&sys.mem().arena)? {
                0 => {
                    let off = self.my as usize * 8;
                    let v = dsm.read_pod::<u64>(sys, off)?;
                    dsm.write_pod(sys, off, v + self.my as u64 + 1)?;
                    // Wildly uneven compute times.
                    sys.compute(50 * US + self.my as u64 * 500 * US);
                    phase.set(&mut sys.mem().arena, 1)?;
                    Ok(AppStatus::Running)
                }
                1 => match dsm.barrier_pump(sys)? {
                    BarrierStatus::Done => {
                        let r = dsm.round(sys.mem())?;
                        let mut sum = 0u64;
                        for i in 0..NODES {
                            sum += dsm.read_pod::<u64>(sys, i as usize * 8).unwrap_or(0);
                        }
                        sys.visible(r * 1_000_000 + sum * 10 + self.my as u64);
                        let next = if r >= ROUNDS { 2 } else { 0 };
                        phase.set(&mut sys.mem().arena, next)?;
                        Ok(AppStatus::Running)
                    }
                    BarrierStatus::Working => Ok(AppStatus::Running),
                    BarrierStatus::Blocked => Ok(AppStatus::Blocked(WaitCond::message())),
                },
                _ => Ok(AppStatus::Done),
            }
        }
        fn layout(&self) -> Layout {
            Layout {
                globals_pages: 1,
                stack_pages: 2,
                heap_pages: 16,
            }
        }
    }

    let sim = Simulator::new(SimConfig::one_node_each(NODES as usize, 123));
    let mut apps: Vec<Box<dyn App>> = (0..NODES)
        .map(|i| Box::new(Uneven { my: i }) as Box<dyn App>)
        .collect();
    let report = run_plain_on(sim, &mut apps);
    assert!(report.all_done);
    // Group renders by round: all nodes must report the same sum.
    let mut by_round: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        Default::default();
    for &(_, _, t) in &report.visibles {
        by_round
            .entry(t / 1_000_000)
            .or_default()
            .insert(t % 1_000_000 / 10);
    }
    assert_eq!(by_round.len(), ROUNDS as usize);
    for (round, sums) in by_round {
        assert_eq!(sums.len(), 1, "round {round}: nodes disagree {sums:?}");
    }
}
