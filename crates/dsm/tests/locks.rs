//! DSM lock integration: mutual exclusion and release-consistency diff
//! propagation along the grant chain.
//!
//! Three workers each increment a lock-protected shared counter 20 times
//! (acquire → read-modify-write → release). Lost updates — the classic
//! mutual-exclusion failure — or stale reads — a release-consistency
//! failure — would leave the counter below 60. The globally last critical
//! section (some worker's final acquire) must observe every done flag and
//! the full count, because grant-carried diffs accumulate along the chain.
//!
//! Failure recovery for lock workloads is exercised separately by the
//! task-farm kill sweep in `ft-bench/tests/taskfarm_recovery.rs`.

use ft_core::event::ProcessId;
use ft_core::protocol::Protocol;
use ft_core::savework::check_save_work;
use ft_dc::harness::DcHarness;
use ft_dc::state::DcConfig;
use ft_dsm::lock::{LockStatus, ManagerApp};
use ft_dsm::Dsm;
use ft_mem::arena::Layout;
use ft_mem::error::MemResult;
use ft_mem::mem::{ArenaCell, Mem};
use ft_sim::harness::run_plain_on;
use ft_sim::sim::{SimConfig, Simulator};
use ft_sim::syscalls::{App, AppStatus, SysMem, WaitCond};
use ft_sim::US;

const WORKERS: u32 = 3;
const MANAGER: ProcessId = ProcessId(WORKERS);
const INCS: u64 = 20;
const LOCK: u32 = 0;

// Shared region layout: counter u64 at 0, done flags (one byte per
// worker) at 8..8+WORKERS.
const R_COUNTER: usize = 0;
const R_DONE: usize = 8;

fn layout() -> Layout {
    Layout {
        globals_pages: 1,
        stack_pages: 2,
        heap_pages: 16,
    }
}

/// The DSM handle is a pure function of the deterministic allocation
/// order (same trick as the barrier tests).
fn reconstruct_dsm(my: u32) -> Dsm {
    let mut probe = Mem::new(layout());
    Dsm::init(&mut probe, my, WORKERS, 2).expect("probe init")
}

// Worker globals: 0 = phase, 8 = inited, 16 = increments done.
const P_ACQ: u64 = 0;
const P_CS: u64 = 1;
const P_REL: u64 = 2;
const P_FINAL: u64 = 3;
const P_REL_FINAL: u64 = 4;
const P_DONE: u64 = 5;

struct Worker {
    my: u32,
}

impl App for Worker {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        let phase: ArenaCell<u64> = ArenaCell::at(0);
        let inited: ArenaCell<u64> = ArenaCell::at(8);
        let incs: ArenaCell<u64> = ArenaCell::at(16);
        if inited.get(&sys.mem().arena)? == 0 {
            let m = sys.mem();
            Dsm::init(m, self.my, WORKERS, 2)?;
            inited.set(&mut m.arena, 1)?;
            return Ok(AppStatus::Running);
        }
        let dsm = reconstruct_dsm(self.my);
        match phase.get(&sys.mem().arena)? {
            P_ACQ => match dsm.lock_pump(sys, MANAGER, LOCK)? {
                LockStatus::Granted => {
                    let m = sys.mem();
                    let next = if incs.get(&m.arena)? < INCS {
                        P_CS
                    } else {
                        P_FINAL
                    };
                    phase.set(&mut m.arena, next)?;
                    Ok(AppStatus::Running)
                }
                LockStatus::Waiting => Ok(AppStatus::Blocked(WaitCond::message())),
            },
            P_CS => {
                // The protected read-modify-write: lost updates here are
                // exactly what mutual exclusion must prevent.
                let v = dsm.read_pod::<u64>(sys, R_COUNTER)?;
                dsm.write_pod(sys, R_COUNTER, v + 1)?;
                let m = sys.mem();
                let n = incs.get(&m.arena)? + 1;
                incs.set(&mut m.arena, n)?;
                sys.compute(50 * US);
                phase.set(&mut sys.mem().arena, P_REL)?;
                Ok(AppStatus::Running)
            }
            P_REL => {
                dsm.unlock(sys, MANAGER, LOCK)?;
                phase.set(&mut sys.mem().arena, P_ACQ)?;
                Ok(AppStatus::Running)
            }
            P_FINAL => {
                // Final critical section: set my done flag, observe the
                // counter and how many workers have finished.
                dsm.write(sys, R_DONE + self.my as usize, &[1])?;
                let counter = dsm.read_pod::<u64>(sys, R_COUNTER)?;
                let mut done = 0u64;
                for i in 0..WORKERS {
                    done += dsm.read(sys, R_DONE + i as usize, 1)?[0] as u64;
                }
                sys.visible(done * 1000 + counter);
                phase.set(&mut sys.mem().arena, P_REL_FINAL)?;
                Ok(AppStatus::Running)
            }
            P_REL_FINAL => {
                dsm.unlock(sys, MANAGER, LOCK)?;
                phase.set(&mut sys.mem().arena, P_DONE)?;
                Ok(AppStatus::Running)
            }
            _ => Ok(AppStatus::Done),
        }
    }

    fn layout(&self) -> Layout {
        layout()
    }
}

fn apps() -> Vec<Box<dyn App>> {
    let mut v: Vec<Box<dyn App>> = (0..WORKERS)
        .map(|i| Box::new(Worker { my: i }) as Box<dyn App>)
        .collect();
    v.push(Box::new(ManagerApp::new(1, TOTAL_RELEASES)));
    v
}

const TOTAL_RELEASES: u64 = WORKERS as u64 * (INCS + 1);

fn assert_mutual_exclusion(visibles: &[(ft_sim::SimTime, ProcessId, u64)]) {
    assert_eq!(
        visibles.len(),
        WORKERS as usize,
        "one final read per worker"
    );
    let total = WORKERS as u64 * INCS;
    let mut saw_last = false;
    for &(_, _, t) in visibles {
        let done = t / 1000;
        let counter = t % 1000;
        // Every final read happens after this worker's own 20 increments
        // were published to it via the grant chain; none may exceed the
        // total (an over-count would mean a duplicated diff application).
        assert!(counter >= INCS && counter <= total, "counter {counter}");
        if done == WORKERS as u64 {
            // The globally last critical section: every increment from
            // every worker must be visible — no lost updates, no stale
            // grant diffs.
            assert_eq!(counter, total, "last critical section saw {counter}");
            saw_last = true;
        }
    }
    assert!(saw_last, "some final acquire must observe all done flags");
}

#[test]
fn lock_protected_counter_has_no_lost_updates() {
    let sim = Simulator::new(SimConfig::one_node_each(WORKERS as usize + 1, 7));
    let mut a = apps();
    let report = run_plain_on(sim, &mut a);
    assert!(report.all_done);
    assert_mutual_exclusion(&report.visibles);
}

#[test]
fn locks_work_identically_across_seeds() {
    // Different seeds shuffle network latencies, hence grant order; the
    // serializability of the counter must hold regardless.
    for seed in [1u64, 99, 1234, 98765] {
        let sim = Simulator::new(SimConfig::one_node_each(WORKERS as usize + 1, seed));
        let mut a = apps();
        let report = run_plain_on(sim, &mut a);
        assert!(report.all_done, "seed {seed}");
        assert_mutual_exclusion(&report.visibles);
    }
}

#[test]
fn lock_traffic_upholds_save_work_under_checkpointing() {
    // Failure-free run under Discount Checking: lock messages are ordinary
    // sends/receives to the protocols, so CPVS must commit before each and
    // the resulting trace must uphold the Save-work invariant.
    let sim = Simulator::new(SimConfig::one_node_each(WORKERS as usize + 1, 7));
    let report = DcHarness::new(sim, DcConfig::discount_checking(Protocol::Cpvs), apps()).run();
    assert!(report.all_done);
    assert_mutual_exclusion(&report.visibles);
    assert!(
        check_save_work(&report.trace).is_ok(),
        "{:?}",
        check_save_work(&report.trace)
    );
    assert!(report.total_commits() > TOTAL_RELEASES);
}

// ---------------------------------------------------------------------
// Two independent locks: each protects its own counter; write-notice
// chains must stay per-lock (an update leaking across chains would
// over-count, a missing one would under-count).
// ---------------------------------------------------------------------

const R_A: usize = 0; // counter under lock 0, page 0
const R_B: usize = 1024; // counter under lock 1, page 1
const R_DONE_A: usize = 8;
const R_DONE_B: usize = 1024 + 8;

struct TwoLockWorker {
    my: u32,
}

impl App for TwoLockWorker {
    fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
        let phase: ArenaCell<u64> = ArenaCell::at(0);
        let inited: ArenaCell<u64> = ArenaCell::at(8);
        let incs: ArenaCell<u64> = ArenaCell::at(16);
        if inited.get(&sys.mem().arena)? == 0 {
            let m = sys.mem();
            Dsm::init(m, self.my, WORKERS, 2)?;
            inited.set(&mut m.arena, 1)?;
            return Ok(AppStatus::Running);
        }
        let dsm = reconstruct_dsm(self.my);
        let p = phase.get(&sys.mem().arena)?;
        // Phases 0-5: the increment loop (A under lock 0, B under lock
        // 1); 6-11: the final observes; 12: done.
        match p {
            0 | 3 | 6 | 9 => {
                let lock = if p == 0 || p == 6 { 0 } else { 1 };
                match dsm.lock_pump(sys, MANAGER, lock)? {
                    LockStatus::Granted => {
                        phase.set(&mut sys.mem().arena, p + 1)?;
                        Ok(AppStatus::Running)
                    }
                    LockStatus::Waiting => Ok(AppStatus::Blocked(WaitCond::message())),
                }
            }
            1 | 4 => {
                let off = if p == 1 { R_A } else { R_B };
                let v = dsm.read_pod::<u64>(sys, off)?;
                dsm.write_pod(sys, off, v + 1)?;
                sys.compute(30 * US);
                phase.set(&mut sys.mem().arena, p + 1)?;
                Ok(AppStatus::Running)
            }
            2 => {
                dsm.unlock(sys, MANAGER, 0)?;
                phase.set(&mut sys.mem().arena, 3)?;
                Ok(AppStatus::Running)
            }
            5 => {
                dsm.unlock(sys, MANAGER, 1)?;
                let m = sys.mem();
                let n = incs.get(&m.arena)? + 1;
                incs.set(&mut m.arena, n)?;
                phase.set(&mut m.arena, if n < INCS { 0 } else { 6 })?;
                Ok(AppStatus::Running)
            }
            7 | 10 => {
                let (ctr, done_base) = if p == 7 {
                    (R_A, R_DONE_A)
                } else {
                    (R_B, R_DONE_B)
                };
                dsm.write(sys, done_base + self.my as usize, &[1])?;
                let counter = dsm.read_pod::<u64>(sys, ctr)?;
                let mut done = 0u64;
                for i in 0..WORKERS {
                    done += dsm.read(sys, done_base + i as usize, 1)?[0] as u64;
                }
                // Tag which lock this observation is for in the high digit.
                let which = if p == 7 { 1_000_000 } else { 2_000_000 };
                sys.visible(which + done * 1000 + counter);
                phase.set(&mut sys.mem().arena, p + 1)?;
                Ok(AppStatus::Running)
            }
            8 => {
                dsm.unlock(sys, MANAGER, 0)?;
                phase.set(&mut sys.mem().arena, 9)?;
                Ok(AppStatus::Running)
            }
            11 => {
                dsm.unlock(sys, MANAGER, 1)?;
                phase.set(&mut sys.mem().arena, 12)?;
                Ok(AppStatus::Running)
            }
            _ => Ok(AppStatus::Done),
        }
    }

    fn layout(&self) -> Layout {
        layout()
    }
}

const TWO_LOCK_RELEASES: u64 = WORKERS as u64 * (2 * INCS + 2);

#[test]
fn two_locks_keep_independent_write_notice_chains() {
    let mut a: Vec<Box<dyn App>> = (0..WORKERS)
        .map(|i| Box::new(TwoLockWorker { my: i }) as Box<dyn App>)
        .collect();
    a.push(Box::new(ManagerApp::new(2, TWO_LOCK_RELEASES)));
    let sim = Simulator::new(SimConfig::one_node_each(WORKERS as usize + 1, 31));
    let report = run_plain_on(sim, &mut a);
    assert!(report.all_done);
    let total = WORKERS as u64 * INCS;
    // Per lock: same saw-last reasoning as the single-lock test.
    for which in [1u64, 2] {
        let mut saw_last = false;
        for &(_, _, t) in report.visibles.iter().filter(|v| v.2 / 1_000_000 == which) {
            let done = t % 1_000_000 / 1000;
            let counter = t % 1000;
            assert!(counter >= INCS && counter <= total, "counter {counter}");
            if done == WORKERS as u64 {
                assert_eq!(counter, total, "lock {which}: last CS saw {counter}");
                saw_last = true;
            }
        }
        assert!(saw_last, "lock {which}: no final observer saw all flags");
    }
}

#[test]
fn unlock_without_hold_is_rejected() {
    struct BadUnlock;
    impl App for BadUnlock {
        fn step(&mut self, sys: &mut dyn SysMem) -> MemResult<AppStatus> {
            let inited: ArenaCell<u64> = ArenaCell::at(8);
            if inited.get(&sys.mem().arena)? == 0 {
                let m = sys.mem();
                Dsm::init(m, 0, WORKERS, 2)?;
                inited.set(&mut m.arena, 1)?;
                return Ok(AppStatus::Running);
            }
            let dsm = reconstruct_dsm(0);
            // Releasing a lock we never acquired must be an invariant
            // violation, not silent corruption of the manager's queue.
            match dsm.unlock(sys, MANAGER, LOCK) {
                Err(_) => Ok(AppStatus::Done),
                Ok(()) => panic!("unlock without hold succeeded"),
            }
        }
        fn layout(&self) -> Layout {
            layout()
        }
    }
    let sim = Simulator::new(SimConfig::one_node_each(1, 7));
    let mut a: Vec<Box<dyn App>> = vec![Box::new(BadUnlock)];
    let report = run_plain_on(sim, &mut a);
    assert!(report.all_done);
}
