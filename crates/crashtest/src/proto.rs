//! The child→parent line protocol.
//!
//! The child writes one line per protocol step to its stdout (a pipe the
//! parent reads). Rust's stdout is line-buffered, and every line is
//! shorter than the pipe's atomic-write threshold, so each line reaches
//! the parent whole — and because the parent only delivers `SIGKILL`
//! while the child is self-suspended *after* flushing `READY`, the
//! stream the parent reads is never torn mid-line.

use std::fmt;

/// One protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// First line of every incarnation: the recovery outcome (all zeros
    /// for a fresh store).
    Resume {
        /// Recovered commit sequence number.
        seq: u64,
        /// Whether a checkpoint image seeded the arena.
        used_checkpoint: bool,
        /// Redo records replayed.
        replayed: u64,
        /// Records skipped as covered by the checkpoint.
        skipped: u64,
        /// Torn-tail bytes truncated.
        truncated: u64,
    },
    /// Op `i`'s non-deterministic draw happened.
    Nd {
        /// The op index.
        op: u64,
    },
    /// Op `i` committed durably (sequence number after the commit).
    Commit {
        /// The op index.
        op: u64,
        /// The store sequence number the commit produced.
        seq: u64,
    },
    /// Op `i`'s visible output.
    Visible {
        /// The op index.
        op: u64,
        /// The emitted token.
        token: u64,
    },
    /// The child reached its kill point and is self-suspended.
    Ready,
    /// Clean completion: final sequence number and state digest.
    Done {
        /// Final commit sequence number.
        seq: u64,
        /// Final arena state digest.
        digest: u64,
    },
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Line::Resume {
                seq,
                used_checkpoint,
                replayed,
                skipped,
                truncated,
            } => write!(
                f,
                "R {seq} {} {replayed} {skipped} {truncated}",
                u8::from(*used_checkpoint)
            ),
            Line::Nd { op } => write!(f, "N {op}"),
            Line::Commit { op, seq } => write!(f, "C {op} {seq}"),
            Line::Visible { op, token } => write!(f, "V {op} {token}"),
            Line::Ready => write!(f, "READY"),
            Line::Done { seq, digest } => write!(f, "DONE {seq} {digest}"),
        }
    }
}

impl Line {
    /// Parses one protocol line.
    pub fn parse(s: &str) -> Result<Line, String> {
        let mut it = s.split_whitespace();
        let bad = || format!("malformed protocol line {s:?}");
        let num = |it: &mut std::str::SplitWhitespace<'_>| -> Result<u64, String> {
            it.next().and_then(|v| v.parse().ok()).ok_or_else(bad)
        };
        match it.next() {
            Some("R") => Ok(Line::Resume {
                seq: num(&mut it)?,
                used_checkpoint: num(&mut it)? != 0,
                replayed: num(&mut it)?,
                skipped: num(&mut it)?,
                truncated: num(&mut it)?,
            }),
            Some("N") => Ok(Line::Nd { op: num(&mut it)? }),
            Some("C") => Ok(Line::Commit {
                op: num(&mut it)?,
                seq: num(&mut it)?,
            }),
            Some("V") => Ok(Line::Visible {
                op: num(&mut it)?,
                token: num(&mut it)?,
            }),
            Some("READY") => Ok(Line::Ready),
            Some("DONE") => Ok(Line::Done {
                seq: num(&mut it)?,
                digest: num(&mut it)?,
            }),
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip() {
        let lines = [
            Line::Resume {
                seq: 5,
                used_checkpoint: true,
                replayed: 3,
                skipped: 2,
                truncated: 17,
            },
            Line::Nd { op: 4 },
            Line::Commit { op: 4, seq: 5 },
            Line::Visible { op: 4, token: 99 },
            Line::Ready,
            Line::Done {
                seq: 12,
                digest: u64::MAX,
            },
        ];
        for l in lines {
            assert_eq!(Line::parse(&l.to_string()).unwrap(), l);
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Line::parse("").is_err());
        assert!(Line::parse("X 1").is_err());
        assert!(Line::parse("C 4").is_err());
        assert!(Line::parse("V 4 not-a-number").is_err());
    }
}
