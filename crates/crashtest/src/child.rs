//! The child side of the harness: a real process running the workload
//! against the durable backend, self-suspending at its kill point.
//!
//! Kill placement works by *cooperative suspension*: the child knows its
//! kill spec, runs up to that exact point, prints `READY`, and sleeps
//! forever. The parent's `SIGKILL` then lands at a deterministic place
//! in the protocol stream — no timing races, no partial lines. For the
//! four in-commit windows the child drives the staged-commit API
//! (`stage_commit` / `append_staged` / `torn_append` / `sync`) so the
//! log is left in precisely the state a crash at that window leaves.

use std::io::Write;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use ft_check::{DurableWindow, KillSpec};
use ft_mem::arena::Layout;
use ft_mem::durable::{DurableMutation, DurableOptions, DurableStore, FsyncPolicy, LOG_FILE};

use crate::parent::LossModel;
use crate::proto::Line;
use crate::workload::{apply_op, visible_token, WorkloadSpec};

/// Everything a child incarnation needs to know.
#[derive(Debug, Clone)]
pub struct ChildConfig {
    /// Store directory (shared across incarnations of one trial).
    pub dir: PathBuf,
    /// The workload to run.
    pub spec: WorkloadSpec,
    /// Commit fsync policy.
    pub fsync: FsyncPolicy,
    /// Seeded backend bug (`None` for the honest backend).
    pub mutation: DurableMutation,
    /// The loss model the parent will apply after the kill. The child
    /// needs it for one decision: whether a pre-fsync kill's commit
    /// acknowledgement would reach the parent (it is durable against
    /// process loss but not against a power cut).
    pub loss: LossModel,
    /// Where to self-suspend for the parent's `SIGKILL` (`None` = run
    /// to completion).
    pub kill: Option<KillSpec>,
}

fn emit(line: &Line) -> Result<(), String> {
    let out = std::io::stdout();
    let mut h = out.lock();
    writeln!(h, "{line}")
        .and_then(|()| h.flush())
        .map_err(|e| format!("child stdout: {e}"))
}

/// Prints `READY` and sleeps forever — the parent kills us here. If the
/// parent is already gone, exit instead of leaking a sleeper.
fn suspend() -> ! {
    if emit(&Line::Ready).is_err() {
        std::process::exit(3);
    }
    loop {
        thread::sleep(Duration::from_millis(25));
    }
}

fn suspend_if_event(kill: Option<KillSpec>, ev: u64) {
    if let Some(KillSpec::AtEvent { pos }) = kill {
        if pos == ev {
            suspend();
        }
    }
}

/// Runs one child incarnation: create-or-recover the store, report the
/// recovery outcome, execute the remaining operations (self-suspending
/// at the kill point if one is configured), and report the final state.
pub fn run_child(cfg: &ChildConfig) -> Result<(), String> {
    let opts = DurableOptions {
        fsync: cfg.fsync,
        mutation: cfg.mutation,
        journal_watermark: true,
        compact_threshold: None,
    };
    let fresh = !cfg.dir.join(LOG_FILE).exists();
    let mut store = if fresh {
        let s = DurableStore::create(&cfg.dir, Layout::small(), opts)
            .map_err(|e| format!("create: {e}"))?;
        emit(&Line::Resume {
            seq: 0,
            used_checkpoint: false,
            replayed: 0,
            skipped: 0,
            truncated: 0,
        })?;
        s
    } else {
        let (s, info) = DurableStore::open(&cfg.dir, opts).map_err(|e| format!("recovery: {e}"))?;
        emit(&Line::Resume {
            seq: info.seq,
            used_checkpoint: info.used_checkpoint,
            replayed: info.replayed,
            skipped: info.skipped,
            truncated: info.truncated_bytes,
        })?;
        s
    };

    let seed = cfg.spec.seed;
    let start = store.seq();
    if start > cfg.spec.ops {
        return Err(format!(
            "recovered seq {start} exceeds the workload's {} ops",
            cfg.spec.ops
        ));
    }
    if matches!(cfg.kill, Some(KillSpec::Start)) {
        suspend();
    }
    // Recovery resumes just *after* the last durable commit, before
    // that operation's visible was (necessarily) emitted — so re-emit
    // it. The oracle's output check is duplicate-tolerant precisely for
    // this: if the visible did escape before the crash, the token now
    // appears twice.
    if start > 0 {
        emit(&Line::Visible {
            op: start - 1,
            token: visible_token(seed, start - 1),
        })?;
    }

    // Event positions are 1-based over the canonical nd/commit/visible
    // stream; the recovered prefix already covered 3·start of them.
    let mut ev = 3 * start;
    for i in start..cfg.spec.ops {
        apply_op(store.arena_mut(), seed, i);
        emit(&Line::Nd { op: i })?;
        ev += 1;
        suspend_if_event(cfg.kill, ev);

        match cfg.kill {
            Some(KillSpec::InCommit { nth, window }) if nth == i => {
                let staged = store.stage_commit();
                match window {
                    DurableWindow::PreAppend => suspend(),
                    DurableWindow::TornAppend { eighths } => {
                        let cut = staged.frame_len() * eighths as usize / 8;
                        store
                            .torn_append(&staged, cut)
                            .map_err(|e| format!("torn append: {e}"))?;
                        suspend()
                    }
                    DurableWindow::PreFsync => {
                        store
                            .append_staged(&staged)
                            .map_err(|e| format!("append: {e}"))?;
                        // The frame is in the page cache: durable if
                        // only the process dies, gone under a power
                        // cut. Acknowledge accordingly — the commit-
                        // durability oracle holds us to this line.
                        if cfg.loss == LossModel::ProcessLoss {
                            emit(&Line::Commit {
                                op: i,
                                seq: store.seq() + 1,
                            })?;
                        }
                        suspend()
                    }
                    DurableWindow::PostFsync => {
                        store
                            .append_staged(&staged)
                            .map_err(|e| format!("append: {e}"))?;
                        store.sync().map_err(|e| format!("sync: {e}"))?;
                        emit(&Line::Commit {
                            op: i,
                            seq: store.seq() + 1,
                        })?;
                        suspend()
                    }
                }
            }
            _ => {
                store.commit().map_err(|e| format!("commit: {e}"))?;
                emit(&Line::Commit {
                    op: i,
                    seq: store.seq(),
                })?;
                ev += 1;
                suspend_if_event(cfg.kill, ev);
            }
        }

        emit(&Line::Visible {
            op: i,
            token: visible_token(seed, i),
        })?;
        ev += 1;
        suspend_if_event(cfg.kill, ev);
    }

    if let Some(k) = cfg.kill {
        // Every reachable spec suspends (and never returns); getting
        // here means the schedule pointed past the run.
        return Err(format!("kill spec \"{k}\" was never reached"));
    }
    emit(&Line::Done {
        seq: store.seq(),
        digest: store.state_digest(),
    })
}
