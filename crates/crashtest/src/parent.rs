//! The parent side of the harness: spawn real children, deliver real
//! `SIGKILL`s, apply the loss model, resume, and judge.
//!
//! One trial = reference canonical run (reused across a schedule's
//! kills) + killed incarnation + loss transform + resumed incarnation +
//! oracle judgment + an independent honest reopen of the on-disk state.
//! The parent reads the child's stdout with *blocking* line reads — the
//! child's cooperative suspension (it prints `READY` and sleeps) means
//! no timed polling is ever needed, keeping the harness free of
//! wall-clock calls.

use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use ft_check::{CrashSchedule, DurableWindow, KillSpec};
use ft_mem::durable::{
    read_watermark, DurableError, DurableMutation, DurableOptions, DurableStore, FsyncPolicy,
    LOG_FILE, LOG_HEADER_LEN,
};

use crate::judge::{canonical_from_lines, judge_trial, Canonical};
use crate::proto::Line;
use crate::workload::WorkloadSpec;

/// What a `kill -9` takes with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossModel {
    /// Power failure: everything past the last real fsync is gone. The
    /// parent emulates it by truncating the redo log back to the
    /// journaled watermark.
    Powercut,
    /// Process death only: the OS page cache survives, so every byte
    /// the child `write(2)`-ed is still there — fsynced or not.
    ProcessLoss,
}

impl LossModel {
    /// Stable lowercase name (harness CLI).
    pub fn name(&self) -> &'static str {
        match self {
            LossModel::Powercut => "powercut",
            LossModel::ProcessLoss => "process",
        }
    }

    /// Parses a [`LossModel::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "powercut" => Some(LossModel::Powercut),
            "process" => Some(LossModel::ProcessLoss),
            _ => None,
        }
    }
}

/// One kill trial: a workload, a kill spec, and the backend build.
#[derive(Debug, Clone)]
pub struct TrialSpec {
    /// The workload.
    pub workload: WorkloadSpec,
    /// Where the kill lands.
    pub kill: KillSpec,
    /// Commit fsync policy.
    pub fsync: FsyncPolicy,
    /// Seeded backend bug (`None` = honest).
    pub mutation: DurableMutation,
}

impl TrialSpec {
    /// The loss model this trial's kill implies.
    ///
    /// Under `--fsync none` commits are only durable against process
    /// loss, so a power cut would (correctly!) roll back acknowledged
    /// commits — that is the policy's documented contract, not a bug,
    /// so those trials always use [`LossModel::ProcessLoss`]. With
    /// fsync-per-commit the interesting adversary is the power cut —
    /// except for torn-append windows, where the half-written tail
    /// *is* the scenario and must survive for recovery to face it.
    pub fn loss(&self) -> LossModel {
        if matches!(self.fsync, FsyncPolicy::Never) {
            return LossModel::ProcessLoss;
        }
        match self.kill {
            KillSpec::InCommit {
                window: DurableWindow::TornAppend { .. },
                ..
            } => LossModel::ProcessLoss,
            _ => LossModel::Powercut,
        }
    }
}

/// A schedule sweep's outcome.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The workload swept.
    pub workload: String,
    /// Kill trials run.
    pub trials: usize,
    /// Oracle/digest failures, with the kill spec that provoked each.
    pub failures: Vec<(KillSpec, String)>,
    /// Total (legal) duplicate visibles across all trials — evidence
    /// the sweep actually crossed the commit/visible window.
    pub duplicates: usize,
}

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ft-crashtest-{}-{tag}-{n}", std::process::id()))
}

fn fsync_name(p: FsyncPolicy) -> &'static str {
    match p {
        FsyncPolicy::Always => "always",
        FsyncPolicy::Never => "none",
        FsyncPolicy::EveryN(_) => unreachable!("harness children use always|none"),
    }
}

fn spawn_child(
    exe: &Path,
    dir: &Path,
    w: &WorkloadSpec,
    fsync: FsyncPolicy,
    mutation: DurableMutation,
    loss: LossModel,
    kill: Option<KillSpec>,
) -> Result<Child, String> {
    let mut cmd = Command::new(exe);
    cmd.arg("--child")
        .arg("--dir")
        .arg(dir)
        .arg("--name")
        .arg(&w.name)
        .arg("--seed")
        .arg(w.seed.to_string())
        .arg("--ops")
        .arg(w.ops.to_string())
        .arg("--fsync")
        .arg(fsync_name(fsync))
        .arg("--mutation")
        .arg(mutation.name())
        .arg("--loss")
        .arg(loss.name())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if let Some(k) = kill {
        cmd.arg("--kill").arg(k.to_string());
    }
    cmd.spawn()
        .map_err(|e| format!("spawn {}: {e}", exe.display()))
}

fn drain_stderr(child: &mut Child) -> String {
    let mut err = String::new();
    if let Some(mut h) = child.stderr.take() {
        let _ = h.read_to_string(&mut err);
    }
    err.trim().to_string()
}

/// Runs a child to completion (no kill) and returns its protocol lines.
fn run_to_completion(
    exe: &Path,
    dir: &Path,
    w: &WorkloadSpec,
    fsync: FsyncPolicy,
    mutation: DurableMutation,
    loss: LossModel,
) -> Result<Vec<Line>, String> {
    let mut child = spawn_child(exe, dir, w, fsync, mutation, loss, None)?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = Vec::new();
    for raw in BufReader::new(stdout).lines() {
        let raw = raw.map_err(|e| format!("reading child: {e}"))?;
        lines.push(Line::parse(&raw)?);
    }
    let status = child.wait().map_err(|e| format!("wait: {e}"))?;
    if !status.success() {
        let err = drain_stderr(&mut child);
        return Err(format!("child exited with {status}: {err}"));
    }
    Ok(lines)
}

/// Runs a child until it prints `READY`, then delivers `SIGKILL`.
/// Returns the protocol lines seen before the suspension.
fn run_until_ready(
    exe: &Path,
    dir: &Path,
    w: &WorkloadSpec,
    fsync: FsyncPolicy,
    mutation: DurableMutation,
    loss: LossModel,
    kill: KillSpec,
) -> Result<Vec<Line>, String> {
    let mut child = spawn_child(exe, dir, w, fsync, mutation, loss, Some(kill))?;
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = Vec::new();
    let mut suspended = false;
    for raw in BufReader::new(stdout).lines() {
        let raw = raw.map_err(|e| format!("reading child: {e}"))?;
        let line = Line::parse(&raw)?;
        let ready = line == Line::Ready;
        lines.push(line);
        if ready {
            // The child is asleep at its kill point: the SIGKILL below
            // is as abrupt as it gets — no atexit, no buffered-flush,
            // no destructors. Reading on afterwards drains the pipe to
            // EOF (there is nothing left to read).
            child.kill().map_err(|e| format!("kill: {e}"))?;
            suspended = true;
        }
    }
    let _ = child.wait();
    if !suspended {
        let err = drain_stderr(&mut child);
        return Err(format!(
            "child finished without reaching kill spec \"{kill}\": {err}"
        ));
    }
    Ok(lines)
}

/// Emulates power loss: truncates the redo log back to the journaled
/// watermark (never below the header — a power cut cannot unwrite what
/// a real fsync already made durable).
pub fn powercut(dir: &Path) -> Result<(), String> {
    let durable = read_watermark(dir)
        .map_err(|e| format!("watermark: {e}"))?
        .unwrap_or(LOG_HEADER_LEN)
        .max(LOG_HEADER_LEN);
    let log = OpenOptions::new()
        .write(true)
        .open(dir.join(LOG_FILE))
        .map_err(|e| format!("open log: {e}"))?;
    log.set_len(durable).map_err(|e| format!("truncate: {e}"))?;
    Ok(())
}

/// Runs the canonical (uncrashed) reference execution of a workload.
pub fn run_reference(
    exe: &Path,
    w: &WorkloadSpec,
    fsync: FsyncPolicy,
) -> Result<Canonical, String> {
    let dir = scratch_dir("ref");
    let lines = run_to_completion(
        exe,
        &dir,
        w,
        fsync,
        DurableMutation::None,
        LossModel::ProcessLoss,
    )?;
    let canonical = canonical_from_lines(&lines)?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(canonical)
}

/// Runs one kill trial end to end against a precomputed canonical run.
/// Returns the number of (legal) duplicate visibles observed, or a
/// description of the violation.
pub fn run_trial(exe: &Path, canonical: &Canonical, t: &TrialSpec) -> Result<usize, String> {
    let loss = t.loss();
    let dir = scratch_dir("trial");
    let killed = run_until_ready(exe, &dir, &t.workload, t.fsync, t.mutation, loss, t.kill)?;
    if loss == LossModel::Powercut {
        powercut(&dir)?;
    }
    let resumed = run_to_completion(exe, &dir, &t.workload, t.fsync, t.mutation, loss)?;
    let dups = judge_trial(canonical, &[killed, resumed])?;

    // Independent honest reopen: whatever the (possibly mutated) child
    // claimed, the bytes on disk must recover to the canonical state.
    let honest = DurableOptions::default();
    let (store, _info) =
        DurableStore::open(&dir, honest).map_err(|e| format!("final honest reopen: {e}"))?;
    if store.seq() != canonical.seq || store.state_digest() != canonical.digest {
        return Err(format!(
            "honest reopen disagrees: seq {} digest {:#018x} vs canonical seq {} digest {:#018x}",
            store.seq(),
            store.state_digest(),
            canonical.seq,
            canonical.digest
        ));
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(dups)
}

/// Sweeps a schedule's kill list (every `stride`-th spec; 1 = all)
/// against the honest backend.
pub fn run_schedule(
    exe: &Path,
    schedule: &CrashSchedule,
    fsync: FsyncPolicy,
    stride: usize,
) -> Result<SweepReport, String> {
    let w = WorkloadSpec::from_schedule(schedule);
    let canonical = run_reference(exe, &w, fsync)?;
    let mut report = SweepReport {
        workload: w.name.clone(),
        trials: 0,
        failures: Vec::new(),
        duplicates: 0,
    };
    for (idx, &kill) in schedule.kills.iter().enumerate() {
        if idx % stride.max(1) != 0 {
            continue;
        }
        let t = TrialSpec {
            workload: w.clone(),
            kill,
            fsync,
            mutation: DurableMutation::None,
        };
        match run_trial(exe, &canonical, &t) {
            Ok(d) => report.duplicates += d,
            Err(e) => report.failures.push((kill, e)),
        }
        report.trials += 1;
    }
    Ok(report)
}

/// One seeded-bug self-test's outcome.
#[derive(Debug, Clone)]
pub struct MutantOutcome {
    /// The mutation under test.
    pub mutation: &'static str,
    /// Whether the harness flagged it.
    pub caught: bool,
    /// The flagging diagnostic (or what the mutant got away with).
    pub detail: String,
}

/// Runs the three seeded-bug self-tests. Every mutant must come back
/// `caught` — a mutant that survives the harness means the harness's
/// green runs prove nothing.
pub fn mutant_matrix(exe: &Path) -> Vec<MutantOutcome> {
    let w = WorkloadSpec {
        name: "mutant".into(),
        seed: 11,
        ops: 6,
    };
    let mut out = Vec::new();

    // skip-fsync: kill by power cut right after the last acknowledged
    // commit's visible. The mutant never advanced the watermark, so the
    // cut rolls back every acknowledged commit — CommitRolledBack.
    let spec = TrialSpec {
        workload: w.clone(),
        kill: KillSpec::AtEvent { pos: 3 * w.ops },
        fsync: FsyncPolicy::Always,
        mutation: DurableMutation::SkipFsync,
    };
    out.push(
        match run_reference(exe, &w, spec.fsync)
            .and_then(|canonical| run_trial(exe, &canonical, &spec))
        {
            Err(detail) => MutantOutcome {
                mutation: "skip-fsync",
                caught: true,
                detail,
            },
            Ok(_) => MutantOutcome {
                mutation: "skip-fsync",
                caught: false,
                detail: "acknowledged commits survived a power cut that should have dropped them"
                    .into(),
            },
        },
    );

    // skip-tail-truncate: a torn append leaves garbage at the tail;
    // the mutated recovery detects but keeps it, so the resumed run's
    // appends land after garbage and the *final honest reopen* (or the
    // resume itself) fail-stops on the corrupted log.
    let spec = TrialSpec {
        workload: w.clone(),
        kill: KillSpec::InCommit {
            nth: 3,
            window: DurableWindow::TornAppend { eighths: 4 },
        },
        fsync: FsyncPolicy::Always,
        mutation: DurableMutation::SkipTailTruncate,
    };
    out.push(
        match run_reference(exe, &w, spec.fsync)
            .and_then(|canonical| run_trial(exe, &canonical, &spec))
        {
            Err(detail) => MutantOutcome {
                mutation: "skip-tail-truncate",
                caught: true,
                detail,
            },
            Ok(_) => MutantOutcome {
                mutation: "skip-tail-truncate",
                caught: false,
                detail: "appends after an untruncated torn tail went unnoticed".into(),
            },
        },
    );

    // skip-crc needs a corrupted-but-complete log, not a kill.
    out.push(match corruption_trial(exe) {
        Ok(detail) => MutantOutcome {
            mutation: "skip-crc",
            caught: true,
            detail,
        },
        Err(detail) => MutantOutcome {
            mutation: "skip-crc",
            caught: false,
            detail,
        },
    });
    out
}

/// Byte offset (within a frame) of the first page-image byte:
/// `[len:u32][crc:u32]` framing, then `tag:u8 seq:u64 npages:u32
/// page:u32` before the image.
const FRAME_FIRST_IMAGE_BYTE: usize = 8 + 1 + 8 + 4 + 4;

/// The skip-crc self-test: flip one page-image byte inside a committed
/// (non-final) record of a clean log. The honest backend must fail-stop
/// with a corruption diagnostic; the mutant silently applies the bad
/// record, which the state-digest check then flags. Returns the caught
/// diagnostic, or an error describing how the mutant escaped.
///
/// The corrupted record is deliberately the *second-to-last*: a bad
/// final record ending exactly at EOF is indistinguishable from a torn
/// append and is legally truncated, which would let the honest control
/// "pass" without exercising fail-stop.
pub fn corruption_trial(exe: &Path) -> Result<String, String> {
    let w = WorkloadSpec {
        name: "corrupt".into(),
        seed: 11,
        ops: 6,
    };
    let dir = scratch_dir("corrupt");
    let lines = run_to_completion(
        exe,
        &dir,
        &w,
        FsyncPolicy::Always,
        DurableMutation::None,
        LossModel::ProcessLoss,
    )?;
    let reference_digest = match lines.last() {
        Some(Line::Done { digest, .. }) => *digest,
        other => return Err(format!("clean run ended with {other:?}")),
    };

    // Locate the second-to-last record and flip a page-image byte.
    let log_path = dir.join(LOG_FILE);
    let mut bytes = std::fs::read(&log_path).map_err(|e| format!("read log: {e}"))?;
    let mut frames = Vec::new();
    let mut off = usize::try_from(LOG_HEADER_LEN).expect("the header is 44 bytes");
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > bytes.len() {
            break;
        }
        frames.push(off);
        off += 8 + len;
    }
    if frames.len() < 2 {
        return Err(format!("expected >= 2 log records, found {}", frames.len()));
    }
    let target = frames[frames.len() - 2] + FRAME_FIRST_IMAGE_BYTE;
    bytes[target] ^= 0xFF;
    std::fs::write(&log_path, &bytes).map_err(|e| format!("write log: {e}"))?;

    // Honest recovery must fail-stop on the committed-region damage.
    let honest_verdict = match DurableStore::open(&dir, DurableOptions::default()) {
        Err(DurableError::Corrupt { offset, detail }) => {
            format!("honest recovery fail-stopped at byte {offset}: {detail}")
        }
        Err(e) => {
            return Err(format!(
                "honest recovery failed, but not as corruption: {e}"
            ))
        }
        Ok(_) => {
            return Err("honest recovery silently accepted a corrupted committed record".into())
        }
    };

    // The mutant sails through — the digest check is the net below.
    let opts = DurableOptions {
        mutation: DurableMutation::SkipCrcCheck,
        ..DurableOptions::default()
    };
    let verdict = match DurableStore::open(&dir, opts) {
        Ok((store, _)) if store.state_digest() != reference_digest => Ok(format!(
            "{honest_verdict}; skip-crc applied the record and its digest {:#018x} diverged \
             from the reference {reference_digest:#018x}",
            store.state_digest()
        )),
        Ok(_) => Err("skip-crc escaped: corrupted state matched the reference digest".into()),
        Err(e) => Err(format!(
            "skip-crc was expected to sail through, but failed: {e}"
        )),
    };
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}
