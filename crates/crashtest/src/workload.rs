//! The child's seed-scripted workload.
//!
//! Every operation is nd → commit → visible, the commit-prior-to-visible
//! shape whose Save-work obligation the durable backend discharges. The
//! nd values are a *stateless* function of `(seed, op index)` — not of
//! the incarnation — so a recovered child re-derives exactly the values
//! the canonical run drew and the final arena state is independent of
//! where (or whether) a crash landed.

use ft_mem::arena::{Arena, PAGE_SIZE};

/// One child workload: a name (for reports), the nd seed, and the
/// operation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Family name (matches the exported schedule's `workload` line).
    pub name: String,
    /// Seed scripting the nd draws.
    pub seed: u64,
    /// Operations the child executes.
    pub ops: u64,
}

impl WorkloadSpec {
    /// The spec a schedule export describes.
    pub fn from_schedule(s: &ft_check::CrashSchedule) -> Self {
        WorkloadSpec {
            name: s.workload.clone(),
            seed: s.seed,
            ops: s.ops,
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The op's non-deterministic draw: stateless in `(seed, i)`, so every
/// incarnation re-derives the same value.
pub fn nd_value(seed: u64, i: u64) -> u64 {
    splitmix(seed ^ splitmix(i.wrapping_add(1)))
}

/// The visible token op `i` emits (derived from its nd draw).
pub fn visible_token(seed: u64, i: u64) -> u64 {
    nd_value(seed, i).rotate_left(17) ^ i
}

/// The two arena pages op `i` dirties. Consecutive operations touch
/// disjoint page pairs (for any arena of ≥ 4 pages), which the
/// corruption trial relies on: a byte flipped in op `i`'s redo record
/// cannot be masked by op `i+1`'s replay.
#[expect(
    clippy::cast_possible_truncation,
    reason = "both values are reduced modulo the page count, a usize"
)]
pub fn op_pages(i: u64, total_pages: usize) -> (usize, usize) {
    let p = total_pages as u64;
    (((2 * i) % p) as usize, ((2 * i + 1) % p) as usize)
}

/// Performs op `i`'s writes: the nd value and a derived second word, one
/// into each of its two pages at an op-indexed offset.
#[expect(
    clippy::cast_possible_truncation,
    reason = "the offset is reduced modulo the page size after the narrowing; op counts are tiny"
)]
pub fn apply_op(arena: &mut Arena, seed: u64, i: u64) {
    let (a, b) = op_pages(i, arena.layout().total_pages());
    let off = ((i as usize) * 8) % PAGE_SIZE;
    let val = nd_value(seed, i);
    arena
        .write_pod::<u64>(a * PAGE_SIZE + off, val)
        .expect("workload write lands in the arena");
    arena
        .write_pod::<u64>(b * PAGE_SIZE + off, val.rotate_left(11))
        .expect("workload write lands in the arena");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_mem::arena::Layout;

    #[test]
    fn nd_values_are_stateless_and_seed_steered() {
        assert_eq!(nd_value(7, 3), nd_value(7, 3));
        assert_ne!(nd_value(7, 3), nd_value(7, 4));
        assert_ne!(nd_value(7, 3), nd_value(8, 3));
    }

    #[test]
    fn consecutive_ops_touch_disjoint_pages() {
        let p = Layout::small().total_pages();
        for i in 0..100 {
            let (a1, b1) = op_pages(i, p);
            let (a2, b2) = op_pages(i + 1, p);
            assert_ne!(a1, b1);
            assert!(a1 != a2 && a1 != b2 && b1 != a2 && b1 != b2, "op {i}");
        }
    }

    #[test]
    fn replaying_the_same_ops_reproduces_the_arena() {
        let mut x = Arena::new(Layout::small());
        let mut y = Arena::new(Layout::small());
        for i in 0..10 {
            apply_op(&mut x, 7, i);
            x.commit();
        }
        // A different interleaving of commits, same ops.
        for i in 0..10 {
            apply_op(&mut y, 7, i);
        }
        y.commit();
        let n = x.size();
        assert_eq!(
            x.checksum(0, n).unwrap(),
            y.checksum(0, n).unwrap(),
            "final state must be a function of the op set alone"
        );
    }
}
