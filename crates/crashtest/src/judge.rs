//! Rebuilding `ft_core` traces from protocol streams and judging
//! recovery with the composed oracle.
//!
//! The parent saw two executions: the canonical (clean) run and the
//! killed-then-resumed run. Both are streams of protocol lines; this
//! module lifts them into the same `Trace` shape the simulator and the
//! model checker produce, inserting `crash` + `rollback` markers at
//! incarnation boundaries, so `ft_core::oracle::check_recovery` judges
//! a real `kill -9` by exactly the rules that judge simulated crashes.

use ft_core::event::{NdSource, ProcessId};
use ft_core::oracle::check_recovery;
use ft_core::trace::{Trace, TraceBuilder};

use crate::proto::Line;

/// The canonical (uncrashed) execution of a workload.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The canonical event trace.
    pub trace: Trace,
    /// Visible tokens in emission order, tagged by process (always 0).
    pub visibles: Vec<(u32, u64)>,
    /// Final commit sequence number.
    pub seq: u64,
    /// Final arena state digest.
    pub digest: u64,
}

/// The trace sequence number a recovery to commit `k` rolls back to.
///
/// Op `i` contributes events `3i` (nd), `3i+1` (commit), `3i+2`
/// (visible), 0-based. Recovering commit `k` resumes just after event
/// `3(k-1)+1 = 3k-2`, i.e. the rollback's `to_seq` — the last event the
/// surviving prefix *contains* — is `3k-1` exclusive-style in
/// `TraceBuilder::rollback`'s convention: the recovered state includes
/// events with seq `< to_seq`. With no commit recovered, everything
/// rolls back.
pub fn rollback_to_seq(k: u64) -> u64 {
    if k == 0 {
        0
    } else {
        3 * k - 1
    }
}

/// Replays one incarnation's lines into the builder. Returns the `DONE`
/// payload if the incarnation completed.
fn push_lines(
    run: &mut TraceBuilder,
    p: ProcessId,
    lines: &[Line],
    visibles: &mut Vec<(u32, u64)>,
) -> Option<(u64, u64)> {
    let mut done = None;
    for l in lines {
        match l {
            Line::Nd { .. } => {
                run.nd(p, NdSource::Random);
            }
            Line::Commit { .. } => {
                run.commit(p);
            }
            Line::Visible { token, .. } => {
                run.visible(p, *token);
                visibles.push((0, *token));
            }
            Line::Done { seq, digest } => done = Some((*seq, *digest)),
            Line::Resume { .. } | Line::Ready => {}
        }
    }
    done
}

/// Builds the [`Canonical`] record from a clean run's protocol lines.
pub fn canonical_from_lines(lines: &[Line]) -> Result<Canonical, String> {
    let p = ProcessId(0);
    let mut run = TraceBuilder::new(1);
    let mut visibles = Vec::new();
    let (seq, digest) = push_lines(&mut run, p, lines, &mut visibles)
        .ok_or("reference run ended without a DONE line")?;
    Ok(Canonical {
        trace: run.finish(),
        visibles,
        seq,
        digest,
    })
}

/// A killed-and-resumed execution rebuilt as an `ft_core` trace.
#[derive(Debug, Clone)]
pub struct Rebuilt {
    /// The recovered execution's trace (crash + rollback markers in).
    pub trace: Trace,
    /// Visible tokens in emission order, tagged by process (always 0).
    pub visibles: Vec<(u32, u64)>,
    /// The final incarnation's `DONE` payload (`seq`, `digest`), if it
    /// completed.
    pub done: Option<(u64, u64)>,
}

/// Builds the recovered execution's trace from per-incarnation line
/// streams, inserting `crash` + `rollback` markers between them (the
/// rollback point comes from the next incarnation's recovery report).
pub fn build_recovered(incarnations: &[Vec<Line>]) -> Result<Rebuilt, String> {
    let p = ProcessId(0);
    let mut run = TraceBuilder::new(1);
    let mut visibles = Vec::new();
    let mut done = None;
    for (j, inc) in incarnations.iter().enumerate() {
        if j > 0 {
            let k = match inc.first() {
                Some(Line::Resume { seq, .. }) => *seq,
                other => {
                    return Err(format!(
                        "incarnation {j} began with {other:?}, not a recovery report"
                    ))
                }
            };
            run.crash(p);
            run.rollback(p, rollback_to_seq(k));
        }
        done = push_lines(&mut run, p, inc, &mut visibles);
    }
    Ok(Rebuilt {
        trace: run.finish(),
        visibles,
        done,
    })
}

/// Judges a killed-then-resumed execution against the canonical run:
/// the composed oracle (completion, Save-work, consistent output,
/// prefix extension, commit durability) plus the final sequence number
/// and state digest. Returns the count of (legal) duplicate visibles.
pub fn judge_trial(canonical: &Canonical, incarnations: &[Vec<Line>]) -> Result<usize, String> {
    let run = build_recovered(incarnations)?;
    let (seq, digest) = run.done.ok_or("resumed run ended without a DONE line")?;
    if seq != canonical.seq {
        return Err(format!(
            "final sequence number {seq} != canonical {}",
            canonical.seq
        ));
    }
    if digest != canonical.digest {
        return Err(format!(
            "final state digest {digest:#018x} != canonical {:#018x}",
            canonical.digest
        ));
    }
    match check_recovery(
        &canonical.trace,
        &canonical.visibles,
        &run.trace,
        &run.visibles,
        0,
    ) {
        Ok(report) => Ok(report.duplicates),
        Err(v) => Err(format!("oracle violation: {v}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::visible_token;

    fn clean_lines(seed: u64, ops: u64) -> Vec<Line> {
        let mut v = Vec::new();
        v.push(Line::Resume {
            seq: 0,
            used_checkpoint: false,
            replayed: 0,
            skipped: 0,
            truncated: 0,
        });
        for i in 0..ops {
            v.push(Line::Nd { op: i });
            v.push(Line::Commit { op: i, seq: i + 1 });
            v.push(Line::Visible {
                op: i,
                token: visible_token(seed, i),
            });
        }
        v.push(Line::Done {
            seq: ops,
            digest: 0xABCD,
        });
        v
    }

    #[test]
    fn clean_resume_after_mid_run_kill_passes() {
        let canonical = canonical_from_lines(&clean_lines(7, 4)).unwrap();
        // Killed after op 1's commit, before its visible escaped.
        let killed = vec![
            Line::Resume {
                seq: 0,
                used_checkpoint: false,
                replayed: 0,
                skipped: 0,
                truncated: 0,
            },
            Line::Nd { op: 0 },
            Line::Commit { op: 0, seq: 1 },
            Line::Visible {
                op: 0,
                token: visible_token(7, 0),
            },
            Line::Nd { op: 1 },
            Line::Commit { op: 1, seq: 2 },
            Line::Ready,
        ];
        let mut resumed = vec![
            Line::Resume {
                seq: 2,
                used_checkpoint: false,
                replayed: 2,
                skipped: 0,
                truncated: 0,
            },
            Line::Visible {
                op: 1,
                token: visible_token(7, 1),
            },
        ];
        for i in 2..4 {
            resumed.push(Line::Nd { op: i });
            resumed.push(Line::Commit { op: i, seq: i + 1 });
            resumed.push(Line::Visible {
                op: i,
                token: visible_token(7, i),
            });
        }
        resumed.push(Line::Done {
            seq: 4,
            digest: 0xABCD,
        });
        let dups = judge_trial(&canonical, &[killed, resumed]).unwrap();
        assert_eq!(dups, 0, "op 1's visible never escaped pre-crash");
    }

    #[test]
    fn duplicate_visible_is_tolerated_and_counted() {
        let canonical = canonical_from_lines(&clean_lines(7, 2)).unwrap();
        // Killed after op 0's visible escaped; recovery re-emits it.
        let killed = vec![
            Line::Resume {
                seq: 0,
                used_checkpoint: false,
                replayed: 0,
                skipped: 0,
                truncated: 0,
            },
            Line::Nd { op: 0 },
            Line::Commit { op: 0, seq: 1 },
            Line::Visible {
                op: 0,
                token: visible_token(7, 0),
            },
            Line::Ready,
        ];
        let resumed = vec![
            Line::Resume {
                seq: 1,
                used_checkpoint: false,
                replayed: 1,
                skipped: 0,
                truncated: 0,
            },
            Line::Visible {
                op: 0,
                token: visible_token(7, 0),
            },
            Line::Nd { op: 1 },
            Line::Commit { op: 1, seq: 2 },
            Line::Visible {
                op: 1,
                token: visible_token(7, 1),
            },
            Line::Done {
                seq: 2,
                digest: 0xABCD,
            },
        ];
        let dups = judge_trial(&canonical, &[killed, resumed]).unwrap();
        assert_eq!(dups, 1);
    }

    #[test]
    fn lost_committed_work_is_a_violation() {
        let canonical = canonical_from_lines(&clean_lines(7, 3)).unwrap();
        // Op 0 committed and its output escaped, but recovery reports
        // seq 0 — the acknowledged commit was rolled back.
        let killed = vec![
            Line::Resume {
                seq: 0,
                used_checkpoint: false,
                replayed: 0,
                skipped: 0,
                truncated: 0,
            },
            Line::Nd { op: 0 },
            Line::Commit { op: 0, seq: 1 },
            Line::Visible {
                op: 0,
                token: visible_token(7, 0),
            },
            Line::Ready,
        ];
        let mut resumed = vec![Line::Resume {
            seq: 0,
            used_checkpoint: false,
            replayed: 0,
            skipped: 0,
            truncated: 0,
        }];
        for i in 0..3 {
            resumed.push(Line::Nd { op: i });
            resumed.push(Line::Commit { op: i, seq: i + 1 });
            resumed.push(Line::Visible {
                op: i,
                token: visible_token(7, i),
            });
        }
        resumed.push(Line::Done {
            seq: 3,
            digest: 0xABCD,
        });
        let err = judge_trial(&canonical, &[killed, resumed]).unwrap_err();
        assert!(
            err.contains("oracle violation"),
            "expected an oracle violation, got: {err}"
        );
    }

    #[test]
    fn digest_divergence_is_flagged() {
        let canonical = canonical_from_lines(&clean_lines(7, 2)).unwrap();
        let mut lines = clean_lines(7, 2);
        let last = lines.last_mut().unwrap();
        *last = Line::Done {
            seq: 2,
            digest: 0xDEAD,
        };
        let err = judge_trial(&canonical, &[lines]).unwrap_err();
        assert!(err.contains("digest"), "got: {err}");
    }
}
