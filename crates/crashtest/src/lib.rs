//! # ft-crashtest — real-process crash testing of the durable backend
//!
//! Everything else in this repository kills *simulated* processes. This
//! crate kills real ones: a child process runs a seed-scripted workload
//! against the log-structured file backend (`ft_mem::durable`), the
//! parent delivers a genuine `SIGKILL` at a schedule point exported from
//! the model checker ([`ft_check::export`]), restarts the child, and
//! judges the recovered execution with the same composed oracle
//! (`ft_core::oracle::check_recovery`) that verifies every simulated
//! crash schedule.
//!
//! ## The trial pipeline
//!
//! 1. **Reference** — one clean child run per workload records the
//!    canonical event stream (nd → commit → visible per operation) and
//!    the final state digest.
//! 2. **Kill** — a fresh child runs the same workload with a kill spec.
//!    The child *self-suspends* at the exact point (printing `READY` and
//!    sleeping), so the parent's `SIGKILL` lands deterministically — at
//!    event granularity or inside a commit at one of the four redo-log
//!    windows (pre-append, torn-append, pre-fsync, post-fsync).
//! 3. **Loss model** — `kill -9` does not drop the OS page cache, so a
//!    process kill alone cannot exercise fsync placement. For power-loss
//!    trials the parent truncates the redo log back to the *watermark*
//!    the store journals at each real fsync: everything past it was
//!    written but never acknowledged durable ([`parent::LossModel`]).
//! 4. **Resume** — the child restarts on the surviving files, recovers,
//!    re-emits the last committed operation's visible (recovery resumes
//!    just after its commit), and runs to completion.
//! 5. **Judge** — the parent rebuilds both executions as `ft_core`
//!    traces (crash and rollback markers included) and applies
//!    `check_recovery` — completion, Save-work, consistent (duplicate-
//!    tolerant) output, prefix extension, and commit durability — plus
//!    byte-level checks: the resumed run's final digest, and an
//!    independent honest reopen of the on-disk state, must both equal
//!    the reference digest.
//!
//! ## Mutant self-test
//!
//! The harness proves its own teeth on three seeded backend bugs
//! (`ft_mem::durable::DurableMutation`): `skip-fsync` (acknowledged
//! commits lost to power cuts — caught by the commit-durability oracle),
//! `skip-crc` (corrupted committed records silently applied — caught by
//! digest divergence where the honest backend fail-stops), and
//! `skip-tail-truncate` (torn tail left in place, later appends land
//! after garbage — caught by the final honest reopen fail-stopping). A
//! mutant that sails through every check makes the `crashtest` binary
//! exit nonzero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod child;
pub mod judge;
pub mod parent;
pub mod proto;
pub mod workload;

pub use child::{run_child, ChildConfig};
pub use judge::{
    build_recovered, canonical_from_lines, judge_trial, rollback_to_seq, Canonical, Rebuilt,
};
pub use parent::{
    corruption_trial, mutant_matrix, powercut, run_reference, run_schedule, run_trial, LossModel,
    MutantOutcome, SweepReport, TrialSpec,
};
pub use proto::Line;
pub use workload::{apply_op, nd_value, op_pages, visible_token, WorkloadSpec};
